/**
 * @file
 * Device-parameter what-if explorer.
 *
 * The paper's Fig. 24 discussion projects ~3x power reduction from
 * 1-pJ-class cell switching [66] plus a 60% more efficient ADC [37].
 * This example runs that hypothetical (and any params file you provide)
 * against the default device, using the same simulator the figures use.
 *
 * Usage:
 *   ./build/examples/params_explorer                  # built-in what-ifs
 *   ./build/examples/params_explorer --params my.conf # your device
 *   ./build/examples/params_explorer --dump           # print defaults
 */

#include <iostream>
#include <sstream>

#include "common/args.hh"
#include "common/table.hh"
#include "core/api.hh"
#include "reram/params_io.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("benchmark", "Table V benchmark name", "DCGAN");
    args.addOption("params", "params file to evaluate (key = value)", "");
    args.addOption("dump", "print the default parameters and exit", "",
                   true);
    args.parse(argc, argv, "explore device-parameter what-ifs");

    if (args.getFlag("dump")) {
        saveParams(std::cout, ReRamParams{});
        return 0;
    }

    const GanModel model = makeBenchmark(args.get("benchmark"));
    auto run = [&](const char *name, const ReRamParams &params) {
        AcceleratorConfig config =
            AcceleratorConfig::lerGan(ReplicaDegree::Low);
        config.reram = params;
        const TrainingReport report = simulateTraining(model, config);
        return std::tuple<std::string, double, double>(
            name, report.timeMs(), pjToMj(report.totalEnergyPj()));
    };

    TextTable table({"device", "ms/iter", "mJ/iter", "energy vs default"});
    const auto base = run("default (calibrated)", ReRamParams{});
    auto row = [&](const std::tuple<std::string, double, double> &r) {
        table.addRow({std::get<0>(r), TextTable::num(std::get<1>(r), 2),
                      TextTable::num(std::get<2>(r), 1),
                      TextTable::num(std::get<2>(base) / std::get<2>(r)) +
                          "x"});
    };
    row(base);

    // Fig. 24's hypothetical: near-free cell switching + better ADC.
    ReRamParams improved;
    improved.cellPjPerXbar *= 0.05;  // 1-pJ-class switching [66]
    improved.adcPjPerXbar *= 0.40;   // 60% more efficient ADC [37]
    improved.weightWritePjPerElem *= 0.05;
    row(run("1-pJ cells + efficient ADC", improved));

    // A slower but even cheaper device, for contrast.
    ReRamParams frugal = improved;
    frugal.mmvWaveNs *= 2.0;
    row(run("same, at half the MMV rate", frugal));

    if (!args.get("params").empty())
        row(run(args.get("params").c_str(),
                loadParamsFile(args.get("params"))));

    std::cout << "What-if devices on " << model.name << " (LerGAN-low):\n\n";
    table.print(std::cout);
    std::cout << "\npaper: the Fig. 24 improvements yield ~3x power "
                 "reduction.\n";
    return 0;
}
