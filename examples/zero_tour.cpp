/**
 * @file
 * A guided tour of the paper's Sec. III-A zero analysis, walking the
 * worked CONV1 example step by step and then printing the zero census of
 * every Table V benchmark. Good for checking intuition against the
 * formal machinery (Eq. 5-10 and the 1-D pattern enumeration).
 */

#include <iostream>

#include "common/table.hh"
#include "core/api.hh"
#include "nn/conv_pattern.hh"

namespace {

using namespace lergan;

void
conv1WalkThrough()
{
    std::cout << "--- CONV1 of the DCGAN generator (paper Sec. III-A) ---\n";
    // CONV1: 4x4x1024 input, 5x5 kernels, converse stride 2, converse
    // padding 2, remainder 1 -> 8x8x512 output.
    const Pattern1D p = sparseGridPattern(/*data=*/4, /*stride=*/2,
                                          /*pad=*/2, /*rem=*/1,
                                          /*kernel=*/5);

    std::cout << "1-D zero-inserted grid: " << p.gridLength
              << " cells, " << p.dataCells << " real ("
              << p.positions << " window positions)\n";
    std::cout << "grid: ";
    for (int x = 0; x < p.gridLength; ++x) {
        const int rel = x - 2;
        const bool data = rel >= 0 && rel % 2 == 0 && rel / 2 < 4;
        std::cout << (data ? 'D' : '0');
    }
    std::cout << "   (D = data, 0 = inserted/padding zero)\n\n";

    std::cout << "distinct 1-D masks (the reshaped-weight column sets):\n";
    for (const MaskGroup &g : p.groups) {
        std::cout << "  {";
        for (std::size_t i = 0; i < g.mask.size(); ++i)
            std::cout << (i ? "," : "") << g.mask[i];
        std::cout << "} reused " << g.reuse << "x"
                  << (g.interior ? "  [interior]" : "") << "\n";
    }
    std::cout << "\n2-D: " << p.distinct() << "^2 = "
              << p.distinct() * p.distinct()
              << " reshaped weight matrices (paper: 25)\n";
    std::cout << "useful taps per 1-D scan: " << p.usefulTaps() << " of "
              << p.totalTaps() << " -> 2-D efficiency "
              << TextTable::num(100.0 * p.usefulTaps() * p.usefulTaps() /
                                    (p.totalTaps() * p.totalTaps()),
                                2)
              << "% (paper: 18.06%)\n\n";
}

void
zeroCensus()
{
    std::cout << "--- zero census across Table V ---\n";
    TextTable table({"benchmark", "useful mults", "total mults",
                     "efficiency", "storage blowup"});
    for (const GanModel &model : allBenchmarks()) {
        const OpZeroStats stats = analyzeModel(model);
        table.addRow({model.name, std::to_string(stats.usefulMults),
                      std::to_string(stats.totalMults),
                      TextTable::num(100.0 * stats.multEfficiency(), 1) +
                          "%",
                      TextTable::num(stats.storageBlowup()) + "x"});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    conv1WalkThrough();
    zeroCensus();
    return 0;
}
