/**
 * @file
 * Trace one training iteration and export it in the Chrome trace-event
 * format (open chrome://tracing or https://ui.perfetto.dev and load the
 * file) to see how items pipeline through banks and where wires contend.
 * The export includes counter tracks — event-queue depth, ready/inflight
 * task counts, transfer occupancy and the busiest wire's busy curve —
 * rendered by Perfetto as line charts above the task spans.
 *
 * Usage:
 *   ./build/examples/trace_dump --benchmark cGAN --batch 8 \
 *       --out /tmp/lergan_trace.json [--metrics /tmp/metrics.prom]
 */

#include <fstream>
#include <iostream>

#include "common/args.hh"
#include "core/api.hh"
#include "sim/trace_tracks.hh"
#include "sim/utilization.hh"
#include "telemetry/metrics.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("benchmark", "Table V benchmark name", "cGAN");
    args.addOption("batch", "training minibatch size", "8");
    args.addOption("degree", "duplication degree: low/middle/high", "low");
    args.addOption("out", "Chrome trace output path",
                   "lergan_trace.json");
    args.addOption("timeline", "also print the first N timeline rows",
                   "20");
    args.addOption("metrics",
                   "also write a Prometheus-style metrics snapshot of "
                   "the iteration to this path");
    args.parse(argc, argv, "export a Chrome trace of one iteration");

    ReplicaDegree degree = ReplicaDegree::Low;
    if (args.get("degree") == "middle")
        degree = ReplicaDegree::Middle;
    else if (args.get("degree") == "high")
        degree = ReplicaDegree::High;

    AcceleratorConfig config = AcceleratorConfig::lerGan(degree);
    config.batchSize = args.getInt("batch");

    const GanModel model = makeBenchmark(args.get("benchmark"));
    LerGanAccelerator accelerator(model, config);

    // Tracing also records the sim.queue.depth / sim.ready.tasks /
    // sim.inflight.tasks counter tracks; the registry (used only when
    // --metrics is given) accumulates the numeric rollups of the same
    // run.
    MetricsRegistry registry;
    MetricsRegistry *metrics =
        args.given("metrics") ? &registry : nullptr;
    Tracer tracer;
    const TrainingReport report =
        accelerator.trainIterations(1, &tracer, metrics);
    report.print(std::cout);

    std::cout << "\ntimeline head:\n";
    tracer.printTimeline(std::cout, args.getInt("timeline"));

    std::cout << "\nbusiest resources:\n";
    printUtilization(std::cout, accelerator.machine().pool(),
                     report.iterationTime, 10);

    // Derived counter tracks: how many transfers are in flight at each
    // instant, and the busiest wire's own busy/idle square wave.
    const std::vector<std::string> names = accelerator.resourceNames();
    addSpanOccupancyTrack(tracer, "xfer:", "ic.xfer.active");
    const std::size_t wire = busiestLane(tracer, names, ".wire");
    if (wire != SIZE_MAX)
        addLaneOccupancyTrack(tracer, wire, names[wire] + ".busy");

    const std::string path = args.get("out");
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        return 1;
    }
    tracer.exportChromeTrace(out, names);
    std::cout << "\nwrote " << tracer.events().size() << " events and "
              << tracer.counterSamples().size() << " counter samples to "
              << path << "\n";

    if (metrics) {
        const std::string metrics_path = args.get("metrics");
        std::ofstream mout(metrics_path);
        if (!mout) {
            std::cerr << "cannot open " << metrics_path
                      << " for writing\n";
            return 1;
        }
        registry.snapshot().writePrometheus(mout);
        std::cout << "wrote metrics snapshot to " << metrics_path
                  << "\n";
    }
    return 0;
}
