/**
 * @file
 * Trace one training iteration and export it in the Chrome trace-event
 * format (open chrome://tracing or https://ui.perfetto.dev and load the
 * file) to see how items pipeline through banks and where wires contend.
 *
 * Usage:
 *   ./build/examples/trace_dump --benchmark cGAN --batch 8 \
 *       --out /tmp/lergan_trace.json
 */

#include <fstream>
#include <iostream>

#include "common/args.hh"
#include "core/api.hh"
#include "sim/utilization.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("benchmark", "Table V benchmark name", "cGAN");
    args.addOption("batch", "training minibatch size", "8");
    args.addOption("degree", "duplication degree: low/middle/high", "low");
    args.addOption("out", "Chrome trace output path",
                   "lergan_trace.json");
    args.addOption("timeline", "also print the first N timeline rows",
                   "20");
    args.parse(argc, argv, "export a Chrome trace of one iteration");

    ReplicaDegree degree = ReplicaDegree::Low;
    if (args.get("degree") == "middle")
        degree = ReplicaDegree::Middle;
    else if (args.get("degree") == "high")
        degree = ReplicaDegree::High;

    AcceleratorConfig config = AcceleratorConfig::lerGan(degree);
    config.batchSize = args.getInt("batch");

    const GanModel model = makeBenchmark(args.get("benchmark"));
    LerGanAccelerator accelerator(model, config);

    Tracer tracer;
    const TrainingReport report =
        accelerator.trainIterationTraced(tracer);
    report.print(std::cout);

    std::cout << "\ntimeline head:\n";
    tracer.printTimeline(std::cout, args.getInt("timeline"));

    std::cout << "\nbusiest resources:\n";
    printUtilization(std::cout, accelerator.machine().pool(),
                     report.iterationTime, 10);

    const std::string path = args.get("out");
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        return 1;
    }
    tracer.exportChromeTrace(out, accelerator.resourceNames());
    std::cout << "\nwrote " << tracer.events().size() << " events to "
              << path << "\n";
    return 0;
}
