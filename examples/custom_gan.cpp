/**
 * @file
 * Define your own GAN with the Table V topology DSL, inspect what ZFDR
 * finds in it, and simulate it with heterogeneous per-phase acceleration
 * (the paper's programmer-facing replica_degree knob, Sec. V).
 *
 * Usage:
 *   ./build/examples/custom_gan
 *   ./build/examples/custom_gan --gen "100f-(256t-128t)(4k2s)-t3" \
 *       --disc "(3c-128c-256c)(4k2s)-f1" --item 32 --batch 32
 */

#include <iostream>

#include "common/args.hh"
#include "core/api.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("gen", "generator topology (Table V DSL)",
                   "100f-(512t-256t-128t-64t)(4k2s)-t3");
    args.addOption("disc", "discriminator topology",
                   "(3c-64c-128c-256c-512c)(4k2s)-f1");
    args.addOption("item", "generated item side length", "64");
    args.addOption("dims", "spatial dimensions (2 or 3)", "2");
    args.addOption("batch", "training minibatch size", "64");
    args.parse(argc, argv,
               "define a custom GAN and explore its ZFDR structure");

    const GanModel model =
        parseGan("custom", args.get("gen"), args.get("disc"),
                 args.getInt("item"), args.getInt("dims"));

    std::cout << "Parsed '" << args.get("gen") << "' / '"
              << args.get("disc") << "': " << model.totalWeights()
              << " weights\n\n";

    // 1. What does ZFDR find to remove?
    std::cout << "Zero structure per phase:\n";
    for (Phase phase : kAllPhases) {
        const OpZeroStats stats = analyzePhase(model, phase);
        std::cout << "  " << phaseName(phase) << ": multiply efficiency "
                  << 100.0 * stats.multEfficiency()
                  << "% without ZFDR, storage blowup "
                  << stats.storageBlowup() << "x\n";
    }

    // 2. Reshape classes of the first sparse layer (the paper's
    //    Corner/Edge/Inside decomposition, Sec. IV-A).
    for (const LayerOp &op : opsForPhase(model, Phase::GFwd)) {
        if (!op.zfdrApplicable())
            continue;
        const ReshapeAnalysis analysis = analyzeReshape(op);
        std::cout << "\n" << op.label << " reshaped weight matrices:\n"
                  << "  corner: " << analysis.corner.matrices
                  << " (reuse <= " << analysis.corner.maxReuse << ")\n"
                  << "  edge:   " << analysis.edge.matrices
                  << " (reuse <= " << analysis.edge.maxReuse << ")\n"
                  << "  inside: " << analysis.inside.matrices
                  << " (reuse <= " << analysis.inside.maxReuse << ")\n";
        break;
    }

    // 3. Heterogeneous acceleration: spend duplication budget only on
    //    the discriminator's weight-gradient phase, where the per-item
    //    crossbar writes hurt most.
    AcceleratorConfig uniform = AcceleratorConfig::lerGan(
        ReplicaDegree::Low);
    uniform.batchSize = args.getInt("batch");

    AcceleratorConfig hetero = uniform;
    hetero.phaseDegrees[Phase::DBwdWeight] = ReplicaDegree::High;
    hetero.phaseDegrees[Phase::GBwdWeight] = ReplicaDegree::High;

    AcceleratorConfig all_high =
        AcceleratorConfig::lerGan(ReplicaDegree::High);
    all_high.batchSize = args.getInt("batch");

    std::cout << "\nHeterogeneous acceleration (Sec. V):\n";
    for (const auto &[name, config] :
         {std::pair<const char *, AcceleratorConfig>{"uniform low",
                                                     uniform},
          {"low + high weight-grad phases", hetero},
          {"uniform high", all_high}}) {
        const TrainingReport report = simulateTraining(model, config);
        std::cout << "  " << name << ": " << report.timeMs() << " ms, "
                  << pjToMj(report.totalEnergyPj()) << " mJ, "
                  << report.crossbarsUsed << " crossbars\n";
    }
    return 0;
}
