/**
 * @file
 * Sweep the full accelerator design space for one benchmark: connection
 * x reshape x duplication, the axes the paper's Fig. 16-19 explore.
 * Prints a time/energy/space table so the trade-offs (and the Pareto
 * frontier) are visible in one place.
 *
 * The eight points execute on the parallel sweep engine with a live
 * progress line — the pattern to copy for larger design-space scans.
 *
 * Usage:
 *   ./build/examples/design_space
 *   ./build/examples/design_space --benchmark GPGAN --iterations 10
 *   ./build/examples/design_space --threads 1        # sequential
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "core/api.hh"
#include "core/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("benchmark", "Table V benchmark name", "DCGAN");
    args.addOption("iterations", "training iterations to simulate", "1");
    args.addOption("threads",
                   "sweep workers (0 = one per hardware thread)", "0");
    args.parse(argc, argv, "sweep connection x reshape x duplication");

    const GanModel model = makeBenchmark(args.get("benchmark"));
    const int iterations = args.getInt("iterations");

    struct Point {
        const char *name;
        Connection connection;
        ReshapeMode reshape;
        bool duplicate;
        ReplicaDegree degree;
    };
    const Point points[] = {
        {"2D + NR (PRIME-style)", Connection::HTree, ReshapeMode::Normal,
         false, ReplicaDegree::Low},
        {"2D + NR + dup", Connection::HTree, ReshapeMode::Normal, true,
         ReplicaDegree::Middle},
        {"2D + ZFDR", Connection::HTree, ReshapeMode::Zfdr, false,
         ReplicaDegree::Low},
        {"3D + NR", Connection::ThreeD, ReshapeMode::Normal, false,
         ReplicaDegree::Low},
        {"3D + ZFDR", Connection::ThreeD, ReshapeMode::Zfdr, false,
         ReplicaDegree::Low},
        {"3D + ZFDR + low", Connection::ThreeD, ReshapeMode::Zfdr, true,
         ReplicaDegree::Low},
        {"3D + ZFDR + middle", Connection::ThreeD, ReshapeMode::Zfdr, true,
         ReplicaDegree::Middle},
        {"3D + ZFDR + high", Connection::ThreeD, ReshapeMode::Zfdr, true,
         ReplicaDegree::High},
    };

    ExperimentSweep sweep;
    sweep.addBenchmark(model);
    for (const Point &point : points) {
        AcceleratorConfig config;
        config.connection = point.connection;
        config.reshape = point.reshape;
        config.duplicate = point.duplicate;
        config.degree = point.degree;
        sweep.addConfig(point.name, config);
    }

    RunOptions options;
    options.threads = args.getInt("threads");
    options.iterations = iterations;
    options.onProgress = [&](std::size_t done, std::size_t total) {
        std::cerr << "\rsimulated " << done << "/" << total << " points"
                  << (done == total ? "\n" : "") << std::flush;
    };
    const std::vector<SweepResult> results = sweep.run(options);

    TextTable table({"configuration", "ms/iter", "mJ/iter", "crossbars",
                     "speedup", "energy saving"});
    const double base_time = results.front().report.timeMs();
    const double base_energy = results.front().report.totalEnergyPj();
    for (const SweepResult &result : results) {
        table.addRow({result.configLabel,
                      TextTable::num(result.report.timeMs(), 2),
                      TextTable::num(
                          pjToMj(result.report.totalEnergyPj()), 1),
                      std::to_string(result.crossbarsUsed),
                      TextTable::num(base_time / result.report.timeMs()) +
                          "x",
                      TextTable::num(base_energy /
                                     result.report.totalEnergyPj()) +
                          "x"});
    }

    std::cout << "Design space for " << model.name << " (batch 64, "
              << iterations << " iteration(s))\n\n";
    table.print(std::cout);
    std::cout << "\nReading guide: ZFDR needs the 3D connection to pay "
                 "off (Fig. 17); duplication trades CArray space and "
                 "update energy for speed (Fig. 19/20).\n";
    return 0;
}
