/**
 * @file
 * Dump the machine's interconnect as Graphviz DOT (render with
 * `dot -Tsvg`). Use --no-3d to see the plain H-tree baseline.
 */

#include <iostream>

#include "common/args.hh"
#include "core/machine.hh"
#include "interconnect/dot_export.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("no-3d", "build the H-tree baseline machine", "", true);
    args.addOption("pairs", "number of CU pairs", "1");
    args.parse(argc, argv, "export the interconnect as Graphviz DOT");

    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    if (args.getFlag("no-3d"))
        config.connection = Connection::HTree;
    config.cuPairs = args.getInt("pairs");

    Machine machine(config);
    exportDot(std::cout, machine.topo());
    return 0;
}
