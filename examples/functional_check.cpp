/**
 * @file
 * End-to-end functional verification demo: run a whole (small) GAN
 * layer-by-layer through both the direct zero-carrying references and
 * the ZFDR reshaped-matrix execution paths, and show they agree
 * bit-exactly while counting how many multiplies ZFDR skipped.
 *
 * This is the paper's core claim made executable: zero-free reshaping
 * changes *how* the convolutions are computed, never *what*.
 */

#include <iostream>

#include "common/table.hh"
#include "core/api.hh"
#include "nn/functional.hh"
#include "zfdr/functional.hh"

int
main()
{
    using namespace lergan;

    // A scaled-down DCGAN-shaped GAN (same kernels/strides, fewer
    // channels and smaller maps) so the functional pass runs instantly.
    const GanModel gan = parseGan("mini-dcgan",
                                  "16f-(8t-4t)(5k2s)-t2",
                                  "(2c-4c)(5k2s)-f1", 16, 2);

    Rng rng(2026);
    TextTable table({"layer / op", "checked values", "bit-exact",
                     "mults skipped by ZFDR"});
    std::uint64_t total_skipped = 0;

    for (const LayerSpec &layer : gan.generator) {
        if (layer.kind != LayerKind::TConv)
            continue;
        const Tensor input = Tensor::random(inputShape(layer), rng);
        const Tensor kernel = Tensor::random(kernelShape(layer), rng);
        const Tensor grad = Tensor::random(outputShape(layer), rng);

        const Tensor fwd_ref = tconvForwardRef(input, kernel, layer);
        const Tensor fwd_zfdr = tconvForwardZfdr(input, kernel, layer);
        const Tensor wg_ref = tconvWeightGradRef(input, grad, layer);
        const Tensor wg_zfdr = tconvWeightGradZfdr(input, grad, layer);

        // Count the zero-multiplies ZFDR never issues.
        const Pattern1D p = sparseGridPattern(
            layer.inSize, layer.stride, layer.kernel - 1 - layer.pad,
            layer.kernel - 1 - layer.padHi, layer.rem, layer.kernel);
        const std::uint64_t skipped =
            (p.totalTaps() * p.totalTaps() -
             p.usefulTaps() * p.usefulTaps()) *
            layer.inChannels * layer.outChannels;
        total_skipped += skipped;

        table.addRow({layer.name + " fwd",
                      std::to_string(fwd_ref.size()),
                      fwd_ref == fwd_zfdr ? "yes" : "NO",
                      std::to_string(skipped)});
        table.addRow({layer.name + " wgrad",
                      std::to_string(wg_ref.size()),
                      wg_ref == wg_zfdr ? "yes" : "NO", "-"});
    }

    for (const LayerSpec &layer : gan.discriminator) {
        if (layer.kind != LayerKind::Conv)
            continue;
        const Tensor input = Tensor::random(inputShape(layer), rng);
        const Tensor kernel = Tensor::random(kernelShape(layer), rng);
        const Tensor grad = Tensor::random(outputShape(layer), rng);

        const Tensor bwd_ref = convBackwardDataRef(grad, kernel, layer);
        const Tensor bwd_zfdr = convBackwardDataZfdr(grad, kernel, layer);
        const Tensor wg_ref = convWeightGradRef(input, grad, layer);
        const Tensor wg_zfdr = convWeightGradZfdr(input, grad, layer);

        table.addRow({layer.name + " bwd_err",
                      std::to_string(bwd_ref.size()),
                      bwd_ref == bwd_zfdr ? "yes" : "NO", "-"});
        table.addRow({layer.name + " bwd_w",
                      std::to_string(wg_ref.size()),
                      wg_ref == wg_zfdr ? "yes" : "NO", "-"});
    }

    std::cout << "Functional check: ZFDR vs direct convolution on "
              << gan.name << "\n\n";
    table.print(std::cout);
    std::cout << "\nforward multiplies skipped by ZFDR on this model: "
              << total_skipped << "\n";
    std::cout << "Every 'yes' above is a bit-exact tensor comparison.\n";
    return 0;
}
