/**
 * @file
 * Quickstart: simulate one DCGAN training iteration on LerGAN and on the
 * baselines, and print where the time and energy go.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "baselines/fpga_gan.hh"
#include "baselines/gpu.hh"
#include "baselines/prime.hh"
#include "core/api.hh"

int
main()
{
    using namespace lergan;

    // 1. Pick a benchmark (any Table V name, or parse your own topology
    //    with parseGan()).
    const GanModel dcgan = makeBenchmark("DCGAN");
    std::cout << "Loaded " << dcgan.name << ": "
              << dcgan.generator.size() << " generator layers, "
              << dcgan.discriminator.size() << " discriminator layers, "
              << dcgan.totalWeights() << " weights\n\n";

    // 2. Simulate LerGAN (3D connection + ZFDR, low duplication).
    const AcceleratorConfig lergan_cfg =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);
    const TrainingReport lergan = simulateTraining(dcgan, lergan_cfg);
    lergan.print(std::cout);

    // 3. Simulate the PIM baseline (PRIME: H-tree + normal reshape).
    const TrainingReport prime = simulatePrime(dcgan);
    prime.print(std::cout);

    // 4. Analytical GPU and FPGA baselines.
    const TrainingReport gpu = simulateGpu(dcgan);
    gpu.print(std::cout);
    const TrainingReport fpga = simulateFpgaGan(dcgan);
    fpga.print(std::cout);

    // 5. Compare.
    std::cout << "\nLerGAN speedup over PRIME: "
              << prime.timeMs() / lergan.timeMs() << "x\n";
    std::cout << "LerGAN speedup over GPU:   "
              << gpu.timeMs() / lergan.timeMs() << "x\n";
    std::cout << "LerGAN speedup over FPGA:  "
              << fpga.timeMs() / lergan.timeMs() << "x\n";
    std::cout << "LerGAN energy saving vs PRIME: "
              << prime.totalEnergyPj() / lergan.totalEnergyPj() << "x\n";

    // 6. Energy breakdown of the LerGAN run (Fig. 23 style).
    std::cout << "\nLerGAN energy breakdown:\n";
    const double total = lergan.totalEnergyPj();
    std::cout << "  compute:       "
              << 100.0 * lergan.computeEnergyPj() / total << "%\n";
    std::cout << "  communication: "
              << 100.0 * lergan.commEnergyPj() / total << "%\n";
    std::cout << "  buffer/storage: "
              << 100.0 *
                     (lergan.stats.get("energy.buffer") +
                      lergan.stats.get("energy.storage")) /
                     total
              << "%\n";
    std::cout << "  update:        "
              << 100.0 * lergan.stats.get("energy.update") / total << "%\n";
    return 0;
}
