/**
 * @file
 * Integration tests: full training-iteration simulations across
 * configurations, checking the structural properties the paper's
 * evaluation rests on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/api.hh"

namespace lergan {
namespace {

AcceleratorConfig
configOf(Connection conn, ReshapeMode reshape, bool dup,
         ReplicaDegree degree = ReplicaDegree::Low)
{
    AcceleratorConfig config;
    config.connection = conn;
    config.reshape = reshape;
    config.duplicate = dup;
    config.degree = degree;
    return config;
}

TEST(Accelerator, IterationCompletesAndReports)
{
    const GanModel model = makeBenchmark("cGAN");
    const TrainingReport report =
        simulateTraining(model, AcceleratorConfig::lerGan(
                                    ReplicaDegree::Low));
    EXPECT_GT(report.iterationTime, 0u);
    EXPECT_GT(report.totalEnergyPj(), 0.0);
    EXPECT_GT(report.computeEnergyPj(), 0.0);
    EXPECT_GT(report.commEnergyPj(), 0.0);
    EXPECT_GT(report.stats.get("energy.update"), 0.0);
    EXPECT_GT(report.stats.get("sim.tasks"), 1000.0);
    EXPECT_EQ(report.benchmark, "cGAN");
}

TEST(Accelerator, DeterministicAcrossRuns)
{
    const GanModel model = makeBenchmark("cGAN");
    LerGanAccelerator acc(model,
                          AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const TrainingReport a = acc.trainIteration();
    const TrainingReport b = acc.trainIteration();
    EXPECT_EQ(a.iterationTime, b.iterationTime);
    EXPECT_DOUBLE_EQ(a.totalEnergyPj(), b.totalEnergyPj());
}

TEST(Accelerator, ThreeDBeatsHTreeWithZfdr)
{
    // Fig. 17: with ZFDR, the 3D connection clearly beats H-tree.
    for (const char *name : {"DCGAN", "cGAN", "GPGAN"}) {
        const GanModel model = makeBenchmark(name);
        const TrainingReport htree = simulateTraining(
            model, configOf(Connection::HTree, ReshapeMode::Zfdr, false));
        const TrainingReport three_d = simulateTraining(
            model, configOf(Connection::ThreeD, ReshapeMode::Zfdr, false));
        EXPECT_LT(three_d.iterationTime, htree.iterationTime) << name;
    }
}

TEST(Accelerator, ZfdrBeatsNormalReshapeOn3D)
{
    // Fig. 18: with the 3D connection, ZFDR beats normal reshaping.
    for (const char *name : {"DCGAN", "cGAN", "GPGAN"}) {
        const GanModel model = makeBenchmark(name);
        const TrainingReport zfdr = simulateTraining(
            model, configOf(Connection::ThreeD, ReshapeMode::Zfdr, false));
        const TrainingReport normal = simulateTraining(
            model,
            configOf(Connection::ThreeD, ReshapeMode::Normal, false));
        EXPECT_LT(zfdr.iterationTime, normal.iterationTime) << name;
    }
}

TEST(Accelerator, DuplicationHelpsMoreOn3DThanHTree)
{
    // Fig. 17's second finding: duplication gains little on H-tree
    // (I/O-bound) but much more on the 3D connection.
    const GanModel model = makeBenchmark("DCGAN");
    const double gain_2d =
        static_cast<double>(
            simulateTraining(model, configOf(Connection::HTree,
                                             ReshapeMode::Zfdr, false))
                .iterationTime) /
        simulateTraining(model,
                         configOf(Connection::HTree, ReshapeMode::Zfdr,
                                  true, ReplicaDegree::High))
            .iterationTime;
    const double gain_3d =
        static_cast<double>(
            simulateTraining(model, configOf(Connection::ThreeD,
                                             ReshapeMode::Zfdr, false))
                .iterationTime) /
        simulateTraining(model,
                         configOf(Connection::ThreeD, ReshapeMode::Zfdr,
                                  true, ReplicaDegree::High))
            .iterationTime;
    EXPECT_GT(gain_3d, gain_2d);
}

TEST(Accelerator, LerGanBeatsPrimeOnTconvHeavyGans)
{
    // Fig. 19's headline: LerGAN > PRIME wherever T-CONVs dominate.
    for (const char *name : {"DCGAN", "cGAN", "3D-GAN", "GPGAN"}) {
        const GanModel model = makeBenchmark(name);
        const TrainingReport lergan = simulateTraining(
            model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
        const TrainingReport prime =
            simulateTraining(model, AcceleratorConfig::prime());
        EXPECT_LT(lergan.iterationTime, prime.iterationTime) << name;
        EXPECT_LT(lergan.totalEnergyPj(), prime.totalEnergyPj()) << name;
    }
}

TEST(Accelerator, HigherDuplicationFasterButMoreEnergy)
{
    // Fig. 19/20: LerGAN-high gains speed over LerGAN-low at an energy
    // cost (more replicas to keep updated).
    const GanModel model = makeBenchmark("GPGAN");
    const TrainingReport low = simulateTraining(
        model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const TrainingReport high = simulateTraining(
        model, AcceleratorConfig::lerGan(ReplicaDegree::High));
    EXPECT_LE(high.iterationTime, low.iterationTime);
    EXPECT_GT(high.stats.get("energy.update"),
              low.stats.get("energy.update"));
}

TEST(Accelerator, EnergyBreakdownSumsToTotal)
{
    const GanModel model = makeBenchmark("DCGAN");
    const TrainingReport report = simulateTraining(
        model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const double parts = report.computeEnergyPj() + report.commEnergyPj() +
                         report.stats.get("energy.buffer") +
                         report.stats.get("energy.storage") +
                         report.stats.get("energy.update") +
                         report.stats.get("energy.control");
    EXPECT_NEAR(parts, report.totalEnergyPj(),
                1e-6 * report.totalEnergyPj());
}

TEST(Accelerator, ComputeDominatesLerGanEnergy)
{
    // Fig. 23: computing is the dominant share (70.4% in the paper).
    const GanModel model = makeBenchmark("DCGAN");
    const TrainingReport report = simulateTraining(
        model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const double share =
        report.computeEnergyPj() / report.totalEnergyPj();
    EXPECT_GT(share, 0.5);
    EXPECT_LT(share, 0.9);
}

TEST(Accelerator, MaganGainsLittle)
{
    // The all-FC discriminator and near-dense generator of MAGAN-MNIST
    // leave ZFDR little to remove (Sec. VI-C).
    const GanModel magan = makeBenchmark("MAGAN-MNIST");
    auto ratio = [](const GanModel &m) {
        const auto lergan = simulateTraining(
            m, AcceleratorConfig::lerGan(ReplicaDegree::High));
        const auto prime = simulateTraining(m, AcceleratorConfig::prime());
        return static_cast<double>(prime.iterationTime) /
               lergan.iterationTime;
    };
    double sum = 0;
    int n = 0;
    for (const GanModel &model : allBenchmarks()) {
        if (model.name == "MAGAN-MNIST")
            continue;
        sum += ratio(model);
        ++n;
    }
    EXPECT_LT(ratio(magan), sum / n);
}

TEST(Accelerator, IterationsScaleTotals)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    LerGanAccelerator acc(model,
                          AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const TrainingReport ten = acc.trainIterations(10);
    EXPECT_DOUBLE_EQ(ten.stats.get("total.iterations"), 10.0);
    EXPECT_NEAR(ten.stats.get("total.time_ms"), 10 * ten.timeMs(), 1e-9);
}

TEST(Accelerator, SmallerBatchRunsFaster)
{
    const GanModel model = makeBenchmark("cGAN");
    AcceleratorConfig small = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    small.batchSize = 8;
    AcceleratorConfig big = small;
    big.batchSize = 64;
    EXPECT_LT(simulateTraining(model, small).iterationTime,
              simulateTraining(model, big).iterationTime);
}

TEST(Accelerator, TemplateReplayMatchesRebuild)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    const AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);

    // A template built by one accelerator, replayed by another of the
    // same (model, config) pair, must reproduce the rebuild path
    // exactly: simulated time, every stat, the trace and the metrics.
    LerGanAccelerator maker(model, config);
    const auto tmpl = maker.makeIterationTemplate();

    LerGanAccelerator rebuilt(model, config);
    LerGanAccelerator replayed(model, config);
    Tracer rebuiltTrace, replayedTrace;
    MetricsRegistry rebuiltMetrics, replayedMetrics;
    const TrainingReport a = rebuilt.trainIterations(
        10, &rebuiltTrace, &rebuiltMetrics, nullptr);
    const TrainingReport b = replayed.trainIterations(
        10, &replayedTrace, &replayedMetrics, tmpl.get());

    EXPECT_EQ(a.iterationTime, b.iterationTime);
    EXPECT_DOUBLE_EQ(a.totalEnergyPj(), b.totalEnergyPj());

    std::ostringstream aSummary, bSummary;
    a.stats.print(aSummary);
    b.stats.print(bSummary);
    EXPECT_EQ(aSummary.str(), bSummary.str());

    std::ostringstream aProm, bProm;
    rebuiltMetrics.snapshot().writePrometheus(aProm);
    replayedMetrics.snapshot().writePrometheus(bProm);
    EXPECT_EQ(aProm.str(), bProm.str());

    ASSERT_EQ(rebuiltTrace.events().size(), replayedTrace.events().size());
    for (std::size_t i = 0; i < rebuiltTrace.events().size(); ++i) {
        const TraceEvent &x = rebuiltTrace.events()[i];
        const TraceEvent &y = replayedTrace.events()[i];
        ASSERT_EQ(x.label, y.label) << "trace event " << i;
        ASSERT_EQ(x.start, y.start) << "trace event " << i;
        ASSERT_EQ(x.end, y.end) << "trace event " << i;
        ASSERT_EQ(x.lane, y.lane) << "trace event " << i;
    }
}

TEST(Accelerator, TemplateReplayIsRepeatable)
{
    // Replaying the same template many times on one accelerator (the
    // sweep's steady state, reusing its ExecScratch) never drifts.
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    const AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);
    LerGanAccelerator acc(model, config);
    const auto tmpl = acc.makeIterationTemplate();
    const TrainingReport first =
        acc.trainIterations(1, nullptr, nullptr, tmpl.get());
    for (int i = 0; i < 3; ++i) {
        const TrainingReport next =
            acc.trainIterations(1, nullptr, nullptr, tmpl.get());
        EXPECT_EQ(next.iterationTime, first.iterationTime);
        EXPECT_DOUBLE_EQ(next.totalEnergyPj(), first.totalEnergyPj());
    }
}

TEST(Accelerator, AllBenchmarksRunOnAllConnections)
{
    for (const GanModel &model : allBenchmarks()) {
        for (Connection conn : {Connection::HTree, Connection::ThreeD}) {
            AcceleratorConfig config =
                AcceleratorConfig::lerGan(ReplicaDegree::Low);
            config.connection = conn;
            config.batchSize = 4; // keep the sweep fast
            const TrainingReport report =
                simulateTraining(model, config);
            EXPECT_GT(report.iterationTime, 0u)
                << model.name << " " << report.config;
        }
    }
}

} // namespace
} // namespace lergan
