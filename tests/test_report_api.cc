/**
 * @file
 * Tests for the report type, the public API entry points and the
 * workload zoo helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/api.hh"

namespace lergan {
namespace {

TEST(Report, PrintSummarizesKeyNumbers)
{
    TrainingReport report;
    report.benchmark = "X";
    report.config = "Y";
    report.iterationTime = nsToPs(2e6); // 2 ms
    report.stats.add("energy.compute.adc", 1e9);
    report.crossbarsUsed = 42;
    std::ostringstream oss;
    report.print(oss);
    EXPECT_NE(oss.str().find("X on Y"), std::string::npos);
    EXPECT_NE(oss.str().find("2.000 ms/iter"), std::string::npos);
    EXPECT_NE(oss.str().find("42 crossbars"), std::string::npos);
}

TEST(Report, VerbosePrintDumpsStats)
{
    TrainingReport report;
    report.stats.add("energy.update", 7);
    std::ostringstream terse, verbose;
    report.print(terse, false);
    report.print(verbose, true);
    EXPECT_EQ(terse.str().find("energy.update"), std::string::npos);
    EXPECT_NE(verbose.str().find("energy.update"), std::string::npos);
}

TEST(Report, JsonRoundsOutEveryField)
{
    TrainingReport report;
    report.benchmark = "DCGAN";
    report.config = "3D+ZFDR(low)";
    report.iterationTime = nsToPs(1e6);
    report.stats.add("energy.buffer", 5.5);
    report.crossbarsUsed = 9;
    std::ostringstream oss;
    report.writeJson(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("\"benchmark\":\"DCGAN\""), std::string::npos);
    EXPECT_NE(out.find("\"crossbars\":9"), std::string::npos);
    EXPECT_NE(out.find("\"energy.buffer\":5.5"), std::string::npos);
}

TEST(Report, EnergyAccessorsSliceTheStats)
{
    TrainingReport report;
    report.stats.add("energy.compute.adc", 10);
    report.stats.add("energy.compute.cell", 5);
    report.stats.add("energy.comm.bus", 3);
    report.stats.add("energy.update", 2);
    EXPECT_DOUBLE_EQ(report.computeEnergyPj(), 15.0);
    EXPECT_DOUBLE_EQ(report.commEnergyPj(), 3.0);
    EXPECT_DOUBLE_EQ(report.totalEnergyPj(), 20.0);
}

TEST(Api, SimulateTrainingMatchesAcceleratorPath)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    const TrainingReport via_api = simulateTraining(model, config);
    LerGanAccelerator accelerator(model, config);
    const TrainingReport direct = accelerator.trainIteration();
    EXPECT_EQ(via_api.iterationTime, direct.iterationTime);
}

TEST(Zoo, NamesMatchTableOrder)
{
    const auto names = benchmarkNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names.front(), "DCGAN");
    EXPECT_EQ(names.back(), "DiscoGAN-5pairs");
    for (const std::string &name : names)
        EXPECT_EQ(makeBenchmark(name).name, name);
}

TEST(ZooDeath, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(makeBenchmark("NoSuchGAN"), testing::ExitedWithCode(1),
                "");
}

TEST(Zoo, ScaledDcganChainsAcrossSizes)
{
    for (int item : {8, 16, 32, 64, 128}) {
        const GanModel model = dcganScaled(item);
        EXPECT_EQ(model.itemSize, item);
        EXPECT_EQ(model.generator.back().outSize, item);
        EXPECT_EQ(model.discriminator.front().inSize, item);
        // Seed stays 4x4.
        EXPECT_EQ(model.generator[1].inSize, 4);
    }
    // Bigger items mean strictly more weights.
    EXPECT_LT(dcganScaled(32).totalWeights(),
              dcganScaled(64).totalWeights());
}

TEST(ZooDeath, ScaledDcganRejectsBadSizes)
{
    EXPECT_DEATH(dcganScaled(48), "power of two");
    EXPECT_DEATH(dcganScaled(4), "power of two");
}

TEST(Config, LabelsAreDescriptive)
{
    EXPECT_EQ(AcceleratorConfig::lerGan(ReplicaDegree::High).label(),
              "3D+ZFDR(high)");
    EXPECT_EQ(AcceleratorConfig::prime().label(), "2D+NR(middle)");
    AcceleratorConfig ns = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    ns.normalizedSpace = true;
    EXPECT_EQ(ns.label(), "3D+ZFDR(low)-NS");
    AcceleratorConfig nodup = ns;
    nodup.normalizedSpace = false;
    nodup.duplicate = false;
    EXPECT_EQ(nodup.label(), "3D+ZFDR(nodup)");
}

} // namespace
} // namespace lergan
