/**
 * @file
 * Tests for multi-CU-pair mappings and capacity-aware compilation.
 */

#include <gtest/gtest.h>

#include "core/api.hh"

namespace lergan {
namespace {

TEST(CuPairs, ControllerManagesAllBanks)
{
    MemoryController ctrl(ReRamParams{}, 3);
    EXPECT_EQ(ctrl.numBanks(), 18);
    const auto switches = ctrl.advance(); // -> TrainDisc
    // Fig. 13a flips 4 banks per pair.
    EXPECT_EQ(switches.size(), 12u);
    for (int pair = 0; pair < 3; ++pair) {
        EXPECT_EQ(ctrl.mode(6 * pair + 0), BankMode::Cmode);
        EXPECT_EQ(ctrl.mode(6 * pair + 1), BankMode::Smode);
        EXPECT_EQ(ctrl.mode(6 * pair + 3), BankMode::Cmode);
    }
}

TEST(CuPairs, CompilerKeepsRolesWithinPairs)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.cuPairs = 2;
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    EXPECT_EQ(compiled.bankUsage.size(), 12u);
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &op : phase.ops) {
            EXPECT_EQ(op.bank % 6, bankForPhase(phase.phase))
                << op.op.label;
            EXPECT_LT(op.bank, 12);
        }
    }
}

TEST(CuPairs, LayerBlocksAreContiguousPerNet)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.cuPairs = 2;
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    // Within one phase, the pair index never decreases with layer index.
    for (const CompiledPhase &phase : compiled.phases) {
        int prev_pair = -1;
        std::size_t prev_layer = 0;
        bool first = true;
        for (const MappedOp &op : phase.ops) {
            const int pair = op.bank / 6;
            if (!first && op.op.layerIdx > prev_layer) {
                EXPECT_GE(pair, prev_pair) << op.op.label;
            }
            if (!first && op.op.layerIdx < prev_layer) {
                EXPECT_LE(pair, prev_pair) << op.op.label;
            }
            prev_pair = pair;
            prev_layer = op.op.layerIdx;
            first = false;
        }
    }
}

TEST(CuPairs, SimulationRunsAcrossPairs)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.cuPairs = 2;
    config.batchSize = 4;
    const TrainingReport report =
        simulateTraining(makeBenchmark("cGAN"), config);
    EXPECT_GT(report.iterationTime, 0u);
}

TEST(Capacity, MappingsFitTheMachineBudget)
{
    // The compiler must keep the total mapping within physical capacity
    // (modulo the per-op floor of single copies).
    for (const char *name : {"DCGAN", "3D-GAN", "DiscoGAN-5pairs"}) {
        AcceleratorConfig config =
            AcceleratorConfig::lerGan(ReplicaDegree::High);
        const CompiledGan compiled =
            compileGan(makeBenchmark(name), config);
        const std::uint64_t machine =
            6ull * config.reram.tilesPerBank *
            config.reram.crossbarsPerTile();
        // Reserved (placed) crossbars never exceed capacity; only the
        // single-copy floor may spill into time-sharing.
        std::uint64_t placed = 0;
        for (const auto &bank : compiled.bankUsage)
            for (std::uint64_t used : bank)
                placed += used;
        EXPECT_LE(placed, machine) << name;
    }
}

TEST(Capacity, NoSingleOpOutgrowsABankUnlessIrreducible)
{
    const std::uint64_t bank =
        16ull * ReRamParams{}.crossbarsPerTile();
    AcceleratorConfig config = AcceleratorConfig::lerGan(
        ReplicaDegree::High);
    const CompiledGan compiled =
        compileGan(makeBenchmark("3D-GAN"), config);
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &op : phase.ops) {
            if (op.cost.crossbarsUsed <= bank)
                continue;
            // Oversized ops must already be at single copies.
            if (op.usesZfdr) {
                EXPECT_EQ(op.replicas.inside, 1u) << op.op.label;
                EXPECT_EQ(op.replicas.edge, 1u) << op.op.label;
            } else {
                EXPECT_EQ(op.denseRep, 1u) << op.op.label;
            }
        }
    }
}

} // namespace
} // namespace lergan
