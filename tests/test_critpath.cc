/**
 * @file
 * Property tests for the critical-path engine (src/critpath).
 *
 * Three families, all exact rather than statistical:
 *
 *   - Chain/slack invariants on every golden grid point (all zoo
 *     benchmarks x prime + the three LerGAN replica degrees): the
 *     binding-predecessor chain telescopes, so its durations sum to the
 *     makespan exactly and every chain task has zero slack. Off the
 *     chain slack is strictly positive except on the DiscoGAN models,
 *     whose structurally symmetric GAN pairs produce a handful of
 *     co-critical tasks.
 *   - What-if soundness against real resimulation: the identity
 *     transform is bit-exact, and under arbitrary duration transforms
 *     the [lower, upper] bounds bracket the truth — upper is the
 *     executor-mirror reschedule, which reproduces the resimulated
 *     makespan exactly when copy counts are unchanged.
 *   - Sweep bound pruning: pruned points report the same timing and
 *     energy a full simulation would, carry "critpath.estimated", and
 *     the telemetry counters account for every point.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/api.hh"
#include "core/sweep.hh"
#include "critpath/critpath.hh"
#include "critpath/whatif.hh"
#include "sim/resource.hh"
#include "sim/task_graph.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

std::vector<std::pair<std::string, AcceleratorConfig>>
goldenConfigs()
{
    return {
        {"prime", AcceleratorConfig::prime()},
        {"low", AcceleratorConfig::lerGan(ReplicaDegree::Low)},
        {"middle", AcceleratorConfig::lerGan(ReplicaDegree::Middle)},
        {"high", AcceleratorConfig::lerGan(ReplicaDegree::High)},
    };
}

/** One recorded single-iteration run of (model, config). */
struct Recorded {
    std::shared_ptr<const IterationTemplate> tmpl;
    std::vector<std::string> resourceNames;
    ExecRecord record;
};

Recorded
recordPoint(const GanModel &model, const AcceleratorConfig &config)
{
    LerGanAccelerator accelerator(model, config);
    Recorded out;
    out.tmpl = accelerator.makeIterationTemplate();
    out.resourceNames = accelerator.resourceNames();
    accelerator.trainIterations(1, nullptr, nullptr, out.tmpl.get(),
                                &out.record);
    return out;
}

std::shared_ptr<const RecordedRun>
toRun(Recorded recorded)
{
    std::shared_ptr<const TaskGraph> graph(recorded.tmpl,
                                           &recorded.tmpl->graph);
    return makeRecordedRun(std::move(graph),
                           std::move(recorded.resourceNames),
                           std::move(recorded.record));
}

TEST(CritPathGolden, ChainSumsToMakespanOnEveryGridPoint)
{
    for (const GanModel &model : allBenchmarks()) {
        for (const auto &[label, config] : goldenConfigs()) {
            const Recorded recorded = recordPoint(model, config);
            const CriticalPath path = extractCriticalPath(
                recorded.tmpl->graph, recorded.record,
                recorded.resourceNames);
            SCOPED_TRACE(model.name + "/" + label);
            ASSERT_FALSE(path.entries.empty());
            EXPECT_EQ(path.makespan, recorded.record.makespan);
            // The satellite property: the chain durations sum to the
            // reported makespan exactly, no tolerance.
            EXPECT_EQ(path.criticalDuration(), recorded.record.makespan);
            // Because the chain telescopes: the first link starts at
            // zero and every later link starts the instant its binding
            // predecessor ends.
            EXPECT_EQ(path.entries.front().start, 0u);
            for (std::size_t i = 1; i < path.entries.size(); ++i) {
                EXPECT_EQ(path.entries[i].start,
                          path.entries[i - 1].start +
                              path.entries[i - 1].duration);
            }
            EXPECT_EQ(path.entries.back().start +
                          path.entries.back().duration,
                      recorded.record.makespan);
        }
    }
}

TEST(CritPathGolden, SlackIsZeroOnChainAndPositiveOffChain)
{
    for (const GanModel &model : allBenchmarks()) {
        // The DiscoGAN models train 4/5 structurally identical GAN
        // pairs in parallel: several pairs finish at the same instant,
        // so a handful of off-chain tasks are co-critical (zero slack
        // without being the extracted chain). Every other benchmark has
        // a unique critical chain.
        const bool symmetric = model.name.rfind("DiscoGAN", 0) == 0;
        for (const auto &[label, config] : goldenConfigs()) {
            const Recorded recorded = recordPoint(model, config);
            const CriticalPath path = extractCriticalPath(
                recorded.tmpl->graph, recorded.record,
                recorded.resourceNames);
            SCOPED_TRACE(model.name + "/" + label);
            std::vector<char> onChain(recorded.tmpl->graph.size(), 0);
            for (const CritEntry &entry : path.entries)
                onChain[entry.task] = 1;
            std::size_t coCritical = 0;
            for (TaskId id = 0; id < recorded.tmpl->graph.size(); ++id) {
                if (onChain[id]) {
                    EXPECT_EQ(path.slack[id], 0u) << "task " << id;
                } else if (path.slack[id] == 0) {
                    ++coCritical;
                }
            }
            if (symmetric) {
                EXPECT_LE(coCritical, 32u);
            } else {
                EXPECT_EQ(coCritical, 0u);
            }
            EXPECT_GE(path.zeroSlackTasks(), path.entries.size());
        }
    }
}

TEST(CritPathGolden, IdentityWhatIfIsBitExactOnEveryGridPoint)
{
    for (const GanModel &model : allBenchmarks()) {
        for (const auto &[label, config] : goldenConfigs()) {
            const std::shared_ptr<const RecordedRun> run =
                toRun(recordPoint(model, config));
            SCOPED_TRACE(model.name + "/" + label);
            const PicoSeconds recorded = run->record.makespan;
            const WhatIfEstimate estimate =
                whatIf(*run, identityTransform(*run));
            EXPECT_EQ(estimate.makespan, recorded);
            // The executor-mirror upper bound replays the identical
            // schedule, so it reproduces the makespan exactly too.
            EXPECT_EQ(estimate.upper, recorded);
            EXPECT_LE(estimate.lower, recorded);
            EXPECT_GT(estimate.lower, 0u);
        }
    }
}

TEST(CritPath, DuplicateCopiesKeepBoundsOrdered)
{
    const std::shared_ptr<const RecordedRun> run = toRun(
        recordPoint(makeBenchmark("DCGAN"),
                    AcceleratorConfig::lerGan(ReplicaDegree::Low)));
    for (const char *category : {"compute", "wire"}) {
        const WhatIfEstimate estimate =
            whatIf(*run, duplicateResourceCategory(*run, category, 2));
        SCOPED_TRACE(category);
        EXPECT_GT(estimate.makespan, 0u);
        EXPECT_LE(estimate.lower, estimate.upper);
        // A single copy of everything is the identity.
        const WhatIfEstimate one =
            whatIf(*run, duplicateResourceCategory(*run, category, 1));
        EXPECT_EQ(one.makespan, run->record.makespan);
        EXPECT_EQ(one.upper, run->record.makespan);
    }
}

// ---------------------------------------------------------------------
// Seeded random graphs: the properties must hold for arbitrary DAG
// shapes and resource conflicts, not just the structured GAN DAGs.

struct RandomModel {
    std::shared_ptr<TaskGraph> graph;
    std::vector<std::string> resourceNames;
    std::vector<PicoSeconds> durations;
};

RandomModel
makeRandomModel(std::uint32_t seed)
{
    std::mt19937 rng(seed);
    const std::size_t n = 120 + rng() % 200;
    const std::size_t resources = 4 + rng() % 8;
    RandomModel model;
    model.graph = std::make_shared<TaskGraph>();
    for (std::size_t i = 0; i < n; ++i) {
        Task task;
        task.label =
            (i % 3 == 0 ? "xfer:t" : "t") + std::to_string(i);
        task.duration = 1 + rng() % 1000;
        const std::size_t r = rng() % resources;
        task.resources = {r};
        if (rng() % 4 == 0 && resources > 1)
            task.resources.push_back((r + 1) % resources);
        model.durations.push_back(task.duration);
        model.graph->addTask(std::move(task));
    }
    for (TaskId task = 1; task < n; ++task) {
        const unsigned deps = rng() % 3;
        for (unsigned d = 0; d < deps; ++d)
            model.graph->addDep(task, rng() % task);
    }
    for (std::size_t r = 0; r < resources; ++r) {
        model.resourceNames.push_back(
            r % 2 ? "b.t" + std::to_string(r) + ".compute"
                  : "b.wire.d" + std::to_string(r));
    }
    return model;
}

/** Real event simulation of @p model with @p durations substituted. */
PicoSeconds
resimulate(const RandomModel &model,
           const std::vector<PicoSeconds> &durations, ExecRecord *record)
{
    TaskGraph graph;
    for (TaskId id = 0; id < model.graph->size(); ++id) {
        Task task = model.graph->task(id);
        task.duration = durations[id];
        graph.addTask(std::move(task));
    }
    for (const auto &[dep, task] : model.graph->edges())
        graph.addDep(task, dep);
    ResourcePool pool;
    for (const std::string &name : model.resourceNames)
        pool.create(name);
    return graph.execute(pool, nullptr, nullptr, nullptr, record)
        .makespan;
}

TEST(CritPathRandom, ChainAndIdentityHoldOnSeededGraphs)
{
    for (std::uint32_t seed = 1; seed <= 20; ++seed) {
        const RandomModel model = makeRandomModel(seed);
        ExecRecord record;
        const PicoSeconds makespan =
            resimulate(model, model.durations, &record);
        SCOPED_TRACE("seed " + std::to_string(seed));
        const CriticalPath path = extractCriticalPath(
            *model.graph, record, model.resourceNames);
        EXPECT_EQ(path.criticalDuration(), makespan);
        for (const CritEntry &entry : path.entries)
            EXPECT_EQ(path.slack[entry.task], 0u);

        ExecRecord copy;
        resimulate(model, model.durations, &copy);
        const auto run = makeRecordedRun(model.graph,
                                         model.resourceNames,
                                         std::move(copy));
        const WhatIfEstimate identity =
            whatIf(*run, identityTransform(*run));
        EXPECT_EQ(identity.makespan, makespan);
        EXPECT_EQ(identity.upper, makespan);
        EXPECT_LE(identity.lower, makespan);
    }
}

TEST(CritPathRandom, BoundsBracketResimulationUnderDurationTransforms)
{
    for (std::uint32_t seed = 1; seed <= 20; ++seed) {
        const RandomModel model = makeRandomModel(seed);
        ExecRecord record;
        resimulate(model, model.durations, &record);
        const auto run = makeRecordedRun(model.graph,
                                         model.resourceNames,
                                         std::move(record));
        std::mt19937 rng(seed * 977);
        for (int k = 0; k < 4; ++k) {
            WhatIfTransform transform;
            transform.description = "random scale";
            transform.durations = model.durations;
            const double scale = k % 2 ? 0.5 : 2.0;
            for (PicoSeconds &duration : transform.durations) {
                if (rng() % 2) {
                    duration = static_cast<PicoSeconds>(
                        static_cast<double>(duration) * scale + 0.5);
                }
            }
            const WhatIfEstimate estimate = whatIf(*run, transform);
            const PicoSeconds truth =
                resimulate(model, transform.durations, nullptr);
            SCOPED_TRACE("seed " + std::to_string(seed) + " k" +
                         std::to_string(k));
            // The sound bracket of the satellite property...
            EXPECT_LE(estimate.lower, truth);
            EXPECT_GE(estimate.upper, truth);
            // ...which the upper bound meets with equality: the mirror
            // replays the executor's greedy policy decision for
            // decision when copy counts are unchanged. (The fixed-
            // grant-order replay estimate deliberately has no such
            // guarantee — list-scheduling anomalies put the truth on
            // either side of it.)
            EXPECT_EQ(estimate.upper, truth);
        }
    }
}

TEST(CritPathRandom, MakespanBoundsBracketTheTrueMakespan)
{
    for (std::uint32_t seed = 1; seed <= 20; ++seed) {
        const RandomModel model = makeRandomModel(seed);
        const PicoSeconds truth =
            resimulate(model, model.durations, nullptr);
        const MakespanBounds bounds = makespanBounds(
            *model.graph, model.resourceNames.size());
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_LE(bounds.lower, truth);
        // The upper bound is the executor mirror: exact, not merely an
        // overestimate — this is what makes sweep pruning decisions
        // match a full simulation.
        EXPECT_EQ(bounds.upper, truth);
        EXPECT_GT(bounds.lower, 0u);
        EXPECT_FALSE(bounds.provenFasterThan(truth));
        EXPECT_FALSE(bounds.provenSlowerThan(truth));
        EXPECT_TRUE(bounds.provenFasterThan(truth + 1));
        EXPECT_TRUE(bounds.provenSlowerThan(bounds.lower - 1));
    }
}

// ---------------------------------------------------------------------
// Session and sweep integration.

TEST(CritPathSession, RecordingAttachesRunAndNeverChangesResults)
{
    AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    const GanModel model = makeBenchmark("MAGAN-MNIST");

    SimulationSession session(config);
    const TrainingReport plain = session.run(model);
    EXPECT_EQ(plain.critpath, nullptr);

    session.withCriticalPath();
    const TrainingReport recorded = session.run(model);
    ASSERT_NE(recorded.critpath, nullptr);
    EXPECT_EQ(recorded.iterationTime, plain.iterationTime);
    EXPECT_DOUBLE_EQ(recorded.totalEnergyPj(), plain.totalEnergyPj());

    const RecordedRun &run = *recorded.critpath;
    EXPECT_EQ(run.record.makespan, recorded.iterationTime);
    EXPECT_EQ(run.path.criticalDuration(), recorded.iterationTime);

    session.withCriticalPath(false);
    EXPECT_EQ(session.run(model).critpath, nullptr);
}

ExperimentSweep
smallSweep()
{
    AcceleratorConfig prime = AcceleratorConfig::prime();
    prime.batchSize = 4;
    AcceleratorConfig low = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    low.batchSize = 4;
    AcceleratorConfig middle =
        AcceleratorConfig::lerGan(ReplicaDegree::Middle);
    middle.batchSize = 4;
    ExperimentSweep sweep;
    sweep.addBenchmark(makeBenchmark("MAGAN-MNIST"))
        .addBenchmark(makeBenchmark("cGAN"))
        .addConfig("prime", prime)
        .addConfig("low", low)
        .addConfig("middle", middle)
        .addPoint(makeBenchmark("MAGAN-MNIST"), "extra", low);
    return sweep;
}

TEST(CritPathSweep, BoundPruningMatchesFullSimulationExactly)
{
    const std::vector<SweepResult> reference = smallSweep().run();

    ExperimentSweep pruned = smallSweep();
    const auto registry = std::make_shared<MetricsRegistry>();
    pruned.withBoundPruning().withTelemetry(registry);
    const std::vector<SweepResult> results = pruned.run();

    ASSERT_EQ(results.size(), reference.size());
    std::size_t estimated = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(results[i].benchmark + "/" + results[i].configLabel);
        ASSERT_FALSE(results[i].failed) << results[i].error;
        // The pruning estimate is the executor mirror, so even pruned
        // points report the timing and energy a full event simulation
        // would have produced.
        EXPECT_EQ(results[i].report.iterationTime,
                  reference[i].report.iterationTime);
        EXPECT_DOUBLE_EQ(results[i].report.totalEnergyPj(),
                         reference[i].report.totalEnergyPj());
        if (results[i].report.stats.has("critpath.estimated")) {
            ++estimated;
            // Baselines (first config) and explicit extra points are
            // never pruned.
            EXPECT_NE(results[i].configLabel, "prime");
            EXPECT_NE(results[i].configLabel, "extra");
        }
    }
    // LerGAN low/middle beat the prime baseline on both models by a
    // wide margin, so the bounds decide every non-baseline grid point.
    EXPECT_GT(estimated, 0u);
    const double prunedCount = registry->counter("critpath.pruned").value();
    const double simulated = registry->counter("critpath.simulated").value();
    EXPECT_EQ(prunedCount, static_cast<double>(estimated));
    EXPECT_EQ(prunedCount + simulated,
              static_cast<double>(results.size()));
}

TEST(CritPathSweep, RecordingSweepAttachesRunsAndCountsThem)
{
    ExperimentSweep sweep = smallSweep();
    const auto registry = std::make_shared<MetricsRegistry>();
    sweep.withCriticalPath().withTelemetry(registry);
    const std::vector<SweepResult> results = sweep.run();
    for (const SweepResult &result : results) {
        SCOPED_TRACE(result.benchmark + "/" + result.configLabel);
        ASSERT_NE(result.report.critpath, nullptr);
        EXPECT_EQ(result.report.critpath->path.criticalDuration(),
                  result.report.iterationTime);
    }
    EXPECT_EQ(registry->counter("critpath.records").value(),
              static_cast<double>(results.size()));
}

} // namespace
} // namespace lergan
