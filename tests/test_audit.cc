/**
 * @file
 * Tests for the cross-layer audit subsystem (src/audit): a clean run
 * passes every invariant, and each seeded corruption — a post-run
 * energy mutation, an orphan statistic, a tampered makespan, a bogus
 * trace event, a corrupted mapping — is caught by the matching check.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "audit/audit.hh"
#include "core/api.hh"
#include "core/sweep.hh"
#include "core/sweep_io.hh"
#include "core/validate.hh"
#include "sim/trace.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

/** One simulated run plus everything the audit layer inspects. */
struct SimRun {
    GanModel model;
    AcceleratorConfig config;
    CompiledGan compiled;
    TrainingReport report;
    Tracer trace;

    AuditInput
    input() const
    {
        return {&model, &config, &compiled, &report, &trace};
    }
};

/** Small traced run (MAGAN-MNIST on LerGAN-low, ZFDR active). */
SimRun
makeRun()
{
    SimRun run;
    run.model = makeBenchmark("MAGAN-MNIST");
    run.config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    run.config.batchSize = 4;
    LerGanAccelerator accelerator(run.model, run.config);
    run.report = accelerator.trainIterations(2, &run.trace);
    run.compiled = accelerator.compiled();
    return run;
}

TEST(Audit, CleanRunPassesEveryCheck)
{
    const SimRun run = makeRun();
    const AuditContext context;
    // Five registered checks; the faults check skips on this healthy
    // run, so four actually execute.
    EXPECT_EQ(context.checkCount(), 5u);

    const AuditVerdict verdict = context.run(run.input());
    EXPECT_TRUE(verdict.ran);
    EXPECT_EQ(verdict.checksRun, 4u);
    EXPECT_TRUE(verdict.ok()) << verdict.summary();
    EXPECT_EQ(verdict.summary(), "ok (4 checks)");
}

TEST(Audit, DefaultVerdictHasNotRun)
{
    const AuditVerdict verdict;
    EXPECT_FALSE(verdict.ran);
    EXPECT_TRUE(verdict.ok());
}

TEST(Audit, PostRunEnergyMutationIsCaught)
{
    SimRun run = makeRun();
    // The acceptance scenario: someone bumps a component after the run.
    run.report.stats.add("energy.compute.adc", 1.0e6);

    const AuditVerdict verdict = AuditContext().run(run.input());
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.failures[0].check, "energy");
    EXPECT_NE(verdict.summary().find("changed after the run"),
              std::string::npos)
        << verdict.summary();
}

TEST(Audit, OrphanEnergyComponentIsCaught)
{
    SimRun run = makeRun();
    run.report.stats.set("energy.mystery", 1.0);

    const AuditVerdict verdict = AuditContext().run(run.input());
    ASSERT_FALSE(verdict.ok());
    EXPECT_NE(verdict.summary().find(
                  "energy.mystery belongs to no known component family"),
              std::string::npos)
        << verdict.summary();
}

TEST(Audit, NegativeAndNonFiniteEnergiesAreCaught)
{
    SimRun run = makeRun();
    run.report.stats.set("energy.buffer", -5.0);
    run.report.stats.set("energy.control",
                         std::numeric_limits<double>::quiet_NaN());

    const AuditVerdict verdict = AuditContext().run(run.input());
    EXPECT_NE(verdict.summary().find("energy.buffer is negative"),
              std::string::npos)
        << verdict.summary();
    EXPECT_NE(verdict.summary().find("energy.control is not finite"),
              std::string::npos)
        << verdict.summary();
}

TEST(Audit, MissingSnapshotIsCaught)
{
    SimRun run = makeRun();
    TrainingReport bare;
    bare.stats.set("energy.update", 1.0);
    bare.iterationTime = 1;
    run.report = bare; // hand-built report, never ran on an accelerator

    AuditOptions options = AuditOptions::full();
    options.timing = options.zeros = options.mapping = false;
    const AuditVerdict verdict = AuditContext(options).run(run.input());
    ASSERT_FALSE(verdict.ok());
    EXPECT_NE(verdict.summary().find("missing audit.energy_total_pj"),
              std::string::npos)
        << verdict.summary();
}

TEST(Audit, TamperedMakespanIsCaught)
{
    SimRun run = makeRun();
    run.report.iterationTime += 12345;

    const AuditVerdict verdict = AuditContext().run(run.input());
    ASSERT_FALSE(verdict.ok());
    bool timing_failure = false;
    for (const AuditFinding &finding : verdict.failures)
        timing_failure |= finding.check == "timing";
    EXPECT_TRUE(timing_failure) << verdict.summary();
}

TEST(Audit, BogusTraceEventIsCaught)
{
    SimRun run = makeRun();
    // An event past the makespan, and now one more event than tasks.
    run.trace.record("bogus@phantom", 0,
                     run.report.iterationTime + 999, 0);

    const AuditVerdict verdict = AuditContext().run(run.input());
    ASSERT_FALSE(verdict.ok());
    EXPECT_NE(verdict.summary().find("after the makespan"),
              std::string::npos)
        << verdict.summary();
}

TEST(Audit, MissingTraceSkipsTheTimingCheck)
{
    const SimRun run = makeRun();
    AuditInput input = run.input();
    input.trace = nullptr;

    const AuditVerdict verdict = AuditContext().run(input);
    EXPECT_TRUE(verdict.ok()) << verdict.summary();
    EXPECT_EQ(verdict.checksRun, 3u); // timing skipped, not failed
}

TEST(Audit, CorruptedMappingIsCaught)
{
    SimRun run = makeRun();
    run.compiled.updateElemsD += 1;

    const AuditVerdict verdict = AuditContext().run(run.input());
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.failures[0].check, "mapping");
}

TEST(Audit, DisabledChecksAreNotRegistered)
{
    AuditOptions options = AuditOptions::full();
    options.zeros = false;
    options.timing = false;
    options.faults = false;
    const AuditContext context(options);
    EXPECT_EQ(context.checkCount(), 2u);

    const SimRun run = makeRun();
    const AuditVerdict verdict = context.run(run.input());
    EXPECT_EQ(verdict.checksRun, 2u);
    EXPECT_TRUE(verdict.ok()) << verdict.summary();
}

TEST(Audit, CustomChecksRunAfterStandardOnes)
{
    AuditContext context;
    context.registerCheck(
        "custom", [](const AuditInput &, const AuditOptions &,
                     AuditVerdict &verdict) {
            verdict.fail("custom", "always fails");
            return true;
        });
    EXPECT_EQ(context.checkCount(), 6u);

    const SimRun run = makeRun();
    const AuditVerdict verdict = context.run(run.input());
    // The faults check skips on this healthy run.
    EXPECT_EQ(verdict.checksRun, 5u);
    ASSERT_EQ(verdict.failures.size(), 1u);
    EXPECT_EQ(verdict.failures[0].check, "custom");
}

TEST(Audit, AuditErrorCarriesTheVerdict)
{
    AuditVerdict verdict;
    verdict.ran = true;
    verdict.checksRun = 1;
    verdict.fail("energy", "component sums diverged");

    const AuditError error(verdict);
    EXPECT_NE(std::string(error.what()).find(
                  "energy: component sums diverged"),
              std::string::npos);
    EXPECT_FALSE(error.verdict().ok());
    EXPECT_EQ(error.verdict().failures.size(), 1u);
}

TEST(Audit, SessionAuditReturnsAnOkVerdict)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    const SimulationSession session(config);

    TrainingReport report;
    const AuditVerdict verdict =
        session.audit(makeBenchmark("MAGAN-MNIST"), 2, &report);
    EXPECT_TRUE(verdict.ran);
    EXPECT_EQ(verdict.checksRun, 4u);
    EXPECT_TRUE(verdict.ok()) << verdict.summary();
    EXPECT_GT(report.iterationTime, 0u);
}

TEST(Audit, AuditedSessionRunMatchesUnaudited)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    const GanModel model = makeBenchmark("MAGAN-MNIST");

    SimulationSession plain(config);
    const TrainingReport baseline = plain.run(model, 2);

    SimulationSession audited(config);
    audited.auditWith(AuditOptions::full());
    const TrainingReport checked = audited.run(model, 2);

    EXPECT_EQ(checked.iterationTime, baseline.iterationTime);
    EXPECT_DOUBLE_EQ(checked.totalEnergyPj(), baseline.totalEnergyPj());
}

TEST(Audit, SweepSurfacesPerPointVerdicts)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    ExperimentSweep sweep;
    sweep.add(makeBenchmark("MAGAN-MNIST")).add("lergan", config);
    sweep.auditWith(AuditOptions::full());

    const auto results = sweep.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].audit.ran);
    EXPECT_EQ(results[0].audit.checksRun, 4u);
    EXPECT_TRUE(results[0].audit.ok()) << results[0].audit.summary();

    std::ostringstream json;
    writeSweepJson(json, results);
    EXPECT_NE(json.str().find("\"audit\":{\"ok\":true,\"checks\":4}"),
              std::string::npos)
        << json.str();
}

TEST(Audit, UnauditedSweepLeavesVerdictEmpty)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    ExperimentSweep sweep;
    sweep.add(makeBenchmark("MAGAN-MNIST")).add("lergan", config);

    const auto results = sweep.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].audit.ran);

    std::ostringstream json;
    writeSweepJson(json, results);
    EXPECT_EQ(json.str().find("\"audit\""), std::string::npos);
}

TEST(Audit, ValidatedCompileAcceptsAndRejects)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;

    CompiledGan compiled = compileGanValidated(model, config);
    EXPECT_GT(compiled.crossbarsUsed, 0u);

    compiled.updateElemsG += 7;
    EXPECT_THROW(throwIfInvalid(model, config, compiled),
                 std::runtime_error);
}

} // namespace
} // namespace lergan
