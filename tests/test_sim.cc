/**
 * @file
 * Unit tests for the discrete-event kernel, resources and task graphs.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/task_graph.hh"

namespace lergan {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleAt(30, [&] { order.push_back(3); });
    queue.scheduleAt(10, [&] { order.push_back(1); });
    queue.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_EQ(queue.run(), 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.scheduleAt(7, [&, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue queue;
    int fired = 0;
    queue.scheduleAt(1, [&] {
        ++fired;
        queue.scheduleAfter(5, [&] { ++fired; });
    });
    EXPECT_EQ(queue.run(), 6u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue queue;
    queue.scheduleAt(5, [] {});
    queue.reset();
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.now(), 0u);
}

TEST(EventQueueDeath, PastSchedulingIsABug)
{
    EventQueue queue;
    queue.scheduleAt(10, [&] {
        EXPECT_DEATH(queue.scheduleAt(5, [] {}), "past");
    });
    queue.run();
}

TEST(EventQueue, CancelledEventNeverFires)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleAt(10, [&] { order.push_back(1); });
    const EventId doomed = queue.scheduleAt(20, [&] { order.push_back(2); });
    queue.scheduleAt(30, [&] { order.push_back(3); });
    EXPECT_TRUE(queue.cancel(doomed));
    EXPECT_EQ(queue.pending(), 2u);
    EXPECT_EQ(queue.run(), 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelReportsWhetherTheEventWasPending)
{
    EventQueue queue;
    const EventId id = queue.scheduleAt(5, [] {});
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id)); // already cancelled
    const EventId fired = queue.scheduleAt(6, [] {});
    queue.run();
    EXPECT_FALSE(queue.cancel(fired));  // already fired
    EXPECT_FALSE(queue.cancel(99999)); // never existed
}

TEST(EventQueue, CancelFromWithinACallback)
{
    EventQueue queue;
    bool fired = false;
    const EventId victim = queue.scheduleAt(20, [&] { fired = true; });
    queue.scheduleAt(10, [&] { EXPECT_TRUE(queue.cancel(victim)); });
    queue.run();
    EXPECT_FALSE(fired);
}

TEST(EventFn, SmallCallablesAreStoredInline)
{
    int hits = 0;
    sim::EventFn fn([&hits] { ++hits; });
    ASSERT_TRUE(fn);
    EXPECT_TRUE(fn.inlineStored());
    fn();
    EXPECT_EQ(hits, 1);
}

TEST(EventFn, LargeCallablesFallBackToTheHeap)
{
    std::array<char, 128> blob{};
    blob[0] = 42;
    int sum = 0;
    sim::EventFn fn([blob, &sum] { sum += blob[0]; });
    EXPECT_FALSE(fn.inlineStored());
    fn();
    EXPECT_EQ(sum, 42);
}

TEST(EventFn, MoveTransfersTheCallable)
{
    int hits = 0;
    sim::EventFn a([&hits] { ++hits; });
    sim::EventFn b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): contract check
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);

    sim::EventFn c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveOnlyCallablesAreSupported)
{
    auto owned = std::make_unique<int>(7);
    int seen = 0;
    sim::EventFn fn([owned = std::move(owned), &seen] { seen = *owned; });
    fn();
    EXPECT_EQ(seen, 7);
}

TEST(Resource, FifoReservations)
{
    Resource res("r");
    EXPECT_EQ(res.reserve(0, 10), 0u);
    EXPECT_EQ(res.reserve(0, 10), 10u);  // queued behind the first
    EXPECT_EQ(res.reserve(50, 10), 50u); // idle gap honored
    EXPECT_EQ(res.busyTime(), 30u);
    EXPECT_EQ(res.reservations(), 3u);
}

TEST(Resource, ResetForgetsHistory)
{
    Resource res("r");
    res.reserve(0, 100);
    res.reset();
    EXPECT_EQ(res.nextFree(), 0u);
    EXPECT_EQ(res.busyTime(), 0u);
}

TEST(TaskGraph, ChainRespectsDependencies)
{
    ResourcePool pool;
    const auto r = pool.create("unit");
    TaskGraph graph;
    const TaskId a = graph.addTask({"a", {r}, 10, 0, ""});
    const TaskId b = graph.addTask({"b", {r}, 20, 0, ""});
    graph.addDep(b, a);
    const ExecResult result = graph.execute(pool);
    EXPECT_EQ(result.makespan, 30u);
    EXPECT_EQ(result.endTimes[a], 10u);
    EXPECT_EQ(result.endTimes[b], 30u);
}

TEST(TaskGraph, IndependentTasksContendOnSharedResource)
{
    ResourcePool pool;
    const auto r = pool.create("unit");
    TaskGraph graph;
    for (int i = 0; i < 4; ++i)
        graph.addTask({"t", {r}, 10, 0, ""});
    const ExecResult result = graph.execute(pool);
    EXPECT_EQ(result.makespan, 40u); // serialized on one resource
}

TEST(TaskGraph, IndependentTasksOnDistinctResourcesOverlap)
{
    ResourcePool pool;
    TaskGraph graph;
    for (int i = 0; i < 4; ++i) {
        const auto r = pool.create("unit" + std::to_string(i));
        graph.addTask({"t", {r}, 10, 0, ""});
    }
    EXPECT_EQ(graph.execute(pool).makespan, 10u);
}

TEST(TaskGraph, PipelineOverlapsStages)
{
    // Two-stage pipeline, 3 items: makespan = (3 + 2 - 1) * 10.
    ResourcePool pool;
    const auto s1 = pool.create("stage1");
    const auto s2 = pool.create("stage2");
    TaskGraph graph;
    for (int item = 0; item < 3; ++item) {
        const TaskId a = graph.addTask({"s1", {s1}, 10, 0, ""});
        const TaskId b = graph.addTask({"s2", {s2}, 10, 0, ""});
        graph.addDep(b, a);
    }
    EXPECT_EQ(graph.execute(pool).makespan, 40u);
}

TEST(TaskGraph, MultiResourceTaskHoldsAll)
{
    ResourcePool pool;
    const auto r1 = pool.create("r1");
    const auto r2 = pool.create("r2");
    TaskGraph graph;
    graph.addTask({"uses r1", {r1}, 10, 0, ""});
    graph.addTask({"uses both", {r1, r2}, 10, 0, ""});
    graph.addTask({"uses r2", {r2}, 10, 0, ""});
    const ExecResult result = graph.execute(pool);
    // The both-task starts after r1 frees; the r2-task waits for it.
    EXPECT_EQ(result.makespan, 30u);
}

TEST(TaskGraph, EnergyChargedToKeys)
{
    ResourcePool pool;
    TaskGraph graph;
    graph.addTask({"a", {}, 1, 12.5, "energy.x"});
    graph.addTask({"b", {}, 1, 7.5, "energy.x"});
    graph.addTask({"c", {}, 1, 5.0, "energy.y"});
    const ExecResult result = graph.execute(pool);
    EXPECT_DOUBLE_EQ(result.stats.get("energy.x"), 20.0);
    EXPECT_DOUBLE_EQ(result.stats.get("energy.y"), 5.0);
}

TEST(TaskGraph, ZeroDurationBarrier)
{
    ResourcePool pool;
    const auto r = pool.create("r");
    TaskGraph graph;
    const TaskId a = graph.addTask({"a", {r}, 15, 0, ""});
    const TaskId barrier = graph.addTask({"barrier", {}, 0, 0, ""});
    const TaskId b = graph.addTask({"b", {r}, 5, 0, ""});
    graph.addDep(barrier, a);
    graph.addDep(b, barrier);
    const ExecResult result = graph.execute(pool);
    EXPECT_EQ(result.endTimes[barrier], 15u);
    EXPECT_EQ(result.makespan, 20u);
}

TEST(TaskGraph, ReexecutableAfterPoolReset)
{
    ResourcePool pool;
    const auto r = pool.create("r");
    TaskGraph graph;
    graph.addTask({"a", {r}, 10, 0, ""});
    EXPECT_EQ(graph.execute(pool).makespan, 10u);
    pool.resetAll();
    EXPECT_EQ(graph.execute(pool).makespan, 10u);
}

TEST(TaskGraph, ScratchReuseMatchesFreshExecution)
{
    ResourcePool pool;
    const auto r0 = pool.create("r0");
    const auto r1 = pool.create("r1");
    TaskGraph graph;
    const TaskId a = graph.addTask({"a", {r0}, 10, 1.0, "energy.a"});
    const TaskId b = graph.addTask({"b", {r1}, 20, 2.0, "energy.b"});
    const TaskId c = graph.addTask({"c", {r0, r1}, 5, 0, ""});
    graph.addDep(c, a);
    graph.addDep(c, b);

    const ExecResult fresh = graph.execute(pool);
    ExecScratch scratch;
    for (int round = 0; round < 3; ++round) {
        pool.resetAll();
        const ExecResult reused =
            graph.execute(pool, nullptr, nullptr, &scratch);
        EXPECT_EQ(reused.makespan, fresh.makespan);
        EXPECT_EQ(reused.endTimes, fresh.endTimes);
    }
}

TEST(TaskGraph, MovableAcrossBuildAndExecute)
{
    // Templates move frozen graphs into shared caches; both a built-but-
    // unexecuted and an already-executed graph must survive the move.
    ResourcePool pool;
    const auto r = pool.create("r");
    TaskGraph built;
    built.addTask({"a", {r}, 7, 0, ""});
    TaskGraph moved = std::move(built);
    EXPECT_EQ(moved.execute(pool).makespan, 7u);

    pool.resetAll();
    TaskGraph again = std::move(moved);
    EXPECT_EQ(again.execute(pool).makespan, 7u);
}

TEST(TaskGraphDeath, CycleIsDetected)
{
    ResourcePool pool;
    TaskGraph graph;
    const TaskId a = graph.addTask({"a", {}, 1, 0, ""});
    const TaskId b = graph.addTask({"b", {}, 1, 0, ""});
    graph.addDep(a, b);
    graph.addDep(b, a);
    EXPECT_DEATH(graph.execute(pool), "cycle");
}

} // namespace
} // namespace lergan
