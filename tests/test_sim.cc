/**
 * @file
 * Unit tests for the discrete-event kernel, resources and task graphs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/task_graph.hh"

namespace lergan {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleAt(30, [&] { order.push_back(3); });
    queue.scheduleAt(10, [&] { order.push_back(1); });
    queue.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_EQ(queue.run(), 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.scheduleAt(7, [&, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue queue;
    int fired = 0;
    queue.scheduleAt(1, [&] {
        ++fired;
        queue.scheduleAfter(5, [&] { ++fired; });
    });
    EXPECT_EQ(queue.run(), 6u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue queue;
    queue.scheduleAt(5, [] {});
    queue.reset();
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.now(), 0u);
}

TEST(EventQueueDeath, PastSchedulingIsABug)
{
    EventQueue queue;
    queue.scheduleAt(10, [&] {
        EXPECT_DEATH(queue.scheduleAt(5, [] {}), "past");
    });
    queue.run();
}

TEST(Resource, FifoReservations)
{
    Resource res("r");
    EXPECT_EQ(res.reserve(0, 10), 0u);
    EXPECT_EQ(res.reserve(0, 10), 10u);  // queued behind the first
    EXPECT_EQ(res.reserve(50, 10), 50u); // idle gap honored
    EXPECT_EQ(res.busyTime(), 30u);
    EXPECT_EQ(res.reservations(), 3u);
}

TEST(Resource, ResetForgetsHistory)
{
    Resource res("r");
    res.reserve(0, 100);
    res.reset();
    EXPECT_EQ(res.nextFree(), 0u);
    EXPECT_EQ(res.busyTime(), 0u);
}

TEST(TaskGraph, ChainRespectsDependencies)
{
    ResourcePool pool;
    const auto r = pool.create("unit");
    TaskGraph graph;
    const TaskId a = graph.addTask({"a", {r}, 10, 0, ""});
    const TaskId b = graph.addTask({"b", {r}, 20, 0, ""});
    graph.addDep(b, a);
    const ExecResult result = graph.execute(pool);
    EXPECT_EQ(result.makespan, 30u);
    EXPECT_EQ(result.endTimes[a], 10u);
    EXPECT_EQ(result.endTimes[b], 30u);
}

TEST(TaskGraph, IndependentTasksContendOnSharedResource)
{
    ResourcePool pool;
    const auto r = pool.create("unit");
    TaskGraph graph;
    for (int i = 0; i < 4; ++i)
        graph.addTask({"t", {r}, 10, 0, ""});
    const ExecResult result = graph.execute(pool);
    EXPECT_EQ(result.makespan, 40u); // serialized on one resource
}

TEST(TaskGraph, IndependentTasksOnDistinctResourcesOverlap)
{
    ResourcePool pool;
    TaskGraph graph;
    for (int i = 0; i < 4; ++i) {
        const auto r = pool.create("unit" + std::to_string(i));
        graph.addTask({"t", {r}, 10, 0, ""});
    }
    EXPECT_EQ(graph.execute(pool).makespan, 10u);
}

TEST(TaskGraph, PipelineOverlapsStages)
{
    // Two-stage pipeline, 3 items: makespan = (3 + 2 - 1) * 10.
    ResourcePool pool;
    const auto s1 = pool.create("stage1");
    const auto s2 = pool.create("stage2");
    TaskGraph graph;
    for (int item = 0; item < 3; ++item) {
        const TaskId a = graph.addTask({"s1", {s1}, 10, 0, ""});
        const TaskId b = graph.addTask({"s2", {s2}, 10, 0, ""});
        graph.addDep(b, a);
    }
    EXPECT_EQ(graph.execute(pool).makespan, 40u);
}

TEST(TaskGraph, MultiResourceTaskHoldsAll)
{
    ResourcePool pool;
    const auto r1 = pool.create("r1");
    const auto r2 = pool.create("r2");
    TaskGraph graph;
    graph.addTask({"uses r1", {r1}, 10, 0, ""});
    graph.addTask({"uses both", {r1, r2}, 10, 0, ""});
    graph.addTask({"uses r2", {r2}, 10, 0, ""});
    const ExecResult result = graph.execute(pool);
    // The both-task starts after r1 frees; the r2-task waits for it.
    EXPECT_EQ(result.makespan, 30u);
}

TEST(TaskGraph, EnergyChargedToKeys)
{
    ResourcePool pool;
    TaskGraph graph;
    graph.addTask({"a", {}, 1, 12.5, "energy.x"});
    graph.addTask({"b", {}, 1, 7.5, "energy.x"});
    graph.addTask({"c", {}, 1, 5.0, "energy.y"});
    const ExecResult result = graph.execute(pool);
    EXPECT_DOUBLE_EQ(result.stats.get("energy.x"), 20.0);
    EXPECT_DOUBLE_EQ(result.stats.get("energy.y"), 5.0);
}

TEST(TaskGraph, ZeroDurationBarrier)
{
    ResourcePool pool;
    const auto r = pool.create("r");
    TaskGraph graph;
    const TaskId a = graph.addTask({"a", {r}, 15, 0, ""});
    const TaskId barrier = graph.addTask({"barrier", {}, 0, 0, ""});
    const TaskId b = graph.addTask({"b", {r}, 5, 0, ""});
    graph.addDep(barrier, a);
    graph.addDep(b, barrier);
    const ExecResult result = graph.execute(pool);
    EXPECT_EQ(result.endTimes[barrier], 15u);
    EXPECT_EQ(result.makespan, 20u);
}

TEST(TaskGraph, ReexecutableAfterPoolReset)
{
    ResourcePool pool;
    const auto r = pool.create("r");
    TaskGraph graph;
    graph.addTask({"a", {r}, 10, 0, ""});
    EXPECT_EQ(graph.execute(pool).makespan, 10u);
    pool.resetAll();
    EXPECT_EQ(graph.execute(pool).makespan, 10u);
}

TEST(TaskGraphDeath, CycleIsDetected)
{
    ResourcePool pool;
    TaskGraph graph;
    const TaskId a = graph.addTask({"a", {}, 1, 0, ""});
    const TaskId b = graph.addTask({"b", {}, 1, 0, ""});
    graph.addDep(a, b);
    graph.addDep(b, a);
    EXPECT_DEATH(graph.execute(pool), "cycle");
}

} // namespace
} // namespace lergan
