/**
 * @file
 * Whole-GAN functional tests: end-to-end ZFDR equivalence across a full
 * forward+backward pass, adjoint identities for every layer kind, and
 * consistency between the op lowering (nn/training.hh) and the actual
 * tensor math.
 */

#include <gtest/gtest.h>

#include "nn/parser.hh"
#include "nn/training.hh"
#include "workloads/zoo.hh"
#include "zfdr/functional_gan.hh"

namespace lergan {
namespace {

/** A small mixed GAN: FC + T-CONVs generator, convs + FC discriminator. */
GanModel
miniGan()
{
    return parseGan("mini", "16f-(8t-4t)(5k2s)-t2",
                    "(2c-4c)(4k2s)-f1", 16, 2);
}

TEST(FunctionalGan, ForwardTracesMatchWithAndWithoutZfdr)
{
    Rng rng(31);
    const FunctionalGan gan(miniGan(), rng);
    const Tensor noise = Tensor::random({16}, rng);
    const FunctionalTrace plain =
        gan.forward(NetRole::Generator, noise, false);
    const FunctionalTrace zfdr =
        gan.forward(NetRole::Generator, noise, true);
    ASSERT_EQ(plain.activations.size(), zfdr.activations.size());
    for (std::size_t l = 0; l < plain.activations.size(); ++l)
        EXPECT_EQ(plain.activations[l], zfdr.activations[l]) << l;
}

TEST(FunctionalGan, FullGanPassMatchesEndToEnd)
{
    // Fake item: G(noise) feeds D; the loss gradient walks back through
    // D and into G — exactly the paper's generator-training dataflow.
    Rng rng(32);
    const GanModel model = miniGan();
    const FunctionalGan gan(model, rng);
    const Tensor noise = Tensor::random({16}, rng);

    auto run = [&](bool use_zfdr) {
        FunctionalTrace g_trace =
            gan.forward(NetRole::Generator, noise, use_zfdr);
        const Tensor item = g_trace.activations.back();
        FunctionalTrace d_trace = gan.forward(
            NetRole::Discriminator,
            item.reshaped(inputShape(model.discriminator.front())),
            use_zfdr);
        Tensor loss_grad(
            {model.discriminator.back().outChannels});
        for (std::size_t i = 0; i < loss_grad.size(); ++i)
            loss_grad.flat(i) = 1;
        gan.backward(NetRole::Discriminator, d_trace, loss_grad,
                     use_zfdr);
        gan.backward(NetRole::Generator, g_trace,
                     d_trace.inputGrads.front().reshaped(
                         outputShape(model.generator.back())),
                     use_zfdr);
        return std::pair<FunctionalTrace, FunctionalTrace>(
            std::move(g_trace), std::move(d_trace));
    };

    const auto plain = run(false);
    const auto zfdr = run(true);
    for (std::size_t l = 0; l < plain.first.weightGrads.size(); ++l) {
        EXPECT_EQ(plain.first.weightGrads[l], zfdr.first.weightGrads[l])
            << "G layer " << l;
        EXPECT_EQ(plain.first.inputGrads[l], zfdr.first.inputGrads[l])
            << "G layer " << l;
    }
    for (std::size_t l = 0; l < plain.second.weightGrads.size(); ++l)
        EXPECT_EQ(plain.second.weightGrads[l],
                  zfdr.second.weightGrads[l])
            << "D layer " << l;
}

TEST(FunctionalGan, BackwardOpsAreTrueAdjoints)
{
    // <F(x), y> == <x, F^T(y)> pins the backward-data ops as the exact
    // adjoints of the forwards, for every layer kind in the model.
    Rng rng(33);
    const GanModel model = miniGan();
    const FunctionalGan gan(model, rng);
    for (const NetRole role : {NetRole::Generator,
                               NetRole::Discriminator}) {
        const auto &net = model.net(role);
        for (std::size_t l = 0; l < net.size(); ++l) {
            const LayerSpec &layer = net[l];
            const Tensor &k = gan.kernel(role, l);
            Rng local(100 + l);
            if (layer.kind == LayerKind::FullyConnected) {
                const Tensor x =
                    Tensor::random({layer.inChannels}, local);
                const Tensor y =
                    Tensor::random({layer.outChannels}, local);
                EXPECT_EQ(innerProduct(fcForwardRef(x, k, layer), y),
                          innerProduct(x, fcBackwardDataRef(y, k, layer)))
                    << layer.name;
            } else if (layer.kind == LayerKind::Conv) {
                const Tensor x = Tensor::random(inputShape(layer), local);
                const Tensor y =
                    Tensor::random(outputShape(layer), local);
                EXPECT_EQ(
                    innerProduct(convForwardRef(x, k, layer), y),
                    innerProduct(x, convBackwardDataRef(y, k, layer)))
                    << layer.name;
                // Weight-grad adjoint: <F(x;K), y> == <K, dW(x, y)>.
                EXPECT_EQ(innerProduct(convForwardRef(x, k, layer), y),
                          innerProduct(k,
                                       convWeightGradRef(x, y, layer)))
                    << layer.name;
            } else {
                const Tensor x = Tensor::random(inputShape(layer), local);
                const Tensor y =
                    Tensor::random(outputShape(layer), local);
                EXPECT_EQ(
                    innerProduct(tconvForwardRef(x, k, layer), y),
                    innerProduct(x, tconvBackwardDataRef(y, k, layer)))
                    << layer.name;
                EXPECT_EQ(innerProduct(tconvForwardRef(x, k, layer), y),
                          innerProduct(k,
                                       tconvWeightGradRef(x, y, layer)))
                    << layer.name;
            }
        }
    }
}

TEST(FunctionalGan, OpLoweringMatchesTensorSizes)
{
    // The accelerator's op records must describe exactly the tensors the
    // functional layer moves: useful input/output element counts.
    const GanModel model = miniGan();
    for (const LayerOp &op : opsForPhase(model, Phase::GFwd)) {
        const LayerSpec &layer = model.net(op.role)[op.layerIdx];
        EXPECT_EQ(op.inputData, layer.inVolume()) << op.label;
        EXPECT_EQ(op.outputData, layer.outVolume()) << op.label;
    }
    for (const LayerOp &op : opsForPhase(model, Phase::DBwdWeight)) {
        const LayerSpec &layer = model.net(op.role)[op.layerIdx];
        EXPECT_EQ(op.outputData, layer.numWeights()) << op.label;
        EXPECT_EQ(op.inputData, layer.inVolume() + layer.outVolume())
            << op.label;
    }
}

TEST(FunctionalGan, FcRoundTripShapes)
{
    Rng rng(34);
    const GanModel model = miniGan();
    const FunctionalGan gan(model, rng);
    const Tensor noise = Tensor::random({16}, rng);
    const FunctionalTrace trace =
        gan.forward(NetRole::Generator, noise, false);
    // FC output volume equals the first T-CONV's input volume.
    EXPECT_EQ(trace.activations[1].size(),
              model.generator[1].inVolume());
    // The generator emits an item of the declared size.
    EXPECT_EQ(trace.activations.back().size(),
              model.generator.back().outVolume());
}

} // namespace
} // namespace lergan
