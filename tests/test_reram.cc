/**
 * @file
 * Tests for the ReRAM device parameters and tile energy model.
 */

#include <gtest/gtest.h>

#include "reram/params.hh"
#include "reram/tile.hh"

namespace lergan {
namespace {

TEST(Params, TableIvDerivedQuantities)
{
    const ReRamParams params;
    // 2 GB bank / 128 MB tile -> 16 tiles (Table IV).
    EXPECT_EQ(params.bankBytes / params.tileBytes,
              static_cast<std::uint64_t>(params.tilesPerBank));
    // CArray + BArray + SArray fill the tile.
    EXPECT_EQ(params.carrayBytes + params.barrayBytes + params.sarrayBytes,
              params.tileBytes);
    // 64 MB of 4-bit cells in 128x128 crossbars.
    EXPECT_EQ(params.crossbarsPerTile(), 8192u);
    EXPECT_EQ(params.carrayWeightsPerTile(), 32u << 20);
}

TEST(Params, Fig24ComponentShares)
{
    // The ADC share of a pure MMV must sit near the paper's 45.14%; the
    // cell-switching bucket only reaches its 40.16% once weight-update
    // writes are folded in (done at the bench level), so here it just
    // has to be the clear runner-up among the compute components.
    const ReRamParams params;
    const double total = params.adcPjPerXbar + params.cellPjPerXbar +
                         params.dacPjPerXbar + params.shPjPerXbar +
                         params.driverPjPerXbar;
    EXPECT_NEAR(params.adcPjPerXbar / total, 0.4514, 0.08);
    EXPECT_GT(params.cellPjPerXbar, params.dacPjPerXbar);
    EXPECT_GT(params.cellPjPerXbar, params.shPjPerXbar);
    EXPECT_GT(params.cellPjPerXbar, params.driverPjPerXbar);
    EXPECT_LT(params.cellPjPerXbar, params.adcPjPerXbar);
}

TEST(Tile, MmvTimeScalesWithWaves)
{
    const TileModel tile{ReRamParams{}};
    EXPECT_EQ(tile.mmvTime(0), 0u);
    EXPECT_EQ(tile.mmvTime(10), 10 * tile.mmvTime(1));
}

TEST(Tile, MmvEnergySplitsAcrossComponents)
{
    const TileModel tile{ReRamParams{}};
    StatSet stats;
    tile.chargeMmv(stats, 100);
    const double total = stats.sumPrefix("energy.compute.");
    EXPECT_DOUBLE_EQ(total, 100 * tile.perCrossbarEnergy());
    EXPECT_GT(stats.get("energy.compute.adc"), 0.0);
    EXPECT_GT(stats.get("energy.compute.cell"), 0.0);
    EXPECT_GT(stats.get("energy.compute.dac"), 0.0);
    EXPECT_GT(stats.get("energy.compute.sh"), 0.0);
    EXPECT_GT(stats.get("energy.compute.driver"), 0.0);
    EXPECT_DOUBLE_EQ(stats.get("count.crossbar_activations"), 100.0);
}

TEST(Tile, BufferAndStorageCharges)
{
    const TileModel tile{ReRamParams{}};
    StatSet stats;
    tile.chargeBuffer(stats, 1000);
    EXPECT_DOUBLE_EQ(stats.get("energy.buffer"),
                     1000 * ReRamParams{}.bufferPjPerByte);
    tile.chargeStorage(stats, 160, 320);
    // 10 reads + 20 writes of 16-byte rows.
    const ReRamParams params;
    EXPECT_DOUBLE_EQ(stats.get("energy.storage"),
                     10 * params.tileReadPj + 20 * params.tileWritePj);
}

TEST(Tile, WeightWriteTimeAndEnergy)
{
    const ReRamParams params;
    const TileModel tile{params};
    StatSet stats;
    const PicoSeconds t = tile.chargeWeightWrite(stats, 1'000'000);
    EXPECT_EQ(t, nsToPs(params.weightWriteNsPerElem * 1e6));
    EXPECT_DOUBLE_EQ(stats.get("energy.update"),
                     params.weightWritePjPerElem * 1e6);
    EXPECT_DOUBLE_EQ(stats.get("count.weight_writes"), 1e6);
}

TEST(Tile, EnergyAccumulatesAcrossCharges)
{
    const TileModel tile{ReRamParams{}};
    StatSet stats;
    tile.chargeMmv(stats, 1);
    const double one = stats.sumPrefix("energy.compute.");
    tile.chargeMmv(stats, 1);
    EXPECT_DOUBLE_EQ(stats.sumPrefix("energy.compute."), 2 * one);
}

} // namespace
} // namespace lergan
