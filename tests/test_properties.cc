/**
 * @file
 * Property-based tests: randomized task graphs against scheduling
 * invariants, the calendar queue against the reference binary heap,
 * and routing invariants across the whole machine.
 */

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/random.hh"
#include "core/machine.hh"
#include "core/sweep_io.hh"
#include "faults/montecarlo.hh"
#include "sim/calendar_queue.hh"
#include "sim/heap_event_queue.hh"
#include "sim/task_graph.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

/** A randomly generated layered DAG with random resource assignments. */
struct RandomDag {
    TaskGraph graph;
    ResourcePool pool;
    std::vector<std::vector<TaskId>> layers;
    std::vector<PicoSeconds> durations;
    std::vector<std::vector<TaskId>> deps; // deps[task] = prerequisite ids
};

RandomDag
makeRandomDag(std::uint64_t seed)
{
    RandomDag dag;
    Rng rng(seed);
    const int num_resources = 2 + static_cast<int>(rng.nextBounded(6));
    for (int r = 0; r < num_resources; ++r)
        dag.pool.create("res" + std::to_string(r));

    const int num_layers = 2 + static_cast<int>(rng.nextBounded(5));
    for (int layer = 0; layer < num_layers; ++layer) {
        std::vector<TaskId> row;
        const int width = 1 + static_cast<int>(rng.nextBounded(6));
        for (int i = 0; i < width; ++i) {
            const PicoSeconds duration = 1 + rng.nextBounded(50);
            std::vector<std::size_t> resources;
            if (rng.nextBounded(4) != 0)
                resources.push_back(rng.nextBounded(num_resources));
            const TaskId id = dag.graph.addTask(
                {"t", resources, duration, 0, ""});
            dag.durations.push_back(duration);
            dag.deps.emplace_back();
            if (layer > 0) {
                // Each task depends on 1..3 tasks of the previous layer.
                const auto &prev = dag.layers[layer - 1];
                const int fanin =
                    1 + static_cast<int>(rng.nextBounded(3));
                for (int d = 0; d < fanin; ++d) {
                    const TaskId dep =
                        prev[rng.nextBounded(prev.size())];
                    dag.graph.addDep(id, dep);
                    dag.deps[id].push_back(dep);
                }
            }
            row.push_back(id);
        }
        dag.layers.push_back(std::move(row));
    }
    return dag;
}

/** Longest dependency-chain duration (ignores resources): lower bound. */
PicoSeconds
criticalPath(const RandomDag &dag)
{
    std::vector<PicoSeconds> finish(dag.durations.size(), 0);
    for (TaskId id = 0; id < dag.durations.size(); ++id) {
        PicoSeconds ready = 0;
        for (TaskId dep : dag.deps[id])
            ready = std::max(ready, finish[dep]);
        finish[id] = ready + dag.durations[id];
    }
    PicoSeconds best = 0;
    for (PicoSeconds f : finish)
        best = std::max(best, f);
    return best;
}

class RandomDagProperty : public testing::TestWithParam<int>
{
};

TEST_P(RandomDagProperty, SchedulingInvariants)
{
    RandomDag dag = makeRandomDag(GetParam() * 7919 + 13);
    const ExecResult result = dag.graph.execute(dag.pool);

    // Bounds: critical path <= makespan <= serial sum.
    PicoSeconds serial = 0;
    for (PicoSeconds d : dag.durations)
        serial += d;
    EXPECT_GE(result.makespan, criticalPath(dag));
    EXPECT_LE(result.makespan, serial);

    // Dependencies respected: a task ends at least its duration after
    // every prerequisite's end.
    for (TaskId id = 0; id < dag.durations.size(); ++id)
        for (TaskId dep : dag.deps[id])
            EXPECT_GE(result.endTimes[id],
                      result.endTimes[dep] + dag.durations[id]);

    // No resource is busy longer than the run.
    for (std::size_t r = 0; r < dag.pool.size(); ++r)
        EXPECT_LE(dag.pool[r].busyTime(), result.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty, testing::Range(0, 24));

// ---------------------------------------------------------------------
// Calendar queue vs the reference binary heap: identical firing order
// under ~1M randomized schedule / fire / cancel operations.
// ---------------------------------------------------------------------

/**
 * Shared randomized scenario. Event ids are the schedule sequence in
 * both queues, and every follow-up action (how many new events a firing
 * schedules, at what offsets, and which id it tries to cancel) is a
 * pure function of (seed, fired id) — so two queues that fire events in
 * the same order perform exactly the same operations, and any ordering
 * divergence snowballs into a visible difference in the recorded
 * sequences.
 */
struct QueueScenario {
    std::uint64_t seed = 0;
    std::size_t cap = 0;        ///< max events scheduled in total
    /** Draw follow-up offsets from {0, 1} with occasional long jumps
     *  instead of uniform [0, 1000): keeps the calendar's windows
     *  narrow so reschedules land on or just past the near/far edge
     *  constantly — the regime the executor's completion loop creates
     *  with clustered task end times. */
    bool boundaryHeavy = false;
    std::size_t scheduled = 0;  ///< ids issued so far
    std::vector<std::uint64_t> order; ///< fired ids, in firing order

    /**
     * Follow-up actions of event @p tag firing at time @p now.
     * @p schedule takes an absolute time and must assign id
     * `scheduled` (then this helper advances the counter);
     * @p cancel takes an event id.
     */
    template <typename Schedule, typename Cancel>
    void
    onFire(std::uint64_t tag, PicoSeconds now, const Schedule &schedule,
           const Cancel &cancel)
    {
        order.push_back(tag);
        Rng rng(seed ^ (tag * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL));
        const std::uint64_t follow = rng.nextBounded(3);
        for (std::uint64_t i = 0; i < follow && scheduled < cap; ++i) {
            const PicoSeconds offset =
                boundaryHeavy
                    ? (rng.nextBounded(8) == 0
                           ? 500 + rng.nextBounded(500)
                           : rng.nextBounded(2))
                    : rng.nextBounded(1000);
            schedule(now + offset);
            ++scheduled;
        }
        if (rng.nextBounded(4) == 0)
            cancel(rng.nextBounded(scheduled));
    }
};

/** Run the scenario on the production calendar queue. */
std::vector<std::uint64_t>
calendarScenario(std::uint64_t seed, std::size_t initial, std::size_t cap,
                 PicoSeconds horizon = 1'000'000, bool boundary = false)
{
    sim::CalendarQueue<std::uint64_t> queue;
    QueueScenario s{seed, cap, boundary, 0, {}};
    Rng rng(seed);
    for (std::size_t i = 0; i < initial; ++i) {
        queue.scheduleAt(rng.nextBounded(horizon), s.scheduled);
        ++s.scheduled;
    }
    std::uint64_t tag = 0;
    while (queue.pop(tag)) {
        s.onFire(
            tag, queue.now(),
            [&](PicoSeconds when) { queue.scheduleAt(when, s.scheduled); },
            [&](std::uint64_t id) { queue.cancel(id); });
    }
    EXPECT_EQ(queue.pending(), 0u);
    return std::move(s.order);
}

/** Run the scenario on the reference binary heap. */
std::vector<std::uint64_t>
heapScenario(std::uint64_t seed, std::size_t initial, std::size_t cap,
             PicoSeconds horizon = 1'000'000, bool boundary = false)
{
    sim::HeapEventQueue queue;
    QueueScenario s{seed, cap, boundary, 0, {}};
    std::function<void(std::uint64_t)> fire = [&](std::uint64_t tag) {
        s.onFire(
            tag, queue.now(),
            [&](PicoSeconds when) {
                const std::uint64_t id = s.scheduled;
                queue.scheduleAt(when, [&fire, id] { fire(id); });
            },
            [&](std::uint64_t id) { queue.cancel(id); });
    };
    Rng rng(seed);
    for (std::size_t i = 0; i < initial; ++i) {
        const std::uint64_t id = s.scheduled;
        queue.scheduleAt(rng.nextBounded(horizon), [&fire, id] { fire(id); });
        ++s.scheduled;
    }
    queue.run();
    EXPECT_EQ(queue.pending(), 0u);
    return std::move(s.order);
}

TEST(CalendarQueueProperty, MatchesHeapReferenceOverAMillionOps)
{
    // Two seeds x (~250k schedules + ~230k fires + ~60k cancels) each:
    // over a million queue operations in total, with heavy same-time
    // collisions (200k initial events over a 1M-tick horizon).
    for (const std::uint64_t seed : {UINT64_C(42), UINT64_C(20180614)}) {
        const std::size_t initial = 200'000;
        const std::size_t cap = 250'000;
        const auto calendar = calendarScenario(seed, initial, cap);
        const auto heap = heapScenario(seed, initial, cap);
        ASSERT_EQ(calendar.size(), heap.size()) << "seed " << seed;
        // EXPECT_EQ on the vectors would print megabytes on failure;
        // find the first divergence instead.
        for (std::size_t i = 0; i < calendar.size(); ++i)
            ASSERT_EQ(calendar[i], heap[i])
                << "first divergence at firing #" << i << ", seed "
                << seed;
    }
}

TEST(CalendarQueueProperty, AdversarialSameTimeBursts)
{
    // All events at one instant fire in schedule order, interleaved
    // with cancellations — the worst case for a bucketing queue.
    sim::CalendarQueue<std::uint64_t> queue;
    std::vector<std::uint64_t> expect;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        queue.scheduleAt(7, i);
        if (i % 3 != 0)
            expect.push_back(i);
    }
    for (std::uint64_t i = 0; i < 1000; i += 3)
        EXPECT_TRUE(queue.cancel(i));
    std::vector<std::uint64_t> fired;
    std::uint64_t tag = 0;
    while (queue.pop(tag))
        fired.push_back(tag);
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(queue.now(), 7u);
}

TEST(CalendarQueueBoundary, CancelOnTheNearFarWindowEdge)
{
    // 64 events at times 0..63 scheduled up front: the first pop carves
    // a window of width 32 (64 events / kTargetPerWindow), putting
    // times 0..31 into the sorted near run and leaving 32..63 in far.
    // Cancel the last event inside the window (31) and the first one
    // exactly on its edge (32): both must be skipped at pop time, and
    // the firing order of everything else is unchanged.
    sim::CalendarQueue<std::uint64_t> queue;
    for (std::uint64_t i = 0; i < 64; ++i)
        queue.scheduleAt(i, i);

    std::uint64_t tag = 0;
    ASSERT_TRUE(queue.pop(tag)); // forces the window carve
    EXPECT_EQ(tag, 0u);

    EXPECT_TRUE(queue.cancel(31));
    EXPECT_TRUE(queue.cancel(32));
    EXPECT_FALSE(queue.cancel(31)); // already cancelled
    EXPECT_FALSE(queue.cancel(0));  // already fired
    EXPECT_FALSE(queue.cancel(999)); // never scheduled
    EXPECT_EQ(queue.pending(), 61u);

    std::vector<std::uint64_t> fired;
    while (queue.pop(tag))
        fired.push_back(tag);
    std::vector<std::uint64_t> expect;
    for (std::uint64_t i = 1; i < 64; ++i)
        if (i != 31 && i != 32)
            expect.push_back(i);
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(queue.now(), 63u);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(CalendarQueueBoundary, RescheduleIntoTheCurrentWindowDuringFire)
{
    // Executor-style loop: while the event at time 10 is being handled,
    // schedule three follow-ups — one at the current instant (must fire
    // after every other live event at that time, i.e. immediately here),
    // one on the last slot of the current window (31), and one exactly
    // at the window end (32, the far-side path). Equal-time events fire
    // in schedule order, so the follow-ups (ids 64..66) fire after the
    // originals at their times.
    sim::CalendarQueue<std::uint64_t> queue;
    for (std::uint64_t i = 0; i < 64; ++i)
        queue.scheduleAt(i, i);

    std::vector<std::uint64_t> fired;
    std::uint64_t next = 64;
    std::uint64_t tag = 0;
    while (queue.pop(tag)) {
        fired.push_back(tag);
        if (tag == 10) {
            EXPECT_EQ(queue.scheduleAt(queue.now(), next), 64u);
            ++next;
            queue.scheduleAt(31, next);
            ++next;
            queue.scheduleAt(32, next);
            ++next;
        }
    }
    std::vector<std::uint64_t> expect;
    for (std::uint64_t i = 0; i <= 10; ++i)
        expect.push_back(i);
    expect.push_back(64); // same instant as 10, scheduled later
    for (std::uint64_t i = 11; i <= 31; ++i)
        expect.push_back(i);
    expect.push_back(65); // time 31, after the original
    expect.push_back(32);
    expect.push_back(66); // time 32, after the original
    for (std::uint64_t i = 33; i < 64; ++i)
        expect.push_back(i);
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(CalendarQueueProperty, BoundaryHeavySeededScenarioMatchesHeap)
{
    // Same heap-equivalence harness as above, but with follow-up times
    // drawn from {now, now + 1} plus occasional long jumps over a short
    // horizon: windows stay narrow, so fire-time reschedules land on or
    // just past the near/far edge all the time instead of rarely.
    for (const std::uint64_t seed : {UINT64_C(3), UINT64_C(777)}) {
        const std::size_t initial = 30'000;
        const std::size_t cap = 40'000;
        const auto calendar =
            calendarScenario(seed, initial, cap, 600, true);
        const auto heap = heapScenario(seed, initial, cap, 600, true);
        ASSERT_EQ(calendar.size(), heap.size()) << "seed " << seed;
        for (std::size_t i = 0; i < calendar.size(); ++i)
            ASSERT_EQ(calendar[i], heap[i])
                << "first divergence at firing #" << i << ", seed "
                << seed;
    }
}

/** Routing invariants over bank pairs of a full machine. */
class RouteProperty
    : public testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static Machine &
    threeD()
    {
        static Machine machine{
            AcceleratorConfig::lerGan(ReplicaDegree::Low)};
        return machine;
    }
    static Machine &
    hTree()
    {
        static Machine machine{AcceleratorConfig::prime()};
        return machine;
    }
};

TEST_P(RouteProperty, RoutesExistAndAreSane)
{
    auto [bank_a, bank_b] = GetParam();
    const Route &r3d = threeD().routeTiles(bank_a, 2, bank_b, 9, true);
    const Route &r2d = hTree().routeTiles(bank_a, 2, bank_b, 9, true);
    ASSERT_TRUE(r3d.valid());
    ASSERT_TRUE(r2d.valid());
    EXPECT_GT(r3d.minBytesPerNs, 0.0);

    // The 3D connection never routes slower than the H-tree machine.
    EXPECT_LE(r3d.latencyNs, r2d.latencyNs);

    // Latency symmetry (undirected wires).
    const Route &back = threeD().routeTiles(bank_b, 9, bank_a, 2, true);
    EXPECT_DOUBLE_EQ(r3d.latencyNs, back.latencyNs);

    // Smode routes (H-tree + bus only) are never faster than Cmode.
    const Route &smode = threeD().routeTiles(bank_a, 2, bank_b, 9, false);
    ASSERT_TRUE(smode.valid());
    EXPECT_GE(smode.latencyNs, r3d.latencyNs);
}

INSTANTIATE_TEST_SUITE_P(
    BankPairs, RouteProperty,
    testing::Combine(testing::Values(0, 1, 2, 3, 4, 5),
                     testing::Values(0, 1, 2, 3, 4, 5)));

TEST(RouteInvariants, IntraBankNeverCrossesTheBus)
{
    Machine machine{AcceleratorConfig::lerGan(ReplicaDegree::Low)};
    for (int a = 0; a < 16; a += 5) {
        for (int b = 0; b < 16; b += 3) {
            const Route &route = machine.routeTiles(0, a, 0, b, true);
            for (int link : route.links)
                EXPECT_NE(machine.topo().link(link).kind, LinkKind::Bus);
        }
    }
}

TEST(RouteInvariants, StackedBankRouteUsesVerticalWire)
{
    Machine machine{AcceleratorConfig::lerGan(ReplicaDegree::Low)};
    const Route &route = machine.routeTiles(0, 5, 1, 5, true);
    ASSERT_EQ(route.links.size(), 1u);
    EXPECT_EQ(machine.topo().link(route.links[0]).kind,
              LinkKind::Vertical);
}

// ---------------------------------------------------------------------
// Monte Carlo robustness-sweep properties.
// ---------------------------------------------------------------------

/** A small faulty configuration at the given tile-kill rate. */
AcceleratorConfig
faultyConfig(double tile_kill_rate)
{
    AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    config.faults.tileKillRate = tile_kill_rate;
    return config;
}

TEST(MonteCarloProperty, AggregatesArePermutationInvariantInTrialOrder)
{
    // The distribution summary may not depend on the order trials
    // complete (or are fed) in — it sorts internally.
    Rng rng(123);
    std::vector<double> samples;
    for (int i = 0; i < 40; ++i)
        samples.push_back(rng.nextDouble() * 100.0);
    const TrialDistribution reference = TrialDistribution::of(samples);

    for (int round = 0; round < 10; ++round) {
        // Fisher-Yates with the deterministic repo Rng.
        for (std::size_t i = samples.size(); i > 1; --i)
            std::swap(samples[i - 1], samples[rng.nextBounded(i)]);
        const TrialDistribution shuffled = TrialDistribution::of(samples);
        EXPECT_DOUBLE_EQ(shuffled.mean, reference.mean);
        EXPECT_DOUBLE_EQ(shuffled.p95, reference.p95);
        EXPECT_DOUBLE_EQ(shuffled.min, reference.min);
        EXPECT_DOUBLE_EQ(shuffled.max, reference.max);
    }
}

TEST(MonteCarloProperty, DeterministicAcrossWorkerCounts)
{
    FaultMonteCarlo experiment;
    experiment.addBenchmark(makeBenchmark("MAGAN-MNIST"))
        .addConfig("kill5", faultyConfig(0.05))
        .addConfig("kill20", faultyConfig(0.20));

    MonteCarloOptions options;
    options.trials = 32;
    options.baseSeed = 7;
    options.threads = 1;
    const std::vector<SweepResult> serial = experiment.run(options);
    options.threads = 4;
    const std::vector<SweepResult> parallel = experiment.run(options);

    std::ostringstream serial_json, parallel_json;
    writeSweepJson(serial_json, serial);
    writeSweepJson(parallel_json, parallel);
    EXPECT_EQ(serial_json.str(), parallel_json.str());

    std::string error;
    EXPECT_TRUE(isValidJson(serial_json.str(), &error)) << error;

    ASSERT_EQ(serial.size(), 2u);
    for (const SweepResult &result : serial) {
        EXPECT_TRUE(result.faults.ran());
        EXPECT_EQ(result.faults.trials, 32);
    }
}

TEST(MonteCarloProperty, AggregatesMonotoneNonImprovingInFaultRate)
{
    // With only tile-kill faults active the sampler consumes exactly
    // one uniform draw per tile, so the same trial seed yields nested
    // kill sets as the rate rises: capacity lost and iteration latency
    // can only get worse (or tie), never better.
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    double last_capacity = -1.0, last_ms = -1.0;
    int last_failed = 0;
    for (double rate : {0.05, 0.2, 0.4}) {
        FaultMonteCarlo experiment;
        experiment.addBenchmark(model).addConfig("kill", faultyConfig(rate));
        MonteCarloOptions options;
        options.trials = 32;
        options.baseSeed = 7;
        const std::vector<SweepResult> results = experiment.run(options);
        ASSERT_EQ(results.size(), 1u);
        const FaultSweepStats &stats = results[0].faults;
        EXPECT_GE(stats.capacityLost.mean, last_capacity);
        EXPECT_GE(stats.msPerIteration.mean, last_ms);
        EXPECT_GE(stats.failedTrials, last_failed);
        last_capacity = stats.capacityLost.mean;
        last_ms = stats.msPerIteration.mean;
        last_failed = stats.failedTrials;
    }
    EXPECT_GT(last_capacity, 0.0);
}

} // namespace
} // namespace lergan
