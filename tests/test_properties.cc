/**
 * @file
 * Property-based tests: randomized task graphs against scheduling
 * invariants, and routing invariants across the whole machine.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/machine.hh"
#include "sim/task_graph.hh"

namespace lergan {
namespace {

/** A randomly generated layered DAG with random resource assignments. */
struct RandomDag {
    TaskGraph graph;
    ResourcePool pool;
    std::vector<std::vector<TaskId>> layers;
    std::vector<PicoSeconds> durations;
    std::vector<std::vector<TaskId>> deps; // deps[task] = prerequisite ids
};

RandomDag
makeRandomDag(std::uint64_t seed)
{
    RandomDag dag;
    Rng rng(seed);
    const int num_resources = 2 + static_cast<int>(rng.nextBounded(6));
    for (int r = 0; r < num_resources; ++r)
        dag.pool.create("res" + std::to_string(r));

    const int num_layers = 2 + static_cast<int>(rng.nextBounded(5));
    for (int layer = 0; layer < num_layers; ++layer) {
        std::vector<TaskId> row;
        const int width = 1 + static_cast<int>(rng.nextBounded(6));
        for (int i = 0; i < width; ++i) {
            const PicoSeconds duration = 1 + rng.nextBounded(50);
            std::vector<std::size_t> resources;
            if (rng.nextBounded(4) != 0)
                resources.push_back(rng.nextBounded(num_resources));
            const TaskId id = dag.graph.addTask(
                {"t", resources, duration, 0, ""});
            dag.durations.push_back(duration);
            dag.deps.emplace_back();
            if (layer > 0) {
                // Each task depends on 1..3 tasks of the previous layer.
                const auto &prev = dag.layers[layer - 1];
                const int fanin =
                    1 + static_cast<int>(rng.nextBounded(3));
                for (int d = 0; d < fanin; ++d) {
                    const TaskId dep =
                        prev[rng.nextBounded(prev.size())];
                    dag.graph.addDep(id, dep);
                    dag.deps[id].push_back(dep);
                }
            }
            row.push_back(id);
        }
        dag.layers.push_back(std::move(row));
    }
    return dag;
}

/** Longest dependency-chain duration (ignores resources): lower bound. */
PicoSeconds
criticalPath(const RandomDag &dag)
{
    std::vector<PicoSeconds> finish(dag.durations.size(), 0);
    for (TaskId id = 0; id < dag.durations.size(); ++id) {
        PicoSeconds ready = 0;
        for (TaskId dep : dag.deps[id])
            ready = std::max(ready, finish[dep]);
        finish[id] = ready + dag.durations[id];
    }
    PicoSeconds best = 0;
    for (PicoSeconds f : finish)
        best = std::max(best, f);
    return best;
}

class RandomDagProperty : public testing::TestWithParam<int>
{
};

TEST_P(RandomDagProperty, SchedulingInvariants)
{
    RandomDag dag = makeRandomDag(GetParam() * 7919 + 13);
    const ExecResult result = dag.graph.execute(dag.pool);

    // Bounds: critical path <= makespan <= serial sum.
    PicoSeconds serial = 0;
    for (PicoSeconds d : dag.durations)
        serial += d;
    EXPECT_GE(result.makespan, criticalPath(dag));
    EXPECT_LE(result.makespan, serial);

    // Dependencies respected: a task ends at least its duration after
    // every prerequisite's end.
    for (TaskId id = 0; id < dag.durations.size(); ++id)
        for (TaskId dep : dag.deps[id])
            EXPECT_GE(result.endTimes[id],
                      result.endTimes[dep] + dag.durations[id]);

    // No resource is busy longer than the run.
    for (std::size_t r = 0; r < dag.pool.size(); ++r)
        EXPECT_LE(dag.pool[r].busyTime(), result.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty, testing::Range(0, 24));

/** Routing invariants over bank pairs of a full machine. */
class RouteProperty
    : public testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static Machine &
    threeD()
    {
        static Machine machine{
            AcceleratorConfig::lerGan(ReplicaDegree::Low)};
        return machine;
    }
    static Machine &
    hTree()
    {
        static Machine machine{AcceleratorConfig::prime()};
        return machine;
    }
};

TEST_P(RouteProperty, RoutesExistAndAreSane)
{
    auto [bank_a, bank_b] = GetParam();
    const Route &r3d = threeD().routeTiles(bank_a, 2, bank_b, 9, true);
    const Route &r2d = hTree().routeTiles(bank_a, 2, bank_b, 9, true);
    ASSERT_TRUE(r3d.valid());
    ASSERT_TRUE(r2d.valid());
    EXPECT_GT(r3d.minBytesPerNs, 0.0);

    // The 3D connection never routes slower than the H-tree machine.
    EXPECT_LE(r3d.latencyNs, r2d.latencyNs);

    // Latency symmetry (undirected wires).
    const Route &back = threeD().routeTiles(bank_b, 9, bank_a, 2, true);
    EXPECT_DOUBLE_EQ(r3d.latencyNs, back.latencyNs);

    // Smode routes (H-tree + bus only) are never faster than Cmode.
    const Route &smode = threeD().routeTiles(bank_a, 2, bank_b, 9, false);
    ASSERT_TRUE(smode.valid());
    EXPECT_GE(smode.latencyNs, r3d.latencyNs);
}

INSTANTIATE_TEST_SUITE_P(
    BankPairs, RouteProperty,
    testing::Combine(testing::Values(0, 1, 2, 3, 4, 5),
                     testing::Values(0, 1, 2, 3, 4, 5)));

TEST(RouteInvariants, IntraBankNeverCrossesTheBus)
{
    Machine machine{AcceleratorConfig::lerGan(ReplicaDegree::Low)};
    for (int a = 0; a < 16; a += 5) {
        for (int b = 0; b < 16; b += 3) {
            const Route &route = machine.routeTiles(0, a, 0, b, true);
            for (int link : route.links)
                EXPECT_NE(machine.topo().link(link).kind, LinkKind::Bus);
        }
    }
}

TEST(RouteInvariants, StackedBankRouteUsesVerticalWire)
{
    Machine machine{AcceleratorConfig::lerGan(ReplicaDegree::Low)};
    const Route &route = machine.routeTiles(0, 5, 1, 5, true);
    ASSERT_EQ(route.links.size(), 1u);
    EXPECT_EQ(machine.topo().link(route.links[0]).kind,
              LinkKind::Vertical);
}

} // namespace
} // namespace lergan
