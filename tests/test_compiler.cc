/**
 * @file
 * Tests for the LerGAN compiler: placement, replica policy application,
 * normalized-space fitting and the compile-time model.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

TEST(Compiler, BankRolesFollowFig13)
{
    EXPECT_EQ(bankForPhase(Phase::GFwd), 0);
    EXPECT_EQ(bankForPhase(Phase::GBwdWeight), 1);
    EXPECT_EQ(bankForPhase(Phase::GBwdErr), 2);
    EXPECT_EQ(bankForPhase(Phase::DFwd), 3);
    EXPECT_EQ(bankForPhase(Phase::DBwdWeight), 4);
    EXPECT_EQ(bankForPhase(Phase::DBwdErr), 5);
}

TEST(Compiler, AllPhasesCompiled)
{
    const GanModel model = makeBenchmark("DCGAN");
    const CompiledGan compiled =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    EXPECT_EQ(compiled.phases.size(), 6u);
    for (Phase phase : kAllPhases) {
        const CompiledPhase &cp = compiled.phase(phase);
        EXPECT_FALSE(cp.ops.empty());
        for (const MappedOp &op : cp.ops) {
            EXPECT_EQ(op.bank, bankForPhase(phase));
            EXPECT_GE(op.tileCount, 1);
            EXPECT_LE(op.tileCount, 16);
            EXPECT_GT(op.cost.waves, 0u) << op.op.label;
        }
    }
}

TEST(Compiler, ZfdrConfigUsesZfdrOnSparseOpsOnly)
{
    const GanModel model = makeBenchmark("DCGAN");
    const CompiledGan compiled =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &op : phase.ops)
            EXPECT_EQ(op.usesZfdr, op.op.zfdrApplicable()) << op.op.label;
    }
}

TEST(Compiler, NormalConfigNeverUsesZfdr)
{
    const GanModel model = makeBenchmark("DCGAN");
    const CompiledGan compiled =
        compileGan(model, AcceleratorConfig::prime());
    for (const CompiledPhase &phase : compiled.phases)
        for (const MappedOp &op : phase.ops)
            EXPECT_FALSE(op.usesZfdr);
}

TEST(Compiler, WeightPhasesMarkPerItemWrites)
{
    const GanModel model = makeBenchmark("DCGAN");
    const CompiledGan compiled =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    for (const MappedOp &op : compiled.phase(Phase::DBwdWeight).ops) {
        if (op.op.pattern != OpPattern::DenseFc) {
            EXPECT_TRUE(op.perItemWrite) << op.op.label;
        }
    }
    for (const MappedOp &op : compiled.phase(Phase::DFwd).ops)
        EXPECT_FALSE(op.perItemWrite) << op.op.label;
}

TEST(Compiler, HigherDegreeUsesMoreSpaceAndFewerWaves)
{
    const GanModel model = makeBenchmark("DCGAN");
    const CompiledGan low =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const CompiledGan high =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::High));
    EXPECT_GT(high.crossbarsUsed, low.crossbarsUsed);
    // Waves never increase with more duplication.
    for (std::size_t p = 0; p < low.phases.size(); ++p) {
        for (std::size_t i = 0; i < low.phases[p].ops.size(); ++i) {
            EXPECT_LE(high.phases[p].ops[i].cost.waves,
                      low.phases[p].ops[i].cost.waves);
        }
    }
}

TEST(Compiler, ZfdrSavesInputTraffic)
{
    const GanModel model = makeBenchmark("DCGAN");
    const CompiledGan zfdr =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const CompiledGan normal =
        compileGan(model, AcceleratorConfig::prime());
    for (std::size_t p = 0; p < zfdr.phases.size(); ++p) {
        for (std::size_t i = 0; i < zfdr.phases[p].ops.size(); ++i) {
            EXPECT_LE(zfdr.phases[p].ops[i].cost.inputElems,
                      normal.phases[p].ops[i].cost.inputElems);
        }
    }
}

TEST(Compiler, NormalizedSpaceRespectsBudget)
{
    const GanModel model = makeBenchmark("DCGAN");
    AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::High);
    const CompiledGan unconstrained = compileGan(model, config);

    config.normalizedSpace = true;
    config.spaceBudgetCrossbars = unconstrained.crossbarsUsed / 4;
    const CompiledGan fitted = compileGan(model, config);
    EXPECT_LT(fitted.crossbarsUsed, unconstrained.crossbarsUsed);
    // Within ~2x of the budget (integer floors stop exact fitting).
    EXPECT_LE(fitted.crossbarsUsed, config.spaceBudgetCrossbars * 2);
}

TEST(Compiler, NormalizedSpaceGrowsIntoSurplus)
{
    const GanModel model = makeBenchmark("cGAN");
    AcceleratorConfig config = AcceleratorConfig::prime();
    const CompiledGan base = compileGan(model, config);

    config.normalizedSpace = true;
    config.spaceBudgetCrossbars = base.crossbarsUsed * 8;
    const CompiledGan grown = compileGan(model, config);
    EXPECT_GT(grown.crossbarsUsed, base.crossbarsUsed);
    EXPECT_LE(grown.crossbarsUsed, config.spaceBudgetCrossbars);
}

TEST(Compiler, UpdateVolumesCoverBothKernelCopies)
{
    const GanModel model = makeBenchmark("DCGAN");
    const CompiledGan compiled =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    std::uint64_t d_kernels = 0;
    for (Phase phase : {Phase::DFwd, Phase::DBwdErr})
        for (const MappedOp &op : compiled.phase(phase).ops)
            d_kernels += op.cost.weightElems;
    EXPECT_EQ(compiled.updateElemsD, d_kernels);
    EXPECT_GT(compiled.updateElemsG, 0u);
}

TEST(Compiler, CompileTimeOverheadNearPaper)
{
    // Sec. VI-E: ZFDR/ZFDM adds 32.52% compile time on average.
    double overhead_sum = 0;
    int n = 0;
    for (const GanModel &model : allBenchmarks()) {
        const CompiledGan compiled = compileGan(
            model, AcceleratorConfig::lerGan(ReplicaDegree::Middle));
        EXPECT_GT(compiled.compileMs, compiled.compileMsTraditional);
        overhead_sum += compiled.compileMs / compiled.compileMsTraditional -
                        1.0;
        ++n;
    }
    EXPECT_NEAR(overhead_sum / n, 0.3252, 0.15);
}

TEST(Compiler, TilePlacementStaysInBank)
{
    for (const char *name : {"DCGAN", "3D-GAN", "MAGAN-MNIST"}) {
        const CompiledGan compiled =
            compileGan(makeBenchmark(name),
                       AcceleratorConfig::lerGan(ReplicaDegree::High));
        for (const CompiledPhase &phase : compiled.phases) {
            for (const MappedOp &op : phase.ops) {
                EXPECT_GE(op.tileStart, 0);
                EXPECT_LT(op.tileStart, 16);
            }
        }
    }
}

} // namespace
} // namespace lergan
