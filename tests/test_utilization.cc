/**
 * @file
 * Tests for the utilization reporting over finished runs: fragment
 * matching, the empty pool, the deterministic busy/name tie-break, the
 * per-category metric rollup, and Resource wait-time accounting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/resource.hh"
#include "sim/utilization.hh"
#include "telemetry/metrics.hh"

namespace lergan {
namespace {

/** Pool with known busy times: two wires, one tile, one idle switch. */
ResourcePool
examplePool()
{
    ResourcePool pool;
    const std::size_t wire_a = pool.create("link.h.wire.0");
    const std::size_t wire_b = pool.create("link.v.wire.1");
    const std::size_t tile = pool.create("bank0.tile3.compute");
    pool.create("switch.2"); // never reserved
    pool[wire_a].reserve(0, 100);
    pool[wire_b].reserve(0, 300);
    pool[tile].reserve(0, 400);
    return pool;
}

TEST(Utilization, FragmentMatchingAveragesMatches)
{
    const ResourcePool pool = examplePool();
    const PicoSeconds makespan = 1000;
    // Two wires at 0.1 and 0.3 utilization average to 0.2.
    EXPECT_DOUBLE_EQ(utilizationOf(pool, makespan, "wire"), 0.2);
    EXPECT_DOUBLE_EQ(utilizationOf(pool, makespan, ".compute"), 0.4);
    // The idle switch still matches (it averages in as zero).
    EXPECT_DOUBLE_EQ(utilizationOf(pool, makespan, "switch"), 0.0);
    // No match at all is 0, not a division by zero.
    EXPECT_DOUBLE_EQ(utilizationOf(pool, makespan, "nonesuch"), 0.0);
    // Zero makespan is 0, not a division by zero.
    EXPECT_DOUBLE_EQ(utilizationOf(pool, 0, "wire"), 0.0);
}

TEST(Utilization, EmptyPool)
{
    const ResourcePool pool;
    EXPECT_DOUBLE_EQ(utilizationOf(pool, 1000, "wire"), 0.0);
    EXPECT_TRUE(topBusyResources(pool, 1000, 10).empty());
    std::ostringstream oss;
    printUtilization(oss, pool, 1000, 10);
    EXPECT_TRUE(oss.str().empty());
}

TEST(Utilization, TopBusySortsByBusyThenName)
{
    ResourcePool pool;
    const std::size_t b = pool.create("beta");
    const std::size_t a = pool.create("alpha");
    const std::size_t c = pool.create("gamma");
    pool[a].reserve(0, 100); // ties with beta
    pool[b].reserve(0, 100);
    pool[c].reserve(0, 500);

    const auto top = topBusyResources(pool, 1000, 10);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].name, "gamma"); // busiest first
    EXPECT_EQ(top[1].name, "alpha"); // tie broken by name
    EXPECT_EQ(top[2].name, "beta");
    EXPECT_DOUBLE_EQ(top[0].utilization, 0.5);
    EXPECT_EQ(top[0].reservations, 1u);

    // top_k truncates after sorting.
    EXPECT_EQ(topBusyResources(pool, 1000, 1).size(), 1u);
    EXPECT_EQ(topBusyResources(pool, 1000, 1)[0].name, "gamma");
}

TEST(Utilization, RecordPoolMetricsAggregatesByCategory)
{
    const ResourcePool pool = examplePool();
    MetricsRegistry registry;
    recordPoolMetrics(pool, registry);
    const MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.at("sim.resource.busy_ps.wire"), 400u);
    EXPECT_EQ(snapshot.counters.at("sim.resource.busy_ps.compute"),
              400u);
    EXPECT_EQ(snapshot.counters.at("sim.resource.reservations.wire"),
              2u);
    // The never-reserved switch contributes no instruments at all.
    EXPECT_EQ(snapshot.counters.count("sim.resource.busy_ps.switch"),
              0u);
}

TEST(Resource, WaitTimeMeasuresQueueing)
{
    Resource res("bank0.tile0.compute");
    // First reservation starts on time: no wait.
    EXPECT_EQ(res.reserve(10, 100), 10);
    EXPECT_EQ(res.waitTime(), 0);
    // Ready at 50 but the resource is busy until 110: waits 60.
    EXPECT_EQ(res.reserve(50, 10), 110);
    EXPECT_EQ(res.waitTime(), 60);
    // Ready after the resource frees: still no extra wait.
    EXPECT_EQ(res.reserve(500, 10), 500);
    EXPECT_EQ(res.waitTime(), 60);
    EXPECT_EQ(res.busyTime(), 120);
    EXPECT_EQ(res.reservations(), 3u);

    res.reset();
    EXPECT_EQ(res.waitTime(), 0);
    EXPECT_EQ(res.busyTime(), 0);
    EXPECT_EQ(res.reservations(), 0u);
}

} // namespace
} // namespace lergan
