/**
 * @file
 * Fault-injection tests: deterministic seed-driven fault maps, wear
 * derived from write densities, allocator rerouting under every fault
 * class, and graceful degradation instead of crashes or silent use of
 * dead hardware.
 */

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/api.hh"
#include "core/sweep.hh"
#include "faults/fault_model.hh"
#include "faults/montecarlo.hh"
#include "faults/wear.hh"
#include "reram/allocator.hh"

namespace lergan {
namespace {

/** A FaultGeometry small enough to reason about by hand. */
FaultGeometry
tinyGeometry()
{
    FaultGeometry geometry;
    geometry.banks = 2;
    geometry.tilesPerBank = 4;
    geometry.crossbarsPerTile = 64;
    return geometry;
}

// ---------------------------------------------------------------------
// Legacy manual-failed-tile behavior (pre-dates the fault subsystem).
// ---------------------------------------------------------------------

TEST(Faults, AllocatorSkipsFailedTiles)
{
    CArrayAllocator alloc(1, 4, 100);
    alloc.markFailed(0, 1);
    alloc.markFailed(0, 2);
    EXPECT_TRUE(alloc.isFailed(0, 1));
    EXPECT_FALSE(alloc.isFailed(0, 0));
    EXPECT_EQ(alloc.freeInBank(0), 200u);

    const Allocation a = alloc.allocate(0, 150, 100, "op");
    EXPECT_EQ(a.reserved(), 150u);
    for (const CrossbarRange &range : a.ranges) {
        EXPECT_NE(range.tile, 1);
        EXPECT_NE(range.tile, 2);
    }
}

TEST(Faults, AllFailedBankOversubscribesOntoPin)
{
    CArrayAllocator alloc(1, 2, 10);
    alloc.markFailed(0, 0);
    alloc.markFailed(0, 1);
    const Allocation a = alloc.allocate(0, 5, 10, "op");
    EXPECT_EQ(a.reserved(), 0u);
    EXPECT_EQ(a.oversubscribed, 5u);
    ASSERT_FALSE(a.tiles().empty());
}

TEST(Faults, CompilerAvoidsFailedTiles)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.failedTiles = {{0, 3}, {3, 0}, {5, 7}};
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    for (const auto &[bank, tile] : config.failedTiles)
        EXPECT_EQ(compiled.bankUsage[bank][tile], 0u);
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &op : phase.ops) {
            for (const CrossbarRange &range : op.allocation.ranges) {
                if (range.count == 0)
                    continue;
                for (const auto &[bank, tile] : config.failedTiles) {
                    EXPECT_FALSE(range.bank == bank && range.tile == tile)
                        << op.op.label;
                }
            }
        }
    }
}

TEST(Faults, SimulationRunsWithFailedTiles)
{
    AcceleratorConfig healthy = AcceleratorConfig::lerGan(
        ReplicaDegree::Low);
    healthy.batchSize = 8;
    AcceleratorConfig degraded = healthy;
    // Kill a quarter of every bank.
    for (int bank = 0; bank < 6; ++bank)
        for (int tile = 0; tile < 4; ++tile)
            degraded.failedTiles.emplace_back(bank, tile);

    const GanModel model = makeBenchmark("cGAN");
    const TrainingReport ok = simulateTraining(model, healthy);
    const TrainingReport hurt = simulateTraining(model, degraded);
    EXPECT_GT(hurt.iterationTime, 0u);
    // Losing tiles can only slow things down (or tie).
    EXPECT_GE(hurt.iterationTime, ok.iterationTime);
}

TEST(FaultsDeath, MarkingAnOccupiedTilePanics)
{
    CArrayAllocator alloc(1, 2, 10);
    alloc.allocate(0, 5, 10, "op");
    EXPECT_DEATH(alloc.markFailed(0, 0), "already holds");
}

// ---------------------------------------------------------------------
// Allocator capacity accounting (regression: double-marking a tile
// failed must not double-subtract its capacity).
// ---------------------------------------------------------------------

TEST(Faults, MarkFailedTwiceDoesNotDoubleSubtract)
{
    CArrayAllocator alloc(1, 4, 100);
    alloc.markFailed(0, 1);
    EXPECT_EQ(alloc.freeInBank(0), 300u);
    alloc.markFailed(0, 1); // idempotent, not a second subtraction
    EXPECT_EQ(alloc.freeInBank(0), 300u);
    EXPECT_TRUE(alloc.isFailed(0, 1));

    const Allocation a = alloc.allocate(0, 300, 100, "op");
    EXPECT_EQ(a.reserved(), 300u);
    EXPECT_EQ(a.oversubscribed, 0u);
}

TEST(Faults, ReduceCapacityShrinksOneTile)
{
    CArrayAllocator alloc(1, 2, 100);
    alloc.reduceCapacity(0, 0, 30);
    EXPECT_EQ(alloc.capacityOfTile(0, 0), 70u);
    EXPECT_EQ(alloc.freeInBank(0), 170u);

    // The reduced tile only yields its surviving crossbars.
    const Allocation a = alloc.allocate(0, 170, 200, "op");
    EXPECT_EQ(a.reserved(), 170u);
    std::uint64_t on_tile0 = 0;
    for (const CrossbarRange &range : a.ranges)
        if (range.tile == 0)
            on_tile0 += range.count;
    EXPECT_LE(on_tile0, 70u);
}

TEST(Faults, ReduceCapacityBeyondTileClampsToZero)
{
    CArrayAllocator alloc(1, 2, 100);
    alloc.reduceCapacity(0, 1, 1000);
    EXPECT_EQ(alloc.capacityOfTile(0, 1), 0u);
    EXPECT_EQ(alloc.freeInBank(0), 100u);
}

// ---------------------------------------------------------------------
// Fault-map sampling: seed determinism and rate semantics.
// ---------------------------------------------------------------------

FaultConfig
sampleRates()
{
    FaultConfig faults;
    faults.seed = 42;
    faults.cellStuckRate = 0.01;
    faults.columnStuckRate = 0.02;
    faults.tileKillRate = 0.1;
    return faults;
}

TEST(FaultMap, SameSeedIsByteIdentical)
{
    const FaultGeometry geometry = tinyGeometry();
    const FaultConfig faults = sampleRates();
    const std::string once = buildFaultMap(geometry, faults).serialize();
    const std::string again = buildFaultMap(geometry, faults).serialize();
    EXPECT_EQ(once, again);
    EXPECT_FALSE(once.empty());
}

TEST(FaultMap, DistinctSeedsProduceDistinctMaps)
{
    const FaultGeometry geometry = tinyGeometry();
    FaultConfig faults = sampleRates();
    const std::string at42 = buildFaultMap(geometry, faults).serialize();
    faults.seed = 43;
    const std::string at43 = buildFaultMap(geometry, faults).serialize();
    EXPECT_NE(at42, at43);
}

TEST(FaultMap, ZeroRatesSampleNothing)
{
    const FaultMap map = buildFaultMap(tinyGeometry(), FaultConfig{});
    EXPECT_TRUE(map.killedTiles().empty());
    EXPECT_EQ(map.lostCrossbars(), 0u);
}

TEST(FaultMap, KillRateOneKillsEveryTile)
{
    FaultConfig faults;
    faults.tileKillRate = 1.0;
    const FaultGeometry geometry = tinyGeometry();
    const FaultMap map = buildFaultMap(geometry, faults);
    EXPECT_EQ(static_cast<int>(map.killedTiles().size()),
              geometry.banks * geometry.tilesPerBank);
    EXPECT_EQ(map.lostCrossbars(), map.totalCrossbars());
}

TEST(FaultMath, BinomialTailMatchesClosedForm)
{
    // P[Binom(n, p) > 0] = 1 - (1-p)^n.
    EXPECT_NEAR(binomialTailAbove(10, 0.1, 0),
                1.0 - std::pow(0.9, 10), 1e-12);
    EXPECT_DOUBLE_EQ(binomialTailAbove(5, 0.0, 0), 0.0);
    EXPECT_DOUBLE_EQ(binomialTailAbove(5, 1.0, 4), 1.0);
    EXPECT_DOUBLE_EQ(binomialTailAbove(5, 0.3, 5), 0.0);
}

TEST(FaultMath, SampleBinomialIsDeterministicAndBounded)
{
    for (std::uint64_t n : {1ull, 64ull, 1000ull, 100000ull}) {
        Rng a(7), b(7);
        const std::uint64_t first = sampleBinomial(a, n, 0.25);
        EXPECT_EQ(first, sampleBinomial(b, n, 0.25));
        EXPECT_LE(first, n);
    }
}

// ---------------------------------------------------------------------
// Wear: write densities feed the wear map; duplication degree feeds
// write densities.
// ---------------------------------------------------------------------

double
totalWrites(const WearInputs &inputs)
{
    double total = 0.0;
    for (const auto &bank : inputs.writesPerIteration)
        for (double writes : bank)
            total += writes;
    return total;
}

TEST(Wear, WriteDensityMonotoneInDuplicationDegree)
{
    const GanModel model = makeBenchmark("DCGAN");
    double previous = 0.0;
    for (ReplicaDegree degree : {ReplicaDegree::Low, ReplicaDegree::Middle,
                                 ReplicaDegree::High}) {
        const AcceleratorConfig config = AcceleratorConfig::lerGan(degree);
        const CompiledGan compiled = compileGan(model, config);
        const double writes =
            totalWrites(compiledWriteDensities(compiled, config));
        EXPECT_GT(writes, 0.0);
        // More replicas = more stored copies rewritten per update.
        EXPECT_GE(writes, previous);
        previous = writes;
    }
}

TEST(Wear, WearMapScalesWithPriorIterations)
{
    WearInputs inputs;
    inputs.cellsPerTile = 1000;
    inputs.writesPerIteration = {{500.0, 0.0}};
    const WearMap once = computeWearMap(inputs, 1.0, 10.0);
    const WearMap tenfold = computeWearMap(inputs, 10.0, 10.0);
    EXPECT_DOUBLE_EQ(once[0][0], 0.05);
    EXPECT_DOUBLE_EQ(tenfold[0][0], 0.5);
    EXPECT_DOUBLE_EQ(once[0][1], 0.0);
}

TEST(Wear, ApplyWearKillsOnlyWornOutTiles)
{
    FaultMap map = buildFaultMap(tinyGeometry(), FaultConfig{});
    WearMap wear(2, std::vector<double>(4, 0.25));
    wear[1][2] = 1.0; // exactly one full lifetime
    applyWear(map, wear);
    EXPECT_EQ(map.killedTiles(),
              (std::vector<std::pair<int, int>>{{1, 2}}));
    EXPECT_DOUBLE_EQ(map.tiles[0][0].wear, 0.25);
}

TEST(Wear, CompileDerivesWearFromWriteDensities)
{
    // Predict from the public adapter which tiles a given prior-
    // iteration count wears out; the compiler's internal derivation
    // must agree exactly.
    const GanModel model = makeBenchmark("DCGAN");
    const AcceleratorConfig healthy =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);
    const CompiledGan reference = compileGan(model, healthy);
    const WearInputs densities =
        compiledWriteDensities(reference, healthy);

    const double endurance = 1e10;
    const WearMap unit = computeWearMap(densities, 1.0, endurance);
    double max_wear = 0.0;
    for (const auto &bank : unit)
        for (double wear : bank)
            max_wear = std::max(max_wear, wear);
    ASSERT_GT(max_wear, 0.0);

    // Push the hottest tiles just past one lifetime.
    const double prior = 1.0001 / max_wear;
    std::set<std::pair<int, int>> predicted;
    std::vector<int> killed_per_bank(unit.size(), 0);
    for (std::size_t bank = 0; bank < unit.size(); ++bank) {
        for (std::size_t tile = 0; tile < unit[bank].size(); ++tile) {
            if (unit[bank][tile] * prior >= 1.0) {
                predicted.insert({(int)bank, (int)tile});
                ++killed_per_bank[bank];
            }
        }
    }
    ASSERT_FALSE(predicted.empty());

    AcceleratorConfig worn = healthy;
    worn.faults.priorIterations = prior;
    worn.faults.cellEndurance = endurance;
    bool some_bank_dead = false;
    for (std::size_t bank = 0; bank < unit.size(); ++bank)
        some_bank_dead = some_bank_dead ||
                         killed_per_bank[bank] ==
                             static_cast<int>(unit[bank].size());
    if (some_bank_dead) {
        EXPECT_THROW(compileGan(model, worn), std::invalid_argument);
        return;
    }
    const CompiledGan degraded = compileGan(model, worn);
    EXPECT_TRUE(degraded.faultImpact.active);
    const std::set<std::pair<int, int>> actual(
        degraded.faultImpact.unusableTiles.begin(),
        degraded.faultImpact.unusableTiles.end());
    EXPECT_EQ(actual, predicted);
    for (const auto &[bank, tile] : predicted)
        EXPECT_EQ(degraded.bankUsage[bank][tile], 0u);
}

// ---------------------------------------------------------------------
// Rerouting under every fault class, end to end through compileGan.
// ---------------------------------------------------------------------

/** No allocation touches an unusable tile; usage there is zero. */
void
expectRoutedAround(const CompiledGan &compiled)
{
    ASSERT_TRUE(compiled.faultImpact.active);
    const std::set<std::pair<int, int>> unusable(
        compiled.faultImpact.unusableTiles.begin(),
        compiled.faultImpact.unusableTiles.end());
    for (const auto &[bank, tile] : unusable)
        EXPECT_EQ(compiled.bankUsage[bank][tile], 0u);
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &op : phase.ops) {
            for (const CrossbarRange &range : op.allocation.ranges) {
                if (range.count > 0) {
                    EXPECT_FALSE(unusable.count({range.bank, range.tile}))
                        << op.op.label << " on killed tile " << range.bank
                        << "." << range.tile;
                }
            }
        }
    }
}

TEST(FaultClasses, StuckCellsDisableCrossbars)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.faults.seed = 7;
    // Right at the tolerance: each crossbar dies with probability ~1/2,
    // well under the (raised) dead-crossbar kill threshold.
    config.faults.cellStuckRate = config.faults.cellTolerance;
    config.faults.tileDeadCrossbarTolerance = 0.95;
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    EXPECT_TRUE(compiled.faultImpact.active);
    EXPECT_GT(compiled.faultImpact.deadCrossbars, 0u);
    EXPECT_GT(compiled.faultImpact.capacityLostFraction, 0.0);
    expectRoutedAround(compiled);
}

TEST(FaultClasses, StuckColumnsDisableCrossbars)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.faults.seed = 7;
    config.faults.columnStuckRate = config.faults.columnTolerance;
    config.faults.tileDeadCrossbarTolerance = 0.95;
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    EXPECT_TRUE(compiled.faultImpact.active);
    EXPECT_GT(compiled.faultImpact.deadCrossbars, 0u);
    expectRoutedAround(compiled);
}

TEST(FaultClasses, TileKillsRerouteAllocations)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.faults.seed = 11;
    config.faults.tileKillRate = 0.15;
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    EXPECT_GT(compiled.faultImpact.killedTiles, 0u);
    EXPECT_GT(compiled.faultImpact.remappedCrossbars, 0u);
    expectRoutedAround(compiled);
}

TEST(FaultClasses, ManualFailedTilesMergeIntoTheFaultMap)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.faults.seed = 11;
    config.faults.tileKillRate = 0.05;
    config.failedTiles = {{2, 5}};
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    const std::set<std::pair<int, int>> unusable(
        compiled.faultImpact.unusableTiles.begin(),
        compiled.faultImpact.unusableTiles.end());
    EXPECT_TRUE(unusable.count({2, 5}));
    expectRoutedAround(compiled);
}

// ---------------------------------------------------------------------
// Graceful failure: a fully dead bank is a user-visible error, never a
// crash, and never aborts the surrounding sweep.
// ---------------------------------------------------------------------

TEST(Faults, FullyDeadBankThrowsInvalidArgument)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.faults.tileKillRate = 1.0;
    EXPECT_THROW(compileGan(makeBenchmark("DCGAN"), config),
                 std::invalid_argument);
    EXPECT_THROW(SimulationSession(config).run(makeBenchmark("DCGAN")),
                 std::invalid_argument);
}

TEST(Faults, DeadBankFailsItsSweepPointOnly)
{
    AcceleratorConfig healthy = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    AcceleratorConfig dead = healthy;
    dead.faults.tileKillRate = 1.0;

    ExperimentSweep sweep;
    sweep.addBenchmark(makeBenchmark("DCGAN"))
        .addConfig("healthy", healthy)
        .addConfig("dead", dead);
    const std::vector<SweepResult> results = sweep.run(1);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_TRUE(results[1].failed);
    EXPECT_NE(results[1].error.find("bank"), std::string::npos);
}

// ---------------------------------------------------------------------
// Session builder, audit integration and cache keying.
// ---------------------------------------------------------------------

TEST(Faults, SessionWithFaultsProducesAuditedDegradedRun)
{
    FaultConfig faults;
    faults.seed = 3;
    faults.tileKillRate = 0.1;
    SimulationSession session(
        AcceleratorConfig::lerGan(ReplicaDegree::Low));
    session.withFaults(faults);

    TrainingReport report;
    const AuditVerdict verdict =
        session.audit(makeBenchmark("DCGAN"), 1, &report);
    EXPECT_TRUE(verdict.ok()) << verdict.summary();
    // All five checks run on a degraded traced run.
    EXPECT_EQ(verdict.checksRun, 5u);
    EXPECT_GT(report.stats.get("fault.killed_tiles"), 0.0);
    EXPECT_GT(report.stats.get("fault.capacity_lost_frac"), 0.0);
}

TEST(Faults, ZeroRateFaultConfigIsInert)
{
    SimulationSession session(
        AcceleratorConfig::lerGan(ReplicaDegree::Low));
    session.withFaults(FaultConfig{}); // all rates zero
    const TrainingReport report = session.run(makeBenchmark("DCGAN"));
    EXPECT_FALSE(report.stats.has("fault.killed_tiles"));
    EXPECT_FALSE(report.stats.has("fault.capacity_lost_frac"));
}

TEST(Faults, InvalidFaultConfigIsAUserError)
{
    FaultConfig faults;
    faults.tileKillRate = -0.5;
    EXPECT_THROW(faults.checkUsable(), std::invalid_argument);
    faults.tileKillRate = 1.5;
    EXPECT_THROW(faults.checkUsable(), std::invalid_argument);
    faults = FaultConfig{};
    faults.cellEndurance = 0.0;
    EXPECT_THROW(faults.checkUsable(), std::invalid_argument);
}

TEST(Faults, DistinctSeedsAreDistinctCacheKeys)
{
    FaultConfig faults;
    faults.seed = 1;
    faults.tileKillRate = 0.1;
    SimulationSession session(
        AcceleratorConfig::lerGan(ReplicaDegree::Low));
    session.withFaults(faults);
    const GanModel model = makeBenchmark("DCGAN");
    session.run(model);
    EXPECT_EQ(session.cacheMisses(), 1u);
    session.run(model); // same seed: cache hit
    EXPECT_EQ(session.cacheHits(), 1u);

    faults.seed = 2;
    session.withFaults(faults);
    session.run(model); // different fault map: must recompile
    EXPECT_EQ(session.cacheMisses(), 2u);
}

TEST(MonteCarlo, TrialSeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (std::size_t point = 0; point < 4; ++point)
        for (int trial = 0; trial < 32; ++trial)
            seeds.insert(monteCarloTrialSeed(9, point, trial));
    EXPECT_EQ(seeds.size(), 4u * 32u);
}

} // namespace
} // namespace lergan
