/**
 * @file
 * Fault-injection tests: mappings route around failed tiles and the
 * simulation degrades gracefully instead of using dead hardware.
 */

#include <gtest/gtest.h>

#include "core/api.hh"
#include "reram/allocator.hh"

namespace lergan {
namespace {

TEST(Faults, AllocatorSkipsFailedTiles)
{
    CArrayAllocator alloc(1, 4, 100);
    alloc.markFailed(0, 1);
    alloc.markFailed(0, 2);
    EXPECT_TRUE(alloc.isFailed(0, 1));
    EXPECT_FALSE(alloc.isFailed(0, 0));
    EXPECT_EQ(alloc.freeInBank(0), 200u);

    const Allocation a = alloc.allocate(0, 150, 100, "op");
    EXPECT_EQ(a.reserved(), 150u);
    for (const CrossbarRange &range : a.ranges) {
        EXPECT_NE(range.tile, 1);
        EXPECT_NE(range.tile, 2);
    }
}

TEST(Faults, AllFailedBankOversubscribesOntoPin)
{
    CArrayAllocator alloc(1, 2, 10);
    alloc.markFailed(0, 0);
    alloc.markFailed(0, 1);
    const Allocation a = alloc.allocate(0, 5, 10, "op");
    EXPECT_EQ(a.reserved(), 0u);
    EXPECT_EQ(a.oversubscribed, 5u);
    ASSERT_FALSE(a.tiles().empty());
}

TEST(Faults, CompilerAvoidsFailedTiles)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.failedTiles = {{0, 3}, {3, 0}, {5, 7}};
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"), config);
    for (const auto &[bank, tile] : config.failedTiles)
        EXPECT_EQ(compiled.bankUsage[bank][tile], 0u);
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &op : phase.ops) {
            for (const CrossbarRange &range : op.allocation.ranges) {
                if (range.count == 0)
                    continue;
                for (const auto &[bank, tile] : config.failedTiles) {
                    EXPECT_FALSE(range.bank == bank && range.tile == tile)
                        << op.op.label;
                }
            }
        }
    }
}

TEST(Faults, SimulationRunsWithFailedTiles)
{
    AcceleratorConfig healthy = AcceleratorConfig::lerGan(
        ReplicaDegree::Low);
    healthy.batchSize = 8;
    AcceleratorConfig degraded = healthy;
    // Kill a quarter of every bank.
    for (int bank = 0; bank < 6; ++bank)
        for (int tile = 0; tile < 4; ++tile)
            degraded.failedTiles.emplace_back(bank, tile);

    const GanModel model = makeBenchmark("cGAN");
    const TrainingReport ok = simulateTraining(model, healthy);
    const TrainingReport hurt = simulateTraining(model, degraded);
    EXPECT_GT(hurt.iterationTime, 0u);
    // Losing tiles can only slow things down (or tie).
    EXPECT_GE(hurt.iterationTime, ok.iterationTime);
}

TEST(FaultsDeath, MarkingAnOccupiedTilePanics)
{
    CArrayAllocator alloc(1, 2, 10);
    alloc.allocate(0, 5, 10, "op");
    EXPECT_DEATH(alloc.markFailed(0, 0), "already holds");
}

} // namespace
} // namespace lergan
