/**
 * @file
 * Tests for the 1-D zero-pattern enumeration, anchored on the paper's
 * CONV1 (Sec. III-A / IV-A) and Fig. 6 worked examples, plus parameterized
 * property sweeps over stride/kernel/padding.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "nn/conv_pattern.hh"

namespace lergan {
namespace {

/** CONV1 of the DCGAN generator: I=4, S'=2, forward pad P=2, R=1, W=5. */
Pattern1D
conv1Pattern()
{
    return sparseGridPattern(4, 2, 2, 1, 5);
}

TEST(SparseGrid, Conv1GridGeometry)
{
    const Pattern1D p = conv1Pattern();
    // Fig. 4: 4 inputs + 3 inserted zeros + 1 trailing zero + 2x2 padding.
    EXPECT_EQ(p.gridLength, 12);
    EXPECT_EQ(p.positions, 8); // the 8x8 output of CONV1
    EXPECT_EQ(p.dataCells, 4);
}

TEST(SparseGrid, Conv1DistinctMasks)
{
    const Pattern1D p = conv1Pattern();
    // 5 distinct 1-D masks -> 25 reshaped matrices in 2D (paper: "we
    // store 25 kinds of reshaped weight matrix in this case").
    EXPECT_EQ(p.distinct(), 5u);
    int interior = 0;
    for (const auto &g : p.groups)
        interior += g.interior;
    EXPECT_EQ(interior, 2); // S' = 2 interior masks
}

TEST(SparseGrid, Conv1ReuseCounts)
{
    const Pattern1D p = conv1Pattern();
    // Interior masks are reused 2 and 3 times -> 2D inside reuse
    // t in {4, 6, 9}, matching the paper's Case 3 for CONV1.
    std::multiset<int> interior_reuse;
    std::multiset<int> edge_reuse;
    for (const auto &g : p.groups) {
        if (g.interior)
            interior_reuse.insert(g.reuse);
        else
            edge_reuse.insert(g.reuse);
    }
    EXPECT_EQ(interior_reuse, (std::multiset<int>{2, 3}));
    EXPECT_EQ(edge_reuse, (std::multiset<int>{1, 1, 1}));
    EXPECT_EQ(p.maxInteriorReuse(), 3); // -> 9 MMV cycles in 2D
}

TEST(SparseGrid, Conv1UsefulTaps)
{
    const Pattern1D p = conv1Pattern();
    // Sum over the 8 window positions of useful taps is 17; squared and
    // multiplied by the 1024 input channels this is the paper's 295,936
    // useful multiplications per kernel.
    EXPECT_EQ(p.usefulTaps(), 17u);
    EXPECT_EQ(p.totalTaps(), 40u); // 8 positions x 5 taps
}

TEST(SparseGrid, ReuseSumsToPositions)
{
    const Pattern1D p = conv1Pattern();
    int total = 0;
    for (const auto &g : p.groups)
        total += g.reuse;
    EXPECT_EQ(total, p.positions);
}

TEST(SparseGrid, StrideOneHasSingleInteriorMask)
{
    // S' = 1 inserts no zeros: away from padding, every window is fully
    // dense, so exactly one interior mask exists.
    const Pattern1D p = sparseGridPattern(8, 1, 2, 0, 5);
    int interior = 0;
    for (const auto &g : p.groups) {
        if (g.interior) {
            ++interior;
            EXPECT_EQ(g.mask.size(), 5u);
        }
    }
    EXPECT_EQ(interior, 1);
}

TEST(SparseGrid, NoPaddingNoRemainder)
{
    const Pattern1D p = sparseGridPattern(4, 2, 0, 0, 3);
    EXPECT_EQ(p.gridLength, 7);
    EXPECT_EQ(p.positions, 5);
    int covered = 0;
    for (const auto &g : p.groups)
        covered += g.reuse;
    EXPECT_EQ(covered, 5);
}

TEST(SparseKernel, Fig6WorkedExample)
{
    // Paper Fig. 6: I=8, P=2, O=4, S=2, R=1 -> nabla-weight is 5x5.
    const Pattern1D p = sparseKernelPattern(8, 2, 4, 2, 1);
    EXPECT_EQ(p.positions, 5); // W = 5
    EXPECT_EQ(p.gridLength, 12);

    // Interior (full) mask reused I - (O-1)S = 2 times per dimension.
    int interior_reuse = 0;
    for (const auto &g : p.groups)
        if (g.interior)
            interior_reuse += g.reuse;
    EXPECT_EQ(interior_reuse, 2);
}

TEST(SparseKernel, InteriorMaskIsFull)
{
    const Pattern1D p = sparseKernelPattern(16, 1, 8, 2, 1);
    for (const auto &g : p.groups) {
        if (g.interior)
            EXPECT_EQ(g.mask.size(), 8u);
        else
            EXPECT_LT(g.mask.size(), 8u);
    }
}

TEST(SparseKernelDeath, KernelWiderThanData)
{
    EXPECT_DEATH(sparseKernelPattern(4, 0, 8, 2, 0), "extent");
}

/** Property sweep: (data, stride, pad, rem, window). */
using GridCase = std::tuple<int, int, int, int, int>;

class SparseGridProperty : public testing::TestWithParam<GridCase>
{
};

TEST_P(SparseGridProperty, MasksPartitionPositions)
{
    auto [data, stride, pad, rem, window] = GetParam();
    if (rem >= stride)
        GTEST_SKIP() << "remainder must be below the stride";
    const int grid = 2 * pad + (data - 1) * stride + 1 + rem;
    if (grid < window)
        GTEST_SKIP() << "window wider than grid";
    const Pattern1D p = sparseGridPattern(data, stride, pad, rem, window);

    // 1. Reuse counts partition the positions.
    int covered = 0;
    for (const auto &g : p.groups)
        covered += g.reuse;
    EXPECT_EQ(covered, p.positions);

    // 2. Masks are distinct.
    std::set<std::vector<int>> seen;
    for (const auto &g : p.groups)
        EXPECT_TRUE(seen.insert(g.mask).second);

    // 3. Useful taps never exceed total taps, and every data cell in
    //    range is matched by the direct recount below.
    EXPECT_LE(p.usefulTaps(), p.totalTaps());
    std::uint64_t direct = 0;
    for (int j = 0; j < p.positions; ++j) {
        for (int w = 0; w < window; ++w) {
            const int x = j + w - pad;
            if (x >= 0 && x % stride == 0 && x / stride < data)
                ++direct;
        }
    }
    EXPECT_EQ(p.usefulTaps(), direct);

    // 4. At most `stride` interior masks exist.
    int interior = 0;
    for (const auto &g : p.groups)
        interior += g.interior;
    EXPECT_LE(interior, stride);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseGridProperty,
    testing::Combine(testing::Values(2, 4, 7, 16),  // data
                     testing::Values(1, 2, 3),      // stride
                     testing::Values(0, 1, 2, 3),   // pad
                     testing::Values(0),            // rem (constrained below)
                     testing::Values(3, 4, 5, 7))); // window

// A second sweep exercising non-zero remainders (rem < stride).
INSTANTIATE_TEST_SUITE_P(
    SweepRemainder, SparseGridProperty,
    testing::Combine(testing::Values(3, 5, 8), testing::Values(2, 3),
                     testing::Values(0, 2), testing::Values(1),
                     testing::Values(4, 5)));

using KernelCase = std::tuple<int, int, int, int, int>;

class SparseKernelProperty : public testing::TestWithParam<KernelCase>
{
};

TEST_P(SparseKernelProperty, MasksPartitionPositions)
{
    auto [data, pad, taps, stride, rem] = GetParam();
    if (rem >= stride)
        GTEST_SKIP() << "remainder must be below the stride";
    if ((taps - 1) * stride + 1 + rem > data + 2 * pad)
        GTEST_SKIP() << "kernel extent exceeds data";
    const Pattern1D p = sparseKernelPattern(data, pad, taps, stride, rem);

    int covered = 0;
    for (const auto &g : p.groups)
        covered += g.reuse;
    EXPECT_EQ(covered, p.positions);

    // At most one interior (full-mask) group; its reuse must match a
    // direct recount of positions where every tap hits data.
    int direct_full = 0;
    for (int j = 0; j < p.positions; ++j) {
        bool full = true;
        for (int k = 0; k < taps; ++k) {
            const int x = j + k * stride;
            if (x < pad || x >= pad + data)
                full = false;
        }
        direct_full += full;
    }
    int interior_groups = 0;
    for (const auto &g : p.groups) {
        if (g.interior) {
            ++interior_groups;
            EXPECT_EQ(g.reuse, direct_full);
        }
    }
    EXPECT_LE(interior_groups, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseKernelProperty,
    testing::Combine(testing::Values(8, 16, 28),   // data
                     testing::Values(0, 1, 2, 3),  // pad
                     testing::Values(2, 4, 8),     // taps
                     testing::Values(1, 2, 3),     // stride
                     testing::Values(0, 1)));      // rem

} // namespace
} // namespace lergan
