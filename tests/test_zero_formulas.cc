/**
 * @file
 * Closed-form zero-count verification: Eq. 6/7 (T-CONV insertion) and
 * Eq. 9/10 (W-CONV-S insertion) evaluated symbolically must match the
 * op-level accounting for every symmetric sparse op of every benchmark
 * and the stride-3 future GAN.
 */

#include <gtest/gtest.h>

#include "nn/zero_analysis.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

/** Eq. 6: N_iz = (S' - 1)(I - 1) + R along one dimension. */
std::uint64_t
eq6InsertedZeros(int input, int stride, int rem)
{
    return static_cast<std::uint64_t>(stride - 1) * (input - 1) + rem;
}

/**
 * Eq. 7 (generalized to d dims and per-side padding): total grid cells
 * minus real cells, per channel.
 */
std::uint64_t
eq7ZeroCount(int input, int stride, int pad_lo, int pad_hi, int rem,
             int dims)
{
    const std::uint64_t n_iz = eq6InsertedZeros(input, stride, rem);
    const std::uint64_t grid = n_iz + input + pad_lo + pad_hi;
    return ipow(grid, dims) - ipow(input, dims);
}

/** Eq. 9: grad-kernel insertion along one dimension. */
std::uint64_t
eq9InsertedZeros(int out, int stride, int rem)
{
    return static_cast<std::uint64_t>(stride - 1) * (out - 1) + rem;
}

/** Eq. 10 (generalized): inserted grad zeros plus input padding zeros. */
std::uint64_t
eq10ZeroCount(const LayerSpec &l)
{
    const std::uint64_t grad_grid =
        eq9InsertedZeros(l.outSize, l.stride, l.rem) + l.outSize;
    const std::uint64_t grad_zeros =
        (ipow(grad_grid, l.spatialDims) -
         ipow(l.outSize, l.spatialDims)) *
        l.outChannels;
    const std::uint64_t pad_zeros =
        (ipow(l.inSize + l.pad + l.padHi, l.spatialDims) -
         ipow(l.inSize, l.spatialDims)) *
        l.inChannels;
    return grad_zeros + pad_zeros;
}

std::vector<GanModel>
sweepModels()
{
    std::vector<GanModel> models = allBenchmarks();
    models.push_back(futureGanStride3());
    models.push_back(futureGanStride2Control());
    return models;
}

TEST(ZeroFormulas, Eq6Eq7MatchTconvForwardOps)
{
    for (const GanModel &model : sweepModels()) {
        for (const LayerOp &op : opsForPhase(model, Phase::GFwd)) {
            if (op.pattern != OpPattern::SparseGridConv)
                continue;
            const std::uint64_t expected =
                eq7ZeroCount(op.data, op.stride, op.padLo, op.padHi,
                             op.rem, op.spatialDims) *
                op.vecChannels;
            EXPECT_EQ(zeroCount(op), expected)
                << model.name << " " << op.label;
        }
    }
}

TEST(ZeroFormulas, Eq6Eq7MatchErrorBackpropOps)
{
    // Backprop through an S-CONV zero-inserts the gradient map with the
    // same Eq. 6/7 structure (grad side length O, stride S).
    for (const GanModel &model : sweepModels()) {
        for (const LayerOp &op : opsForPhase(model, Phase::DBwdErr)) {
            if (op.pattern != OpPattern::SparseGridConv)
                continue;
            const std::uint64_t expected =
                eq7ZeroCount(op.data, op.stride, op.padLo, op.padHi,
                             op.rem, op.spatialDims) *
                op.vecChannels;
            EXPECT_EQ(zeroCount(op), expected)
                << model.name << " " << op.label;
        }
    }
}

TEST(ZeroFormulas, Eq9Eq10MatchWconvOps)
{
    for (const GanModel &model : sweepModels()) {
        for (const LayerOp &op : opsForPhase(model, Phase::DBwdWeight)) {
            if (op.pattern != OpPattern::SparseKernelConv)
                continue;
            const LayerSpec &layer = model.net(op.role)[op.layerIdx];
            EXPECT_EQ(zeroCount(op), eq10ZeroCount(layer))
                << model.name << " " << op.label;
        }
    }
}

TEST(ZeroFormulas, ZerosGrowWithStrideAndPadding)
{
    // The paper's observation below Eq. 7: N_zero increases with S'
    // and P. Check monotonicity over a parameter grid.
    for (int input : {4, 8, 16}) {
        for (int pad = 0; pad < 3; ++pad) {
            for (int stride = 1; stride <= 3; ++stride) {
                const auto zeros =
                    eq7ZeroCount(input, stride, pad, pad, 0, 2);
                if (stride < 3) {
                    EXPECT_LE(zeros, eq7ZeroCount(input, stride + 1, pad,
                                                  pad, 0, 2));
                }
                EXPECT_LE(zeros, eq7ZeroCount(input, stride, pad + 1,
                                              pad + 1, 0, 2));
            }
        }
    }
}

TEST(ZeroFormulas, Conv1AnchorsFromTheText)
{
    // Sec. III-A: CONV1 has N_iz = 4 per dimension and 128 zeros per
    // channel on a 12x12 grid.
    EXPECT_EQ(eq6InsertedZeros(4, 2, 1), 4u);
    EXPECT_EQ(eq7ZeroCount(4, 2, 2, 2, 1, 2), 128u);
    // Fig. 6's W-CONV: N_iz = (S-1)(O-1) + R = 4.
    EXPECT_EQ(eq9InsertedZeros(4, 2, 1), 4u);
}

} // namespace
} // namespace lergan
