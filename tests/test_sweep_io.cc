/**
 * @file
 * Exporter regression tests: failed sweep points keep their row with an
 * error column (not fabricated zeros), CSV fields are RFC-4180 quoted,
 * JSON numbers are round-trip exact with non-finite values as null, and
 * every produced document passes the structural JSON checker.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/json.hh"
#include "core/sweep_io.hh"
#include "sim/trace.hh"

namespace lergan {
namespace {

constexpr const char *kCsvHeader =
    "benchmark,config,ms_per_iteration,mj_per_iteration,"
    "crossbars,oversubscribed,energy_compute_pj,energy_comm_pj,"
    "energy_update_pj,error\n";

SweepResult
okPoint()
{
    SweepResult result;
    result.benchmark = "DCGAN";
    result.configLabel = "lergan-low";
    result.report.iterationTime = 1'000'000'000; // 1 ms
    result.report.stats.set("energy.compute.adc", 1.5);
    result.report.stats.set("energy.comm.bus", 0.5);
    result.report.stats.set("energy.update", 2.5);
    result.crossbarsUsed = 7;
    result.oversubscribed = 1;
    return result;
}

SweepResult
failedPoint()
{
    SweepResult result;
    result.benchmark = "bad,bench";
    result.configLabel = "quo\"te";
    result.failed = true;
    result.error = "compile exploded:\nline two";
    return result;
}

TEST(SweepCsv, HeaderEndsWithErrorColumn)
{
    std::ostringstream oss;
    writeSweepCsv(oss, {});
    EXPECT_EQ(oss.str(), kCsvHeader);
}

TEST(SweepCsv, FailedRowKeepsIdentityAndEmptiesMetrics)
{
    std::ostringstream oss;
    writeSweepCsv(oss, {failedPoint()});
    EXPECT_EQ(oss.str(),
              std::string(kCsvHeader) +
                  "\"bad,bench\",\"quo\"\"te\",,,,,,,,"
                  "\"compile exploded:\nline two\"\n");
}

TEST(SweepCsv, OkRowHasMetricsAndEmptyErrorCell)
{
    std::ostringstream oss;
    writeSweepCsv(oss, {okPoint()});
    EXPECT_EQ(oss.str(), std::string(kCsvHeader) +
                             "DCGAN,lergan-low,1,4.5e-09,7,1,1.5,0.5,"
                             "2.5,\n");
}

TEST(SweepCsv, EveryRowHasTheHeaderFieldCount)
{
    std::ostringstream oss;
    writeSweepCsv(oss, {okPoint(), failedPoint()});
    // Unquoted rows only (quoted fields may hold commas/newlines):
    // the ok row must split into exactly the header's 10 fields.
    std::istringstream lines(oss.str());
    std::string header, ok_row;
    std::getline(lines, header);
    std::getline(lines, ok_row);
    const auto commas = [](const std::string &line) {
        return std::count(line.begin(), line.end(), ',');
    };
    EXPECT_EQ(commas(ok_row), commas(header));
}

TEST(SweepJson, FailedPointCarriesErrorInsteadOfMetrics)
{
    std::ostringstream oss;
    writeSweepJson(oss, {okPoint(), failedPoint()});
    const std::string out = oss.str();

    std::string error;
    EXPECT_TRUE(isValidJson(out, &error)) << error;
    EXPECT_NE(out.find("\"failed\":true"), std::string::npos);
    EXPECT_NE(out.find("\"error\":\"compile exploded:\\nline two\""),
              std::string::npos);
    // Metrics appear once (the ok point), not for the failed one.
    const auto first = out.find("\"ms_per_iteration\"");
    EXPECT_NE(first, std::string::npos);
    EXPECT_EQ(out.find("\"ms_per_iteration\"", first + 1),
              std::string::npos);
}

TEST(SweepJson, NonFiniteMetricsSerializeAsNull)
{
    SweepResult result = okPoint();
    result.report.stats.set("energy.update",
                            std::numeric_limits<double>::quiet_NaN());
    result.report.stats.set("energy.comm.bus",
                            std::numeric_limits<double>::infinity());

    std::ostringstream oss;
    writeSweepJson(oss, {result});
    const std::string out = oss.str();

    std::string error;
    EXPECT_TRUE(isValidJson(out, &error)) << error << "\n" << out;
    EXPECT_NE(out.find("\"energy.update\":null"), std::string::npos);
    EXPECT_NE(out.find("\"energy.comm.bus\":null"), std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_EQ(out.find("inf"), std::string::npos);
}

TEST(SweepJson, AuditVerdictsAreExported)
{
    SweepResult result = okPoint();
    result.audit.ran = true;
    result.audit.checksRun = 4;
    result.audit.fail("energy", "component sums diverged by 2 pJ");

    std::ostringstream oss;
    writeSweepJson(oss, {result});
    const std::string out = oss.str();

    std::string error;
    EXPECT_TRUE(isValidJson(out, &error)) << error;
    EXPECT_NE(out.find("\"audit\":{\"ok\":false,\"checks\":4,"
                       "\"failures\":[{\"check\":\"energy\","
                       "\"detail\":\"component sums diverged by 2 "
                       "pJ\"}]}"),
              std::string::npos)
        << out;
}

TEST(JsonWriter, DoublesRoundTripExactly)
{
    for (const double value : {0.1, 1.0 / 3.0, 6.02214076e23,
                               -7.25e-19, 75.847437002000007}) {
        std::ostringstream oss;
        JsonWriter(oss).value(value);
        EXPECT_EQ(std::strtod(oss.str().c_str(), nullptr), value)
            << oss.str();
    }
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    std::ostringstream oss;
    JsonWriter json(oss);
    json.beginArray();
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.value(std::numeric_limits<double>::infinity());
    json.value(-std::numeric_limits<double>::infinity());
    json.endArray();
    EXPECT_EQ(oss.str(), "[null,null,null]");
}

TEST(ChromeTrace, ExportIsStructurallyValidJson)
{
    Tracer tracer;
    tracer.record("mmv:G.l2.tconv@trainG", 0, 150, 0);
    tracer.record("xfer:\"quoted\"\nlabel", 150, 300, 1);
    tracer.record("update:D.l1.conv@trainD", 300, 450, 2);

    std::ostringstream oss;
    tracer.exportChromeTrace(oss, {"lane a", "lane b", "lane c"});
    std::string error;
    EXPECT_TRUE(isValidJson(oss.str(), &error)) << error << "\n"
                                                << oss.str();
}

TEST(JsonChecker, AcceptsValidAndRejectsInvalid)
{
    EXPECT_TRUE(isValidJson("null"));
    EXPECT_TRUE(isValidJson(" [1,2.5e3,\"x\",{\"k\":true}] "));
    EXPECT_TRUE(isValidJson("{\"u\":\"\\u00e9\"}"));

    std::string error;
    EXPECT_FALSE(isValidJson("", &error));
    EXPECT_FALSE(isValidJson("{", &error));
    EXPECT_FALSE(isValidJson("nan", &error));
    EXPECT_FALSE(isValidJson("[1,]", &error));
    EXPECT_FALSE(isValidJson("{\"a\":1,}", &error));
    EXPECT_FALSE(isValidJson("{\"a\" 1}", &error));
    EXPECT_FALSE(isValidJson("[1] x", &error));
    EXPECT_NE(error.find("trailing"), std::string::npos);
    EXPECT_FALSE(isValidJson("\"unterminated", &error));
    EXPECT_FALSE(isValidJson("\"bad \\q escape\"", &error));
    EXPECT_FALSE(isValidJson("01", &error));
    EXPECT_FALSE(isValidJson("1.", &error));
}

} // namespace
} // namespace lergan
