/**
 * @file
 * Tests for the memory-controller FSM (Sec. V / Fig. 13 script).
 */

#include <gtest/gtest.h>

#include "core/controller.hh"

namespace lergan {
namespace {

TEST(Controller, StartsIdleAllSmode)
{
    MemoryController ctrl{ReRamParams{}};
    EXPECT_EQ(ctrl.state(), CtrlState::Idle);
    for (int b = 0; b < MemoryController::kNumBanks; ++b)
        EXPECT_EQ(ctrl.mode(b), BankMode::Smode);
    EXPECT_EQ(ctrl.switchCount(), 0u);
}

TEST(Controller, IterationScriptMatchesFig13)
{
    MemoryController ctrl{ReRamParams{}};

    // -> TrainDisc: B1 (G fwd) and B4..B6 compute; B2/B3 stay memory.
    auto switches = ctrl.advance();
    EXPECT_EQ(ctrl.state(), CtrlState::TrainDisc);
    EXPECT_EQ(switches.size(), 4u);
    EXPECT_EQ(ctrl.mode(0), BankMode::Cmode);
    EXPECT_EQ(ctrl.mode(1), BankMode::Smode);
    EXPECT_EQ(ctrl.mode(2), BankMode::Smode);
    EXPECT_EQ(ctrl.mode(3), BankMode::Cmode);
    EXPECT_EQ(ctrl.mode(4), BankMode::Cmode);
    EXPECT_EQ(ctrl.mode(5), BankMode::Cmode);

    // -> UpdateDisc: the discriminator CU reads/writes as plain memory;
    // B1 stays in Cmode (Fig. 13b note).
    switches = ctrl.advance();
    EXPECT_EQ(ctrl.state(), CtrlState::UpdateDisc);
    EXPECT_EQ(ctrl.mode(0), BankMode::Cmode);
    for (int b = 3; b < 6; ++b)
        EXPECT_EQ(ctrl.mode(b), BankMode::Smode);

    // -> TrainGen: everything computes.
    switches = ctrl.advance();
    EXPECT_EQ(ctrl.state(), CtrlState::TrainGen);
    for (int b = 0; b < 6; ++b)
        EXPECT_EQ(ctrl.mode(b), BankMode::Cmode);

    // -> UpdateGen: the generator CU flips to memory.
    switches = ctrl.advance();
    EXPECT_EQ(ctrl.state(), CtrlState::UpdateGen);
    for (int b = 0; b < 3; ++b)
        EXPECT_EQ(ctrl.mode(b), BankMode::Smode);
}

TEST(Controller, WrapsToNextIteration)
{
    MemoryController ctrl{ReRamParams{}};
    for (int i = 0; i < 4; ++i)
        ctrl.advance();
    EXPECT_EQ(ctrl.state(), CtrlState::UpdateGen);
    ctrl.advance();
    EXPECT_EQ(ctrl.state(), CtrlState::TrainDisc);
}

TEST(Controller, SwitchCountAccumulates)
{
    MemoryController ctrl{ReRamParams{}};
    ctrl.advance(); // 4 flips
    ctrl.advance(); // 3 flips (B4..B6 to Smode)
    EXPECT_EQ(ctrl.switchCount(), 7u);
}

TEST(Controller, ResetRestoresIdle)
{
    MemoryController ctrl{ReRamParams{}};
    ctrl.advance();
    ctrl.advance();
    ctrl.reset();
    EXPECT_EQ(ctrl.state(), CtrlState::Idle);
    EXPECT_EQ(ctrl.switchCount(), 0u);
    for (int b = 0; b < 6; ++b)
        EXPECT_EQ(ctrl.mode(b), BankMode::Smode);
}

TEST(Controller, ReconfigurationCostsArePositive)
{
    MemoryController ctrl{ReRamParams{}};
    EXPECT_GT(ctrl.switchTime(), 0u);
    EXPECT_GT(ctrl.switchEnergy(), 0.0);
}

TEST(Controller, StateNamesArePrintable)
{
    EXPECT_STREQ(ctrlStateName(CtrlState::Idle), "idle");
    EXPECT_STREQ(ctrlStateName(CtrlState::TrainDisc), "train_disc");
    EXPECT_STREQ(ctrlStateName(CtrlState::UpdateGen), "update_gen");
}

TEST(ControllerDeath, BadBankIdPanics)
{
    MemoryController ctrl{ReRamParams{}};
    EXPECT_DEATH(ctrl.mode(6), "bad bank id");
}

} // namespace
} // namespace lergan
