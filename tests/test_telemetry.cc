/**
 * @file
 * Tests for the telemetry subsystem: registry create-or-get semantics,
 * histogram bucketing, snapshot/delta/prefix-filter algebra, the three
 * exporters, the host self-profiler, and a worker-pool hammer that the
 * TSan stage of scripts/check.sh re-runs (label "telemetry").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "exec/thread_pool.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"

namespace lergan {
namespace {

TEST(MetricsRegistry, CreateOrGetReturnsSameInstrument)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("sim.tasks.executed");
    Counter &b = registry.counter("sim.tasks.executed");
    EXPECT_EQ(&a, &b);
    a.add(3);
    b.add(4);
    EXPECT_EQ(a.value(), 7u);
    EXPECT_EQ(registry.size(), 1u);

    registry.gauge("cache.model.size").set(2.0);
    registry.histogram("sim.queue.depth").observe(5);
    EXPECT_EQ(registry.size(), 3u);

    registry.clear();
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_TRUE(registry.snapshot().empty());
}

TEST(MetricsRegistry, KindMismatchPanics)
{
    MetricsRegistry registry;
    registry.counter("sim.iterations");
    EXPECT_DEATH(registry.gauge("sim.iterations"), "");
    EXPECT_DEATH(registry.histogram("sim.iterations"), "");
}

TEST(Histogram, BucketsByBitWidth)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 1);
    EXPECT_EQ(Histogram::bucketOf(2), 2);
    EXPECT_EQ(Histogram::bucketOf(3), 2);
    EXPECT_EQ(Histogram::bucketOf(4), 3);
    EXPECT_EQ(Histogram::bucketOf(1023), 10);
    EXPECT_EQ(Histogram::bucketOf(1024), 11);
    EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 64);

    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1023u);
    EXPECT_EQ(Histogram::bucketUpperBound(64), UINT64_MAX);

    Histogram hist;
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 0u);
    hist.observe(0);
    hist.observe(7);
    hist.observe(8);
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_EQ(hist.sum(), 15u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 8u);
    EXPECT_EQ(hist.bucketCount(0), 1u); // the zero
    EXPECT_EQ(hist.bucketCount(3), 1u); // 7 in [4,7]
    EXPECT_EQ(hist.bucketCount(4), 1u); // 8 in [8,15]
}

TEST(MetricsSnapshot, DeltaSubtractsAccumulativeFields)
{
    MetricsRegistry registry;
    registry.counter("sim.graph.runs").add(2);
    registry.gauge("cache.model.size").set(1.0);
    registry.histogram("sim.queue.depth").observe(4);
    const MetricsSnapshot before = registry.snapshot();

    registry.counter("sim.graph.runs").add(3);
    registry.gauge("cache.model.size").set(5.0);
    registry.histogram("sim.queue.depth").observe(4);
    registry.counter("ic.bus.flits").add(9); // absent from `before`
    const MetricsSnapshot after = registry.snapshot();

    const MetricsSnapshot delta = after.delta(before);
    EXPECT_EQ(delta.counters.at("sim.graph.runs"), 3u);
    EXPECT_EQ(delta.counters.at("ic.bus.flits"), 9u);
    // Gauges are not accumulative: delta keeps the later value.
    EXPECT_DOUBLE_EQ(delta.gauges.at("cache.model.size"), 5.0);
    EXPECT_EQ(delta.histograms.at("sim.queue.depth").count, 1u);
    EXPECT_EQ(delta.histograms.at("sim.queue.depth").sum, 4u);
}

TEST(MetricsSnapshot, WithoutPrefixStripsHostMetrics)
{
    MetricsRegistry registry;
    registry.counter("sim.graph.runs").add(1);
    registry.gauge("host.pool.threads").set(4.0);
    registry.counter("host.pool.tasks.run").add(10);
    const MetricsSnapshot full = registry.snapshot();
    const MetricsSnapshot sim = full.withoutPrefix("host.");
    EXPECT_EQ(sim.counters.size(), 1u);
    EXPECT_EQ(sim.counters.count("sim.graph.runs"), 1u);
    EXPECT_TRUE(sim.gauges.empty());
    // The source snapshot is untouched.
    EXPECT_EQ(full.counters.size(), 2u);
}

MetricsSnapshot
exampleSnapshot()
{
    MetricsRegistry registry;
    registry.counter("ic.htree.wire.flits").add(12);
    registry.gauge("cache.model.hits").set(3.0);
    Histogram &hist = registry.histogram("sim.queue.depth");
    hist.observe(0);
    hist.observe(5);
    return registry.snapshot();
}

TEST(MetricsSnapshot, JsonExportIsValidJson)
{
    std::ostringstream oss;
    exampleSnapshot().writeJson(oss);
    std::string error;
    EXPECT_TRUE(isValidJson(oss.str(), &error)) << error << "\n"
                                                << oss.str();
    EXPECT_NE(oss.str().find("ic.htree.wire.flits"), std::string::npos);
}

TEST(MetricsSnapshot, PrometheusExportShape)
{
    std::ostringstream oss;
    exampleSnapshot().writePrometheus(oss);
    const std::string text = oss.str();
    // Names are sanitized: dots become underscores.
    EXPECT_NE(text.find("ic_htree_wire_flits 12"), std::string::npos);
    EXPECT_NE(text.find("cache_model_hits 3"), std::string::npos);
    EXPECT_NE(text.find("sim_queue_depth_count 2"), std::string::npos);
    EXPECT_NE(text.find("sim_queue_depth_sum 5"), std::string::npos);
    // Cumulative buckets end with exactly one +Inf line.
    const std::string inf = "le=\"+Inf\"";
    const std::size_t first = text.find(inf);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find(inf, first + 1), std::string::npos);
}

TEST(MetricsSnapshot, CsvExportShape)
{
    std::ostringstream oss;
    exampleSnapshot().writeCsv(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("counter,ic.htree.wire.flits"),
              std::string::npos);
    EXPECT_NE(text.find("gauge,cache.model.hits"), std::string::npos);
    EXPECT_NE(text.find("histogram,sim.queue.depth"), std::string::npos);
}

TEST(MetricsSnapshot, EqualContentsSerializeByteIdentically)
{
    // The determinism goldens rely on this: same instrument values,
    // independent of recording order, produce the same bytes.
    MetricsRegistry a;
    a.counter("ic.bus.flits").add(2);
    a.counter("sim.graph.runs").add(1);
    MetricsRegistry b;
    b.counter("sim.graph.runs").add(1);
    b.counter("ic.bus.flits").add(1);
    b.counter("ic.bus.flits").add(1);
    std::ostringstream oa, ob;
    a.snapshot().writePrometheus(oa);
    b.snapshot().writePrometheus(ob);
    EXPECT_EQ(oa.str(), ob.str());
}

TEST(HostProfiler, DisabledScopeRecordsNothing)
{
    HostProfiler &profiler = HostProfiler::global();
    profiler.reset();
    profiler.enable(false);
    {
        const auto scope = profiler.scope("parse");
    }
    EXPECT_TRUE(profiler.stats().empty());
}

TEST(HostProfiler, EnabledScopeAccumulatesPhase)
{
    HostProfiler &profiler = HostProfiler::global();
    profiler.reset();
    profiler.enable();
    {
        const auto scope = profiler.scope("compile");
    }
    {
        const auto scope = profiler.scope("compile");
    }
    const auto stats = profiler.stats();
    ASSERT_EQ(stats.count("compile"), 1u);
    EXPECT_EQ(stats.at("compile").calls, 2u);

    MetricsRegistry registry;
    profiler.exportInto(registry);
    const MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.gauges.count("host.phase.compile.calls"), 1u);
    EXPECT_EQ(snapshot.gauges.count("host.phase.compile.ms"), 1u);

    profiler.enable(false);
    profiler.reset();
}

TEST(MetricsRegistry, ConcurrentRecordingFromWorkerPool)
{
    // The registry's whole job is lock-free recording from sweep
    // workers; hammer one registry from every worker and check the
    // integer totals are exact. scripts/check.sh re-runs this under
    // -fsanitize=thread (ctest -L telemetry).
    MetricsRegistry registry;
    constexpr int kTasks = 64;
    constexpr int kOpsPerTask = 1000;
    {
        ThreadPool pool(4);
        for (int t = 0; t < kTasks; ++t) {
            pool.submit([&registry, t] {
                // Mix instrument *creation* (mutex path) with hot-path
                // recording (atomics) across many dotted names.
                Counter &flits = registry.counter("ic.bus.flits");
                Histogram &depth =
                    registry.histogram("sim.queue.depth");
                Counter &mine = registry.counter(
                    "sim.task." + std::to_string(t % 8));
                for (int i = 0; i < kOpsPerTask; ++i) {
                    flits.add(1);
                    depth.observe(static_cast<std::uint64_t>(i));
                    mine.add(1);
                }
                registry.gauge("cache.model.size").set(1.0);
            });
        }
        pool.drain();
    }
    const MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.at("ic.bus.flits"),
              static_cast<std::uint64_t>(kTasks) * kOpsPerTask);
    const HistogramSnapshot &depth =
        snapshot.histograms.at("sim.queue.depth");
    EXPECT_EQ(depth.count, static_cast<std::uint64_t>(kTasks) *
                               kOpsPerTask);
    EXPECT_EQ(depth.min, 0u);
    EXPECT_EQ(depth.max, static_cast<std::uint64_t>(kOpsPerTask - 1));
    std::uint64_t per_task_total = 0;
    for (int t = 0; t < 8; ++t)
        per_task_total += snapshot.counters.at("sim.task." +
                                               std::to_string(t));
    EXPECT_EQ(per_task_total,
              static_cast<std::uint64_t>(kTasks) * kOpsPerTask);
}

TEST(MetricsRegistry, ShardedSnapshotsMatchSingleThreadedReference)
{
    // The per-worker shards are an implementation detail: after the
    // snapshot merge, a registry hammered from 8 threads must
    // serialize byte-identically to one fed the same observations on a
    // single thread. This is the contract the determinism goldens rest
    // on; scripts/check.sh re-runs it under -fsanitize=thread.
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 2000;

    MetricsRegistry sharded;
    {
        ThreadPool pool(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            pool.submit([&sharded] {
                Counter &runs = sharded.counter("sim.graph.runs");
                Histogram &lat = sharded.histogram("sim.task.latency");
                for (int i = 0; i < kOpsPerThread; ++i) {
                    runs.add(2);
                    lat.observe(static_cast<std::uint64_t>(i * 3));
                }
            });
        }
        pool.drain();
    }
    sharded.gauge("cache.model.size").set(7.0);

    MetricsRegistry reference;
    {
        Counter &runs = reference.counter("sim.graph.runs");
        Histogram &lat = reference.histogram("sim.task.latency");
        for (int t = 0; t < kThreads; ++t)
            for (int i = 0; i < kOpsPerThread; ++i) {
                runs.add(2);
                lat.observe(static_cast<std::uint64_t>(i * 3));
            }
        reference.gauge("cache.model.size").set(7.0);
    }

    std::ostringstream got, want;
    sharded.snapshot().writePrometheus(got);
    reference.snapshot().writePrometheus(want);
    EXPECT_EQ(got.str(), want.str());

    // The merged extrema are exact, not bucket-rounded.
    const MetricsSnapshot snap = sharded.snapshot();
    const HistogramSnapshot &lat =
        snap.histograms.at("sim.task.latency");
    EXPECT_EQ(lat.min, 0u);
    EXPECT_EQ(lat.max,
              static_cast<std::uint64_t>((kOpsPerThread - 1) * 3));
    EXPECT_EQ(lat.count, static_cast<std::uint64_t>(kThreads) *
                             kOpsPerThread);
}

} // namespace
} // namespace lergan
