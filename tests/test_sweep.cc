/**
 * @file
 * Tests for the experiment-sweep library and its exporters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/sweep.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

ExperimentSweep
smallSweep()
{
    AcceleratorConfig lergan = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    lergan.batchSize = 4;
    AcceleratorConfig prime = AcceleratorConfig::prime();
    prime.batchSize = 4;
    ExperimentSweep sweep;
    sweep.add(makeBenchmark("MAGAN-MNIST"))
        .add(makeBenchmark("cGAN"))
        .add("lergan", lergan)
        .add("prime", prime);
    return sweep;
}

TEST(Sweep, RunsTheFullGrid)
{
    const auto results = smallSweep().run();
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].benchmark, "MAGAN-MNIST");
    EXPECT_EQ(results[0].configLabel, "lergan");
    EXPECT_EQ(results[1].configLabel, "prime");
    EXPECT_EQ(results[2].benchmark, "cGAN");
    for (const SweepResult &result : results) {
        EXPECT_GT(result.report.iterationTime, 0u);
        EXPECT_GT(result.crossbarsUsed, 0u);
    }
}

TEST(Sweep, TemplateCacheBuildsOncePerPairAndStaysDeterministic)
{
    const ExperimentSweep sweep = smallSweep();
    const auto first = sweep.run();
    // 2 models x 2 configs: one DAG template per distinct pair.
    EXPECT_EQ(sweep.templates().misses(), 4u);
    EXPECT_EQ(sweep.templates().size(), 4u);

    const auto second = sweep.run();
    EXPECT_EQ(sweep.templates().misses(), 4u); // all replays now
    EXPECT_EQ(sweep.templates().hits(), 4u);

    std::ostringstream a, b;
    ExperimentSweep::writeJson(a, first);
    ExperimentSweep::writeJson(b, second);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Sweep, TemplatedRunsAreWorkerCountInvariant)
{
    const ExperimentSweep sweep = smallSweep();
    RunOptions serial;
    serial.threads = 1;
    RunOptions parallel;
    parallel.threads = 4;
    std::ostringstream a, b;
    ExperimentSweep::writeJson(a, sweep.run(serial));
    ExperimentSweep::writeJson(b, sweep.run(parallel));
    EXPECT_EQ(a.str(), b.str());
}

TEST(Sweep, JsonExportContainsEveryPoint)
{
    const auto results = smallSweep().run();
    std::ostringstream oss;
    ExperimentSweep::writeJson(oss, results);
    const std::string out = oss.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("\"benchmark\":\"MAGAN-MNIST\""),
              std::string::npos);
    EXPECT_NE(out.find("\"config\":\"prime\""), std::string::npos);
    EXPECT_NE(out.find("\"ms_per_iteration\":"), std::string::npos);
    EXPECT_NE(out.find("energy.compute.adc"), std::string::npos);
}

TEST(Sweep, CsvExportHasHeaderAndRows)
{
    const auto results = smallSweep().run();
    std::ostringstream oss;
    ExperimentSweep::writeCsv(oss, results);
    const std::string out = oss.str();
    // Header + 4 rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
    EXPECT_NE(out.find("benchmark,config,"), std::string::npos);
    EXPECT_NE(out.find("cGAN,prime,"), std::string::npos);
}

TEST(SweepDeath, EmptyGridIsFatal)
{
    ExperimentSweep sweep;
    EXPECT_DEATH(sweep.run(), "at least one");
}

} // namespace
} // namespace lergan
