/**
 * @file
 * Tests for the compiled-mapping validator and the DOT exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/validate.hh"
#include "interconnect/dot_export.hh"
#include "core/machine.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

TEST(Validate, EveryBenchmarkMappingIsValid)
{
    for (const GanModel &model : allBenchmarks()) {
        for (ReplicaDegree degree :
             {ReplicaDegree::Low, ReplicaDegree::High}) {
            const AcceleratorConfig config =
                AcceleratorConfig::lerGan(degree);
            const CompiledGan compiled = compileGan(model, config);
            const ValidationResult result =
                validateMapping(model, config, compiled);
            EXPECT_TRUE(result.ok())
                << model.name << " " << config.label() << ": "
                << (result.violations.empty() ? ""
                                              : result.violations[0]);
        }
    }
}

TEST(Validate, PrimeAndMultiPairMappingsAreValid)
{
    const GanModel model = makeBenchmark("DCGAN");
    {
        const AcceleratorConfig config = AcceleratorConfig::prime();
        EXPECT_TRUE(validateMapping(model, config,
                                    compileGan(model, config))
                        .ok());
    }
    {
        AcceleratorConfig config =
            AcceleratorConfig::lerGan(ReplicaDegree::Low);
        config.cuPairs = 2;
        EXPECT_TRUE(validateMapping(model, config,
                                    compileGan(model, config))
                        .ok());
    }
}

TEST(Validate, FaultyMappingsStayValid)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.failedTiles = {{0, 0}, {3, 5}};
    const GanModel model = makeBenchmark("cGAN");
    EXPECT_TRUE(
        validateMapping(model, config, compileGan(model, config)).ok());
}

TEST(Validate, DetectsCorruptedMapping)
{
    const GanModel model = makeBenchmark("cGAN");
    const AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);
    CompiledGan compiled = compileGan(model, config);

    // Sabotage: move one op to the wrong bank.
    compiled.phases[0].ops[0].bank = 4;
    const ValidationResult wrong_bank =
        validateMapping(model, config, compiled);
    EXPECT_FALSE(wrong_bank.ok());

    // Sabotage: shrink an allocation.
    CompiledGan compiled2 = compileGan(model, config);
    compiled2.phases[1].ops[0].allocation.ranges.clear();
    EXPECT_FALSE(validateMapping(model, config, compiled2).ok());
}

TEST(DotExport, EmitsClustersAndColoredWires)
{
    Machine machine(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    std::ostringstream oss;
    exportDot(oss, machine.topo());
    const std::string out = oss.str();
    EXPECT_NE(out.find("graph lergan {"), std::string::npos);
    EXPECT_NE(out.find("cluster_bank0"), std::string::npos);
    EXPECT_NE(out.find("cluster_bank5"), std::string::npos);
    EXPECT_NE(out.find("mediumblue"), std::string::npos); // vertical
    EXPECT_NE(out.find("darkorange"), std::string::npos); // horizontal
    EXPECT_NE(out.find("forestgreen"), std::string::npos); // bypass
    EXPECT_NE(out.find("crimson"), std::string::npos);    // bus
}

TEST(DotExport, HTreeMachineHasNoAddedWireColors)
{
    Machine machine(AcceleratorConfig::prime());
    std::ostringstream oss;
    exportDot(oss, machine.topo());
    EXPECT_EQ(oss.str().find("mediumblue"), std::string::npos);
    EXPECT_EQ(oss.str().find("darkorange"), std::string::npos);
    EXPECT_NE(oss.str().find("crimson"), std::string::npos);
}

} // namespace
} // namespace lergan
