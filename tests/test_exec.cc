/**
 * @file
 * Tests for the parallel execution engine: thread pool, compiled-model
 * cache, session compile-once behavior, and the parallel sweep path
 * (determinism, error isolation, byte-identical exports).
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/api.hh"
#include "core/sweep.hh"
#include "core/sweep_io.hh"
#include "exec/engine.hh"
#include "exec/memo_cache.hh"
#include "exec/thread_pool.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

AcceleratorConfig
smallLerGan()
{
    AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    return config;
}

AcceleratorConfig
smallPrime()
{
    AcceleratorConfig config = AcceleratorConfig::prime();
    config.batchSize = 4;
    return config;
}

/** 2 benchmarks x 2 configs, small batch — the test grid. */
ExperimentSweep
smallSweep()
{
    ExperimentSweep sweep;
    sweep.addBenchmark(makeBenchmark("MAGAN-MNIST"))
        .addBenchmark(makeBenchmark("cGAN"))
        .addConfig("lergan", smallLerGan())
        .addConfig("prime", smallPrime());
    return sweep;
}

TEST(ThreadPool, RunsEveryTaskAcrossWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    constexpr int kTasks = 100;
    std::atomic<int> ran{0};
    std::mutex mutex;
    std::set<std::thread::id> workers;
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            ran.fetch_add(1);
            std::lock_guard lock(mutex);
            workers.insert(std::this_thread::get_id());
        });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), kTasks);
    // Everything ran on pool workers, never on this thread.
    EXPECT_LE(workers.size(), 4u);
    EXPECT_EQ(workers.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPool, DrainIsRepeatable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([&] { ran.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, DestructorRunsRemainingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ForEachRunsEveryIndexExactlyOnceWithBoundedLanes)
{
    // forEach claims chunks off a shared cursor instead of queueing one
    // task per index; the contract that survives the chunking is that
    // every index in [0, count) runs exactly once and every lane id is
    // below min(workers, count). scripts/check.sh re-runs this under
    // -fsanitize=thread (ctest -L tsan).
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> runs(kCount);
    std::atomic<std::size_t> maxLane{0};
    pool.forEach(kCount, [&](std::size_t i, std::size_t lane) {
        runs[i].fetch_add(1);
        std::size_t cur = maxLane.load();
        while (lane > cur &&
               !maxLane.compare_exchange_weak(cur, lane)) {
        }
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "index " << i;
    EXPECT_LT(maxLane.load(), 4u);
}

TEST(ThreadPool, ForEachNeverOverlapsTwoBodiesOnOneLane)
{
    // Sweep workers index per-lane scratch arenas with the lane id, so
    // two bodies must never run concurrently under the same lane.
    ThreadPool pool(8);
    constexpr std::size_t kCount = 4000;
    std::array<std::atomic<int>, 8> inUse{};
    std::atomic<bool> overlapped{false};
    pool.forEach(kCount, [&](std::size_t, std::size_t lane) {
        ASSERT_LT(lane, inUse.size());
        if (inUse[lane].fetch_add(1) != 0)
            overlapped.store(true);
        inUse[lane].fetch_sub(1);
    });
    EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPool, ForEachOnOneWorkerVisitsIndicesInAscendingOrder)
{
    // With a single worker the shared cursor degenerates to a plain
    // ascending scan — the property the 1-worker determinism goldens
    // lean on.
    ThreadPool pool(1);
    constexpr std::size_t kCount = 100;
    std::vector<std::size_t> order;
    pool.forEach(kCount, [&](std::size_t i, std::size_t lane) {
        EXPECT_EQ(lane, 0u);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, ThrowingPointFailsAloneWithoutPoisoningSiblings)
{
    constexpr std::size_t kPoints = 7;
    std::atomic<int> bodiesRun{0};
    const auto statuses = runPoints(kPoints, 3,
                                    [&](std::size_t i, std::size_t) {
        bodiesRun.fetch_add(1);
        if (i == 2)
            throw std::runtime_error("boom at point 2");
    });
    ASSERT_EQ(statuses.size(), kPoints);
    EXPECT_EQ(bodiesRun.load(), static_cast<int>(kPoints));
    for (std::size_t i = 0; i < kPoints; ++i) {
        if (i == 2) {
            EXPECT_FALSE(statuses[i].ok);
            EXPECT_NE(statuses[i].error.find("boom"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(statuses[i].ok) << "point " << i;
            EXPECT_TRUE(statuses[i].error.empty());
        }
    }
}

TEST(Engine, ProgressIsSerializedMonotonicAndComplete)
{
    constexpr std::size_t kPoints = 20;
    std::vector<std::size_t> seen;
    const auto statuses = runPoints(
        kPoints, 4, [](std::size_t, std::size_t) {},
        [&](std::size_t done, std::size_t total) {
            EXPECT_EQ(total, kPoints);
            seen.push_back(done); // serialized: no lock needed
        });
    ASSERT_EQ(seen.size(), kPoints);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i + 1);
    EXPECT_EQ(statuses.size(), kPoints);
}

TEST(MemoCache, CollidingKeysAliasToTheFirstBuiltValue)
{
    MemoCache<int> cache;
    int builds = 0;
    const auto first = cache.get("fingerprint", [&] {
        ++builds;
        return std::make_shared<const int>(1);
    });
    bool hit = false;
    const auto second = cache.get(
        "fingerprint",
        [&] {
            ++builds;
            return std::make_shared<const int>(2);
        },
        &hit);
    // The cache trusts its key: two distinct artifacts whose
    // fingerprints collide silently alias to whichever built first.
    // That is why configFingerprint/modelFingerprint must encode every
    // result-relevant field (FingerprintsSeparateConfigsAndModels
    // below guards the encoding).
    EXPECT_EQ(builds, 1);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(*second, 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(MemoCache, ConcurrentInsertsOfTheSameKeyBuildExactlyOnce)
{
    MemoCache<int> cache;
    constexpr int kThreads = 8;
    std::atomic<int> builds{0};
    std::atomic<int> hitCount{0};
    std::vector<std::shared_ptr<const int>> seen(kThreads);
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                bool hit = false;
                seen[t] = cache.get(
                    "key",
                    [&] {
                        builds.fetch_add(1);
                        // Hold the build long enough that the other
                        // threads arrive while it is in flight and
                        // block on the shared future.
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(2));
                        return std::make_shared<const int>(7);
                    },
                    &hit);
                if (hit)
                    hitCount.fetch_add(1);
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(hitCount.load(), kThreads - 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_NE(seen[t], nullptr) << "thread " << t;
        EXPECT_EQ(seen[t].get(), seen[0].get());
    }
}

TEST(MemoCache, FailedBuildDropsTheEntrySoRetriesRebuild)
{
    MemoCache<int> cache;
    EXPECT_THROW(cache.get("key",
                           []() -> std::shared_ptr<const int> {
                               throw std::runtime_error("build failed");
                           }),
                 std::runtime_error);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.misses(), 1u);

    const auto value =
        cache.get("key", [] { return std::make_shared<const int>(3); });
    EXPECT_EQ(*value, 3);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(MemoCache, GrowthIsEvictionFreeWithExactAccounting)
{
    MemoCache<std::size_t> cache;
    constexpr std::size_t kKeys = 64;
    std::vector<std::shared_ptr<const std::size_t>> first(kKeys);
    for (std::size_t k = 0; k < kKeys; ++k) {
        first[k] = cache.get("key" + std::to_string(k), [k] {
            return std::make_shared<const std::size_t>(k);
        });
        // Grows by exactly one entry per distinct key, never more.
        EXPECT_EQ(cache.size(), k + 1);
    }
    EXPECT_EQ(cache.misses(), kKeys);
    EXPECT_EQ(cache.hits(), 0u);

    // Nothing is ever evicted: every re-get is a hit on the original
    // shared value, and the builder is never consulted again.
    for (std::size_t k = 0; k < kKeys; ++k) {
        const auto again = cache.get(
            "key" + std::to_string(k),
            []() -> std::shared_ptr<const std::size_t> {
                ADD_FAILURE() << "rebuilt a cached key";
                return nullptr;
            });
        EXPECT_EQ(again.get(), first[k].get());
    }
    EXPECT_EQ(cache.size(), kKeys);
    EXPECT_EQ(cache.hits(), kKeys);
    EXPECT_EQ(cache.misses(), kKeys);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    // Values handed out before clear() stay alive: ownership is
    // shared, not borrowed from the cache.
    EXPECT_EQ(*first[5], 5u);
}

TEST(MemoCache, StripedStressKeepsExactAccountingAcrossThreads)
{
    // Hammer many distinct keys (spanning all stripes) from 8 threads:
    // every key builds exactly once, and hits + misses equal the total
    // number of get() calls — the lock-free published-map fast path
    // must not lose or double-count anything. scripts/check.sh re-runs
    // this under -fsanitize=thread (ctest -L tsan).
    MemoCache<std::size_t> cache;
    constexpr int kThreads = 8;
    constexpr std::size_t kKeys = 48;
    constexpr int kRounds = 4;
    std::atomic<int> builds{0};
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&] {
                for (int round = 0; round < kRounds; ++round) {
                    for (std::size_t k = 0; k < kKeys; ++k) {
                        const auto value = cache.get(
                            "key" + std::to_string(k), [&builds, k] {
                                builds.fetch_add(1);
                                return std::make_shared<
                                    const std::size_t>(k);
                            });
                        ASSERT_NE(value, nullptr);
                        EXPECT_EQ(*value, k);
                    }
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }
    EXPECT_EQ(builds.load(), static_cast<int>(kKeys));
    EXPECT_EQ(cache.size(), kKeys);
    EXPECT_EQ(cache.misses(), kKeys);
    constexpr std::uint64_t kGets =
        static_cast<std::uint64_t>(kThreads) * kRounds * kKeys;
    EXPECT_EQ(cache.hits(), kGets - kKeys);
}

TEST(ModelCache, CompilesOnceWithExactCounters)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    const AcceleratorConfig config = smallLerGan();

    CompiledModelCache cache;
    std::atomic<int> compiles{0};
    const auto counting = [&](const GanModel &m,
                              const AcceleratorConfig &c) {
        compiles.fetch_add(1);
        return compileGan(m, c);
    };

    const auto first = cache.get(model, config, counting);
    const auto second = cache.get(model, config, counting);
    EXPECT_EQ(compiles.load(), 1);
    EXPECT_EQ(first.get(), second.get()); // same shared mapping
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // A different configuration is a different entry.
    cache.get(model, smallPrime(), counting);
    EXPECT_EQ(compiles.load(), 2);
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(ModelCache, FailedCompileRethrowsAndRetries)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    const AcceleratorConfig config = smallLerGan();

    CompiledModelCache cache;
    int calls = 0;
    const auto failing = [&](const GanModel &,
                             const AcceleratorConfig &) -> CompiledGan {
        ++calls;
        throw std::runtime_error("no mapping");
    };
    EXPECT_THROW(cache.get(model, config, failing), std::runtime_error);
    EXPECT_EQ(cache.size(), 0u); // failed entry dropped

    // The pair is retried, not poisoned.
    const auto ok = cache.get(model, config, compileGan);
    EXPECT_NE(ok, nullptr);
    EXPECT_EQ(calls, 1);
}

TEST(ModelCache, FingerprintsSeparateConfigsAndModels)
{
    const AcceleratorConfig base = smallLerGan();
    AcceleratorConfig other = base;
    other.batchSize = 8;
    EXPECT_NE(configFingerprint(base), configFingerprint(other));

    AcceleratorConfig device = base;
    device.reram.adcPjPerXbar *= 2;
    EXPECT_NE(configFingerprint(base), configFingerprint(device));

    EXPECT_EQ(configFingerprint(base),
              configFingerprint(AcceleratorConfig(base)));
    EXPECT_NE(modelFingerprint(makeBenchmark("MAGAN-MNIST")),
              modelFingerprint(makeBenchmark("cGAN")));
    EXPECT_EQ(modelFingerprint(makeBenchmark("DCGAN")),
              modelFingerprint(makeBenchmark("DCGAN")));
}

TEST(Session, CompilesExactlyOnceAcrossRepeatedRuns)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    SimulationSession session(smallLerGan());

    const TrainingReport first = session.run(model);
    EXPECT_EQ(session.cacheMisses(), 1u);
    EXPECT_EQ(session.cacheHits(), 0u);

    const TrainingReport second = session.run(model);
    const TrainingReport third = session.run(model, 3);
    EXPECT_EQ(session.cacheMisses(), 1u);
    EXPECT_EQ(session.cacheHits(), 2u);

    // Cached and fresh compiles simulate identically.
    EXPECT_EQ(first.iterationTime, second.iterationTime);
    EXPECT_EQ(first.iterationTime, third.iterationTime);
    EXPECT_DOUBLE_EQ(first.totalEnergyPj(), second.totalEnergyPj());
}

TEST(Session, MatchesTheOneShotWrapper)
{
    const GanModel model = makeBenchmark("cGAN");
    const AcceleratorConfig config = smallPrime();
    const TrainingReport wrapped = simulateTraining(model, config, 2);
    const TrainingReport viaSession =
        SimulationSession(config).run(model, 2);
    EXPECT_EQ(wrapped.iterationTime, viaSession.iterationTime);
    EXPECT_DOUBLE_EQ(wrapped.totalEnergyPj(),
                     viaSession.totalEnergyPj());
    EXPECT_EQ(wrapped.crossbarsUsed, viaSession.crossbarsUsed);
}

TEST(Session, UnusableConfigThrowsInvalidArgument)
{
    AcceleratorConfig config = smallLerGan();
    config.batchSize = 0;
    SimulationSession session(config);
    EXPECT_THROW(session.run(makeBenchmark("MAGAN-MNIST")),
                 std::invalid_argument);
}

TEST(Session, SharedCacheServesSeveralSessions)
{
    auto cache = std::make_shared<CompiledModelCache>();
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    SimulationSession a(smallLerGan(), cache);
    SimulationSession b(smallLerGan(), cache);
    a.run(model);
    b.run(model);
    EXPECT_EQ(cache->misses(), 1u);
    EXPECT_EQ(cache->hits(), 1u);
}

TEST(SweepExec, CacheHitCountIsExactForTheBenchmarkMajorGrid)
{
    const ExperimentSweep sweep = smallSweep();
    EXPECT_EQ(sweep.pointCount(), 4u);

    sweep.run(1);
    EXPECT_EQ(sweep.cache().misses(), 4u); // every pair compiled once
    EXPECT_EQ(sweep.cache().hits(), 0u);

    sweep.run(1); // the repeat recompiles nothing
    EXPECT_EQ(sweep.cache().misses(), 4u);
    EXPECT_EQ(sweep.cache().hits(), 4u);
}

TEST(SweepExec, ParallelRunIsByteIdenticalToSequential)
{
    const ExperimentSweep sweep = smallSweep();
    RunOptions sequential;
    sequential.threads = 1;
    sequential.iterations = 2;
    RunOptions parallel;
    parallel.threads = 4;
    parallel.iterations = 2;

    const auto seqResults = sweep.run(sequential);
    const auto parResults = sweep.run(parallel);
    ASSERT_EQ(seqResults.size(), parResults.size());

    std::ostringstream seqJson, parJson, seqCsv, parCsv;
    writeSweepJson(seqJson, seqResults);
    writeSweepJson(parJson, parResults);
    EXPECT_EQ(seqJson.str(), parJson.str());
    writeSweepCsv(seqCsv, seqResults);
    writeSweepCsv(parCsv, parResults);
    EXPECT_EQ(seqCsv.str(), parCsv.str());
}

TEST(SweepExec, ResultsStayBenchmarkMajorUnderParallelism)
{
    RunOptions options;
    options.threads = 4;
    const auto results = smallSweep().run(options);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].benchmark, "MAGAN-MNIST");
    EXPECT_EQ(results[0].configLabel, "lergan");
    EXPECT_EQ(results[1].benchmark, "MAGAN-MNIST");
    EXPECT_EQ(results[1].configLabel, "prime");
    EXPECT_EQ(results[2].benchmark, "cGAN");
    EXPECT_EQ(results[2].configLabel, "lergan");
    EXPECT_EQ(results[3].benchmark, "cGAN");
    EXPECT_EQ(results[3].configLabel, "prime");
}

TEST(SweepExec, SaturatedPoolKeepsBenchmarkMajorOrderAndBytes)
{
    // Oversubscribe the pool (8 workers, 4 grid points): chunked
    // claiming and per-lane arenas must still land every result in its
    // benchmark-major slot and export byte-identically to the 1-worker
    // run.
    const ExperimentSweep sweep = smallSweep();
    RunOptions sequential;
    sequential.threads = 1;
    sequential.iterations = 2;
    RunOptions saturated;
    saturated.threads = 8;
    saturated.iterations = 2;

    const auto seqResults = sweep.run(sequential);
    const auto satResults = sweep.run(saturated);
    ASSERT_EQ(satResults.size(), 4u);
    EXPECT_EQ(satResults[0].benchmark, "MAGAN-MNIST");
    EXPECT_EQ(satResults[0].configLabel, "lergan");
    EXPECT_EQ(satResults[1].benchmark, "MAGAN-MNIST");
    EXPECT_EQ(satResults[1].configLabel, "prime");
    EXPECT_EQ(satResults[2].benchmark, "cGAN");
    EXPECT_EQ(satResults[2].configLabel, "lergan");
    EXPECT_EQ(satResults[3].benchmark, "cGAN");
    EXPECT_EQ(satResults[3].configLabel, "prime");

    std::ostringstream seqJson, satJson;
    writeSweepJson(seqJson, seqResults);
    writeSweepJson(satJson, satResults);
    EXPECT_EQ(seqJson.str(), satJson.str());
}

TEST(SweepExec, ThrowingPointFailsWithoutPoisoningSiblings)
{
    AcceleratorConfig bad = smallLerGan();
    bad.batchSize = 0; // checkUsable throws at the point boundary

    ExperimentSweep sweep;
    sweep.addBenchmark(makeBenchmark("MAGAN-MNIST"))
        .addConfig("good", smallLerGan())
        .addConfig("bad", bad)
        .addConfig("prime", smallPrime());
    RunOptions options;
    options.threads = 2;
    const auto results = sweep.run(options);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_FALSE(results[0].failed);
    EXPECT_GT(results[0].report.iterationTime, 0u);
    EXPECT_TRUE(results[1].failed);
    EXPECT_EQ(results[1].benchmark, "MAGAN-MNIST");
    EXPECT_EQ(results[1].configLabel, "bad");
    EXPECT_NE(results[1].error.find("batchSize"), std::string::npos);
    EXPECT_FALSE(results[2].failed);
    EXPECT_GT(results[2].report.iterationTime, 0u);

    // Exports keep the failed point identifiable.
    std::ostringstream json;
    writeSweepJson(json, results);
    EXPECT_NE(json.str().find("\"failed\":true"), std::string::npos);
    EXPECT_NE(json.str().find("batchSize"), std::string::npos);
}

TEST(SweepExec, ExplicitPointsRunAfterTheGrid)
{
    AcceleratorConfig custom = smallLerGan();
    custom.cuPairs = 2;

    ExperimentSweep sweep;
    sweep.addBenchmark(makeBenchmark("MAGAN-MNIST"))
        .addConfig("lergan", smallLerGan())
        .addPoint(makeBenchmark("cGAN"), "custom", custom);
    EXPECT_EQ(sweep.pointCount(), 2u);

    const auto results = sweep.run(1);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].benchmark, "MAGAN-MNIST");
    EXPECT_EQ(results[1].benchmark, "cGAN");
    EXPECT_EQ(results[1].configLabel, "custom");
    EXPECT_FALSE(results[1].failed);
    EXPECT_GT(results[1].report.iterationTime, 0u);
}

TEST(SweepExec, ProgressCallbackCountsEveryPoint)
{
    RunOptions options;
    options.threads = 3;
    std::vector<std::size_t> seen;
    options.onProgress = [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 4u);
        seen.push_back(done);
    };
    smallSweep().run(options);
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen.back(), 4u);
}

TEST(SweepExec, LegacyOverloadsStillCompose)
{
    ExperimentSweep sweep;
    sweep.add(makeBenchmark("MAGAN-MNIST")).add("lergan", smallLerGan());
    const auto results = sweep.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].configLabel, "lergan");
}

} // namespace
} // namespace lergan
