/**
 * @file
 * Tests for the CArray crossbar allocator and its compiler integration.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.hh"
#include "reram/allocator.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

TEST(Allocator, SpreadsAcrossTilesInChunks)
{
    CArrayAllocator alloc(1, 4, 100);
    const Allocation a = alloc.allocate(0, 30, 10, "op");
    EXPECT_EQ(a.reserved(), 30u);
    EXPECT_EQ(a.oversubscribed, 0u);
    EXPECT_EQ(a.tiles().size(), 3u); // 10 per tile
    EXPECT_EQ(alloc.usedInTile(0, 0), 10u);
    EXPECT_EQ(alloc.usedInTile(0, 1), 10u);
    EXPECT_EQ(alloc.usedInTile(0, 2), 10u);
}

TEST(Allocator, RoundRobinContinuesFromCursor)
{
    CArrayAllocator alloc(1, 4, 100);
    alloc.allocate(0, 20, 10, "first"); // tiles 0,1
    const Allocation b = alloc.allocate(0, 10, 10, "second");
    // The cursor moved past the first allocation's tiles.
    EXPECT_NE(b.tiles().front(), 0);
}

TEST(Allocator, SecondPassFillsBeyondChunks)
{
    // One tile bank: a chunked request larger than the chunk still fits.
    CArrayAllocator alloc(1, 2, 100);
    const Allocation a = alloc.allocate(0, 150, 10, "big");
    EXPECT_EQ(a.reserved(), 150u);
    EXPECT_EQ(a.oversubscribed, 0u);
    EXPECT_EQ(alloc.usedInTile(0, 0) + alloc.usedInTile(0, 1), 150u);
}

TEST(Allocator, OversubscriptionIsRecorded)
{
    CArrayAllocator alloc(2, 2, 50);
    const Allocation a = alloc.allocate(0, 130, 100, "huge");
    EXPECT_EQ(a.reserved(), 100u);
    EXPECT_EQ(a.oversubscribed, 30u);
    EXPECT_EQ(alloc.totalOversubscribed(), 30u);
    EXPECT_EQ(alloc.freeInBank(0), 0u);
    // The other bank is untouched.
    EXPECT_EQ(alloc.freeInBank(1), 100u);
}

TEST(Allocator, FullBankStillYieldsATilePin)
{
    CArrayAllocator alloc(1, 2, 10);
    alloc.allocate(0, 20, 10, "fill");
    const Allocation overflow = alloc.allocate(0, 5, 10, "late");
    EXPECT_EQ(overflow.reserved(), 0u);
    EXPECT_EQ(overflow.oversubscribed, 5u);
    ASSERT_FALSE(overflow.tiles().empty());
}

TEST(Allocator, MapPrints)
{
    CArrayAllocator alloc(1, 2, 10);
    alloc.allocate(0, 5, 10, "op");
    std::ostringstream oss;
    alloc.printMap(oss);
    EXPECT_NE(oss.str().find("bank 0"), std::string::npos);
    EXPECT_NE(oss.str().find("free 15"), std::string::npos);
}

TEST(AllocatorCompiler, UsageAccountingMatchesCosts)
{
    const GanModel model = makeBenchmark("cGAN");
    const CompiledGan compiled =
        compileGan(model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    std::uint64_t placed = 0;
    for (const auto &bank : compiled.bankUsage)
        for (std::uint64_t used : bank)
            placed += used;
    EXPECT_EQ(placed + compiled.oversubscribedCrossbars,
              compiled.crossbarsUsed);
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &op : phase.ops) {
            EXPECT_EQ(op.allocation.reserved() +
                          op.allocation.oversubscribed,
                      std::max<std::uint64_t>(1, op.cost.crossbarsUsed))
                << op.op.label;
            // Every range stays inside its bank's tiles.
            for (const CrossbarRange &range : op.allocation.ranges) {
                EXPECT_EQ(range.bank, op.bank);
                EXPECT_GE(range.tile, 0);
                EXPECT_LT(range.tile, 16);
            }
        }
    }
}

TEST(AllocatorCompiler, SmallGanFitsWithoutOversubscription)
{
    const CompiledGan compiled =
        compileGan(makeBenchmark("MAGAN-MNIST"),
                   AcceleratorConfig::lerGan(ReplicaDegree::Low));
    EXPECT_EQ(compiled.oversubscribedCrossbars, 0u);
}

TEST(AllocatorCompiler, VolumetricGanOversubscribes)
{
    // 3D-GAN's high-duplication mapping exceeds the 6-bank machine;
    // the allocator must say so rather than pretend.
    const CompiledGan compiled =
        compileGan(makeBenchmark("3D-GAN"),
                   AcceleratorConfig::lerGan(ReplicaDegree::High));
    EXPECT_GT(compiled.oversubscribedCrossbars, 0u);
}

TEST(AllocatorCompiler, MemoryMapPrints)
{
    const CompiledGan compiled =
        compileGan(makeBenchmark("DCGAN"),
                   AcceleratorConfig::lerGan(ReplicaDegree::Middle));
    std::ostringstream oss;
    compiled.printMemoryMap(oss);
    EXPECT_NE(oss.str().find("bank 0"), std::string::npos);
    EXPECT_NE(oss.str().find("bank 5"), std::string::npos);
}

TEST(AllocatorDeath, BadBankPanics)
{
    CArrayAllocator alloc(2, 2, 10);
    EXPECT_DEATH(alloc.allocate(5, 1, 1, "x"), "bad bank");
    EXPECT_DEATH(alloc.freeInBank(-1), "bad bank");
}

} // namespace
} // namespace lergan
