/**
 * @file
 * Tests for the JSON writer, the execution tracer and the utilization
 * reporter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/json.hh"
#include "sim/task_graph.hh"
#include "sim/trace.hh"
#include "sim/trace_tracks.hh"
#include "sim/utilization.hh"

namespace lergan {
namespace {

TEST(Json, ObjectsAndArrays)
{
    std::ostringstream oss;
    JsonWriter json(oss);
    json.beginObject();
    json.key("name").value("DCGAN");
    json.key("n").value(42);
    json.key("ratio").value(0.5);
    json.key("ok").value(true);
    json.key("list").beginArray();
    json.value(1).value(2).value(3);
    json.endArray();
    json.endObject();
    EXPECT_EQ(oss.str(),
              "{\"name\":\"DCGAN\",\"n\":42,\"ratio\":0.5,\"ok\":true,"
              "\"list\":[1,2,3]}");
}

TEST(Json, NestedObjects)
{
    std::ostringstream oss;
    JsonWriter json(oss);
    json.beginArray();
    json.beginObject();
    json.key("a").value(1);
    json.endObject();
    json.beginObject();
    json.key("b").beginObject().endObject();
    json.endObject();
    json.endArray();
    EXPECT_EQ(oss.str(), "[{\"a\":1},{\"b\":{}}]");
}

TEST(Json, Escaping)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Trace, RecordsTaskIntervals)
{
    ResourcePool pool;
    const auto r = pool.create("unit");
    TaskGraph graph;
    const TaskId a = graph.addTask({"first", {r}, 10, 0, ""});
    const TaskId b = graph.addTask({"second", {r}, 5, 0, ""});
    graph.addDep(b, a);

    Tracer tracer;
    graph.execute(pool, &tracer);
    ASSERT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.events()[0].label, "first");
    EXPECT_EQ(tracer.events()[0].start, 0u);
    EXPECT_EQ(tracer.events()[0].end, 10u);
    EXPECT_EQ(tracer.events()[1].start, 10u);
    EXPECT_EQ(tracer.events()[1].end, 15u);
    EXPECT_EQ(tracer.events()[0].lane, r);
}

TEST(Trace, NullTracerIsFine)
{
    ResourcePool pool;
    TaskGraph graph;
    graph.addTask({"t", {}, 1, 0, ""});
    EXPECT_EQ(graph.execute(pool).makespan, 1u);
}

TEST(Trace, ChromeExportIsValidJsonShape)
{
    Tracer tracer;
    tracer.record("task \"x\"", 0, nsToPs(1.0), 0);
    std::ostringstream oss;
    tracer.exportChromeTrace(oss, {"lane0"});
    const std::string out = oss.str();
    EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(out.find("\\\"x\\\""), std::string::npos);
    EXPECT_NE(out.find("thread_name"), std::string::npos);
    EXPECT_NE(out.find("lane0"), std::string::npos);
}

TEST(Trace, UnlanedTasksGetNamedTrack)
{
    Tracer tracer;
    tracer.record("detached", 0, 10, SIZE_MAX);
    std::ostringstream oss;
    tracer.exportChromeTrace(oss, {"lane0"});
    const std::string out = oss.str();
    // SIZE_MAX lanes map to tid 0 with a human-readable name, not to
    // tid 18446744073709551615.
    EXPECT_EQ(out.find("18446744073709551615"), std::string::npos);
    EXPECT_NE(out.find("(no resource)"), std::string::npos);
    std::string error;
    EXPECT_TRUE(isValidJson(out, &error)) << error;
}

TEST(Trace, CounterSamplesBecomeCounterTracks)
{
    Tracer tracer;
    tracer.recordCounter("sim.queue.depth", 0, 1.0);
    tracer.recordCounter("sim.queue.depth", 100, 3.0);
    // Same track + time overwrites: one instant keeps its final value.
    tracer.recordCounter("sim.queue.depth", 100, 2.0);
    ASSERT_EQ(tracer.counterSamples().size(), 2u);
    EXPECT_DOUBLE_EQ(tracer.counterSamples()[1].value, 2.0);

    std::ostringstream oss;
    tracer.exportChromeTrace(oss, {});
    const std::string out = oss.str();
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(out.find("sim.queue.depth"), std::string::npos);
    std::string error;
    EXPECT_TRUE(isValidJson(out, &error)) << error;

    tracer.clear();
    EXPECT_TRUE(tracer.counterSamples().empty());
}

TEST(Trace, ExecutorRecordsOccupancyCounters)
{
    ResourcePool pool;
    const auto r = pool.create("unit");
    TaskGraph graph;
    const TaskId a = graph.addTask({"first", {r}, 10, 0, ""});
    const TaskId b = graph.addTask({"second", {r}, 5, 0, ""});
    graph.addDep(b, a);

    Tracer tracer;
    graph.execute(pool, &tracer);
    bool saw_depth = false;
    for (const CounterSample &sample : tracer.counterSamples())
        saw_depth = saw_depth || sample.track == "sim.queue.depth";
    EXPECT_TRUE(saw_depth);
}

TEST(TraceTracks, SpanOccupancyAndBusiestLane)
{
    Tracer tracer;
    // Two overlapping transfers and one compute span on another lane.
    tracer.record("xfer:a->b", 0, 10, 0);
    tracer.record("xfer:b->c", 5, 25, 1);
    tracer.record("mmv", 0, 100, 2);

    const std::size_t samples =
        addSpanOccupancyTrack(tracer, "xfer:", "ic.xfer.active");
    EXPECT_GT(samples, 0u);
    // Occupancy rises to 2 in [5,10) and returns to 0 at 25.
    double peak = 0.0, last = -1.0;
    for (const CounterSample &sample : tracer.counterSamples()) {
        if (sample.track != "ic.xfer.active")
            continue;
        peak = std::max(peak, sample.value);
        last = sample.value;
    }
    EXPECT_DOUBLE_EQ(peak, 2.0);
    EXPECT_DOUBLE_EQ(last, 0.0);

    const std::vector<std::string> names = {"wire.0", "wire.1",
                                            "tile.compute"};
    EXPECT_EQ(busiestLane(tracer, names, "wire"), 1u);
    EXPECT_EQ(busiestLane(tracer, names, ".compute"), 2u);
    EXPECT_EQ(busiestLane(tracer, names, "nonesuch"), SIZE_MAX);

    const std::size_t lane_samples =
        addLaneOccupancyTrack(tracer, 2, "tile.busy");
    EXPECT_GT(lane_samples, 0u);
}

TEST(Trace, TimelinePrintsAndTruncates)
{
    Tracer tracer;
    for (int i = 0; i < 10; ++i)
        tracer.record("t" + std::to_string(i), i, i + 1, 0);
    std::ostringstream oss;
    tracer.printTimeline(oss, 3);
    EXPECT_NE(oss.str().find("7 more events"), std::string::npos);
}

TEST(Utilization, TopBusySortsByBusyTime)
{
    ResourcePool pool;
    const auto a = pool.create("a");
    const auto b = pool.create("b");
    pool[a].reserve(0, 10);
    pool[b].reserve(0, 30);
    const auto top = topBusyResources(pool, 100, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].name, "b");
    EXPECT_DOUBLE_EQ(top[0].utilization, 0.3);
    EXPECT_EQ(top[1].name, "a");
}

TEST(Utilization, FragmentAveraging)
{
    ResourcePool pool;
    const auto a = pool.create("tile.compute.0");
    const auto b = pool.create("tile.compute.1");
    pool.create("wire.x");
    pool[a].reserve(0, 50);
    pool[b].reserve(0, 100);
    EXPECT_DOUBLE_EQ(utilizationOf(pool, 100, ".compute"), 0.75);
    EXPECT_DOUBLE_EQ(utilizationOf(pool, 100, "wire"), 0.0);
    EXPECT_DOUBLE_EQ(utilizationOf(pool, 100, "nonexistent"), 0.0);
}

TEST(Utilization, PrintsTable)
{
    ResourcePool pool;
    pool[pool.create("busy.thing")].reserve(0, 42);
    std::ostringstream oss;
    printUtilization(oss, pool, 100, 5);
    EXPECT_NE(oss.str().find("busy.thing"), std::string::npos);
}

} // namespace
} // namespace lergan
