/**
 * @file
 * Tests for the topology graph, the H-tree builder and the 3D connection.
 */

#include <gtest/gtest.h>

#include <set>

#include "interconnect/htree.hh"
#include "interconnect/three_d.hh"

namespace lergan {
namespace {

TEST(Topology, RouteFindsShortestByLatency)
{
    Topology topo;
    ResourcePool pool;
    // Triangle: a-b (10ns), b-c (10ns), a-c (50ns direct).
    const int a = topo.addNode({NodeKind::Tile, 0, 0, 0, "a", SIZE_MAX});
    const int b = topo.addNode({NodeKind::Tile, 0, 0, 1, "b", SIZE_MAX});
    const int c = topo.addNode({NodeKind::Tile, 0, 0, 2, "c", SIZE_MAX});
    auto link = [&](int x, int y, double lat) {
        TopoLink l;
        l.a = x;
        l.b = y;
        l.latencyNs = lat;
        l.bytesPerNs = 1.0;
        l.pjPerByte = 1.0;
        l.resources.push_back(pool.create("w"));
        topo.addLink(l);
    };
    link(a, b, 10);
    link(b, c, 10);
    link(a, c, 50);
    const Route route = topo.route(a, c);
    ASSERT_TRUE(route.valid());
    EXPECT_EQ(route.links.size(), 2u); // via b
    EXPECT_DOUBLE_EQ(route.latencyNs, 20.0);
}

TEST(Topology, RouteRespectsFilter)
{
    Topology topo;
    ResourcePool pool;
    const int a = topo.addNode({NodeKind::Tile, 0, 0, 0, "a", SIZE_MAX});
    const int b = topo.addNode({NodeKind::Tile, 0, 0, 1, "b", SIZE_MAX});
    TopoLink l;
    l.a = a;
    l.b = b;
    l.kind = LinkKind::Vertical;
    l.latencyNs = 1;
    l.bytesPerNs = 1;
    l.resources.push_back(pool.create("v"));
    topo.addLink(l);
    const auto htree_only = [](const TopoLink &link) {
        return link.kind == LinkKind::HTree;
    };
    EXPECT_TRUE(topo.route(a, b).valid());
    EXPECT_FALSE(topo.route(a, b, htree_only).valid());
}

TEST(Topology, SelfRouteIsFree)
{
    Topology topo;
    const int a = topo.addNode({NodeKind::Tile, 0, 0, 0, "a", SIZE_MAX});
    const Route route = topo.route(a, a);
    EXPECT_TRUE(route.valid());
    EXPECT_TRUE(route.links.empty());
    EXPECT_EQ(route.transferTime(1 << 20), 0u);
}

TEST(Topology, TransferTimeHasLatencyAndSerialization)
{
    Route route;
    route.latencyNs = 10;
    route.minBytesPerNs = 2;
    route.pjPerByte = 3;
    EXPECT_EQ(route.transferTime(100), nsToPs(10 + 50));
    EXPECT_DOUBLE_EQ(route.transferEnergy(100), 300.0);
}

TEST(HTree, BankStructure)
{
    Topology topo;
    ResourcePool pool;
    const HTreeBank bank = buildHTreeBank(topo, pool, ReRamParams{}, 0);
    EXPECT_EQ(bank.tiles.size(), 16u);
    ASSERT_EQ(bank.routers.size(), 3u);
    EXPECT_EQ(bank.routers[0].size(), 2u);
    EXPECT_EQ(bank.routers[1].size(), 4u);
    EXPECT_EQ(bank.routers[2].size(), 8u);
    // 1 port + 14 routers + 16 tiles.
    EXPECT_EQ(topo.numNodes(), 31u);
    // A binary tree over 31 nodes has 30 edges.
    EXPECT_EQ(topo.numLinks(), 30u);
}

TEST(HTree, SiblingTilesAreTwoHopsApart)
{
    Topology topo;
    ResourcePool pool;
    const HTreeBank bank = buildHTreeBank(topo, pool, ReRamParams{}, 0);
    const Route sibling = topo.route(bank.tiles[0], bank.tiles[1]);
    EXPECT_EQ(sibling.links.size(), 2u);
    // Opposite corners traverse the full tree: 4 up + 4 down.
    const Route far = topo.route(bank.tiles[0], bank.tiles[15]);
    EXPECT_EQ(far.links.size(), 8u);
    EXPECT_EQ(htreeHopDistance(0, 1), 2);
    EXPECT_EQ(htreeHopDistance(0, 15), 8);
    EXPECT_EQ(htreeHopDistance(3, 3), 0);
}

TEST(HTree, WireWidthsNarrowTowardLeaves)
{
    Topology topo;
    ResourcePool pool;
    const HTreeBank bank = buildHTreeBank(topo, pool, ReRamParams{}, 0);
    const Route far = topo.route(bank.tiles[0], bank.tiles[15]);
    double leaf_bw = 0, root_bw = 0;
    for (int idx : far.links) {
        const TopoLink &l = topo.link(idx);
        const int depth = std::max(topo.node(l.a).depth,
                                   topo.node(l.b).depth);
        if (depth == 4)
            leaf_bw = l.bytesPerNs;
        if (depth == 1)
            root_bw = l.bytesPerNs;
    }
    EXPECT_GT(root_bw, leaf_bw);
}

TEST(ThreeD, AddsHorizontalVerticalLinks)
{
    Topology topo;
    ResourcePool pool;
    const ThreeDCU cu = build3dcu(topo, pool, ReRamParams{}, 0, true);
    // Horizontal: (1 + 3 + 7) per bank x 3 banks = 33.
    // Vertical: (2 + 4 + 8 + 16) per bank pair x 2 pairs = 60.
    EXPECT_EQ(cu.addedLinks, 33 + 60);
    EXPECT_GT(cu.addedSwitches, 0);
}

TEST(ThreeD, PlainStackHasNoAddedLinks)
{
    Topology topo;
    ResourcePool pool;
    const ThreeDCU cu = build3dcu(topo, pool, ReRamParams{}, 0, false);
    EXPECT_EQ(cu.addedLinks, 0);
    for (std::size_t i = 0; i < topo.numLinks(); ++i)
        EXPECT_EQ(topo.link(i).kind, LinkKind::HTree);
}

TEST(ThreeD, VerticalWiresShortenInterBankRoutes)
{
    Topology topo3d, topo2d;
    ResourcePool pool3d, pool2d;
    const ThreeDCU cu3d = build3dcu(topo3d, pool3d, ReRamParams{}, 0, true);
    const ThreeDCU cu2d =
        build3dcu(topo2d, pool2d, ReRamParams{}, 0, false);
    // In 2D the stacked banks are simply unconnected (they only meet at
    // the bus, which this unit does not build); in 3D the corresponding
    // tiles are one vertical hop apart.
    const Route r3d = topo3d.route(cu3d.banks[0].tiles[5],
                                   cu3d.banks[1].tiles[5]);
    ASSERT_TRUE(r3d.valid());
    EXPECT_EQ(r3d.links.size(), 1u);
    EXPECT_EQ(topo3d.link(r3d.links[0]).kind, LinkKind::Vertical);
    EXPECT_FALSE(topo2d.route(cu2d.banks[0].tiles[5],
                              cu2d.banks[1].tiles[5])
                     .valid());
}

TEST(ThreeD, HorizontalWireCrossesSubtreeBoundary)
{
    Topology topo;
    ResourcePool pool;
    const ThreeDCU cu = build3dcu(topo, pool, ReRamParams{}, 0, true);
    // Tiles 7 and 8 sit in different root subtrees: 8 hops on the pure
    // H-tree, but the added wires shortcut across.
    const HTreeBank &bank = cu.banks[0];
    const auto htree_only = [](const TopoLink &l) {
        return l.kind == LinkKind::HTree;
    };
    const Route pure = topo.route(bank.tiles[7], bank.tiles[8], htree_only);
    const Route with3d = topo.route(bank.tiles[7], bank.tiles[8]);
    EXPECT_EQ(pure.links.size(), 8u);
    EXPECT_LT(with3d.links.size(), pure.links.size());
}

TEST(ThreeD, AddedLinksCarrySwitchResources)
{
    Topology topo;
    ResourcePool pool;
    build3dcu(topo, pool, ReRamParams{}, 0, true);
    for (std::size_t i = 0; i < topo.numLinks(); ++i) {
        const TopoLink &link = topo.link(i);
        if (link.kind == LinkKind::Horizontal ||
            link.kind == LinkKind::Vertical) {
            // wire + two endpoint switches
            EXPECT_EQ(link.resources.size(), 3u);
        } else {
            EXPECT_EQ(link.resources.size(), 1u);
        }
    }
}

TEST(ThreeD, MiddleBankHasSecondSwitch)
{
    Topology topo;
    ResourcePool pool;
    const ThreeDCU cu = build3dcu(topo, pool, ReRamParams{}, 0, true);
    // The up- and down-facing vertical links of a middle-bank node must
    // use different switch resources so they can run concurrently.
    const int mid_tile = cu.banks[1].tiles[3];
    std::vector<const TopoLink *> vertical;
    for (std::size_t i = 0; i < topo.numLinks(); ++i) {
        const TopoLink &l = topo.link(i);
        if (l.kind == LinkKind::Vertical &&
            (l.a == mid_tile || l.b == mid_tile)) {
            vertical.push_back(&l);
        }
    }
    ASSERT_EQ(vertical.size(), 2u);
    std::set<std::size_t> switches_up(vertical[0]->resources.begin(),
                                      vertical[0]->resources.end());
    std::set<std::size_t> switches_down(vertical[1]->resources.begin(),
                                        vertical[1]->resources.end());
    // The two links share no switch resource (only distinct wires and
    // distinct middle-bank switches).
    std::vector<std::size_t> common;
    std::set_intersection(switches_up.begin(), switches_up.end(),
                          switches_down.begin(), switches_down.end(),
                          std::back_inserter(common));
    EXPECT_TRUE(common.empty());
}

TEST(ThreeD, BypassConnectsPorts)
{
    Topology topo;
    ResourcePool pool;
    const ThreeDCU a = build3dcu(topo, pool, ReRamParams{}, 0, true);
    const ThreeDCU b = build3dcu(topo, pool, ReRamParams{}, 3, true);
    addBypassLink(topo, pool, ReRamParams{}, a.banks[0], b.banks[0]);
    const Route route = topo.route(a.banks[0].port, b.banks[0].port);
    ASSERT_TRUE(route.valid());
    EXPECT_EQ(route.links.size(), 1u);
    EXPECT_EQ(topo.link(route.links[0]).kind, LinkKind::Bypass);
}

TEST(ThreeD, AreaOverheadNearPaper)
{
    // Sec. VI-E: the added switches and wires cost 13.3% versus PRIME.
    const AreaModel area = areaModel3dcu(ReRamParams{});
    EXPECT_NEAR(area.overhead(), 0.133, 0.03);
    EXPECT_GT(area.tileArea, area.htreeWireArea);
}

} // namespace
} // namespace lergan
