/**
 * @file
 * Unit tests for the common utility layer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/strings.hh"
#include "common/table.hh"

namespace lergan {
namespace {

TEST(Stats, AddAccumulates)
{
    StatSet stats;
    stats.add("a.x", 1.0);
    stats.add("a.x", 2.5);
    EXPECT_DOUBLE_EQ(stats.get("a.x"), 3.5);
    EXPECT_DOUBLE_EQ(stats.get("missing"), 0.0);
    EXPECT_FALSE(stats.has("missing"));
    EXPECT_TRUE(stats.has("a.x"));
}

TEST(Stats, SetOverwrites)
{
    StatSet stats;
    stats.add("k", 5);
    stats.set("k", 2);
    EXPECT_DOUBLE_EQ(stats.get("k"), 2.0);
}

TEST(Stats, MergeSums)
{
    StatSet a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("y", 3);
    b.add("z", 4);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1);
    EXPECT_DOUBLE_EQ(a.get("y"), 5);
    EXPECT_DOUBLE_EQ(a.get("z"), 4);
}

TEST(Stats, ScaleMultipliesEverything)
{
    StatSet stats;
    stats.add("x", 2);
    stats.add("y", 3);
    stats.scale(10);
    EXPECT_DOUBLE_EQ(stats.get("x"), 20);
    EXPECT_DOUBLE_EQ(stats.get("y"), 30);
}

TEST(Stats, SumPrefixSelectsSubtree)
{
    StatSet stats;
    stats.add("energy.compute.adc", 1);
    stats.add("energy.compute.dac", 2);
    stats.add("energy.comm", 10);
    stats.add("energy2", 100);
    EXPECT_DOUBLE_EQ(stats.sumPrefix("energy.compute."), 3);
    EXPECT_DOUBLE_EQ(stats.sumPrefix("energy."), 13);
    EXPECT_DOUBLE_EQ(stats.sumPrefix(""), 113);
}

TEST(Stats, PrintFiltersByPrefix)
{
    StatSet stats;
    stats.add("a.one", 1);
    stats.add("b.two", 2);
    std::ostringstream oss;
    stats.print(oss, "a.");
    EXPECT_NE(oss.str().find("a.one"), std::string::npos);
    EXPECT_EQ(oss.str().find("b.two"), std::string::npos);
}

TEST(Strings, Split)
{
    const auto fields = split("a-b--c", '-');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y \t"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("hello", "hello!"));
    EXPECT_TRUE(endsWith("hello", "lo"));
    EXPECT_FALSE(endsWith("hello", "hell"));
}

TEST(Strings, ParseInt)
{
    EXPECT_EQ(parseInt("1024", "test"), 1024);
    EXPECT_EQ(parseInt("0", "test"), 0);
}

TEST(StringsDeath, ParseIntRejectsGarbage)
{
    EXPECT_EXIT(parseInt("12x", "test"), testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseInt("", "test"), testing::ExitedWithCode(1), "");
}

TEST(LoggingDeath, AssertFires)
{
    EXPECT_DEATH(LERGAN_ASSERT(1 == 2, "boom"), "assertion failed");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Table, RendersAlignedRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", TextTable::num(1.5)});
    table.addRow({"b", "2"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableDeath, RowWidthMismatch)
{
    TextTable table({"one"});
    EXPECT_DEATH(table.addRow({"a", "b"}), "cells");
}

} // namespace
} // namespace lergan
