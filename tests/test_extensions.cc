/**
 * @file
 * Tests for the extension features: heterogeneous per-phase acceleration,
 * interconnect ablation switches, the stride-3 future-GAN workload and
 * traced accelerator runs.
 */

#include <gtest/gtest.h>

#include "core/api.hh"

namespace lergan {
namespace {

TEST(Hetero, DegreeForUsesOverrides)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.phaseDegrees[Phase::DBwdWeight] = ReplicaDegree::High;
    EXPECT_EQ(config.degreeFor(Phase::DBwdWeight), ReplicaDegree::High);
    EXPECT_EQ(config.degreeFor(Phase::GFwd), ReplicaDegree::Low);
}

TEST(Hetero, BoostingOnePhaseLandsBetweenUniformConfigs)
{
    const GanModel model = makeBenchmark("GPGAN");
    AcceleratorConfig low = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    AcceleratorConfig high = AcceleratorConfig::lerGan(ReplicaDegree::High);
    AcceleratorConfig hetero = low;
    hetero.phaseDegrees[Phase::DBwdWeight] = ReplicaDegree::High;
    hetero.phaseDegrees[Phase::GBwdWeight] = ReplicaDegree::High;

    const auto t_low = simulateTraining(model, low).iterationTime;
    const auto t_high = simulateTraining(model, high).iterationTime;
    const auto t_hetero = simulateTraining(model, hetero).iterationTime;
    EXPECT_LE(t_hetero, t_low);
    EXPECT_GE(t_hetero, t_high);

    // Heterogeneous space use also sits between the uniform configs.
    const auto s_low = compileGan(model, low).crossbarsUsed;
    const auto s_high = compileGan(model, high).crossbarsUsed;
    const auto s_hetero = compileGan(model, hetero).crossbarsUsed;
    EXPECT_GE(s_hetero, s_low);
    EXPECT_LE(s_hetero, s_high);
}

TEST(Ablation, DisablingAllWiresMatchesNoAddedConnectivity)
{
    const GanModel model = makeBenchmark("cGAN");
    AcceleratorConfig none = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    none.horizontalWires = false;
    none.verticalWires = false;
    AcceleratorConfig full = AcceleratorConfig::lerGan(ReplicaDegree::Low);

    const auto t_none = simulateTraining(model, none).iterationTime;
    const auto t_full = simulateTraining(model, full).iterationTime;
    EXPECT_LT(t_full, t_none);
}

TEST(Ablation, VerticalWiresCarryTheInterPhaseTraffic)
{
    const GanModel model = makeBenchmark("DCGAN");
    auto time_with = [&](bool horizontal, bool vertical) {
        AcceleratorConfig config =
            AcceleratorConfig::lerGan(ReplicaDegree::Low);
        config.horizontalWires = horizontal;
        config.verticalWires = vertical;
        return simulateTraining(model, config).iterationTime;
    };
    // Vertical-only must recover (nearly) the full-3D time; horizontal-
    // only cannot (forward caches still cross banks via the bus).
    EXPECT_LT(time_with(false, true), time_with(true, false));
}

TEST(FutureGan, Stride3ParsesAndValidates)
{
    const GanModel s3 = futureGanStride3();
    EXPECT_EQ(s3.itemSize, 81);
    for (const LayerSpec &layer : s3.generator) {
        if (layer.kind == LayerKind::TConv) {
            EXPECT_EQ(layer.stride, 3);
            EXPECT_EQ(layer.outSize, layer.inSize * 3);
        }
    }
}

TEST(FutureGan, Stride3HasWorseZeroRatioThanStride2)
{
    const OpZeroStats s2 = analyzeModel(futureGanStride2Control());
    const OpZeroStats s3 = analyzeModel(futureGanStride3());
    EXPECT_LT(s3.multEfficiency(), s2.multEfficiency());
    EXPECT_GT(s3.storageBlowup(), s2.storageBlowup());
}

TEST(FutureGan, Stride3ZfdrCoverageHolds)
{
    const GanModel s3 = futureGanStride3();
    for (Phase phase : kAllPhases) {
        for (const LayerOp &op : opsForPhase(s3, phase)) {
            if (!op.zfdrApplicable())
                continue;
            const ReshapeAnalysis analysis = analyzeReshape(op);
            EXPECT_EQ(analysis.corner.servedPositions +
                          analysis.edge.servedPositions +
                          analysis.inside.servedPositions,
                      analysis.totalPositions)
                << op.label;
        }
    }
}

TEST(FutureGan, Stride3TrainsOnLerGan)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    const TrainingReport report =
        simulateTraining(futureGanStride3(), config);
    EXPECT_GT(report.iterationTime, 0u);
}

TEST(TracedRun, ProducesEventsAndSameResult)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    LerGanAccelerator accelerator(model, config);
    const TrainingReport plain = accelerator.trainIteration();
    Tracer tracer;
    const TrainingReport traced =
        accelerator.trainIterationTraced(tracer);
    EXPECT_EQ(plain.iterationTime, traced.iterationTime);
    EXPECT_EQ(tracer.events().size(),
              static_cast<std::size_t>(plain.stats.get("sim.tasks")));
    EXPECT_FALSE(accelerator.resourceNames().empty());
}

} // namespace
} // namespace lergan
