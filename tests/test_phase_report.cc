/**
 * @file
 * Tests for the phase-time analysis over traced runs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/api.hh"
#include "core/phase_report.hh"

namespace lergan {
namespace {

TEST(PhaseReport, GroupsByLabelFamilies)
{
    Tracer tracer;
    tracer.record("G.l1.fc@G.fwd", 0, 10, 0);
    tracer.record("G.l2.tconv@G.fwd", 10, 30, 0);
    tracer.record("xfer:a->b", 5, 15, 1);
    tracer.record("update:D.l1.conv@D.fwd", 30, 40, 2);
    tracer.record("ctrl:train_disc", 0, 1, 3);

    const auto phases = phaseTimes(tracer);
    ASSERT_EQ(phases.size(), 4u);
    auto find = [&](const std::string &name) -> const PhaseTime & {
        for (const PhaseTime &p : phases)
            if (p.name == name)
                return p;
        ADD_FAILURE() << "missing family " << name;
        static PhaseTime none;
        return none;
    };
    EXPECT_EQ(find("G.fwd").tasks, 2u);
    EXPECT_EQ(find("G.fwd").busy, 30u);
    EXPECT_EQ(find("G.fwd").span(), 30u);
    EXPECT_EQ(find("transfers").tasks, 1u);
    EXPECT_EQ(find("updates").tasks, 1u);
    EXPECT_EQ(find("other").tasks, 1u);
}

TEST(PhaseReport, RealRunCoversAllSixPhases)
{
    const GanModel model = makeBenchmark("cGAN");
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 4;
    LerGanAccelerator accelerator(model, config);
    Tracer tracer;
    const TrainingReport report = accelerator.trainIterationTraced(tracer);

    const auto phases = phaseTimes(tracer);
    int named_phases = 0;
    for (const PhaseTime &phase : phases) {
        for (Phase p : kAllPhases)
            if (phase.name == phaseName(p))
                ++named_phases;
        EXPECT_LE(phase.lastEnd, report.iterationTime);
        EXPECT_LE(phase.firstStart, phase.lastEnd);
    }
    EXPECT_EQ(named_phases, 6);
}

TEST(PhaseReport, PhasesOverlapUnderPipelining)
{
    // The D-forward window must start before the G-forward window ends:
    // the first items reach the discriminator while later items are
    // still in the generator.
    const GanModel model = makeBenchmark("cGAN");
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.batchSize = 16;
    LerGanAccelerator accelerator(model, config);
    Tracer tracer;
    accelerator.trainIterationTraced(tracer);

    const auto phases = phaseTimes(tracer);
    const PhaseTime *g_fwd = nullptr, *d_fwd = nullptr;
    for (const PhaseTime &phase : phases) {
        if (phase.name == "G.fwd")
            g_fwd = &phase;
        if (phase.name == "D.fwd")
            d_fwd = &phase;
    }
    ASSERT_TRUE(g_fwd && d_fwd);
    EXPECT_LT(d_fwd->firstStart, g_fwd->lastEnd);
}

TEST(PhaseReport, PrintsTable)
{
    Tracer tracer;
    tracer.record("G.l1.fc@G.fwd", 0, nsToPs(100), 0);
    std::ostringstream oss;
    printPhaseTimes(oss, tracer, nsToPs(200));
    EXPECT_NE(oss.str().find("G.fwd"), std::string::npos);
    EXPECT_NE(oss.str().find("50.0%"), std::string::npos);
}

} // namespace
} // namespace lergan
