/**
 * @file
 * Functional verification of ZFDR: the reshaped-matrix execution paths
 * must agree bit-exactly with the direct (zero-carrying) references for
 * every convolution flavor GAN training uses, across strides, kernels,
 * paddings (including asymmetric ones) and dimensionalities.
 *
 * This certifies the paper's central claim: ZFDR removes only
 * zero-related operations — the computed values are identical.
 */

#include <gtest/gtest.h>

#include "nn/functional.hh"
#include "nn/parser.hh"
#include "workloads/zoo.hh"
#include "zfdr/functional.hh"

namespace lergan {
namespace {

/** Build a shape-consistent T-CONV layer from converse parameters. */
LayerSpec
makeTconv(int in_size, int stride, int kernel, int in_ch, int out_ch,
          int dims = 2)
{
    LayerSpec layer;
    layer.kind = LayerKind::TConv;
    layer.inChannels = in_ch;
    layer.outChannels = out_ch;
    layer.inSize = in_size;
    layer.outSize = in_size * stride;
    layer.spatialDims = dims;
    layer.kernel = kernel;
    layer.stride = stride;
    // Solve P'lo/P'hi and R for O = I * S' (mirrors the parser).
    for (int rem = 0; rem < stride; ++rem) {
        const int total =
            (in_size - 1) * stride + rem + kernel - layer.outSize;
        if (total >= 0) {
            layer.pad = total / 2;
            layer.padHi = total - layer.pad;
            layer.rem = rem;
            break;
        }
    }
    layer.name = "test.tconv";
    layer.check();
    return layer;
}

/** Build a shape-consistent S-CONV layer with O = ceil(I / S). */
LayerSpec
makeConv(int in_size, int stride, int kernel, int in_ch, int out_ch,
         int dims = 2)
{
    LayerSpec layer;
    layer.kind = LayerKind::Conv;
    layer.inChannels = in_ch;
    layer.outChannels = out_ch;
    layer.inSize = in_size;
    layer.outSize = (in_size + stride - 1) / stride;
    layer.spatialDims = dims;
    layer.kernel = kernel;
    layer.stride = stride;
    for (int rem = 0; rem < stride; ++rem) {
        const int total =
            (layer.outSize - 1) * stride + rem + kernel - in_size;
        if (total >= 0) {
            layer.pad = total / 2;
            layer.padHi = total - layer.pad;
            layer.rem = rem;
            break;
        }
    }
    layer.name = "test.conv";
    layer.check();
    return layer;
}

/** Check all four sparse flavors of one layer against the references. */
void
verifyLayer(const LayerSpec &layer, std::uint64_t seed)
{
    Rng rng(seed);
    if (layer.kind == LayerKind::TConv) {
        const Tensor input = Tensor::random(inputShape(layer), rng);
        const Tensor kernel = Tensor::random(kernelShape(layer), rng);
        const Tensor grad = Tensor::random(outputShape(layer), rng);
        EXPECT_EQ(tconvForwardRef(input, kernel, layer),
                  tconvForwardZfdr(input, kernel, layer))
            << layer.name << " forward";
        EXPECT_EQ(tconvWeightGradRef(input, grad, layer),
                  tconvWeightGradZfdr(input, grad, layer))
            << layer.name << " weight grad";
    } else if (layer.kind == LayerKind::Conv) {
        const Tensor input = Tensor::random(inputShape(layer), rng);
        const Tensor kernel = Tensor::random(kernelShape(layer), rng);
        const Tensor grad = Tensor::random(outputShape(layer), rng);
        EXPECT_EQ(convBackwardDataRef(grad, kernel, layer),
                  convBackwardDataZfdr(grad, kernel, layer))
            << layer.name << " backward data";
        EXPECT_EQ(convWeightGradRef(input, grad, layer),
                  convWeightGradZfdr(input, grad, layer))
            << layer.name << " weight grad";
    }
}

TEST(Functional, TensorBasics)
{
    Tensor t({2, 3, 3});
    EXPECT_EQ(t.size(), 18u);
    t.at({1, 2, 0}) = 7;
    EXPECT_EQ(t.at({1, 2, 0}), 7);
    EXPECT_EQ(t.flat(1 * 9 + 2 * 3 + 0), 7);

    Rng rng(1);
    const Tensor r = Tensor::random({4, 4}, rng, -2, 2);
    for (std::size_t i = 0; i < r.size(); ++i) {
        EXPECT_GE(r.flat(i), -2);
        EXPECT_LE(r.flat(i), 2);
    }
}

TEST(Functional, ForEachIndexCoversLexicographically)
{
    std::vector<std::vector<int>> seen;
    forEachIndex({2, 3},
                 [&](const std::vector<int> &idx) { seen.push_back(idx); });
    ASSERT_EQ(seen.size(), 6u);
    EXPECT_EQ(seen.front(), (std::vector<int>{0, 0}));
    EXPECT_EQ(seen[1], (std::vector<int>{0, 1}));
    EXPECT_EQ(seen.back(), (std::vector<int>{1, 2}));
}

TEST(Functional, TconvOutputShapeAndZeros)
{
    // A kernel of all ones summed over a known input checks the grid
    // construction: a 2x2 input, stride 2, kernel 3.
    const LayerSpec layer = makeTconv(2, 2, 3, 1, 1);
    Tensor input(inputShape(layer));
    input.at({0, 0, 0}) = 1;
    input.at({0, 0, 1}) = 10;
    input.at({0, 1, 0}) = 100;
    input.at({0, 1, 1}) = 1000;
    Tensor kernel(kernelShape(layer));
    for (std::size_t i = 0; i < kernel.size(); ++i)
        kernel.flat(i) = 1;
    const Tensor out = tconvForwardRef(input, kernel, layer);
    // Every output cell is the sum of the (at most 4) data cells its
    // 3x3 window covers; total over all cells = sum(input) * kernel
    // positions covering each data cell (3x3 windows hitting it).
    std::int64_t total = 0;
    for (std::size_t i = 0; i < out.size(); ++i)
        total += out.flat(i);
    // Each data cell is covered by up to 9 windows, clipped at borders.
    std::int64_t expect = 0;
    const Tensor ones = tconvForwardZfdr(input, kernel, layer);
    for (std::size_t i = 0; i < ones.size(); ++i)
        expect += ones.flat(i);
    EXPECT_EQ(total, expect);
    EXPECT_EQ(out, ones);
}

TEST(Functional, Conv1LikeLayerMatches)
{
    // The paper's CONV1 geometry (I=4 -> O=8, k5 s2) with small channel
    // counts for speed.
    verifyLayer(makeTconv(4, 2, 5, 3, 2), 11);
}

TEST(Functional, Fig6LikeLayerMatches)
{
    // The paper's Fig. 6 W-CONV-S geometry: I=8, O=4, k5 s2.
    verifyLayer(makeConv(8, 2, 5, 2, 3), 12);
}

TEST(Functional, AsymmetricPaddingMatches)
{
    // ArtGAN's 1024t4k1s shape needs asymmetric padding (total 3).
    const LayerSpec even = makeTconv(4, 1, 4, 2, 2);
    EXPECT_NE(even.pad, even.padHi);
    verifyLayer(even, 13);

    const LayerSpec conv_even = makeConv(9, 2, 4, 2, 2);
    verifyLayer(conv_even, 14);
}

TEST(Functional, VolumetricLayersMatch)
{
    // 3D-GAN style volumetric convolutions.
    verifyLayer(makeTconv(3, 2, 4, 2, 2, /*dims=*/3), 15);
    verifyLayer(makeConv(6, 2, 4, 2, 2, /*dims=*/3), 16);
}

TEST(Functional, AllBenchmarkLayersMatchShrunk)
{
    // Every conv layer of every benchmark, shrunk to small channel
    // counts but keeping its exact spatial geometry (stride, kernel,
    // padding, remainder) — geometry is what ZFDR depends on.
    std::uint64_t seed = 100;
    for (const GanModel &model : allBenchmarks()) {
        for (const auto *net : {&model.generator, &model.discriminator}) {
            for (LayerSpec layer : *net) {
                if (layer.kind == LayerKind::FullyConnected)
                    continue;
                if (layer.inSize > 16)
                    continue; // keep the suite fast
                layer.inChannels = 2;
                layer.outChannels = 3;
                verifyLayer(layer, ++seed);
            }
        }
    }
}

/** Property sweep over (in_size, stride, kernel). */
using FuncCase = std::tuple<int, int, int>;

class TconvEquivalence : public testing::TestWithParam<FuncCase>
{
};

TEST_P(TconvEquivalence, ZfdrMatchesReference)
{
    auto [in_size, stride, kernel] = GetParam();
    if (kernel > in_size * stride)
        GTEST_SKIP() << "kernel larger than the output map";
    verifyLayer(makeTconv(in_size, stride, kernel, 2, 2),
                1000 + in_size * 100 + stride * 10 + kernel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TconvEquivalence,
    testing::Combine(testing::Values(2, 3, 4, 5, 7), // input side
                     testing::Values(1, 2, 3),       // converse stride
                     testing::Values(3, 4, 5, 7)));  // kernel

class ConvEquivalence : public testing::TestWithParam<FuncCase>
{
};

TEST_P(ConvEquivalence, ZfdrMatchesReference)
{
    auto [in_size, stride, kernel] = GetParam();
    if (kernel > in_size)
        GTEST_SKIP() << "kernel larger than the input map";
    const LayerSpec layer = makeConv(in_size, stride, kernel, 2, 2);
    // The grad-as-kernel extent must fit in the padded input.
    if ((layer.outSize - 1) * stride + 1 + layer.rem >
        in_size + layer.pad + layer.padHi) {
        GTEST_SKIP() << "degenerate W-CONV geometry";
    }
    verifyLayer(layer, 2000 + in_size * 100 + stride * 10 + kernel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvEquivalence,
    testing::Combine(testing::Values(4, 6, 8, 9, 12), // input side
                     testing::Values(1, 2, 3),        // stride
                     testing::Values(3, 4, 5)));      // kernel

} // namespace
} // namespace lergan
