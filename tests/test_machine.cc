/**
 * @file
 * Tests for the Machine: hardware instantiation across connection
 * flavors and CU-pair counts.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"

namespace lergan {
namespace {

TEST(Machine, SixBanksWithTilesAndCpuFreePool)
{
    Machine machine(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    for (int bank = 0; bank < 6; ++bank) {
        EXPECT_EQ(machine.bank(bank).tiles.size(), 16u);
        EXPECT_EQ(machine.bank(bank).bankId, bank);
    }
    // Every tile has a compute resource with a stable name.
    const std::size_t res = machine.tileComputeRes(3, 7);
    EXPECT_EQ(machine.pool()[res].name(), "b3.t7.compute");
}

TEST(Machine, HTreeMachineHasNoAddedWires)
{
    Machine machine(AcceleratorConfig::prime());
    for (std::size_t i = 0; i < machine.topo().numLinks(); ++i) {
        const LinkKind kind = machine.topo().link(i).kind;
        EXPECT_TRUE(kind == LinkKind::HTree || kind == LinkKind::Bus);
    }
}

TEST(Machine, ThreeDMachineHasBypasses)
{
    Machine machine(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    int bypasses = 0;
    for (std::size_t i = 0; i < machine.topo().numLinks(); ++i)
        bypasses += machine.topo().link(i).kind == LinkKind::Bypass;
    // B1<->B4 and B3<->B6.
    EXPECT_EQ(bypasses, 2);
}

TEST(Machine, MultiPairMachineScales)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.cuPairs = 2;
    Machine machine(config);
    // 12 banks, all reachable from each other.
    EXPECT_EQ(machine.bank(11).bankId, 11);
    const Route &cross = machine.routeTiles(0, 0, 11, 15, true);
    EXPECT_TRUE(cross.valid());
    // Intra-pair bypasses x2 pairs + inter-pair links.
    int bypasses = 0;
    for (std::size_t i = 0; i < machine.topo().numLinks(); ++i)
        bypasses += machine.topo().link(i).kind == LinkKind::Bypass;
    EXPECT_EQ(bypasses, 2 * 2 + 2);
}

TEST(Machine, RouteCacheReturnsSameObject)
{
    Machine machine(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const Route &a = machine.routeTiles(0, 1, 3, 2, true);
    const Route &b = machine.routeTiles(0, 1, 3, 2, true);
    EXPECT_EQ(&a, &b);
    // Different mode -> different cached route object.
    const Route &c = machine.routeTiles(0, 1, 3, 2, false);
    EXPECT_NE(&a, &c);
}

TEST(Machine, SmodeRoutesAvoidAddedWires)
{
    Machine machine(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const Route &smode = machine.routeTiles(0, 0, 1, 0, false);
    for (int link : smode.links) {
        const LinkKind kind = machine.topo().link(link).kind;
        EXPECT_TRUE(kind == LinkKind::HTree || kind == LinkKind::Bus);
    }
}

TEST(Machine, AreaReflectsConnection)
{
    Machine three_d(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    Machine h_tree(AcceleratorConfig::prime());
    EXPECT_GT(three_d.area().overhead(), 0.05);
    EXPECT_DOUBLE_EQ(h_tree.area().overhead(), 0.0);
}

TEST(MachineDeath, InvalidRoutePanics)
{
    Machine machine(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    EXPECT_DEATH(machine.routeTiles(0, 0, 99, 0, true), "");
}

} // namespace
} // namespace lergan
