/**
 * @file
 * Tests for model introspection, anchored by the DSL round-trip
 * property: re-parsing toDsl(model) reproduces the model exactly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "nn/parser.hh"
#include "nn/summary.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

bool
sameLayer(const LayerSpec &a, const LayerSpec &b)
{
    return a.kind == b.kind && a.inChannels == b.inChannels &&
           a.outChannels == b.outChannels && a.inSize == b.inSize &&
           a.outSize == b.outSize && a.kernel == b.kernel &&
           a.stride == b.stride && a.pad == b.pad && a.padHi == b.padHi &&
           a.rem == b.rem && a.spatialDims == b.spatialDims;
}

TEST(Summary, DslRoundTripsEveryBenchmark)
{
    for (const GanModel &model : allBenchmarks()) {
        const std::string gen_dsl = toDsl(model, NetRole::Generator);
        const std::string disc_dsl =
            toDsl(model, NetRole::Discriminator);
        const GanModel reparsed =
            parseGan(model.name, gen_dsl, disc_dsl, model.itemSize,
                     model.spatialDims);
        ASSERT_EQ(reparsed.generator.size(), model.generator.size())
            << model.name << ": " << gen_dsl;
        ASSERT_EQ(reparsed.discriminator.size(),
                  model.discriminator.size())
            << model.name << ": " << disc_dsl;
        for (std::size_t i = 0; i < model.generator.size(); ++i)
            EXPECT_TRUE(sameLayer(reparsed.generator[i],
                                  model.generator[i]))
                << model.name << " G layer " << i;
        for (std::size_t i = 0; i < model.discriminator.size(); ++i)
            EXPECT_TRUE(sameLayer(reparsed.discriminator[i],
                                  model.discriminator[i]))
                << model.name << " D layer " << i;
    }
}

TEST(Summary, DslRoundTripsFutureGan)
{
    const GanModel model = futureGanStride3();
    const GanModel reparsed = parseGan(
        model.name, toDsl(model, NetRole::Generator),
        toDsl(model, NetRole::Discriminator), model.itemSize,
        model.spatialDims);
    EXPECT_EQ(reparsed.totalWeights(), model.totalWeights());
}

TEST(Summary, KnownDslStringsReproduceVerbatim)
{
    // Where the original Table V string is already in canonical
    // (ungrouped) form, toDsl should match it token for token.
    const GanModel magan = makeBenchmark("MAGAN-MNIST");
    EXPECT_EQ(toDsl(magan, NetRole::Generator),
              "50f-128t7k1s-64t4k2s-t1");
    EXPECT_EQ(toDsl(magan, NetRole::Discriminator),
              "784f-256f-256f-784f-f11");
}

TEST(Summary, DescribeLayerMentionsEverything)
{
    const GanModel model = makeBenchmark("DCGAN");
    const std::string text = describeLayer(model.generator[1]);
    EXPECT_NE(text.find("1024x4^2"), std::string::npos);
    EXPECT_NE(text.find("512x8^2"), std::string::npos);
    EXPECT_NE(text.find("tconv"), std::string::npos);
    EXPECT_NE(text.find("k5 s2"), std::string::npos);
}

TEST(Summary, PrintModelListsAllLayers)
{
    const GanModel model = makeBenchmark("cGAN");
    std::ostringstream oss;
    printModel(oss, model);
    for (const auto *net : {&model.generator, &model.discriminator})
        for (const LayerSpec &layer : *net)
            EXPECT_NE(oss.str().find(layer.name), std::string::npos);
}

} // namespace
} // namespace lergan
