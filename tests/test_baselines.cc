/**
 * @file
 * Tests for the GPU / FPGA analytical baselines and the PRIME wrapper,
 * including the cross-platform ordering the paper reports.
 */

#include <gtest/gtest.h>

#include "baselines/fpga_gan.hh"
#include "baselines/gpu.hh"
#include "baselines/prime.hh"
#include "core/api.hh"

namespace lergan {
namespace {

TEST(Gpu, ReportsPlausibleIteration)
{
    const TrainingReport gpu = simulateGpu(makeBenchmark("DCGAN"));
    EXPECT_GT(gpu.timeMs(), 1.0);
    EXPECT_LT(gpu.timeMs(), 60000.0);
    EXPECT_GT(gpu.totalEnergyPj(), 0.0);
    EXPECT_EQ(gpu.config, "GPU");
}

TEST(Gpu, PaysForZeros)
{
    // The GPU computes dense zero-inserted grids, so its flop count far
    // exceeds the useful work on T-CONV-heavy GANs.
    const GanModel model = makeBenchmark("DCGAN");
    const TrainingReport gpu = simulateGpu(model);
    OpZeroStats useful;
    for (Phase phase : kAllPhases)
        useful += analyzePhase(model, phase);
    EXPECT_GT(gpu.stats.get("gpu.flops"),
              2.0 * static_cast<double>(useful.usefulMults) * 64);
}

TEST(Gpu, FasterWithMoreUtilization)
{
    const GanModel model = makeBenchmark("DCGAN");
    GpuParams fast;
    fast.utilization = 0.9;
    GpuParams slow;
    slow.utilization = 0.1;
    EXPECT_LT(simulateGpu(model, fast).iterationTime,
              simulateGpu(model, slow).iterationTime);
}

TEST(Fpga, SkipsZeros)
{
    // FPGA-GAN executes only useful MACs (Song et al. dataflow).
    const GanModel model = makeBenchmark("DCGAN");
    const TrainingReport fpga = simulateFpgaGan(model);
    const TrainingReport gpu = simulateGpu(model);
    EXPECT_LT(fpga.stats.get("fpga.macs") * 2.0,
              gpu.stats.get("gpu.flops"));
}

TEST(Fpga, SlowerThanGpuButFrugal)
{
    // Fig. 21/22: the FPGA is the slowest platform but the most
    // energy-proportional one.
    const GanModel model = makeBenchmark("DCGAN");
    const TrainingReport fpga = simulateFpgaGan(model);
    const TrainingReport gpu = simulateGpu(model);
    EXPECT_GT(fpga.iterationTime, gpu.iterationTime);
    EXPECT_LT(fpga.totalEnergyPj(), gpu.totalEnergyPj());
}

TEST(Prime, WrapperMatchesConfig)
{
    const GanModel model = makeBenchmark("cGAN");
    const TrainingReport direct =
        simulateTraining(model, AcceleratorConfig::prime());
    const TrainingReport wrapped = simulatePrime(model);
    EXPECT_EQ(wrapped.iterationTime, direct.iterationTime);
    EXPECT_EQ(wrapped.config, "PRIME");
}

TEST(Prime, NsConsumesBudget)
{
    const GanModel model = makeBenchmark("cGAN");
    const TrainingReport base = simulatePrime(model);
    const TrainingReport ns =
        simulatePrimeNs(model, base.crossbarsUsed * 6);
    EXPECT_GT(ns.crossbarsUsed, base.crossbarsUsed);
    EXPECT_LE(ns.iterationTime, base.iterationTime);
}

TEST(CrossPlatform, PaperOrderingHolds)
{
    // Fig. 21: LerGAN fastest, then GPU, then FPGA-GAN; PRIME sits
    // between LerGAN and the GPU on T-CONV-heavy GANs.
    for (const char *name : {"DCGAN", "GPGAN", "DiscoGAN-4pairs"}) {
        const GanModel model = makeBenchmark(name);
        const auto lergan = simulateTraining(
            model, AcceleratorConfig::lerGan(ReplicaDegree::High));
        const auto prime = simulatePrime(model);
        const auto gpu = simulateGpu(model);
        const auto fpga = simulateFpgaGan(model);
        EXPECT_LT(lergan.iterationTime, prime.iterationTime) << name;
        EXPECT_LT(lergan.iterationTime, gpu.iterationTime) << name;
        EXPECT_LT(gpu.iterationTime, fpga.iterationTime) << name;
    }
}

TEST(CrossPlatform, EnergyNearFpgaParity)
{
    // Fig. 22: LerGAN's energy lands within ~2x of FPGA-GAN (the paper
    // reports 1.04x on average) while being tens of times faster.
    const GanModel model = makeBenchmark("DCGAN");
    const auto lergan = simulateTraining(
        model, AcceleratorConfig::lerGan(ReplicaDegree::High));
    const auto fpga = simulateFpgaGan(model);
    const double ratio = lergan.totalEnergyPj() / fpga.totalEnergyPj();
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
    EXPECT_GT(static_cast<double>(fpga.iterationTime) /
                  lergan.iterationTime,
              10.0);
}

} // namespace
} // namespace lergan
