/**
 * @file
 * Tests certifying the bit-sliced, bit-serial crossbar datapath computes
 * exact dot products (the fixed-point substrate beneath every MMV the
 * timing model charges for).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "reram/crossbar.hh"

namespace lergan {
namespace {

std::int64_t
directDot(const std::vector<std::int32_t> &a,
          const std::vector<std::int32_t> &b)
{
    std::int64_t sum = 0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    return sum;
}

TEST(Crossbar, SlicingRoundTrips)
{
    ComputeCrossbar xbar;
    xbar.program({0, 1, -1, 12345, -12345});
    // Reassemble row 3's biased value from its cells.
    std::uint32_t reassembled = 0;
    for (int s = 0; s < xbar.spec().slices(); ++s)
        reassembled = (reassembled << xbar.spec().cellBits) |
                      static_cast<std::uint32_t>(xbar.cell(3, s));
    EXPECT_EQ(static_cast<std::int32_t>(reassembled) - (1 << 15), 12345);
}

TEST(Crossbar, CellLevelsFitCellBits)
{
    ComputeCrossbar xbar;
    xbar.program({32767, -32768, 4096, -1});
    for (int r = 0; r < 4; ++r)
        for (int s = 0; s < xbar.spec().slices(); ++s) {
            EXPECT_GE(xbar.cell(r, s), 0);
            EXPECT_LT(xbar.cell(r, s), 16);
        }
}

TEST(Crossbar, ExactDotProductSmall)
{
    ComputeCrossbar xbar;
    xbar.program({3, -2, 7});
    EXPECT_EQ(xbar.multiply({1, 1, 1}), 8);
    EXPECT_EQ(xbar.multiply({-1, 2, 0}), -7);
    EXPECT_EQ(xbar.multiply({}), 0);
}

TEST(Crossbar, ExactAtPrecisionExtremes)
{
    ComputeCrossbar xbar;
    const std::vector<std::int32_t> w{32767, -32768, 32767, -32768};
    const std::vector<std::int32_t> x{32767, 32767, -32768, -32768};
    xbar.program(w);
    EXPECT_EQ(xbar.multiply(x), directDot(w, x));
}

TEST(Crossbar, RandomizedExactness)
{
    Rng rng(77);
    ComputeCrossbar xbar;
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 1 + static_cast<int>(rng.nextBounded(128));
        std::vector<std::int32_t> w(n), x(n);
        for (int i = 0; i < n; ++i) {
            w[i] = static_cast<std::int32_t>(rng.nextBounded(65536)) -
                   32768;
            x[i] = static_cast<std::int32_t>(rng.nextBounded(65536)) -
                   32768;
        }
        xbar.program(w);
        EXPECT_EQ(xbar.multiply(x), directDot(w, x)) << "trial " << trial;
    }
}

TEST(Crossbar, UnprogrammedRowsActAsZero)
{
    ComputeCrossbar xbar;
    xbar.program({5});
    // Rows 1.. hold zero weights: feeding them inputs changes nothing.
    std::vector<std::int32_t> x(128, 1000);
    x[0] = 2;
    EXPECT_EQ(xbar.multiply(x), 10);
}

TEST(Crossbar, ActivationCountMatchesBitSerialDatapath)
{
    ComputeCrossbar xbar;
    // 16 input bit-planes x 4 weight slices.
    EXPECT_EQ(xbar.activationsPerMmv(), 64);
}

TEST(Crossbar, EightBitConfiguration)
{
    CrossbarSpec spec;
    spec.weightBits = 8;
    spec.inputBits = 8;
    spec.cellBits = 4;
    ComputeCrossbar xbar(spec);
    const std::vector<std::int32_t> w{-128, 127, 64, -1};
    const std::vector<std::int32_t> x{127, -128, 3, -3};
    xbar.program(w);
    EXPECT_EQ(xbar.multiply(x), directDot(w, x));
    EXPECT_EQ(xbar.activationsPerMmv(), 16);
}

TEST(CrossbarDeath, OverflowingWeightPanics)
{
    ComputeCrossbar xbar;
    EXPECT_DEATH(xbar.program({40000}), "does not fit");
}

TEST(CrossbarDeath, TooManyRowsPanics)
{
    ComputeCrossbar xbar;
    EXPECT_DEATH(xbar.program(std::vector<std::int32_t>(129, 0)),
                 "rows");
}

} // namespace
} // namespace lergan
