/**
 * @file
 * Tests for the causal tracing layer: the flight-recorder rings, the
 * RAII span API, the NDJSON exporter's determinism contract, and the
 * anomaly report. The multi-thread cases carry the "tracing" ctest
 * label so scripts/check.sh re-runs them under -fsanitize=thread.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/anomaly.hh"
#include "core/api.hh"
#include "core/sweep.hh"
#include "exec/engine.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/tracing.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

SpanEvent
makeEvent(TraceId trace, SpanId span, SpanId parent = 0,
          const char *name = "x")
{
    SpanEvent event;
    event.trace = trace;
    event.span = span;
    event.parent = parent;
    event.name = name;
    event.beginNs = span * 10;
    event.endNs = span * 10 + 5;
    event.lane = 0;
    return event;
}

TEST(FlightRing, RoundsCapacityUpToAPowerOfTwo)
{
    EXPECT_EQ(FlightRing(5).capacity(), 8u);
    EXPECT_EQ(FlightRing(8).capacity(), 8u);
    EXPECT_EQ(FlightRing(0).capacity(), 1u);
}

TEST(FlightRing, WraparoundKeepsTheNewestEvents)
{
    FlightRing ring(8);
    for (SpanId s = 1; s <= 20; ++s)
        ring.push(makeEvent(1, s));

    EXPECT_EQ(ring.recorded(), 20u);
    EXPECT_EQ(ring.dropped(), 12u);

    const std::vector<SpanEvent> resident = ring.snapshot();
    ASSERT_EQ(resident.size(), 8u);
    for (std::size_t i = 0; i < resident.size(); ++i) {
        // Oldest-to-newest: spans 13..20, none torn.
        EXPECT_EQ(resident[i].span, 13u + i);
        EXPECT_EQ(resident[i].trace, 1u);
        EXPECT_EQ(resident[i].endNs, resident[i].beginNs + 5);
    }
}

TEST(FlightRing, SnapshotBeforeWraparoundReturnsOnlyPushedEvents)
{
    FlightRing ring(8);
    ring.push(makeEvent(3, 1));
    ring.push(makeEvent(3, 2));
    const std::vector<SpanEvent> resident = ring.snapshot();
    ASSERT_EQ(resident.size(), 2u);
    EXPECT_EQ(resident[0].span, 1u);
    EXPECT_EQ(resident[1].span, 2u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Tracing, RootAndChildrenRecordInProgramOrder)
{
    FlightRecorder recorder;
    MainLaneBinding bind(recorder);
    {
        Span root(7, "point");
        EXPECT_TRUE(root.active());
        EXPECT_EQ(root.trace(), 7u);
        EXPECT_EQ(root.id(), 1u);
        {
            Span compile("compile");
            compile.attr("cache_hit", false);
            EXPECT_EQ(compile.id(), 2u);
        }
        {
            Span simulate("simulate");
            EXPECT_EQ(simulate.id(), 3u);
        }
        EXPECT_EQ(root.spansInTrace(), 3u);
    }

    const std::vector<SpanEvent> events = recorder.collect();
    ASSERT_EQ(events.size(), 3u);
    // collect() sorts by (trace, span) even though the root is pushed
    // last (it closes last).
    EXPECT_STREQ(events[0].name, "point");
    EXPECT_EQ(events[0].parent, 0u);
    EXPECT_STREQ(events[1].name, "compile");
    EXPECT_EQ(events[1].parent, 1u);
    EXPECT_STREQ(events[2].name, "simulate");
    EXPECT_EQ(events[2].parent, 1u);
    for (const SpanEvent &event : events) {
        EXPECT_EQ(event.trace, 7u);
        EXPECT_EQ(event.lane, SpanEvent::kMainLane);
        EXPECT_GE(event.endNs, event.beginNs);
    }
    ASSERT_EQ(events[1].attrCount, 1u);
    EXPECT_STREQ(events[1].attrs[0].key, "cache_hit");
    EXPECT_EQ(events[1].attrs[0].kind, SpanAttr::Kind::Bool);
    EXPECT_EQ(events[1].attrs[0].i, 0);
}

TEST(Tracing, AttributesBeyondCapacityAreDroppedAndTextTruncates)
{
    FlightRecorder recorder;
    MainLaneBinding bind(recorder);
    {
        Span root(1, "point");
        root.attr("a", std::int64_t{42});
        root.attr("b", 2.5);
        root.attr("c", std::string_view("a-rather-long-benchmark-name"));
        root.attr("d", true);
        root.attr("e", std::int64_t{5}); // fifth: dropped
    }
    const std::vector<SpanEvent> events = recorder.collect();
    ASSERT_EQ(events.size(), 1u);
    ASSERT_EQ(events[0].attrCount, 4u);
    EXPECT_EQ(events[0].attrs[0].i, 42);
    EXPECT_EQ(events[0].attrs[1].f, 2.5);
    // Text is truncated to kTextCapacity - 1 characters + NUL.
    EXPECT_EQ(std::string(events[0].attrs[2].text), "a-rather-long-b");
    EXPECT_EQ(events[0].attrs[3].kind, SpanAttr::Kind::Bool);
}

TEST(Tracing, UnboundThreadSpansAreInert)
{
    Span root(1, "point");
    EXPECT_FALSE(root.active());
    root.attr("ignored", true); // must not crash
    EXPECT_EQ(root.spansInTrace(), 0u);
    EXPECT_EQ(currentSpan(), nullptr);
    annotate("ignored", std::int64_t{1}); // must not crash
}

TEST(Tracing, OrphanChildWithoutARootIsInert)
{
    FlightRecorder recorder;
    MainLaneBinding bind(recorder);
    {
        Span child("stage"); // no root open on this thread
        EXPECT_FALSE(child.active());
    }
    EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(Tracing, NestedRootRestoresTheOuterTrace)
{
    FlightRecorder recorder;
    MainLaneBinding bind(recorder);
    {
        Span outer(1, "outer");
        {
            Span inner(2, "inner");
            EXPECT_EQ(inner.trace(), 2u);
            EXPECT_EQ(inner.id(), 1u);
        }
        // The outer trace's id allocation resumes where it left off.
        Span child("after");
        EXPECT_EQ(child.trace(), 1u);
        EXPECT_EQ(child.id(), 2u);
    }
    const std::vector<SpanEvent> inner = recorder.collectTrace(2);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_STREQ(inner[0].name, "inner");
}

TEST(Tracing, AnnotateTargetsTheInnermostOpenSpan)
{
    FlightRecorder recorder;
    MainLaneBinding bind(recorder);
    {
        Span root(1, "point");
        Span stage("compile");
        EXPECT_EQ(currentSpan(), &stage);
        annotate("cache_hit", true);
    }
    const std::vector<SpanEvent> events = recorder.collectTrace(1);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].attrCount, 0u);
    ASSERT_EQ(events[1].attrCount, 1u);
    EXPECT_STREQ(events[1].attrs[0].key, "cache_hit");
}

TEST(Tracing, AllocatedTraceIdsNeverCollideWithSweepPoints)
{
    FlightRecorder recorder;
    const TraceId first = recorder.allocateTraceId();
    const TraceId second = recorder.allocateTraceId();
    EXPECT_GE(first, TraceId{1} << 32);
    EXPECT_EQ(second, first + 1);
}

TEST(Tracing, FormatTraceDumpRendersOnlyTheRequestedTrace)
{
    FlightRecorder recorder;
    MainLaneBinding bind(recorder);
    {
        Span a(1, "alpha");
    }
    {
        Span b(2, "beta");
    }
    const std::string dump = formatTraceDump(recorder.mainRing(), 2);
    EXPECT_NE(dump.find("beta"), std::string::npos);
    EXPECT_EQ(dump.find("alpha"), std::string::npos);
    EXPECT_TRUE(formatTraceDump(recorder.mainRing(), 99).empty());
}

TEST(Tracing, SpanTreeNotesEvictedParents)
{
    std::ostringstream os;
    printSpanTree(os, {makeEvent(1, 6, /*parent=*/5, "orphan")});
    EXPECT_NE(os.str().find("parent span not resident"),
              std::string::npos);
}

/**
 * Eight lanes recording concurrently — the TSan-label stress. Every
 * lane writes only its own ring, so the only shared state is each
 * ring's head counter; a data race here is a sharding bug.
 */
TEST(Tracing, EightLanesRecordConcurrentlyWithoutInterference)
{
    constexpr std::size_t kLanes = 8;
    constexpr std::size_t kTracesPerLane = 200;
    FlightRecorder recorder;
    recorder.prepareLanes(kLanes);

    std::vector<std::thread> threads;
    threads.reserve(kLanes);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        threads.emplace_back([&recorder, lane] {
            TraceLaneBinding bind(recorder.lane(lane),
                                  static_cast<std::uint32_t>(lane));
            for (std::size_t t = 0; t < kTracesPerLane; ++t) {
                Span root(static_cast<TraceId>(lane * kTracesPerLane +
                                               t + 1),
                          "point");
                Span stage("stage");
                annotate("index", static_cast<std::int64_t>(t));
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(recorder.recorded(), kLanes * kTracesPerLane * 2);
    EXPECT_EQ(recorder.dropped(), 0u);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const std::vector<SpanEvent> resident =
            recorder.lane(lane).snapshot();
        ASSERT_EQ(resident.size(), kTracesPerLane * 2);
        for (const SpanEvent &event : resident) {
            EXPECT_EQ(event.lane, lane);
            EXPECT_GT(event.trace, lane * kTracesPerLane);
            EXPECT_LE(event.trace, (lane + 1) * kTracesPerLane);
            EXPECT_GE(event.endNs, event.beginNs);
        }
    }
}

TEST(TracedEngine, FailedPointCapturesItsSpanDump)
{
    FlightRecorder recorder;
    const auto statuses = runPoints(
        4, 2,
        [](std::size_t i, std::size_t) {
            if (i == 2)
                throw std::runtime_error("boom");
        },
        {}, nullptr, &recorder);

    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_FALSE(statuses[2].ok);
    EXPECT_EQ(statuses[2].error, "boom");
    EXPECT_NE(statuses[2].spanDump.find("point"), std::string::npos);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
        if (i == 2)
            continue;
        EXPECT_TRUE(statuses[i].ok);
        EXPECT_TRUE(statuses[i].spanDump.empty());
    }
    for (const PointStatus &status : statuses) {
        EXPECT_GE(status.spanCount, 1u);
        EXPECT_GE(status.queueWaitMs, 0.0);
    }
    // Every point's root span is resident under trace = index + 1.
    for (TraceId trace = 1; trace <= 4; ++trace)
        EXPECT_FALSE(recorder.collectTrace(trace).empty());
}

TEST(TracedEngine, TraceIdMapperOverridesTheDefault)
{
    FlightRecorder recorder;
    runPoints(
        2, 1, [](std::size_t, std::size_t) {}, {}, nullptr, &recorder,
        [](std::size_t k) { return static_cast<TraceId>(100 + k); });
    EXPECT_FALSE(recorder.collectTrace(100).empty());
    EXPECT_FALSE(recorder.collectTrace(101).empty());
    EXPECT_TRUE(recorder.collectTrace(1).empty());
}

ExperimentSweep
tracedSweep()
{
    AcceleratorConfig lergan = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    lergan.batchSize = 4;
    AcceleratorConfig prime = AcceleratorConfig::prime();
    prime.batchSize = 4;
    ExperimentSweep sweep;
    sweep.add(makeBenchmark("MAGAN-MNIST"))
        .add(makeBenchmark("cGAN"))
        .add("lergan", lergan)
        .add("prime", prime)
        .withTracing();
    return sweep;
}

std::string
spanNdjson(const FlightRecorder &recorder, bool include_host)
{
    std::ostringstream os;
    writeSpanNdjson(os, recorder.collect(), include_host);
    return os.str();
}

/** Strip each line's trailing ,"host":{...} — the golden filter. */
std::string
stripHost(const std::string &ndjson)
{
    std::istringstream in(ndjson);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t pos = line.rfind(",\"host\":{");
        if (pos != std::string::npos)
            line = line.substr(0, pos) + "}";
        out << line << '\n';
    }
    return out.str();
}

TEST(TracedSweep, NdjsonExportIsIdenticalAtOneAndFourWorkers)
{
    RunOptions serial;
    serial.threads = 1;
    RunOptions parallel;
    parallel.threads = 4;

    ExperimentSweep one = tracedSweep();
    one.run(serial);
    const std::string at1 = spanNdjson(*one.recorder(), false);

    ExperimentSweep four = tracedSweep();
    four.run(parallel);
    const std::string at4 = spanNdjson(*four.recorder(), false);

    EXPECT_FALSE(at1.empty());
    EXPECT_EQ(at1, at4);
    EXPECT_NE(at1.find("\"name\":\"point\""), std::string::npos);
    EXPECT_NE(at1.find("\"name\":\"compile\""), std::string::npos);
    EXPECT_NE(at1.find("\"name\":\"simulate\""), std::string::npos);
    EXPECT_NE(at1.find("\"cache_hit\""), std::string::npos);
}

TEST(TracedSweep, HostObjectStripsToTheDeterministicShape)
{
    ExperimentSweep sweep = tracedSweep();
    RunOptions options;
    options.threads = 2;
    sweep.run(options);

    const std::string with_host = spanNdjson(*sweep.recorder(), true);
    const std::string without = spanNdjson(*sweep.recorder(), false);
    EXPECT_NE(with_host.find("\"host\":{"), std::string::npos);
    EXPECT_NE(with_host.find("\"queue_wait_ms\""), std::string::npos);
    EXPECT_EQ(without.find("\"host\":{"), std::string::npos);
    EXPECT_EQ(stripHost(with_host), without);
}

TEST(TracedSweep, PointTelemetryCarriesSpanCountsAndQueueWait)
{
    ExperimentSweep sweep = tracedSweep();
    RunOptions options;
    options.threads = 2;
    options.pointTelemetry = true;
    const auto results = sweep.run(options);

    ASSERT_EQ(results.size(), 4u);
    for (const SweepResult &result : results) {
        EXPECT_TRUE(result.telemetry.ran);
        EXPECT_TRUE(result.telemetry.traced);
        // At least the root, compile, template and simulate spans.
        EXPECT_GE(result.telemetry.spanCount, 4u);
        EXPECT_GE(result.telemetry.queueWaitMs, 0.0);
        EXPECT_TRUE(result.traceDump.empty()) << "point did not fail";
    }
}

TEST(TracedSweep, UntracedRunsKeepTheHistoricalTelemetryShape)
{
    ExperimentSweep sweep = tracedSweep();
    sweep.withTracing(nullptr);
    RunOptions options;
    options.pointTelemetry = true;
    const auto results = sweep.run(options);
    for (const SweepResult &result : results) {
        EXPECT_TRUE(result.telemetry.ran);
        EXPECT_FALSE(result.telemetry.traced);
        EXPECT_EQ(result.telemetry.spanCount, 0u);
    }
}

TEST(AnomalyReport, SlowPointsBeyondTheQuantileAreExplained)
{
    ExperimentSweep sweep = tracedSweep();
    RunOptions options;
    options.threads = 2;
    options.pointTelemetry = true;
    const auto results = sweep.run(options);

    std::ostringstream os;
    AnomalyOptions anomalies;
    anomalies.quantile = 0.5; // half the grid lands beyond the median
    const std::size_t count =
        writeAnomalyReport(os, results, *sweep.recorder(), anomalies);

    EXPECT_GE(count, 1u);
    const std::string report = os.str();
    EXPECT_NE(report.find("anomaly report:"), std::string::npos);
    EXPECT_NE(report.find("[slow]"), std::string::npos);
    EXPECT_NE(report.find("simulate"), std::string::npos);
}

TEST(AnomalyReport, QuietSweepReportsNothing)
{
    ExperimentSweep sweep = tracedSweep();
    RunOptions options;
    options.pointTelemetry = true;
    const auto results = sweep.run(options);

    std::ostringstream os;
    AnomalyOptions anomalies;
    anomalies.quantile = 1.0; // only strictly-beyond-max would qualify
    EXPECT_EQ(writeAnomalyReport(os, results, *sweep.recorder(),
                                 anomalies),
              0u);
    EXPECT_NE(os.str().find("0 of 4 points"), std::string::npos);
}

TEST(TracedSession, RunRecordsStageSpansOnTheMainRing)
{
    SimulationSession session(AcceleratorConfig::lerGan(ReplicaDegree::Low));
    session.withTracing();
    session.run(makeBenchmark("cGAN"), 1);

    const std::vector<SpanEvent> events = session.recorder()->collect();
    ASSERT_FALSE(events.empty());
    EXPECT_GE(events[0].trace, TraceId{1} << 32);
    bool saw_run = false, saw_compile = false, saw_simulate = false;
    for (const SpanEvent &event : events) {
        saw_run = saw_run || std::string(event.name) == "run";
        saw_compile = saw_compile || std::string(event.name) == "compile";
        saw_simulate =
            saw_simulate || std::string(event.name) == "simulate";
        EXPECT_EQ(event.lane, SpanEvent::kMainLane);
    }
    EXPECT_TRUE(saw_run);
    EXPECT_TRUE(saw_compile);
    EXPECT_TRUE(saw_simulate);
}

} // namespace
} // namespace lergan
