/**
 * @file
 * Tests for the Table V DSL parser and shape resolution, covering all
 * eight benchmark topologies.
 */

#include <gtest/gtest.h>

#include "nn/parser.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

TEST(Parser, DcganGeneratorShapes)
{
    const GanModel model = makeBenchmark("DCGAN");
    const auto &g = model.generator;
    ASSERT_EQ(g.size(), 5u);

    // FC 100 -> 1024 x 4 x 4.
    EXPECT_EQ(g[0].kind, LayerKind::FullyConnected);
    EXPECT_EQ(g[0].inChannels, 100);
    EXPECT_EQ(g[0].outChannels, 1024 * 4 * 4);

    // Four 5k2s T-CONVs: 4 -> 8 -> 16 -> 32 -> 64.
    const int in_ch[] = {1024, 512, 256, 128};
    const int out_ch[] = {512, 256, 128, 3};
    const int in_sz[] = {4, 8, 16, 32};
    for (int i = 0; i < 4; ++i) {
        const LayerSpec &l = g[i + 1];
        EXPECT_EQ(l.kind, LayerKind::TConv);
        EXPECT_EQ(l.inChannels, in_ch[i]);
        EXPECT_EQ(l.outChannels, out_ch[i]);
        EXPECT_EQ(l.inSize, in_sz[i]);
        EXPECT_EQ(l.outSize, in_sz[i] * 2);
        EXPECT_EQ(l.kernel, 5);
        EXPECT_EQ(l.stride, 2);
        // CONV1's converse parameters from the paper: P' = 2, R = 1.
        EXPECT_EQ(l.pad, 2);
        EXPECT_EQ(l.rem, 1);
    }
}

TEST(Parser, DcganDiscriminatorShapes)
{
    const GanModel model = makeBenchmark("DCGAN");
    const auto &d = model.discriminator;
    ASSERT_EQ(d.size(), 5u);

    const int in_ch[] = {3, 128, 256, 512};
    const int out_ch[] = {128, 256, 512, 1024};
    const int in_sz[] = {64, 32, 16, 8};
    for (int i = 0; i < 4; ++i) {
        const LayerSpec &l = d[i];
        EXPECT_EQ(l.kind, LayerKind::Conv);
        EXPECT_EQ(l.inChannels, in_ch[i]);
        EXPECT_EQ(l.outChannels, out_ch[i]);
        EXPECT_EQ(l.inSize, in_sz[i]);
        EXPECT_EQ(l.outSize, in_sz[i] / 2);
        EXPECT_EQ(l.pad, 2);
        EXPECT_EQ(l.rem, 1);
    }
    // Flatten + FC to a single logit.
    EXPECT_EQ(d[4].kind, LayerKind::FullyConnected);
    EXPECT_EQ(d[4].inChannels, 1024 * 4 * 4);
    EXPECT_EQ(d[4].outChannels, 1);
}

TEST(Parser, MaganIsMostlyFullyConnected)
{
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    const auto &g = model.generator;
    ASSERT_EQ(g.size(), 3u);
    EXPECT_EQ(g[0].kind, LayerKind::FullyConnected);
    EXPECT_EQ(g[0].inChannels, 50);
    EXPECT_EQ(g[1].kind, LayerKind::TConv);
    EXPECT_EQ(g[1].kernel, 7);
    EXPECT_EQ(g[1].stride, 1);
    EXPECT_EQ(g[2].kind, LayerKind::TConv);
    EXPECT_EQ(g[2].outChannels, 1);
    EXPECT_EQ(g[2].outSize, 28);

    const auto &d = model.discriminator;
    ASSERT_EQ(d.size(), 4u);
    for (const auto &l : d)
        EXPECT_EQ(l.kind, LayerKind::FullyConnected);
    EXPECT_EQ(d[0].inChannels, 784);
    EXPECT_EQ(d[0].outChannels, 256);
    EXPECT_EQ(d[3].outChannels, 11);
}

TEST(Parser, ThreeDGanIsVolumetric)
{
    const GanModel model = makeBenchmark("3D-GAN");
    EXPECT_EQ(model.spatialDims, 3);
    const auto &g = model.generator;
    ASSERT_EQ(g.size(), 4u);
    // FC output must cover 512 x 8^3.
    EXPECT_EQ(g[0].outChannels, 512 * 8 * 8 * 8);
    EXPECT_EQ(g[3].outSize, 64);
    // Discriminator input is a single-channel 64^3 volume.
    EXPECT_EQ(model.discriminator[0].inChannels, 1);
    EXPECT_EQ(model.discriminator[0].inSize, 64);
}

TEST(Parser, DiscoGan4HasConvAndTConvGenerator)
{
    const GanModel model = makeBenchmark("DiscoGAN-4pairs");
    EXPECT_TRUE(model.generatorHasConv());
    EXPECT_TRUE(model.hasTConv(NetRole::Generator));
    const auto &g = model.generator;
    ASSERT_EQ(g.size(), 8u);
    // Encoder: 64 -> 4 spatial; decoder: 4 -> 64.
    EXPECT_EQ(g[0].inSize, 64);
    EXPECT_EQ(g[3].outSize, 4);
    EXPECT_EQ(g[3].kind, LayerKind::Conv);
    EXPECT_EQ(g[3].outChannels, 512);
    EXPECT_EQ(g[4].kind, LayerKind::TConv);
    EXPECT_EQ(g[4].inSize, 4);
    EXPECT_EQ(g[7].outSize, 64);
    EXPECT_EQ(g[7].outChannels, 3);
}

TEST(Parser, DiscoGan5HasFcBottleneck)
{
    const GanModel model = makeBenchmark("DiscoGAN-5pairs");
    const auto &g = model.generator;
    ASSERT_EQ(g.size(), 10u);
    // Encoder convs, flatten-FC to 100, FC back up, decoder t-convs.
    EXPECT_EQ(g[3].kind, LayerKind::Conv);
    EXPECT_EQ(g[4].kind, LayerKind::FullyConnected);
    EXPECT_EQ(g[4].inChannels, 512 * 4 * 4);
    EXPECT_EQ(g[4].outChannels, 100);
    EXPECT_EQ(g[5].kind, LayerKind::FullyConnected);
    EXPECT_EQ(g[5].inChannels, 100);
    EXPECT_EQ(g[5].outChannels, 512 * 4 * 4);
    EXPECT_EQ(g[6].kind, LayerKind::TConv);
}

TEST(Parser, ArtGanMixedSpecs)
{
    const GanModel model = makeBenchmark("ArtGAN-CIFAR-10");
    const auto &g = model.generator;
    ASSERT_EQ(g.size(), 6u);
    EXPECT_EQ(g[1].kernel, 4);
    EXPECT_EQ(g[1].stride, 1);
    EXPECT_EQ(g[5].kernel, 3);
    EXPECT_EQ(g[5].stride, 1);
    EXPECT_EQ(g[5].outSize, 32);
    // Discriminator ends in an 11-way classifier.
    EXPECT_EQ(model.discriminator.back().outChannels, 11);
}

TEST(Parser, AllBenchmarksValidate)
{
    // GanModel::check() runs inside parseGan; construction is the test.
    const auto models = allBenchmarks();
    EXPECT_EQ(models.size(), 8u);
    for (const auto &model : models) {
        EXPECT_GT(model.totalWeights(), 0u);
        for (const auto *net : {&model.generator, &model.discriminator})
            for (const auto &layer : *net)
                EXPECT_GT(layer.numWeights(), 0u);
    }
}

TEST(Parser, ChainVolumesAgree)
{
    for (const auto &model : allBenchmarks()) {
        for (const auto *net : {&model.generator, &model.discriminator}) {
            for (std::size_t i = 0; i + 1 < net->size(); ++i)
                EXPECT_EQ((*net)[i].outVolume(), (*net)[i + 1].inVolume())
                    << model.name << " layer " << i;
        }
    }
}

TEST(ParserDeath, RejectsMalformedTopology)
{
    EXPECT_DEATH(parseGan("bad", "100q-t3", "(3c)(4k2s)-f1", 64), "");
    EXPECT_DEATH(parseGan("bad", "100f", "(3c-64c)(4k2s)-f1", 64), "");
    EXPECT_DEATH(parseGan("bad", "100f-(512t-t3", "(3c-64c)(4k2s)-f1", 64),
                 "");
}

TEST(ParserDeath, ConvTokenNeedsSpec)
{
    EXPECT_DEATH(parseGan("bad", "100f-512t-t3", "(3c-64c)(4k2s)-f1", 64),
                 "");
}

} // namespace
} // namespace lergan
