/**
 * @file
 * Tests for the ZFDR reshape analysis, the paper's closed-form counts,
 * the replica policy and the op cost model.
 */

#include <gtest/gtest.h>

#include "nn/zero_analysis.hh"
#include "workloads/zoo.hh"
#include "zfdr/cost.hh"
#include "zfdr/formulas.hh"
#include "zfdr/replica.hh"
#include "zfdr/reshape.hh"

namespace lergan {
namespace {

LayerOp
findOp(const GanModel &model, Phase phase, const std::string &layer_name)
{
    for (const LayerOp &op : opsForPhase(model, phase)) {
        const auto &net = model.net(op.role);
        if (net[op.layerIdx].name == layer_name)
            return op;
    }
    ADD_FAILURE() << "no op for " << layer_name;
    return LayerOp{};
}

LayerOp
conv1Op()
{
    return findOp(makeBenchmark("DCGAN"), Phase::GFwd, "G.l2.tconv");
}

TEST(Formulas, Conv1LoopLength)
{
    // CONV1: I=4, S'=2, P=2 >= S'-1 -> LL = 4*2 + 1 = 9 (Eq. 11).
    EXPECT_EQ(loopLength(4, 2, 2, 1), 9);
}

TEST(Formulas, LoopLengthCases)
{
    // Case 2 of Eq. 11: P < S'-1 but P+R >= S'-1.
    EXPECT_EQ(loopLength(4, 3, 1, 1), 12);
    // Case 3: P < S'-1 and P+R < S'-1.
    EXPECT_EQ(loopLength(4, 3, 0, 1), 10);
    // Stride 1: LL = I.
    EXPECT_EQ(loopLength(8, 1, 2, 0), 8);
}

TEST(Formulas, Conv1EdgeRemainders)
{
    // Eq. 12: P=2 >= S'-1=1 -> R1 = P - (S'-1) = 1.
    EXPECT_EQ(edgeR1(2, 2), 1);
    // Eq. 13: P+R=3 >= 1 -> R2 = 3 - 1 = 2.
    EXPECT_EQ(edgeR2(2, 1, 2), 2);
}

TEST(Formulas, Conv1ClassCounts)
{
    // The paper's worked example: 25 reshaped matrices = 9 corner +
    // 12 edge + 4 inside (with the R2 erratum corrected).
    const ClassCounts counts = tconvClassCounts(4, 2, 2, 1, 2);
    EXPECT_EQ(counts.corner, 9u);
    EXPECT_EQ(counts.edge, 12u);
    EXPECT_EQ(counts.inside, 4u);
    // R1 + R2 equals the 1-D edge-mask count used by the closed form.
    EXPECT_EQ(edgeR1(2, 2) + edgeR2(2, 1, 2), tconvEdge1d(4, 2, 2, 1));
}

TEST(Reshape, Conv1MatchesPaperWorkedExample)
{
    const LayerOp op = conv1Op();
    const ReshapeAnalysis analysis = analyzeReshape(op);
    EXPECT_EQ(analysis.distinctMatrices(), 25u);
    EXPECT_EQ(analysis.corner.matrices, 9u);
    EXPECT_EQ(analysis.edge.matrices, 12u);
    EXPECT_EQ(analysis.inside.matrices, 4u);
    // Inside reuse t in {4, 6, 9}; max 9 -> 9 MMV cycles without
    // duplication (vs 64 without ZFDR).
    EXPECT_EQ(analysis.inside.maxReuse, 9u);
    EXPECT_EQ(analysis.totalPositions, 64u);
}

TEST(Reshape, FormulaAgreesWithEnumerationOnAllBenchmarks)
{
    // The closed forms must match the authoritative enumeration for every
    // sparse op of every benchmark.
    for (const GanModel &model : allBenchmarks()) {
        for (Phase phase : kAllPhases) {
            for (const LayerOp &op : opsForPhase(model, phase)) {
                if (!op.zfdrApplicable())
                    continue;
                if (op.padLo != op.padHi)
                    continue; // the paper's closed forms assume symmetry
                const ReshapeAnalysis analysis = analyzeReshape(op);
                ClassCounts counts;
                if (op.pattern == OpPattern::SparseGridConv) {
                    counts = tconvClassCounts(op.data, op.stride, op.padLo,
                                              op.rem, op.spatialDims);
                } else {
                    counts = wconvClassCounts(op.data, op.padLo, op.window,
                                              op.stride, op.rem,
                                              op.spatialDims);
                }
                EXPECT_EQ(analysis.inside.matrices, counts.inside)
                    << op.label;
                EXPECT_EQ(analysis.edge.matrices, counts.edge) << op.label;
                EXPECT_EQ(analysis.corner.matrices, counts.corner)
                    << op.label;
            }
        }
    }
}

TEST(Reshape, WconvInteriorReuseFormula)
{
    // Paper Case 3 of W-CONV-S: interior reused [I-(O-1)S]^d times.
    const GanModel model = makeBenchmark("DCGAN");
    const LayerOp op = findOp(model, Phase::DBwdWeight, "D.l1.conv");
    const ReshapeAnalysis analysis = analyzeReshape(op);
    const int reuse_1d = wconvInteriorReuse(64, 32, 2);
    EXPECT_EQ(analysis.inside.maxReuse,
              static_cast<std::uint64_t>(reuse_1d) * reuse_1d);
    EXPECT_EQ(analysis.inside.matrices, 1u);
}

TEST(Reshape, CoverageInvariantAcrossAllBenchmarks)
{
    // Every output position is served by exactly one reshaped matrix.
    for (const GanModel &model : allBenchmarks()) {
        for (Phase phase : kAllPhases) {
            for (const LayerOp &op : opsForPhase(model, phase)) {
                if (!op.zfdrApplicable())
                    continue;
                const ReshapeAnalysis analysis = analyzeReshape(op);
                EXPECT_EQ(analysis.corner.servedPositions +
                              analysis.edge.servedPositions +
                              analysis.inside.servedPositions,
                          analysis.totalPositions)
                    << op.label;
            }
        }
    }
}

TEST(Reshape, CornerNeverReused)
{
    // Case 1: corner matrices are non-reusable in the benchmarks' 2D
    // image layers (paper Sec. IV-A).
    const LayerOp op = conv1Op();
    const ReshapeAnalysis analysis = analyzeReshape(op);
    for (const ReshapeMatrix &m : analysis.matrices) {
        if (m.cls(2) == ReshapeClass::Corner) {
            EXPECT_EQ(m.reuse, 1u);
        }
    }
}

TEST(Replica, DegreesAreMonotone)
{
    const LayerOp op = conv1Op();
    const ReshapeAnalysis analysis = analyzeReshape(op);
    const ReplicaCostParams params;
    const ReplicaVector low =
        chooseReplicas(op, analysis, ReplicaDegree::Low, params);
    const ReplicaVector mid =
        chooseReplicas(op, analysis, ReplicaDegree::Middle, params);
    const ReplicaVector high =
        chooseReplicas(op, analysis, ReplicaDegree::High, params);

    EXPECT_EQ(low.corner, 1u);
    EXPECT_EQ(mid.corner, 1u);
    EXPECT_EQ(high.corner, 1u);
    EXPECT_LE(low.edge, mid.edge);
    EXPECT_LE(mid.edge, high.edge);
    EXPECT_LE(mid.inside, high.inside);
    EXPECT_GE(high.inside, high.edge);
}

TEST(Replica, NeverExceedsWorkload)
{
    for (const GanModel &model : allBenchmarks()) {
        for (Phase phase : kAllPhases) {
            for (const LayerOp &op : opsForPhase(model, phase)) {
                if (!op.zfdrApplicable())
                    continue;
                const ReshapeAnalysis analysis = analyzeReshape(op);
                const ReplicaVector high = chooseReplicas(
                    op, analysis, ReplicaDegree::High, ReplicaCostParams{});
                const std::uint64_t vpp = op.vectorsPerPosition;
                if (analysis.inside.matrices > 0) {
                    EXPECT_LE(high.inside,
                              std::max<std::uint64_t>(
                                  1, analysis.inside.maxReuse * vpp))
                        << op.label;
                }
            }
        }
    }
}

TEST(Replica, DenseReplicasFollowEq14)
{
    EXPECT_EQ(denseReplicas(ReplicaDegree::Low, 1000, 100), 1u);
    EXPECT_EQ(denseReplicas(ReplicaDegree::Middle, 1000, 100), 5u);
    EXPECT_EQ(denseReplicas(ReplicaDegree::High, 1000, 100), 10u);
    // Never below one copy.
    EXPECT_EQ(denseReplicas(ReplicaDegree::Middle, 100, 100), 1u);
}

TEST(Cost, Conv1NineCyclesWithoutDuplication)
{
    const LayerOp op = conv1Op();
    const ReshapeAnalysis analysis = analyzeReshape(op);
    const OpCost cost =
        zfdrOpCost(op, analysis, ReplicaVector{}, CrossbarGeom{});
    // "it only needs 9 cycles (one MMV uses one cycle) to complete CONV1.
    // While without ZFDR, it will take 64 cycles."
    EXPECT_EQ(cost.waves, 9u);
    const OpCost normal = normalOpCost(op, 1, CrossbarGeom{});
    EXPECT_EQ(normal.waves, 64u);
}

TEST(Cost, ZfdrFeedsOnlyUsefulInputs)
{
    const LayerOp op = conv1Op();
    const ReshapeAnalysis analysis = analyzeReshape(op);
    const OpCost zfdr =
        zfdrOpCost(op, analysis, ReplicaVector{}, CrossbarGeom{});
    const OpCost normal = normalOpCost(op, 1, CrossbarGeom{});
    EXPECT_EQ(zfdr.inputElems, 16384u);
    EXPECT_EQ(normal.inputElems, 147456u);
}

TEST(Cost, DuplicationReducesWaves)
{
    const LayerOp op = conv1Op();
    const ReshapeAnalysis analysis = analyzeReshape(op);
    ReplicaVector dup;
    dup.inside = 3;
    const OpCost base =
        zfdrOpCost(op, analysis, ReplicaVector{}, CrossbarGeom{});
    const OpCost faster = zfdrOpCost(op, analysis, dup, CrossbarGeom{});
    EXPECT_LT(faster.waves, base.waves);
    EXPECT_GT(faster.weightElems, base.weightElems);
}

TEST(Cost, CrossbarGeometry)
{
    const CrossbarGeom geom;
    EXPECT_EQ(geom.cellsPerWeight(), 4);
    EXPECT_EQ(geom.weightsPerCrossbar(), 128u * 32u);
    // A 128x32 matrix fits exactly one crossbar.
    EXPECT_EQ(geom.crossbarsFor(128, 32), 1u);
    EXPECT_EQ(geom.crossbarsFor(129, 32), 2u);
    EXPECT_EQ(geom.crossbarsFor(128, 33), 2u);
    EXPECT_EQ(geom.crossbarsFor(0, 10), 0u);
}

TEST(Cost, WavesTimesReplicasCoverIssues)
{
    // waves * max-replica >= per-matrix issues for every benchmark op.
    for (const GanModel &model : allBenchmarks()) {
        for (Phase phase : kAllPhases) {
            for (const LayerOp &op : opsForPhase(model, phase)) {
                if (!op.zfdrApplicable())
                    continue;
                const ReshapeAnalysis analysis = analyzeReshape(op);
                const ReplicaVector reps = chooseReplicas(
                    op, analysis, ReplicaDegree::Middle,
                    ReplicaCostParams{});
                const OpCost cost =
                    zfdrOpCost(op, analysis, reps, CrossbarGeom{});
                EXPECT_GE(cost.waves * std::max({reps.corner, reps.edge,
                                                 reps.inside}),
                          analysis.inside.maxReuse *
                              static_cast<std::uint64_t>(
                                  op.vectorsPerPosition))
                    << op.label;
                EXPECT_GT(cost.mmvs, 0u) << op.label;
            }
        }
    }
}

} // namespace
} // namespace lergan
