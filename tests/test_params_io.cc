/**
 * @file
 * Tests for the ReRamParams text loader/saver.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "reram/params_io.hh"

namespace lergan {
namespace {

TEST(ParamsIo, LoadsOverrides)
{
    std::istringstream in("mmv_wave_ns = 25\n"
                          "# a comment\n"
                          "adc_pj_per_xbar = 100.5  # trailing comment\n"
                          "\n"
                          "bus_pj_per_byte=12\n");
    ReRamParams params;
    loadParams(in, params);
    EXPECT_DOUBLE_EQ(params.mmvWaveNs, 25.0);
    EXPECT_DOUBLE_EQ(params.adcPjPerXbar, 100.5);
    EXPECT_DOUBLE_EQ(params.busPjPerByte, 12.0);
    // Untouched keys keep their defaults.
    EXPECT_DOUBLE_EQ(params.cellPjPerXbar, ReRamParams{}.cellPjPerXbar);
}

TEST(ParamsIo, RoundTrips)
{
    ReRamParams original;
    original.mmvWaveNs = 33.25;
    original.hopPjPerByte = 7.5;
    std::ostringstream out;
    saveParams(out, original);

    std::istringstream in(out.str());
    ReRamParams loaded;
    loaded.mmvWaveNs = -1; // poison to prove it is overwritten
    loadParams(in, loaded);
    EXPECT_DOUBLE_EQ(loaded.mmvWaveNs, 33.25);
    EXPECT_DOUBLE_EQ(loaded.hopPjPerByte, 7.5);
    EXPECT_DOUBLE_EQ(loaded.adcPjPerXbar, original.adcPjPerXbar);
}

TEST(ParamsIoDeath, UnknownKeyIsFatal)
{
    std::istringstream in("no_such_knob = 1\n");
    ReRamParams params;
    EXPECT_EXIT(loadParams(in, params), testing::ExitedWithCode(1), "");
}

TEST(ParamsIoDeath, MalformedNumberIsFatal)
{
    std::istringstream in("mmv_wave_ns = fast\n");
    ReRamParams params;
    EXPECT_EXIT(loadParams(in, params), testing::ExitedWithCode(1), "");
}

TEST(ParamsIoDeath, MissingEqualsIsFatal)
{
    std::istringstream in("mmv_wave_ns 25\n");
    ReRamParams params;
    EXPECT_EXIT(loadParams(in, params), testing::ExitedWithCode(1), "");
}

TEST(ParamsIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadParamsFile("/nonexistent/params.txt"),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace lergan
