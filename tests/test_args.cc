/**
 * @file
 * Tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/args.hh"

namespace lergan {
namespace {

/** Build argv from a list of literals. */
struct Argv {
    explicit Argv(std::vector<std::string> args) : storage(std::move(args))
    {
        for (auto &s : storage)
            pointers.push_back(s.data());
    }
    int argc() const { return static_cast<int>(pointers.size()); }
    char **argv() { return pointers.data(); }

    std::vector<std::string> storage;
    std::vector<char *> pointers;
};

TEST(Args, DefaultsApply)
{
    ArgParser parser;
    parser.addOption("batch", "batch size", "64");
    Argv argv({"prog"});
    parser.parse(argv.argc(), argv.argv(), "test");
    EXPECT_FALSE(parser.given("batch"));
    EXPECT_EQ(parser.getInt("batch"), 64);
}

TEST(Args, SpaceSeparatedValue)
{
    ArgParser parser;
    parser.addOption("batch", "batch size", "64");
    Argv argv({"prog", "--batch", "32"});
    parser.parse(argv.argc(), argv.argv(), "test");
    EXPECT_TRUE(parser.given("batch"));
    EXPECT_EQ(parser.getInt("batch"), 32);
}

TEST(Args, EqualsSeparatedValue)
{
    ArgParser parser;
    parser.addOption("name", "a name", "x");
    Argv argv({"prog", "--name=hello"});
    parser.parse(argv.argc(), argv.argv(), "test");
    EXPECT_EQ(parser.get("name"), "hello");
}

TEST(Args, Flags)
{
    ArgParser parser;
    parser.addOption("verbose", "chatty output", "", true);
    Argv argv({"prog", "--verbose"});
    parser.parse(argv.argc(), argv.argv(), "test");
    EXPECT_TRUE(parser.getFlag("verbose"));

    ArgParser bare;
    bare.addOption("verbose", "chatty output", "", true);
    Argv none({"prog"});
    bare.parse(none.argc(), none.argv(), "test");
    EXPECT_FALSE(bare.getFlag("verbose"));
}

TEST(Args, PositionalCollected)
{
    ArgParser parser;
    parser.addOption("k", "key", "v");
    Argv argv({"prog", "one", "--k", "x", "two"});
    parser.parse(argv.argc(), argv.argv(), "test");
    EXPECT_EQ(parser.positional(),
              (std::vector<std::string>{"one", "two"}));
}

TEST(Args, DoubleParsing)
{
    ArgParser parser;
    parser.addOption("scale", "a factor", "1.5");
    Argv argv({"prog", "--scale", "2.25"});
    parser.parse(argv.argc(), argv.argv(), "test");
    EXPECT_DOUBLE_EQ(parser.getDouble("scale"), 2.25);
}

TEST(Args, UsageListsOptions)
{
    ArgParser parser;
    parser.addOption("batch", "batch size", "64");
    EXPECT_NE(parser.usage("doc").find("--batch"), std::string::npos);
    EXPECT_NE(parser.usage("doc").find("batch size"), std::string::npos);
}

TEST(ArgsDeath, UnknownOptionIsFatal)
{
    ArgParser parser;
    parser.addOption("known", "", "x");
    Argv argv({"prog", "--unknown"});
    EXPECT_EXIT(parser.parse(argv.argc(), argv.argv(), "test"),
                testing::ExitedWithCode(1), "");
}

TEST(ArgsDeath, MissingValueIsFatal)
{
    ArgParser parser;
    parser.addOption("k", "", "x");
    Argv argv({"prog", "--k"});
    EXPECT_EXIT(parser.parse(argv.argc(), argv.argv(), "test"),
                testing::ExitedWithCode(1), "");
}

TEST(ArgsDeath, MalformedIntIsFatal)
{
    ArgParser parser;
    parser.addOption("n", "", "5");
    Argv argv({"prog", "--n", "5x"});
    parser.parse(argv.argc(), argv.argv(), "test");
    EXPECT_EXIT(parser.getInt("n"), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace lergan
