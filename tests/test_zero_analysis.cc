/**
 * @file
 * Tests for the zero accounting, anchored on the paper's Sec. III-A
 * worked numbers for CONV1 of the DCGAN generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/zero_analysis.hh"
#include "workloads/zoo.hh"

namespace lergan {
namespace {

/** Find the op of layer @p name in phase @p phase. */
LayerOp
findOp(const GanModel &model, Phase phase, const std::string &layer_name)
{
    for (const LayerOp &op : opsForPhase(model, phase)) {
        const auto &net = model.net(op.role);
        if (net[op.layerIdx].name == layer_name)
            return op;
    }
    ADD_FAILURE() << "no op for " << layer_name;
    return LayerOp{};
}

/** CONV1 = the first T-CONV of the DCGAN generator (G.l2). */
LayerOp
conv1Op()
{
    return findOp(makeBenchmark("DCGAN"), Phase::GFwd, "G.l2.tconv");
}

TEST(ZeroAnalysis, Conv1StorageMatchesPaper)
{
    const LayerOp op = conv1Op();
    const OpZeroStats stats = analyzeOp(op);
    // "we store and transfer 147456 input values while only 16384 of them
    // are useful" (Sec. III-A).
    EXPECT_EQ(stats.totalInputs, 147456u);
    EXPECT_EQ(stats.usefulInputs, 16384u);
}

TEST(ZeroAnalysis, Conv1MultiplyEfficiencyMatchesPaper)
{
    const LayerOp op = conv1Op();
    const OpZeroStats stats = analyzeOp(op);
    // "we conduct 1638400 multiplications while 295936 of them are
    // useful, whose efficiency is only 18.06%". The paper counts per
    // kernel; our totals carry the x512 output-channel factor.
    EXPECT_EQ(stats.totalMults / 512, 1638400u);
    EXPECT_EQ(stats.usefulMults / 512, 295936u);
    EXPECT_NEAR(stats.multEfficiency(), 0.1806, 1e-3);
}

TEST(ZeroAnalysis, Conv1ZeroCountMatchesEq7)
{
    const LayerOp op = conv1Op();
    // Eq. 6: N_iz = (S'-1)(I-1) + R = 1*3 + 1 = 4 per dimension.
    // Eq. 7 (with the paper's P meaning total padding per dimension):
    // N_zero = (4+4+4)^2 - 4*4 = 144 - 16 = 128 per channel.
    EXPECT_EQ(zeroCount(op), 128u * 1024u);
}

TEST(ZeroAnalysis, DenseOpsAreFullyUseful)
{
    const GanModel model = makeBenchmark("DCGAN");
    for (const LayerOp &op : opsForPhase(model, Phase::DFwd)) {
        const OpZeroStats stats = analyzeOp(op);
        EXPECT_EQ(stats.usefulMults, stats.totalMults) << op.label;
        EXPECT_DOUBLE_EQ(stats.multEfficiency(), 1.0) << op.label;
    }
}

TEST(ZeroAnalysis, MaganDiscriminatorHasNoZeros)
{
    // MAGAN-MNIST's discriminator is fully connected; ZFDR finds nothing.
    const GanModel model = makeBenchmark("MAGAN-MNIST");
    for (Phase phase : {Phase::DFwd, Phase::DBwdErr, Phase::DBwdWeight}) {
        for (const LayerOp &op : opsForPhase(model, phase))
            EXPECT_FALSE(op.zfdrApplicable()) << op.label;
    }
}

TEST(ZeroAnalysis, TconvPhasesHaveLowEfficiency)
{
    // Every T-CONV-heavy benchmark wastes most multiplies without ZFDR.
    for (const char *name : {"DCGAN", "cGAN", "GPGAN"}) {
        const OpZeroStats stats =
            analyzePhase(makeBenchmark(name), Phase::GFwd);
        EXPECT_LT(stats.multEfficiency(), 0.5) << name;
        EXPECT_GT(stats.storageBlowup(), 2.0) << name;
    }
}

TEST(ZeroAnalysis, DiscoGan4GeneratorUsesZfdrInFivePhases)
{
    // "DiscoGAN-4pairs has 5 phases using ZFDR because its generator has
    // both S-CONV and T-CONV" (Sec. VI-C).
    const GanModel model = makeBenchmark("DiscoGAN-4pairs");
    int phases_with_zfdr = 0;
    for (Phase phase : kAllPhases) {
        bool any = false;
        for (const LayerOp &op : opsForPhase(model, phase))
            any = any || op.zfdrApplicable();
        phases_with_zfdr += any;
    }
    EXPECT_EQ(phases_with_zfdr, 5);
}

TEST(ZeroAnalysis, StandardGanUsesZfdrInFourPhases)
{
    // Normal case (Sec. V Interface): ZFDR_T for G.fwd, G.bwd_w, D.bwd_err
    // and ZFDR_WS for D.bwd_w; D.fwd and G.bwd_err stay dense.
    const GanModel model = makeBenchmark("DCGAN");
    auto phase_uses_zfdr = [&](Phase phase) {
        for (const LayerOp &op : opsForPhase(model, phase))
            if (op.zfdrApplicable())
                return true;
        return false;
    };
    EXPECT_TRUE(phase_uses_zfdr(Phase::GFwd));
    EXPECT_TRUE(phase_uses_zfdr(Phase::GBwdWeight));
    EXPECT_TRUE(phase_uses_zfdr(Phase::DBwdErr));
    EXPECT_TRUE(phase_uses_zfdr(Phase::DBwdWeight));
    EXPECT_FALSE(phase_uses_zfdr(Phase::DFwd));
    EXPECT_FALSE(phase_uses_zfdr(Phase::GBwdErr));
}

TEST(ZeroAnalysis, ZeroCountGrowsWithStride)
{
    // Eq. 6/7: more stride means more inserted zeros. Compare cGAN (4k2s)
    // layers against a hypothetical stride-3 variant via raw patterns.
    const LayerOp op = conv1Op();
    const OpZeroStats s2 = analyzeOp(op);
    LayerOp op3 = op;
    op3.stride = 3;
    op3.rem = 0;
    // Keep the pattern legal; positions change but the comparison holds
    // per-position.
    const Pattern1D p2 = op.pattern1d();
    const Pattern1D p3 = op3.pattern1d();
    const double density2 =
        static_cast<double>(p2.dataCells) / p2.gridLength;
    const double density3 =
        static_cast<double>(p3.dataCells) / p3.gridLength;
    EXPECT_LT(density3, density2);
    EXPECT_LT(s2.multEfficiency(), 1.0);
}

TEST(ZeroAnalysis, WconvInputAccountingMatchesEq10)
{
    // First conv of the DCGAN discriminator: I=64, P=2, W=5, S=2, O=32,
    // R=1. Eq. 10: zeros = [(N_iz+O)^2 - O^2] * C_out + [(I+2P)^2 - I^2]
    // * C_in with N_iz = (S-1)(O-1) + R = 32.
    const GanModel model = makeBenchmark("DCGAN");
    const LayerOp op = findOp(model, Phase::DBwdWeight, "D.l1.conv");
    ASSERT_EQ(op.pattern, OpPattern::SparseKernelConv);
    const std::uint64_t grad_zeros = (64ull * 64 - 32 * 32) * 128;
    const std::uint64_t pad_zeros = (68ull * 68 - 64 * 64) * 3;
    EXPECT_EQ(zeroCount(op), grad_zeros + pad_zeros);
}

TEST(ZeroAnalysis, ModelAggregateIsSumOfPhases)
{
    const GanModel model = makeBenchmark("cGAN");
    OpZeroStats sum;
    for (Phase phase : kAllPhases)
        sum += analyzePhase(model, phase);
    const OpZeroStats whole = analyzeModel(model);
    EXPECT_EQ(sum.usefulMults, whole.usefulMults);
    EXPECT_EQ(sum.totalMults, whole.totalMults);
    EXPECT_EQ(sum.totalInputs, whole.totalInputs);
}

} // namespace
} // namespace lergan
