file(REMOVE_RECURSE
  "CMakeFiles/fig19_lergan_vs_prime.dir/fig19_lergan_vs_prime.cc.o"
  "CMakeFiles/fig19_lergan_vs_prime.dir/fig19_lergan_vs_prime.cc.o.d"
  "fig19_lergan_vs_prime"
  "fig19_lergan_vs_prime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_lergan_vs_prime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
