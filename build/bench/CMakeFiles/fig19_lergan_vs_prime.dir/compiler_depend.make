# Empty compiler generated dependencies file for fig19_lergan_vs_prime.
# This may be replaced when dependencies are built.
