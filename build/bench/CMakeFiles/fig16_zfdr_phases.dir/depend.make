# Empty dependencies file for fig16_zfdr_phases.
# This may be replaced when dependencies are built.
