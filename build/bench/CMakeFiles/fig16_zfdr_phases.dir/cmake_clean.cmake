file(REMOVE_RECURSE
  "CMakeFiles/fig16_zfdr_phases.dir/fig16_zfdr_phases.cc.o"
  "CMakeFiles/fig16_zfdr_phases.dir/fig16_zfdr_phases.cc.o.d"
  "fig16_zfdr_phases"
  "fig16_zfdr_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_zfdr_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
