# Empty compiler generated dependencies file for endurance_report.
# This may be replaced when dependencies are built.
