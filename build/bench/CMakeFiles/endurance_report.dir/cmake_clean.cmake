file(REMOVE_RECURSE
  "CMakeFiles/endurance_report.dir/endurance_report.cc.o"
  "CMakeFiles/endurance_report.dir/endurance_report.cc.o.d"
  "endurance_report"
  "endurance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endurance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
