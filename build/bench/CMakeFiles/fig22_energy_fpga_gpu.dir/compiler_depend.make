# Empty compiler generated dependencies file for fig22_energy_fpga_gpu.
# This may be replaced when dependencies are built.
