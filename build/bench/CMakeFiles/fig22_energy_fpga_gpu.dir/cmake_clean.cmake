file(REMOVE_RECURSE
  "CMakeFiles/fig22_energy_fpga_gpu.dir/fig22_energy_fpga_gpu.cc.o"
  "CMakeFiles/fig22_energy_fpga_gpu.dir/fig22_energy_fpga_gpu.cc.o.d"
  "fig22_energy_fpga_gpu"
  "fig22_energy_fpga_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_energy_fpga_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
