# Empty compiler generated dependencies file for ablation_itemsize.
# This may be replaced when dependencies are built.
