file(REMOVE_RECURSE
  "CMakeFiles/ablation_itemsize.dir/ablation_itemsize.cc.o"
  "CMakeFiles/ablation_itemsize.dir/ablation_itemsize.cc.o.d"
  "ablation_itemsize"
  "ablation_itemsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_itemsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
