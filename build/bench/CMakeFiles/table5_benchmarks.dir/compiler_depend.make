# Empty compiler generated dependencies file for table5_benchmarks.
# This may be replaced when dependencies are built.
