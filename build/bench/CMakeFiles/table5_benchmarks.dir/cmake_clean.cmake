file(REMOVE_RECURSE
  "CMakeFiles/table5_benchmarks.dir/table5_benchmarks.cc.o"
  "CMakeFiles/table5_benchmarks.dir/table5_benchmarks.cc.o.d"
  "table5_benchmarks"
  "table5_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
