file(REMOVE_RECURSE
  "CMakeFiles/fig20_energy_vs_prime.dir/fig20_energy_vs_prime.cc.o"
  "CMakeFiles/fig20_energy_vs_prime.dir/fig20_energy_vs_prime.cc.o.d"
  "fig20_energy_vs_prime"
  "fig20_energy_vs_prime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_energy_vs_prime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
