# Empty dependencies file for fig20_energy_vs_prime.
# This may be replaced when dependencies are built.
