# Empty dependencies file for motivation_routing.
# This may be replaced when dependencies are built.
