file(REMOVE_RECURSE
  "CMakeFiles/motivation_routing.dir/motivation_routing.cc.o"
  "CMakeFiles/motivation_routing.dir/motivation_routing.cc.o.d"
  "motivation_routing"
  "motivation_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
