file(REMOVE_RECURSE
  "CMakeFiles/fig23_energy_breakdown.dir/fig23_energy_breakdown.cc.o"
  "CMakeFiles/fig23_energy_breakdown.dir/fig23_energy_breakdown.cc.o.d"
  "fig23_energy_breakdown"
  "fig23_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
