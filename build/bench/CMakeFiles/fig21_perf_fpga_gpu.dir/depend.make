# Empty dependencies file for fig21_perf_fpga_gpu.
# This may be replaced when dependencies are built.
