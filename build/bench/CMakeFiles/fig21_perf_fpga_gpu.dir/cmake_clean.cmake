file(REMOVE_RECURSE
  "CMakeFiles/fig21_perf_fpga_gpu.dir/fig21_perf_fpga_gpu.cc.o"
  "CMakeFiles/fig21_perf_fpga_gpu.dir/fig21_perf_fpga_gpu.cc.o.d"
  "fig21_perf_fpga_gpu"
  "fig21_perf_fpga_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_perf_fpga_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
