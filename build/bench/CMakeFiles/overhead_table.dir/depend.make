# Empty dependencies file for overhead_table.
# This may be replaced when dependencies are built.
