file(REMOVE_RECURSE
  "CMakeFiles/overhead_table.dir/overhead_table.cc.o"
  "CMakeFiles/overhead_table.dir/overhead_table.cc.o.d"
  "overhead_table"
  "overhead_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
