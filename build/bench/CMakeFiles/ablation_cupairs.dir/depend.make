# Empty dependencies file for ablation_cupairs.
# This may be replaced when dependencies are built.
