file(REMOVE_RECURSE
  "CMakeFiles/ablation_cupairs.dir/ablation_cupairs.cc.o"
  "CMakeFiles/ablation_cupairs.dir/ablation_cupairs.cc.o.d"
  "ablation_cupairs"
  "ablation_cupairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cupairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
