file(REMOVE_RECURSE
  "CMakeFiles/ablation_stride3.dir/ablation_stride3.cc.o"
  "CMakeFiles/ablation_stride3.dir/ablation_stride3.cc.o.d"
  "ablation_stride3"
  "ablation_stride3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stride3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
