# Empty compiler generated dependencies file for ablation_stride3.
# This may be replaced when dependencies are built.
