file(REMOVE_RECURSE
  "CMakeFiles/fig17_3d_vs_htree.dir/fig17_3d_vs_htree.cc.o"
  "CMakeFiles/fig17_3d_vs_htree.dir/fig17_3d_vs_htree.cc.o.d"
  "fig17_3d_vs_htree"
  "fig17_3d_vs_htree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_3d_vs_htree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
