# Empty dependencies file for fig17_3d_vs_htree.
# This may be replaced when dependencies are built.
