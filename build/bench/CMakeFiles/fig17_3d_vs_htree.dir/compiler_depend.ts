# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_3d_vs_htree.
