file(REMOVE_RECURSE
  "CMakeFiles/fig24_tile_breakdown.dir/fig24_tile_breakdown.cc.o"
  "CMakeFiles/fig24_tile_breakdown.dir/fig24_tile_breakdown.cc.o.d"
  "fig24_tile_breakdown"
  "fig24_tile_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_tile_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
