# Empty dependencies file for fig24_tile_breakdown.
# This may be replaced when dependencies are built.
