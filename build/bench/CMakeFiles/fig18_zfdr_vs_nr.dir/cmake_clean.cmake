file(REMOVE_RECURSE
  "CMakeFiles/fig18_zfdr_vs_nr.dir/fig18_zfdr_vs_nr.cc.o"
  "CMakeFiles/fig18_zfdr_vs_nr.dir/fig18_zfdr_vs_nr.cc.o.d"
  "fig18_zfdr_vs_nr"
  "fig18_zfdr_vs_nr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_zfdr_vs_nr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
