# Empty compiler generated dependencies file for fig18_zfdr_vs_nr.
# This may be replaced when dependencies are built.
