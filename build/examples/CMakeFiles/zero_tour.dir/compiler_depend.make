# Empty compiler generated dependencies file for zero_tour.
# This may be replaced when dependencies are built.
