file(REMOVE_RECURSE
  "CMakeFiles/zero_tour.dir/zero_tour.cpp.o"
  "CMakeFiles/zero_tour.dir/zero_tour.cpp.o.d"
  "zero_tour"
  "zero_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
