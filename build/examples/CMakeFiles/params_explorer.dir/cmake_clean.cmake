file(REMOVE_RECURSE
  "CMakeFiles/params_explorer.dir/params_explorer.cpp.o"
  "CMakeFiles/params_explorer.dir/params_explorer.cpp.o.d"
  "params_explorer"
  "params_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/params_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
