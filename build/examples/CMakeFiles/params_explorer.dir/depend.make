# Empty dependencies file for params_explorer.
# This may be replaced when dependencies are built.
