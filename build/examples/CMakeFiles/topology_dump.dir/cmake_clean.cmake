file(REMOVE_RECURSE
  "CMakeFiles/topology_dump.dir/topology_dump.cpp.o"
  "CMakeFiles/topology_dump.dir/topology_dump.cpp.o.d"
  "topology_dump"
  "topology_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
