# Empty compiler generated dependencies file for topology_dump.
# This may be replaced when dependencies are built.
