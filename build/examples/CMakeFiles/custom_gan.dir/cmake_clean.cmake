file(REMOVE_RECURSE
  "CMakeFiles/custom_gan.dir/custom_gan.cpp.o"
  "CMakeFiles/custom_gan.dir/custom_gan.cpp.o.d"
  "custom_gan"
  "custom_gan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
