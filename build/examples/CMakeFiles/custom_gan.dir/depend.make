# Empty dependencies file for custom_gan.
# This may be replaced when dependencies are built.
