
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_gan.cpp" "examples/CMakeFiles/custom_gan.dir/custom_gan.cpp.o" "gcc" "examples/CMakeFiles/custom_gan.dir/custom_gan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lergan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lergan_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/zfdr/CMakeFiles/lergan_zfdr.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/lergan_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/lergan_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lergan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lergan_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lergan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
