file(REMOVE_RECURSE
  "CMakeFiles/functional_check.dir/functional_check.cpp.o"
  "CMakeFiles/functional_check.dir/functional_check.cpp.o.d"
  "functional_check"
  "functional_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
