file(REMOVE_RECURSE
  "CMakeFiles/test_zero_formulas.dir/test_zero_formulas.cc.o"
  "CMakeFiles/test_zero_formulas.dir/test_zero_formulas.cc.o.d"
  "test_zero_formulas"
  "test_zero_formulas.pdb"
  "test_zero_formulas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
