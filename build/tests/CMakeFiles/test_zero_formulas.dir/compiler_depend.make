# Empty compiler generated dependencies file for test_zero_formulas.
# This may be replaced when dependencies are built.
