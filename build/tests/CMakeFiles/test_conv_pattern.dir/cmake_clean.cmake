file(REMOVE_RECURSE
  "CMakeFiles/test_conv_pattern.dir/test_conv_pattern.cc.o"
  "CMakeFiles/test_conv_pattern.dir/test_conv_pattern.cc.o.d"
  "test_conv_pattern"
  "test_conv_pattern.pdb"
  "test_conv_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
