# Empty compiler generated dependencies file for test_conv_pattern.
# This may be replaced when dependencies are built.
