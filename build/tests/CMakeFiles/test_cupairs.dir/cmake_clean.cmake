file(REMOVE_RECURSE
  "CMakeFiles/test_cupairs.dir/test_cupairs.cc.o"
  "CMakeFiles/test_cupairs.dir/test_cupairs.cc.o.d"
  "test_cupairs"
  "test_cupairs.pdb"
  "test_cupairs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cupairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
