# Empty compiler generated dependencies file for test_cupairs.
# This may be replaced when dependencies are built.
