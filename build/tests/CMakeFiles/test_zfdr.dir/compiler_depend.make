# Empty compiler generated dependencies file for test_zfdr.
# This may be replaced when dependencies are built.
