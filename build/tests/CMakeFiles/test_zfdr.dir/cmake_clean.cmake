file(REMOVE_RECURSE
  "CMakeFiles/test_zfdr.dir/test_zfdr.cc.o"
  "CMakeFiles/test_zfdr.dir/test_zfdr.cc.o.d"
  "test_zfdr"
  "test_zfdr.pdb"
  "test_zfdr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zfdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
