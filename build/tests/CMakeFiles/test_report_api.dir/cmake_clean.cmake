file(REMOVE_RECURSE
  "CMakeFiles/test_report_api.dir/test_report_api.cc.o"
  "CMakeFiles/test_report_api.dir/test_report_api.cc.o.d"
  "test_report_api"
  "test_report_api.pdb"
  "test_report_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
