# Empty compiler generated dependencies file for test_report_api.
# This may be replaced when dependencies are built.
