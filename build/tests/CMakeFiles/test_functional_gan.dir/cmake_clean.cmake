file(REMOVE_RECURSE
  "CMakeFiles/test_functional_gan.dir/test_functional_gan.cc.o"
  "CMakeFiles/test_functional_gan.dir/test_functional_gan.cc.o.d"
  "test_functional_gan"
  "test_functional_gan.pdb"
  "test_functional_gan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
