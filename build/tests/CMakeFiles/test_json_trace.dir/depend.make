# Empty dependencies file for test_json_trace.
# This may be replaced when dependencies are built.
