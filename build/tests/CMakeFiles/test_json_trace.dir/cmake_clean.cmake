file(REMOVE_RECURSE
  "CMakeFiles/test_json_trace.dir/test_json_trace.cc.o"
  "CMakeFiles/test_json_trace.dir/test_json_trace.cc.o.d"
  "test_json_trace"
  "test_json_trace.pdb"
  "test_json_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
