# Empty compiler generated dependencies file for test_zero_analysis.
# This may be replaced when dependencies are built.
