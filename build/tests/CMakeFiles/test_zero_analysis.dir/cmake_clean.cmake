file(REMOVE_RECURSE
  "CMakeFiles/test_zero_analysis.dir/test_zero_analysis.cc.o"
  "CMakeFiles/test_zero_analysis.dir/test_zero_analysis.cc.o.d"
  "test_zero_analysis"
  "test_zero_analysis.pdb"
  "test_zero_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
