
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/test_properties.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/test_properties.dir/test_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lergan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zfdr/CMakeFiles/lergan_zfdr.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/lergan_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/lergan_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lergan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lergan_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lergan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
