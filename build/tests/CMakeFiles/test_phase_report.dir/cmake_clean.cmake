file(REMOVE_RECURSE
  "CMakeFiles/test_phase_report.dir/test_phase_report.cc.o"
  "CMakeFiles/test_phase_report.dir/test_phase_report.cc.o.d"
  "test_phase_report"
  "test_phase_report.pdb"
  "test_phase_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
