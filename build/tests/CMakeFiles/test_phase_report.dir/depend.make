# Empty dependencies file for test_phase_report.
# This may be replaced when dependencies are built.
