
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reram/allocator.cc" "src/reram/CMakeFiles/lergan_reram.dir/allocator.cc.o" "gcc" "src/reram/CMakeFiles/lergan_reram.dir/allocator.cc.o.d"
  "/root/repo/src/reram/crossbar.cc" "src/reram/CMakeFiles/lergan_reram.dir/crossbar.cc.o" "gcc" "src/reram/CMakeFiles/lergan_reram.dir/crossbar.cc.o.d"
  "/root/repo/src/reram/endurance.cc" "src/reram/CMakeFiles/lergan_reram.dir/endurance.cc.o" "gcc" "src/reram/CMakeFiles/lergan_reram.dir/endurance.cc.o.d"
  "/root/repo/src/reram/params_io.cc" "src/reram/CMakeFiles/lergan_reram.dir/params_io.cc.o" "gcc" "src/reram/CMakeFiles/lergan_reram.dir/params_io.cc.o.d"
  "/root/repo/src/reram/tile.cc" "src/reram/CMakeFiles/lergan_reram.dir/tile.cc.o" "gcc" "src/reram/CMakeFiles/lergan_reram.dir/tile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
