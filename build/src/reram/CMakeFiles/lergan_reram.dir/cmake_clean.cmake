file(REMOVE_RECURSE
  "CMakeFiles/lergan_reram.dir/allocator.cc.o"
  "CMakeFiles/lergan_reram.dir/allocator.cc.o.d"
  "CMakeFiles/lergan_reram.dir/crossbar.cc.o"
  "CMakeFiles/lergan_reram.dir/crossbar.cc.o.d"
  "CMakeFiles/lergan_reram.dir/endurance.cc.o"
  "CMakeFiles/lergan_reram.dir/endurance.cc.o.d"
  "CMakeFiles/lergan_reram.dir/params_io.cc.o"
  "CMakeFiles/lergan_reram.dir/params_io.cc.o.d"
  "CMakeFiles/lergan_reram.dir/tile.cc.o"
  "CMakeFiles/lergan_reram.dir/tile.cc.o.d"
  "liblergan_reram.a"
  "liblergan_reram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_reram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
