file(REMOVE_RECURSE
  "liblergan_reram.a"
)
