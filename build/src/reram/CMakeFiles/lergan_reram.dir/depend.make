# Empty dependencies file for lergan_reram.
# This may be replaced when dependencies are built.
