
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/dot_export.cc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/dot_export.cc.o" "gcc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/dot_export.cc.o.d"
  "/root/repo/src/interconnect/htree.cc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/htree.cc.o" "gcc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/htree.cc.o.d"
  "/root/repo/src/interconnect/three_d.cc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/three_d.cc.o" "gcc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/three_d.cc.o.d"
  "/root/repo/src/interconnect/topology.cc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/topology.cc.o" "gcc" "src/interconnect/CMakeFiles/lergan_interconnect.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lergan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/lergan_reram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
