# Empty compiler generated dependencies file for lergan_interconnect.
# This may be replaced when dependencies are built.
