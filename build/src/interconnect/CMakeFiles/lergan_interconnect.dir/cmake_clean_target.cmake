file(REMOVE_RECURSE
  "liblergan_interconnect.a"
)
