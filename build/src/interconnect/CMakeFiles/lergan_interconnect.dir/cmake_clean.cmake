file(REMOVE_RECURSE
  "CMakeFiles/lergan_interconnect.dir/dot_export.cc.o"
  "CMakeFiles/lergan_interconnect.dir/dot_export.cc.o.d"
  "CMakeFiles/lergan_interconnect.dir/htree.cc.o"
  "CMakeFiles/lergan_interconnect.dir/htree.cc.o.d"
  "CMakeFiles/lergan_interconnect.dir/three_d.cc.o"
  "CMakeFiles/lergan_interconnect.dir/three_d.cc.o.d"
  "CMakeFiles/lergan_interconnect.dir/topology.cc.o"
  "CMakeFiles/lergan_interconnect.dir/topology.cc.o.d"
  "liblergan_interconnect.a"
  "liblergan_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
