file(REMOVE_RECURSE
  "liblergan_nn.a"
)
