
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv_pattern.cc" "src/nn/CMakeFiles/lergan_nn.dir/conv_pattern.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/conv_pattern.cc.o.d"
  "/root/repo/src/nn/functional.cc" "src/nn/CMakeFiles/lergan_nn.dir/functional.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/functional.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/lergan_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/lergan_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/parser.cc" "src/nn/CMakeFiles/lergan_nn.dir/parser.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/parser.cc.o.d"
  "/root/repo/src/nn/summary.cc" "src/nn/CMakeFiles/lergan_nn.dir/summary.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/summary.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/lergan_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/tensor.cc.o.d"
  "/root/repo/src/nn/training.cc" "src/nn/CMakeFiles/lergan_nn.dir/training.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/training.cc.o.d"
  "/root/repo/src/nn/zero_analysis.cc" "src/nn/CMakeFiles/lergan_nn.dir/zero_analysis.cc.o" "gcc" "src/nn/CMakeFiles/lergan_nn.dir/zero_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
