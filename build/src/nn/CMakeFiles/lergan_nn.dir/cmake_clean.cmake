file(REMOVE_RECURSE
  "CMakeFiles/lergan_nn.dir/conv_pattern.cc.o"
  "CMakeFiles/lergan_nn.dir/conv_pattern.cc.o.d"
  "CMakeFiles/lergan_nn.dir/functional.cc.o"
  "CMakeFiles/lergan_nn.dir/functional.cc.o.d"
  "CMakeFiles/lergan_nn.dir/layer.cc.o"
  "CMakeFiles/lergan_nn.dir/layer.cc.o.d"
  "CMakeFiles/lergan_nn.dir/model.cc.o"
  "CMakeFiles/lergan_nn.dir/model.cc.o.d"
  "CMakeFiles/lergan_nn.dir/parser.cc.o"
  "CMakeFiles/lergan_nn.dir/parser.cc.o.d"
  "CMakeFiles/lergan_nn.dir/summary.cc.o"
  "CMakeFiles/lergan_nn.dir/summary.cc.o.d"
  "CMakeFiles/lergan_nn.dir/tensor.cc.o"
  "CMakeFiles/lergan_nn.dir/tensor.cc.o.d"
  "CMakeFiles/lergan_nn.dir/training.cc.o"
  "CMakeFiles/lergan_nn.dir/training.cc.o.d"
  "CMakeFiles/lergan_nn.dir/zero_analysis.cc.o"
  "CMakeFiles/lergan_nn.dir/zero_analysis.cc.o.d"
  "liblergan_nn.a"
  "liblergan_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
