# Empty dependencies file for lergan_nn.
# This may be replaced when dependencies are built.
