# Empty dependencies file for lergan_common.
# This may be replaced when dependencies are built.
