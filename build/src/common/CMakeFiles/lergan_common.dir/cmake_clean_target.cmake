file(REMOVE_RECURSE
  "liblergan_common.a"
)
