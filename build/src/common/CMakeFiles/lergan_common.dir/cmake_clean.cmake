file(REMOVE_RECURSE
  "CMakeFiles/lergan_common.dir/args.cc.o"
  "CMakeFiles/lergan_common.dir/args.cc.o.d"
  "CMakeFiles/lergan_common.dir/json.cc.o"
  "CMakeFiles/lergan_common.dir/json.cc.o.d"
  "CMakeFiles/lergan_common.dir/logging.cc.o"
  "CMakeFiles/lergan_common.dir/logging.cc.o.d"
  "CMakeFiles/lergan_common.dir/random.cc.o"
  "CMakeFiles/lergan_common.dir/random.cc.o.d"
  "CMakeFiles/lergan_common.dir/stats.cc.o"
  "CMakeFiles/lergan_common.dir/stats.cc.o.d"
  "CMakeFiles/lergan_common.dir/strings.cc.o"
  "CMakeFiles/lergan_common.dir/strings.cc.o.d"
  "CMakeFiles/lergan_common.dir/table.cc.o"
  "CMakeFiles/lergan_common.dir/table.cc.o.d"
  "liblergan_common.a"
  "liblergan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
