file(REMOVE_RECURSE
  "liblergan_workloads.a"
)
