file(REMOVE_RECURSE
  "CMakeFiles/lergan_workloads.dir/zoo.cc.o"
  "CMakeFiles/lergan_workloads.dir/zoo.cc.o.d"
  "liblergan_workloads.a"
  "liblergan_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
