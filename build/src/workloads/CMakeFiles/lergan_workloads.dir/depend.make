# Empty dependencies file for lergan_workloads.
# This may be replaced when dependencies are built.
