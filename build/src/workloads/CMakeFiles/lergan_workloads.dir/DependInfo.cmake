
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/zoo.cc" "src/workloads/CMakeFiles/lergan_workloads.dir/zoo.cc.o" "gcc" "src/workloads/CMakeFiles/lergan_workloads.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/lergan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
