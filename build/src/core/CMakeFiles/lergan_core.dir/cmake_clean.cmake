file(REMOVE_RECURSE
  "CMakeFiles/lergan_core.dir/accelerator.cc.o"
  "CMakeFiles/lergan_core.dir/accelerator.cc.o.d"
  "CMakeFiles/lergan_core.dir/api.cc.o"
  "CMakeFiles/lergan_core.dir/api.cc.o.d"
  "CMakeFiles/lergan_core.dir/compiler.cc.o"
  "CMakeFiles/lergan_core.dir/compiler.cc.o.d"
  "CMakeFiles/lergan_core.dir/config.cc.o"
  "CMakeFiles/lergan_core.dir/config.cc.o.d"
  "CMakeFiles/lergan_core.dir/controller.cc.o"
  "CMakeFiles/lergan_core.dir/controller.cc.o.d"
  "CMakeFiles/lergan_core.dir/machine.cc.o"
  "CMakeFiles/lergan_core.dir/machine.cc.o.d"
  "CMakeFiles/lergan_core.dir/phase_report.cc.o"
  "CMakeFiles/lergan_core.dir/phase_report.cc.o.d"
  "CMakeFiles/lergan_core.dir/report.cc.o"
  "CMakeFiles/lergan_core.dir/report.cc.o.d"
  "CMakeFiles/lergan_core.dir/sweep.cc.o"
  "CMakeFiles/lergan_core.dir/sweep.cc.o.d"
  "CMakeFiles/lergan_core.dir/validate.cc.o"
  "CMakeFiles/lergan_core.dir/validate.cc.o.d"
  "liblergan_core.a"
  "liblergan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
