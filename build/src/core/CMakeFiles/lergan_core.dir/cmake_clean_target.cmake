file(REMOVE_RECURSE
  "liblergan_core.a"
)
