
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accelerator.cc" "src/core/CMakeFiles/lergan_core.dir/accelerator.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/accelerator.cc.o.d"
  "/root/repo/src/core/api.cc" "src/core/CMakeFiles/lergan_core.dir/api.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/api.cc.o.d"
  "/root/repo/src/core/compiler.cc" "src/core/CMakeFiles/lergan_core.dir/compiler.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/compiler.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/lergan_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/config.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/lergan_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/controller.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/core/CMakeFiles/lergan_core.dir/machine.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/machine.cc.o.d"
  "/root/repo/src/core/phase_report.cc" "src/core/CMakeFiles/lergan_core.dir/phase_report.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/phase_report.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/lergan_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/report.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/core/CMakeFiles/lergan_core.dir/sweep.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/sweep.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/core/CMakeFiles/lergan_core.dir/validate.cc.o" "gcc" "src/core/CMakeFiles/lergan_core.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zfdr/CMakeFiles/lergan_zfdr.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/lergan_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/lergan_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lergan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lergan_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lergan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
