# Empty dependencies file for lergan_core.
# This may be replaced when dependencies are built.
