file(REMOVE_RECURSE
  "liblergan_sim.a"
)
