file(REMOVE_RECURSE
  "CMakeFiles/lergan_sim.dir/event_queue.cc.o"
  "CMakeFiles/lergan_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/lergan_sim.dir/task_graph.cc.o"
  "CMakeFiles/lergan_sim.dir/task_graph.cc.o.d"
  "CMakeFiles/lergan_sim.dir/trace.cc.o"
  "CMakeFiles/lergan_sim.dir/trace.cc.o.d"
  "CMakeFiles/lergan_sim.dir/utilization.cc.o"
  "CMakeFiles/lergan_sim.dir/utilization.cc.o.d"
  "liblergan_sim.a"
  "liblergan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
