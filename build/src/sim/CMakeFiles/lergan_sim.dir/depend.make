# Empty dependencies file for lergan_sim.
# This may be replaced when dependencies are built.
