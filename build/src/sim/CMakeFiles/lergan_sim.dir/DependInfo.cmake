
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/lergan_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/lergan_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/task_graph.cc" "src/sim/CMakeFiles/lergan_sim.dir/task_graph.cc.o" "gcc" "src/sim/CMakeFiles/lergan_sim.dir/task_graph.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/lergan_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/lergan_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/utilization.cc" "src/sim/CMakeFiles/lergan_sim.dir/utilization.cc.o" "gcc" "src/sim/CMakeFiles/lergan_sim.dir/utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
