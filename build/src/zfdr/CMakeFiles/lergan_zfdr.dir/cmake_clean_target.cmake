file(REMOVE_RECURSE
  "liblergan_zfdr.a"
)
