
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zfdr/cost.cc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/cost.cc.o" "gcc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/cost.cc.o.d"
  "/root/repo/src/zfdr/formulas.cc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/formulas.cc.o" "gcc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/formulas.cc.o.d"
  "/root/repo/src/zfdr/functional.cc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/functional.cc.o" "gcc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/functional.cc.o.d"
  "/root/repo/src/zfdr/functional_gan.cc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/functional_gan.cc.o" "gcc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/functional_gan.cc.o.d"
  "/root/repo/src/zfdr/replica.cc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/replica.cc.o" "gcc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/replica.cc.o.d"
  "/root/repo/src/zfdr/reshape.cc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/reshape.cc.o" "gcc" "src/zfdr/CMakeFiles/lergan_zfdr.dir/reshape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/lergan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lergan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
