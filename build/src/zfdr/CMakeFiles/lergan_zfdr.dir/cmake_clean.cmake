file(REMOVE_RECURSE
  "CMakeFiles/lergan_zfdr.dir/cost.cc.o"
  "CMakeFiles/lergan_zfdr.dir/cost.cc.o.d"
  "CMakeFiles/lergan_zfdr.dir/formulas.cc.o"
  "CMakeFiles/lergan_zfdr.dir/formulas.cc.o.d"
  "CMakeFiles/lergan_zfdr.dir/functional.cc.o"
  "CMakeFiles/lergan_zfdr.dir/functional.cc.o.d"
  "CMakeFiles/lergan_zfdr.dir/functional_gan.cc.o"
  "CMakeFiles/lergan_zfdr.dir/functional_gan.cc.o.d"
  "CMakeFiles/lergan_zfdr.dir/replica.cc.o"
  "CMakeFiles/lergan_zfdr.dir/replica.cc.o.d"
  "CMakeFiles/lergan_zfdr.dir/reshape.cc.o"
  "CMakeFiles/lergan_zfdr.dir/reshape.cc.o.d"
  "liblergan_zfdr.a"
  "liblergan_zfdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_zfdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
