# Empty compiler generated dependencies file for lergan_zfdr.
# This may be replaced when dependencies are built.
