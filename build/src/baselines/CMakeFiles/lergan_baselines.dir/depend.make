# Empty dependencies file for lergan_baselines.
# This may be replaced when dependencies are built.
