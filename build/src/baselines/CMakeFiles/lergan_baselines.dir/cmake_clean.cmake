file(REMOVE_RECURSE
  "CMakeFiles/lergan_baselines.dir/fpga_gan.cc.o"
  "CMakeFiles/lergan_baselines.dir/fpga_gan.cc.o.d"
  "CMakeFiles/lergan_baselines.dir/gpu.cc.o"
  "CMakeFiles/lergan_baselines.dir/gpu.cc.o.d"
  "CMakeFiles/lergan_baselines.dir/prime.cc.o"
  "CMakeFiles/lergan_baselines.dir/prime.cc.o.d"
  "liblergan_baselines.a"
  "liblergan_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lergan_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
