file(REMOVE_RECURSE
  "liblergan_baselines.a"
)
