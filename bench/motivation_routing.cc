/**
 * @file
 * Sec. III-B motivation (Fig. 9) made quantitative: how long are the
 * wire routes GAN-training dataflows actually take on H-tree banks
 * versus the 3D connection?
 *
 * Measured as bytes-weighted average hops per transferred byte
 * (traffic.byte_hops / traffic.bytes over a simulated iteration).
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Motivation (Fig. 9): routing length of GAN dataflows",
           "H-tree mappings 'suffer from long routings'; the 3D "
           "connection shortens them");

    TextTable table({"benchmark", "2D hops/byte", "3D hops/byte",
                     "shortening"});
    Mean mean;
    for (const GanModel &model : allBenchmarks()) {
        auto hops = [&](Connection conn) {
            AcceleratorConfig config =
                AcceleratorConfig::lerGan(ReplicaDegree::Low);
            config.connection = conn;
            config.batchSize = 8; // routing mix is batch-independent
            const TrainingReport report =
                simulateTraining(model, config);
            return report.stats.get("traffic.byte_hops") /
                   report.stats.get("traffic.bytes");
        };
        const double h2d = hops(Connection::HTree);
        const double h3d = hops(Connection::ThreeD);
        mean.add(h2d / h3d);
        table.addRow({model.name, TextTable::num(h2d),
                      TextTable::num(h3d),
                      TextTable::num(h2d / h3d) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nmean route shortening: " << TextTable::num(mean.value())
              << "x\n";
    return 0;
}
