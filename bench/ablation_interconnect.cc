/**
 * @file
 * Ablation: which added wires of the 3D connection matter (a design-
 * choice breakdown DESIGN.md calls out; the paper evaluates the combined
 * design only).
 *
 * Vertical wires serve the inter-phase dataflows (forward caches feeding
 * the backward banks); horizontal wires shortcut intra-bank H-tree
 * detours. Expectation: vertical wires carry most of the benefit,
 * horizontal wires add a smaller but consistent slice.
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Ablation: 3D connection wire families",
           "not in the paper; decomposes Fig. 17's 3D gain");

    TextTable table({"benchmark", "no added wires", "+horizontal only",
                     "+vertical only", "full 3D"});
    Mean m_h, m_v, m_full;
    for (const GanModel &model : allBenchmarks()) {
        auto time_with = [&](bool horizontal, bool vertical) {
            AcceleratorConfig config =
                AcceleratorConfig::lerGan(ReplicaDegree::High);
            config.horizontalWires = horizontal;
            config.verticalWires = vertical;
            return simulateTraining(model, config).timeMs();
        };
        const double none = time_with(false, false);
        const double h_only = time_with(true, false);
        const double v_only = time_with(false, true);
        const double full = time_with(true, true);
        m_h.add(none / h_only);
        m_v.add(none / v_only);
        m_full.add(none / full);
        table.addRow({model.name, "1.00x",
                      TextTable::num(none / h_only) + "x",
                      TextTable::num(none / v_only) + "x",
                      TextTable::num(none / full) + "x"});
    }
    table.addRow({"MEAN", "1.00x", TextTable::num(m_h.value()) + "x",
                  TextTable::num(m_v.value()) + "x",
                  TextTable::num(m_full.value()) + "x"});
    table.print(std::cout);
    return 0;
}
