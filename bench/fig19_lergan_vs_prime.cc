/**
 * @file
 * Fig. 19 reproduction: LerGAN speedup over PRIME, across duplication
 * degrees (ten training iterations, averaged — Sec. VI-C).
 *
 * Paper: 7.46x average; DCGAN gains more than 3D-GAN/GPGAN due to its
 * larger kernels; MAGAN-MNIST shows nearly no speedup; with equal space
 * (NS), LerGAN still delivers 2.1x.
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Fig. 19: LerGAN vs PRIME (speedup, 10-iteration average)",
           "avg 7.46x; MAGAN-MNIST near 1x; 2.1x at equal space");

    TextTable table({"benchmark", "low", "middle", "high", "low-NS"});
    Mean m_low, m_mid, m_high, m_ns;
    for (const GanModel &model : allBenchmarks()) {
        const double prime =
            simulateTraining(model, AcceleratorConfig::prime(),
                             kIterations)
                .timeMs();
        auto speedup = [&](const AcceleratorConfig &config) {
            return prime /
                   simulateTraining(model, config, kIterations).timeMs();
        };
        const double low =
            speedup(AcceleratorConfig::lerGan(ReplicaDegree::Low));
        const double mid =
            speedup(AcceleratorConfig::lerGan(ReplicaDegree::Middle));
        const double high =
            speedup(AcceleratorConfig::lerGan(ReplicaDegree::High));
        const double ns = speedup(lerGanLowNs(model));
        m_low.add(low);
        m_mid.add(mid);
        m_high.add(high);
        m_ns.add(ns);
        table.addRow({model.name, TextTable::num(low) + "x",
                      TextTable::num(mid) + "x", TextTable::num(high) + "x",
                      TextTable::num(ns) + "x"});
    }
    table.addRow({"MEAN", TextTable::num(m_low.value()) + "x",
                  TextTable::num(m_mid.value()) + "x",
                  TextTable::num(m_high.value()) + "x",
                  TextTable::num(m_ns.value()) + "x"});
    table.print(std::cout);
    std::cout << "\npaper: high-degree average 7.46x; equal-space 2.1x\n";
    return 0;
}
