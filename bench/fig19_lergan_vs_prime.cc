/**
 * @file
 * Fig. 19 reproduction: LerGAN speedup over PRIME, across duplication
 * degrees (ten training iterations, averaged — Sec. VI-C).
 *
 * Paper: 7.46x average; DCGAN gains more than 3D-GAN/GPGAN due to its
 * larger kernels; MAGAN-MNIST shows nearly no speedup; with equal space
 * (NS), LerGAN still delivers 2.1x.
 *
 * All 40 grid points plus the per-benchmark normalized-space points run
 * through the parallel sweep engine; results come back benchmark-major,
 * so the table rows read straight out of the result vector.
 *
 * This is also the repo's host-performance reference workload: the
 * committed BENCH_fig19.json trajectory is regenerated from this binary
 * via scripts/bench_baseline.sh (--bench-json), and scripts/check.sh
 * guards it (--bench-check).
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "core/validate.hh"
#include "critpath/whatif.hh"
#include "runner.hh"
#include "sim/trace_tracks.hh"

namespace {

/**
 * Trace one LerGAN-low DCGAN iteration with derived counter tracks —
 * transfer occupancy and the busiest wire's busy curve next to the task
 * spans — plus the critical chain as its own track, and export it for
 * Perfetto (--trace).
 */
void
exportCounterTrace(const std::string &path,
                   const lergan::FlightRecorder *recorder)
{
    using namespace lergan;
    const GanModel model = makeBenchmark("DCGAN");
    LerGanAccelerator accelerator(
        model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    const auto tmpl = accelerator.makeIterationTemplate();
    Tracer tracer;
    ExecRecord record;
    accelerator.trainIterations(1, &tracer, nullptr, tmpl.get(),
                                &record);
    std::vector<std::string> names = accelerator.resourceNames();
    addSpanOccupancyTrack(tracer, "xfer:", "ic.xfer.active");
    const std::size_t wire = busiestLane(tracer, names, ".wire");
    if (wire != SIZE_MAX)
        addLaneOccupancyTrack(tracer, wire, names[wire] + ".busy");
    const CriticalPath critical =
        extractCriticalPath(tmpl->graph, record, names);
    appendCriticalTrack(tracer, critical, names);
    // With tracing active, the sweep's flight-recorder spans ride along
    // as a second process ("host spans"), so the simulated timeline and
    // the host-side point lifecycle share one viewer.
    std::vector<SpanEvent> hostSpans;
    if (recorder)
        hostSpans = recorder->collect();
    std::ofstream out(path);
    if (!out)
        LERGAN_FATAL("cannot write trace file '", path, "'");
    tracer.exportChromeTrace(out, names,
                             hostSpans.empty() ? nullptr : &hostSpans);
    std::cerr << "trace: " << tracer.events().size() << " spans ("
              << critical.entries.size() << " critical), "
              << tracer.counterSamples().size() << " counter samples";
    if (!hostSpans.empty())
        std::cerr << ", " << hostSpans.size() << " host spans";
    std::cerr << " -> " << path << "\n";
}

/**
 * Warm A/B measurement of critical-path recording overhead: replay the
 * fig19 (model, config) iteration templates through trainIterations
 * with and without an ExecRecord attached and report the on-cost
 * percentage as the median of 15 back-to-back off/on pairwise ratios;
 * compiles and templates come warm out of the sweep's caches.
 */
double
measureRecordingOverhead(lergan::ExperimentSweep &sweep)
{
    using namespace lergan;
    using clock = std::chrono::steady_clock;
    struct Probe {
        std::unique_ptr<LerGanAccelerator> acc;
        std::shared_ptr<const IterationTemplate> tmpl;
    };
    std::vector<Probe> probes;
    const std::pair<const char *, AcceleratorConfig> grid[] = {
        {"prime", AcceleratorConfig::prime()},
        {"low", AcceleratorConfig::lerGan(ReplicaDegree::Low)},
        {"high", AcceleratorConfig::lerGan(ReplicaDegree::High)},
    };
    for (const GanModel &model : allBenchmarks()) {
        for (const auto &[label, config] : grid) {
            (void)label;
            Probe probe;
            probe.acc = std::make_unique<LerGanAccelerator>(
                model, config,
                sweep.cache().get(model, config, compileGanValidated),
                LerGanAccelerator::Prevalidated{});
            probe.tmpl = sweep.templates().get(
                pairFingerprint(model, config),
                [&] { return probe.acc->makeIterationTemplate(); });
            probes.push_back(std::move(probe));
        }
    }
    ExecRecord record;
    const auto runAll = [&](lergan::ExecRecord *rec) {
        for (Probe &probe : probes) {
            probe.acc->trainIterations(bench::kIterations, nullptr,
                                       nullptr, probe.tmpl.get(), rec);
        }
    };
    runAll(nullptr); // warm-up both sides before timing
    runAll(&record);
    // Per-pair ratios: host-frequency drift hits the off and on halves
    // of one back-to-back pair equally, so pairwise ratios are far more
    // stable than a ratio of independent minima; the median then
    // rejects outlier pairs in either direction.
    std::vector<double> overheads;
    for (int rep = 0; rep < 15; ++rep) {
        const auto t0 = clock::now();
        for (int pass = 0; pass < 3; ++pass)
            runAll(nullptr);
        const auto t1 = clock::now();
        for (int pass = 0; pass < 3; ++pass)
            runAll(&record);
        const auto t2 = clock::now();
        const double off_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        const double on_ms =
            std::chrono::duration<double, std::milli>(t2 - t1).count();
        if (off_ms > 0.0)
            overheads.push_back(100.0 * (on_ms - off_ms) / off_ms);
    }
    if (overheads.empty())
        return 0.0;
    std::sort(overheads.begin(), overheads.end());
    return overheads[overheads.size() / 2];
}

/**
 * Warm A/B measurement of span-tracing overhead: run the full (warm)
 * fig19 grid with the flight recorder detached and attached, and
 * report the on-cost percentage as the median of 15 back-to-back
 * off/on pairwise ratios — the same discipline as
 * measureRecordingOverhead. This is the ISSUE 10 acceptance number:
 * a traced sweep must stay within ~3% host-ms/point of an untraced
 * one.
 */
double
measureTracingOverhead(lergan::ExperimentSweep &sweep, int threads)
{
    using namespace lergan;
    using clock = std::chrono::steady_clock;
    const auto savedTelemetry = sweep.telemetry();
    const auto savedRecorder = sweep.recorder();
    sweep.withTelemetry(nullptr);

    RunOptions warm;
    warm.threads = threads;
    warm.iterations = bench::kIterations;
    const auto recorder = std::make_shared<FlightRecorder>();

    sweep.withTracing(nullptr);
    sweep.run(warm); // warm-up: caches hot, rings allocated next run
    sweep.withTracing(recorder);
    sweep.run(warm);

    // Pairwise off/on ratios reject host-frequency drift; the median
    // rejects outlier pairs (see measureRecordingOverhead).
    std::vector<double> overheads;
    for (int rep = 0; rep < 15; ++rep) {
        sweep.withTracing(nullptr);
        const auto t0 = clock::now();
        sweep.run(warm);
        const auto t1 = clock::now();
        sweep.withTracing(recorder);
        sweep.run(warm);
        const auto t2 = clock::now();
        const double off_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        const double on_ms =
            std::chrono::duration<double, std::milli>(t2 - t1).count();
        if (off_ms > 0.0)
            overheads.push_back(100.0 * (on_ms - off_ms) / off_ms);
    }
    sweep.withTelemetry(savedTelemetry);
    sweep.withTracing(savedRecorder);
    if (overheads.empty())
        return 0.0;
    std::sort(overheads.begin(), overheads.end());
    return overheads[overheads.size() / 2];
}

/**
 * Critical-path deep dive (--critpath): record DCGAN under the PRIME
 * baseline and LerGAN-low, print both chains, then run what-if
 * estimates against the low recording. Everything goes to stderr so the
 * goldened table is untouched.
 */
void
critpathReport()
{
    using namespace lergan;
    const GanModel model = makeBenchmark("DCGAN");

    const auto analyze = [&](const char *label,
                             const AcceleratorConfig &config) {
        SimulationSession session(config);
        session.withCriticalPath();
        const TrainingReport report =
            session.run(model, bench::kIterations);
        std::cerr << "critpath: DCGAN/" << label << "\n";
        report.critpath->path.print(std::cerr);
        return report.critpath;
    };
    analyze("prime", AcceleratorConfig::prime());
    const auto low =
        analyze("low", AcceleratorConfig::lerGan(ReplicaDegree::Low));

    const auto demo = [&](const WhatIfTransform &transform) {
        const WhatIfEstimate est = whatIf(*low, transform);
        std::cerr << "  what-if " << transform.description << ": "
                  << psToMs(est.makespan) << " ms  (bounds ["
                  << psToMs(est.lower) << ", " << psToMs(est.upper)
                  << "] ms)\n";
    };
    std::cerr << "what-if (DCGAN/low, recorded "
              << psToMs(low->record.makespan) << " ms):\n";
    demo(identityTransform(*low));
    demo(scaleResourceCategory(*low, "wire", 2.0));
    demo(scaleResourceCategory(*low, "compute", 2.0));
    demo(duplicateResourceCategory(*low, "compute", 2));
    demo(scalePhase(*low, "transfers", 0.5));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;

    Runner runner("fig19",
                  "Fig. 19: LerGAN vs PRIME (speedup, 10-iteration "
                  "average)",
                  "avg 7.46x; MAGAN-MNIST near 1x; 2.1x at equal space");
    runner.args().addOption(
        "trace",
        "write a Chrome trace (task spans + counter tracks + critical "
        "chain) of one DCGAN/low iteration to this file");
    runner.args().addOption(
        "critpath",
        "print DCGAN critical paths (prime vs low), what-if estimates "
        "and a bound-pruned rerun of the grid",
        "", /*is_flag=*/true);
    runner.args().addOption(
        "critpath-baseline",
        "measure critical-path recording overhead (warm A/B replay of "
        "the grid templates) and write it to this baseline file");
    runner.args().addOption(
        "critpath-check",
        "overhead guard: fail when measured recording overhead exceeds "
        "this committed baseline file by more than 4 points");
    runner.args().addOption(
        "tracing-baseline",
        "measure span-tracing overhead (warm A/B rerun of the grid with "
        "the flight recorder off vs on) and write it to this baseline "
        "file");
    runner.args().addOption(
        "tracing-check",
        "overhead guard: fail when measured tracing overhead exceeds "
        "this committed baseline file by more than 2 points (or 3% "
        "absolute, whichever is larger)");
    runner.parse(argc, argv,
                 "Fig. 19: LerGAN vs PRIME speedup reproduction");

    ExperimentSweep sweep;
    for (const GanModel &model : allBenchmarks())
        sweep.addBenchmark(model);
    sweep.addConfig("prime", AcceleratorConfig::prime())
        .addConfig("low", AcceleratorConfig::lerGan(ReplicaDegree::Low))
        .addConfig("middle",
                   AcceleratorConfig::lerGan(ReplicaDegree::Middle))
        .addConfig("high", AcceleratorConfig::lerGan(ReplicaDegree::High));
    // The NS budget depends on the benchmark's own PRIME mapping, so the
    // equal-space points are explicit, one per benchmark.
    for (const GanModel &model : allBenchmarks())
        sweep.addPoint(model, "low-NS", lerGanLowNs(model));

    const auto sweepResults = runner.runSweep(sweep, kIterations);

    if (runner.args().getFlag("self-profile")) {
        // Telemetry-overhead guard: re-run the same grid with the
        // compile cache warm, once without and once with a registry,
        // and report the wall-clock ratio. The telemetry-off run is
        // the product default, so this is the number that must stay
        // within the <2% overhead budget.
        using clock = std::chrono::steady_clock;
        RunOptions warm;
        warm.threads = runner.threads();
        warm.iterations = kIterations;
        sweep.withTelemetry(nullptr);
        const auto t0 = clock::now();
        sweep.run(warm);
        const auto t1 = clock::now();
        sweep.withTelemetry();
        sweep.run(warm);
        const auto t2 = clock::now();
        const double off_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        const double on_ms =
            std::chrono::duration<double, std::milli>(t2 - t1).count();
        std::cerr << "telemetry overhead (warm cache): off " << off_ms
                  << " ms, on " << on_ms << " ms ("
                  << (off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms
                                 : 0.0)
                  << "% on-cost)\n";
        sweep.withTelemetry(runner.obs().registry());
    }

    if (runner.args().getFlag("critpath")) {
        critpathReport();
        // Bound-pruned rerun of the warm grid: the counters show how
        // many comparison points the analytic bracket decided without
        // an event simulation.
        auto registry = std::make_shared<MetricsRegistry>();
        const auto saved = sweep.telemetry();
        sweep.withTelemetry(registry).withBoundPruning();
        RunOptions warm;
        warm.threads = runner.threads();
        warm.iterations = kIterations;
        sweep.run(warm);
        sweep.withBoundPruning(false).withTelemetry(saved);
        std::cerr << "prune: "
                  << registry->counter("critpath.pruned").value()
                  << " pruned, "
                  << registry->counter("critpath.simulated").value()
                  << " simulated of " << sweep.pointCount()
                  << " points\n";
    }

    bool critpathGuardFailed = false;
    if (runner.args().given("critpath-baseline") ||
        runner.args().given("critpath-check")) {
        const double overhead = measureRecordingOverhead(sweep);
        std::cerr << "critpath recording overhead (warm A/B): "
                  << TextTable::num(overhead) << "% on-cost\n";
        if (runner.args().given("critpath-baseline")) {
            const std::string path =
                runner.args().get("critpath-baseline");
            std::ofstream out(path);
            if (!out)
                LERGAN_FATAL("cannot write critpath baseline '", path,
                             "'");
            out << "{\n  \"schema\": \"lergan-critpath-overhead/1\",\n"
                << "  \"recording_overhead_pct\": "
                << TextTable::num(overhead) << "\n}\n";
            std::cerr << "critpath baseline -> " << path << "\n";
        }
        if (runner.args().given("critpath-check")) {
            // The committed number is a same-machine-family reference;
            // the 4-point allowance absorbs run-to-run and host noise
            // while still catching a recording-path regression (which
            // shows up as tens of points).
            const std::string path = runner.args().get("critpath-check");
            std::ifstream in(path);
            if (!in)
                LERGAN_FATAL("--critpath-check: cannot read baseline '",
                             path, "'");
            std::ostringstream buffer;
            buffer << in.rdbuf();
            const std::string key = "\"recording_overhead_pct\": ";
            const std::size_t at = buffer.str().find(key);
            if (at == std::string::npos)
                LERGAN_FATAL("--critpath-check: no recording_overhead_"
                             "pct in '",
                             path, "'");
            const double committed = std::strtod(
                buffer.str().c_str() + at + key.size(), nullptr);
            critpathGuardFailed = overhead > committed + 4.0;
            std::cerr << "critpath guard: measured "
                      << TextTable::num(overhead)
                      << "% vs committed baseline "
                      << TextTable::num(committed) << "% (allowance +4): "
                      << (critpathGuardFailed ? "REGRESSION" : "ok")
                      << "\n";
        }
    }

    bool tracingGuardFailed = false;
    if (runner.args().given("tracing-baseline") ||
        runner.args().given("tracing-check")) {
        const double overhead =
            measureTracingOverhead(sweep, runner.threads());
        std::cerr << "tracing overhead (warm A/B): "
                  << TextTable::num(overhead) << "% on-cost\n";
        if (runner.args().given("tracing-baseline")) {
            const std::string path =
                runner.args().get("tracing-baseline");
            std::ofstream out(path);
            if (!out)
                LERGAN_FATAL("cannot write tracing baseline '", path,
                             "'");
            out << "{\n  \"schema\": \"lergan-tracing-overhead/1\",\n"
                << "  \"tracing_overhead_pct\": "
                << TextTable::num(overhead) << "\n}\n";
            std::cerr << "tracing baseline -> " << path << "\n";
        }
        if (runner.args().given("tracing-check")) {
            // The acceptance budget is 3% median host-ms/point; the
            // committed number is typically ~0, so the guard allows
            // max(3% absolute, committed + 2 points) to absorb host
            // noise while catching a hot-path regression.
            const std::string path = runner.args().get("tracing-check");
            std::ifstream in(path);
            if (!in)
                LERGAN_FATAL("--tracing-check: cannot read baseline '",
                             path, "'");
            std::ostringstream buffer;
            buffer << in.rdbuf();
            const std::string key = "\"tracing_overhead_pct\": ";
            const std::size_t at = buffer.str().find(key);
            if (at == std::string::npos)
                LERGAN_FATAL("--tracing-check: no tracing_overhead_pct "
                             "in '",
                             path, "'");
            const double committed = std::strtod(
                buffer.str().c_str() + at + key.size(), nullptr);
            const double ceiling = std::max(3.0, committed + 2.0);
            tracingGuardFailed = overhead > ceiling;
            std::cerr << "tracing guard: measured "
                      << TextTable::num(overhead)
                      << "% vs committed baseline "
                      << TextTable::num(committed) << "% (ceiling "
                      << TextTable::num(ceiling) << "%): "
                      << (tracingGuardFailed ? "REGRESSION" : "ok")
                      << "\n";
        }
    }

    if (runner.args().given("trace"))
        exportCounterTrace(runner.args().get("trace"),
                           runner.obs().recorder().get());

    std::map<std::pair<std::string, std::string>, double> msPerIter;
    for (const SweepResult &result : sweepResults)
        msPerIter[{result.benchmark, result.configLabel}] =
            result.report.timeMs();

    TextTable table({"benchmark", "low", "middle", "high", "low-NS"});
    Mean m_low, m_mid, m_high, m_ns;
    for (const GanModel &model : allBenchmarks()) {
        const double prime = msPerIter.at({model.name, "prime"});
        const auto speedup = [&](const char *label) {
            return prime / msPerIter.at({model.name, label});
        };
        const double low = speedup("low");
        const double mid = speedup("middle");
        const double high = speedup("high");
        const double ns = speedup("low-NS");
        m_low.add(low);
        m_mid.add(mid);
        m_high.add(high);
        m_ns.add(ns);
        table.addRow({model.name, TextTable::num(low) + "x",
                      TextTable::num(mid) + "x", TextTable::num(high) + "x",
                      TextTable::num(ns) + "x"});
    }
    table.addRow({"MEAN", TextTable::num(m_low.value()) + "x",
                  TextTable::num(m_mid.value()) + "x",
                  TextTable::num(m_high.value()) + "x",
                  TextTable::num(m_ns.value()) + "x"});
    table.print(std::cout);
    std::cout << "\npaper: high-degree average 7.46x; equal-space 2.1x\n";
    const int rc = runner.finish();
    return critpathGuardFailed || tracingGuardFailed ? 1 : rc;
}
