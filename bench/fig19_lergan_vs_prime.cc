/**
 * @file
 * Fig. 19 reproduction: LerGAN speedup over PRIME, across duplication
 * degrees (ten training iterations, averaged — Sec. VI-C).
 *
 * Paper: 7.46x average; DCGAN gains more than 3D-GAN/GPGAN due to its
 * larger kernels; MAGAN-MNIST shows nearly no speedup; with equal space
 * (NS), LerGAN still delivers 2.1x.
 *
 * All 40 grid points plus the per-benchmark normalized-space points run
 * through the parallel sweep engine; results come back benchmark-major,
 * so the table rows read straight out of the result vector.
 */

#include <map>

#include "bench_util.hh"
#include "core/sweep.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Fig. 19: LerGAN vs PRIME (speedup, 10-iteration average)",
           "avg 7.46x; MAGAN-MNIST near 1x; 2.1x at equal space");

    ExperimentSweep sweep;
    for (const GanModel &model : allBenchmarks())
        sweep.addBenchmark(model);
    sweep.addConfig("prime", AcceleratorConfig::prime())
        .addConfig("low", AcceleratorConfig::lerGan(ReplicaDegree::Low))
        .addConfig("middle",
                   AcceleratorConfig::lerGan(ReplicaDegree::Middle))
        .addConfig("high", AcceleratorConfig::lerGan(ReplicaDegree::High));
    // The NS budget depends on the benchmark's own PRIME mapping, so the
    // equal-space points are explicit, one per benchmark.
    for (const GanModel &model : allBenchmarks())
        sweep.addPoint(model, "low-NS", lerGanLowNs(model));

    RunOptions options;
    options.threads = 0; // one worker per hardware thread
    options.iterations = kIterations;
    const auto results = sweep.run(options);

    std::map<std::pair<std::string, std::string>, double> msPerIter;
    for (const SweepResult &result : results)
        msPerIter[{result.benchmark, result.configLabel}] =
            result.report.timeMs();

    TextTable table({"benchmark", "low", "middle", "high", "low-NS"});
    Mean m_low, m_mid, m_high, m_ns;
    for (const GanModel &model : allBenchmarks()) {
        const double prime = msPerIter.at({model.name, "prime"});
        const auto speedup = [&](const char *label) {
            return prime / msPerIter.at({model.name, label});
        };
        const double low = speedup("low");
        const double mid = speedup("middle");
        const double high = speedup("high");
        const double ns = speedup("low-NS");
        m_low.add(low);
        m_mid.add(mid);
        m_high.add(high);
        m_ns.add(ns);
        table.addRow({model.name, TextTable::num(low) + "x",
                      TextTable::num(mid) + "x", TextTable::num(high) + "x",
                      TextTable::num(ns) + "x"});
    }
    table.addRow({"MEAN", TextTable::num(m_low.value()) + "x",
                  TextTable::num(m_mid.value()) + "x",
                  TextTable::num(m_high.value()) + "x",
                  TextTable::num(m_ns.value()) + "x"});
    table.print(std::cout);
    std::cout << "\npaper: high-degree average 7.46x; equal-space 2.1x\n";
    return 0;
}
