/**
 * @file
 * Fig. 19 reproduction: LerGAN speedup over PRIME, across duplication
 * degrees (ten training iterations, averaged — Sec. VI-C).
 *
 * Paper: 7.46x average; DCGAN gains more than 3D-GAN/GPGAN due to its
 * larger kernels; MAGAN-MNIST shows nearly no speedup; with equal space
 * (NS), LerGAN still delivers 2.1x.
 *
 * All 40 grid points plus the per-benchmark normalized-space points run
 * through the parallel sweep engine; results come back benchmark-major,
 * so the table rows read straight out of the result vector.
 *
 * This is also the repo's host-performance reference workload: the
 * committed BENCH_fig19.json trajectory is regenerated from this binary
 * via scripts/bench_baseline.sh (--bench-json), and scripts/check.sh
 * guards it (--bench-check).
 */

#include <chrono>
#include <fstream>
#include <map>

#include "runner.hh"
#include "sim/trace_tracks.hh"

namespace {

/**
 * Trace one LerGAN-low DCGAN iteration with derived counter tracks —
 * transfer occupancy and the busiest wire's busy curve next to the task
 * spans — and export it for Perfetto (--trace).
 */
void
exportCounterTrace(const std::string &path)
{
    using namespace lergan;
    const GanModel model = makeBenchmark("DCGAN");
    LerGanAccelerator accelerator(
        model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
    Tracer tracer;
    accelerator.trainIterationTraced(tracer);
    const std::vector<std::string> names = accelerator.resourceNames();
    addSpanOccupancyTrack(tracer, "xfer:", "ic.xfer.active");
    const std::size_t wire = busiestLane(tracer, names, ".wire");
    if (wire != SIZE_MAX)
        addLaneOccupancyTrack(tracer, wire, names[wire] + ".busy");
    std::ofstream out(path);
    if (!out)
        LERGAN_FATAL("cannot write trace file '", path, "'");
    tracer.exportChromeTrace(out, names);
    std::cerr << "trace: " << tracer.events().size() << " spans, "
              << tracer.counterSamples().size() << " counter samples -> "
              << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;

    Runner runner("fig19",
                  "Fig. 19: LerGAN vs PRIME (speedup, 10-iteration "
                  "average)",
                  "avg 7.46x; MAGAN-MNIST near 1x; 2.1x at equal space");
    runner.args().addOption(
        "trace",
        "write a Chrome trace (task spans + counter tracks) of one "
        "DCGAN/low iteration to this file");
    runner.parse(argc, argv,
                 "Fig. 19: LerGAN vs PRIME speedup reproduction");

    ExperimentSweep sweep;
    for (const GanModel &model : allBenchmarks())
        sweep.addBenchmark(model);
    sweep.addConfig("prime", AcceleratorConfig::prime())
        .addConfig("low", AcceleratorConfig::lerGan(ReplicaDegree::Low))
        .addConfig("middle",
                   AcceleratorConfig::lerGan(ReplicaDegree::Middle))
        .addConfig("high", AcceleratorConfig::lerGan(ReplicaDegree::High));
    // The NS budget depends on the benchmark's own PRIME mapping, so the
    // equal-space points are explicit, one per benchmark.
    for (const GanModel &model : allBenchmarks())
        sweep.addPoint(model, "low-NS", lerGanLowNs(model));

    const auto sweepResults = runner.runSweep(sweep, kIterations);

    if (runner.args().getFlag("self-profile")) {
        // Telemetry-overhead guard: re-run the same grid with the
        // compile cache warm, once without and once with a registry,
        // and report the wall-clock ratio. The telemetry-off run is
        // the product default, so this is the number that must stay
        // within the <2% overhead budget.
        using clock = std::chrono::steady_clock;
        RunOptions warm;
        warm.threads = runner.threads();
        warm.iterations = kIterations;
        sweep.withTelemetry(nullptr);
        const auto t0 = clock::now();
        sweep.run(warm);
        const auto t1 = clock::now();
        sweep.withTelemetry();
        sweep.run(warm);
        const auto t2 = clock::now();
        const double off_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        const double on_ms =
            std::chrono::duration<double, std::milli>(t2 - t1).count();
        std::cerr << "telemetry overhead (warm cache): off " << off_ms
                  << " ms, on " << on_ms << " ms ("
                  << (off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms
                                 : 0.0)
                  << "% on-cost)\n";
        sweep.withTelemetry(runner.obs().registry());
    }

    if (runner.args().given("trace"))
        exportCounterTrace(runner.args().get("trace"));

    std::map<std::pair<std::string, std::string>, double> msPerIter;
    for (const SweepResult &result : sweepResults)
        msPerIter[{result.benchmark, result.configLabel}] =
            result.report.timeMs();

    TextTable table({"benchmark", "low", "middle", "high", "low-NS"});
    Mean m_low, m_mid, m_high, m_ns;
    for (const GanModel &model : allBenchmarks()) {
        const double prime = msPerIter.at({model.name, "prime"});
        const auto speedup = [&](const char *label) {
            return prime / msPerIter.at({model.name, label});
        };
        const double low = speedup("low");
        const double mid = speedup("middle");
        const double high = speedup("high");
        const double ns = speedup("low-NS");
        m_low.add(low);
        m_mid.add(mid);
        m_high.add(high);
        m_ns.add(ns);
        table.addRow({model.name, TextTable::num(low) + "x",
                      TextTable::num(mid) + "x", TextTable::num(high) + "x",
                      TextTable::num(ns) + "x"});
    }
    table.addRow({"MEAN", TextTable::num(m_low.value()) + "x",
                  TextTable::num(m_mid.value()) + "x",
                  TextTable::num(m_high.value()) + "x",
                  TextTable::num(m_ns.value()) + "x"});
    table.print(std::cout);
    std::cout << "\npaper: high-degree average 7.46x; equal-space 2.1x\n";
    return runner.finish();
}
