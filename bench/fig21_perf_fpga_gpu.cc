/**
 * @file
 * Fig. 21 reproduction: LerGAN performance against the FPGA-based GAN
 * accelerator and the GPU platform.
 *
 * Paper: 47.2x over FPGA-GAN and 21.42x over the GPU on average;
 * DiscoGAN gains more (more T-CONVs, bigger nets); MAGAN-MNIST gains
 * least.
 */

#include <sstream>

#include "runner.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig21", "Fig. 21: LerGAN vs FPGA-GAN and GPU (speedup)",
                  "avg 47.2x over FPGA-GAN, 21.42x over GPU");
    runner.parse(argc, argv, "Fig. 21 reproduction");

    const std::string text =
        runner.measure(allBenchmarks().size() * 3, [&] {
            TextTable table({"benchmark", "LerGAN ms/iter", "vs FPGA-GAN",
                             "vs GPU"});
            Mean m_fpga, m_gpu;
            for (const GanModel &model : allBenchmarks()) {
                const double lergan =
                    simulateTraining(
                        model, AcceleratorConfig::lerGan(ReplicaDegree::High),
                        kIterations)
                        .timeMs();
                const double fpga = simulateFpgaGan(model).timeMs();
                const double gpu = simulateGpu(model).timeMs();
                m_fpga.add(fpga / lergan);
                m_gpu.add(gpu / lergan);
                table.addRow({model.name, TextTable::num(lergan, 3),
                              TextTable::num(fpga / lergan) + "x",
                              TextTable::num(gpu / lergan) + "x"});
            }
            table.addRow({"MEAN (paper 47.2 / 21.42)", "",
                          TextTable::num(m_fpga.value()) + "x",
                          TextTable::num(m_gpu.value()) + "x"});
            std::ostringstream out;
            table.print(out);
            return out.str();
        });
    std::cout << text;
    return runner.finish();
}
