/**
 * @file
 * Robustness comparison: LerGAN vs PRIME under rising ReRAM fault
 * rates (seeded Monte Carlo, faults/montecarlo.hh).
 *
 * The papers LerGAN builds on assume pristine crossbars; real ReRAM
 * suffers stuck-at cells, bitline shorts and peripheral tile failures.
 * This bench sweeps a rising fault rate and reports, per configuration,
 * the latency/energy distribution across seeded fault-map realizations,
 * the capacity lost, and how many realizations fail outright (a bank
 * with no surviving tiles cannot host its phase). Every successful
 * trial is audited: a degraded mapping must never place or schedule
 * work on a killed tile.
 *
 * Deterministic by construction: trial seeds are mixed from the base
 * seed, so the table is byte-identical across runs and worker counts
 * (the golden regression diffs it at --threads 1 and 4).
 *
 * Usage:
 *   ./build/bench/fault_sweep [--trials 32] [--threads 0] [--golden]
 */

#include <chrono>

#include "bench_util.hh"
#include "common/args.hh"
#include "faults/montecarlo.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;

    ArgParser args;
    args.addOption("trials", "seeded fault-map realizations per point",
                   "32");
    args.addOption("threads",
                   "sweep workers (0 = one per hardware thread)", "0");
    args.addOption("golden", "omit host-dependent output (golden diffs)",
                   "", /*is_flag=*/true);
    Observability::addOptions(args);
    args.parse(argc, argv,
               "LerGAN vs PRIME robustness under rising fault rates");
    const bool golden = args.getFlag("golden");
    Observability obs(args);

    banner("Fault sweep: LerGAN vs PRIME under rising ReRAM fault rates",
           "zero-free mappings keep their edge while faults erode both");

    const GanModel model = makeBenchmark("DCGAN");
    // The headline axis: peripheral tile-kill rate, with proportional
    // stuck-at cell/column rates riding along at a tenth of it.
    const double rates[] = {0.0, 0.02, 0.05, 0.1, 0.2};
    const auto faulty = [](AcceleratorConfig config, double rate) {
        config.faults.tileKillRate = rate;
        config.faults.cellStuckRate = rate / 10.0;
        config.faults.columnStuckRate = rate / 10.0;
        return config;
    };

    TextTable table({"config", "kill rate", "ms mean", "ms p95",
                     "mJ mean", "mJ p95", "cap lost", "failed"});
    const auto start = std::chrono::steady_clock::now();
    int trials_total = 0;
    bool audits_ok = true;
    for (double rate : rates) {
        FaultMonteCarlo experiment;
        experiment.addBenchmark(model)
            .addConfig("lergan-low",
                       faulty(AcceleratorConfig::lerGan(ReplicaDegree::Low),
                              rate))
            .addConfig("prime", faulty(AcceleratorConfig::prime(), rate));

        MonteCarloOptions options;
        options.trials = args.getInt("trials");
        options.threads = args.getInt("threads");
        options.baseSeed = 1905; // same trial seeds for every rate
        options.audit = AuditOptions::full();
        options.onProgress = obs.progress();
        options.telemetry = obs.registry();
        const std::vector<SweepResult> results = experiment.run(options);

        for (const SweepResult &result : results) {
            const FaultSweepStats &stats = result.faults;
            trials_total += stats.trials;
            audits_ok = audits_ok && (!result.audit.ran ||
                                      result.audit.ok());
            if (result.failed) {
                table.addRow({result.configLabel, TextTable::num(rate),
                              "-", "-", "-", "-", "-",
                              std::to_string(stats.failedTrials)});
                continue;
            }
            table.addRow(
                {result.configLabel, TextTable::num(rate),
                 TextTable::num(stats.msPerIteration.mean, 3),
                 TextTable::num(stats.msPerIteration.p95, 3),
                 TextTable::num(stats.mjPerIteration.mean, 3),
                 TextTable::num(stats.mjPerIteration.p95, 3),
                 TextTable::num(stats.capacityLost.mean * 100.0) + "%",
                 std::to_string(stats.failedTrials)});
        }
    }
    table.print(std::cout);
    std::cout << "\naudit: "
              << (audits_ok ? "every successful trial passed"
                            : "FAILURES (simulator bug)")
              << "\n";
    if (!golden) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start);
        std::cout << "swept " << trials_total << " trials in "
                  << elapsed.count() << " ms\n";
    }
    obs.finish();
    return audits_ok ? 0 : 1;
}
