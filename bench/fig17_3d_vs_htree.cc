/**
 * @file
 * Fig. 17 reproduction: full-training performance of the 3D connection
 * versus the H-tree, all configurations using ZFDR.
 *
 * Paper: with H-tree the ZFDR speedup "almost disappears" (transfers
 * dominate); the 3D connection makes it visible, and duplication only
 * pays off on the 3D connection.
 */

#include <sstream>

#include "runner.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig17", "Fig. 17: 3D connection vs H-tree (all with ZFDR)",
                  "speedups normalized to 2D+ZFDR(nodup); duplication helps "
                  "little on H-tree, a lot on 3D");
    runner.parse(argc, argv, "Fig. 17 reproduction");

    const std::string text =
        runner.measure(allBenchmarks().size() * 4, [&] {
            TextTable table({"benchmark", "2D nodup (base)", "2D dup",
                             "3D nodup", "3D dup"});
            Mean m2dup, m3nodup, m3dup;
            for (const GanModel &model : allBenchmarks()) {
                const double base =
                    simulateTraining(model,
                                     makeConfig(Connection::HTree,
                                                ReshapeMode::Zfdr, false))
                        .timeMs();
                const double dup_2d =
                    simulateTraining(model,
                                     makeConfig(Connection::HTree,
                                                ReshapeMode::Zfdr, true,
                                                ReplicaDegree::High))
                        .timeMs();
                const double nodup_3d =
                    simulateTraining(model,
                                     makeConfig(Connection::ThreeD,
                                                ReshapeMode::Zfdr, false))
                        .timeMs();
                const double dup_3d =
                    simulateTraining(model,
                                     makeConfig(Connection::ThreeD,
                                                ReshapeMode::Zfdr, true,
                                                ReplicaDegree::High))
                        .timeMs();
                m2dup.add(base / dup_2d);
                m3nodup.add(base / nodup_3d);
                m3dup.add(base / dup_3d);
                table.addRow({model.name, "1.00x",
                              TextTable::num(base / dup_2d) + "x",
                              TextTable::num(base / nodup_3d) + "x",
                              TextTable::num(base / dup_3d) + "x"});
            }
            table.addRow({"MEAN", "1.00x",
                          TextTable::num(m2dup.value()) + "x",
                          TextTable::num(m3nodup.value()) + "x",
                          TextTable::num(m3dup.value()) + "x"});
            std::ostringstream out;
            table.print(out);
            return out.str();
        });
    std::cout << text;
    return runner.finish();
}
