/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Each bench regenerates one table or figure of the paper's Sec. VI:
 * it simulates the configurations that figure compares and prints the
 * same rows/series. EXPERIMENTS.md records paper-vs-measured values.
 */

#ifndef LERGAN_BENCH_BENCH_UTIL_HH
#define LERGAN_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "baselines/fpga_gan.hh"
#include "baselines/gpu.hh"
#include "baselines/prime.hh"
#include "common/table.hh"
#include "core/api.hh"

namespace lergan {
namespace bench {

/** The evaluation uses ten timed iterations (Sec. VI-C). */
constexpr int kIterations = 10;

/** Configuration with every axis explicit. */
inline AcceleratorConfig
makeConfig(Connection conn, ReshapeMode reshape, bool duplicate,
           ReplicaDegree degree = ReplicaDegree::Low)
{
    AcceleratorConfig config;
    config.connection = conn;
    config.reshape = reshape;
    config.duplicate = duplicate;
    config.degree = degree;
    return config;
}

/** LerGAN-low granted only the PRIME baseline's CArray space. */
inline AcceleratorConfig
lerGanLowNs(const GanModel &model)
{
    const CompiledGan prime_map =
        compileGan(model, AcceleratorConfig::prime());
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.normalizedSpace = true;
    config.spaceBudgetCrossbars = prime_map.crossbarsUsed;
    return config;
}

/** PRIME granted the same CArray space as a LerGAN mapping. */
inline AcceleratorConfig
primeNs(const GanModel &model, ReplicaDegree lergan_degree)
{
    const CompiledGan lergan_map =
        compileGan(model, AcceleratorConfig::lerGan(lergan_degree));
    AcceleratorConfig config = AcceleratorConfig::prime();
    config.normalizedSpace = true;
    config.spaceBudgetCrossbars = lergan_map.crossbarsUsed;
    return config;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_claim)
{
    std::cout << "=== " << what << " ===\n";
    std::cout << "paper: " << paper_claim << "\n\n";
}

/** Geometric-style arithmetic mean helper used in the summary rows. */
class Mean
{
  public:
    void add(double value)
    {
        sum_ += value;
        ++count_;
    }
    double value() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  private:
    double sum_ = 0.0;
    int count_ = 0;
};

} // namespace bench
} // namespace lergan

#endif // LERGAN_BENCH_BENCH_UTIL_HH
