/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Each bench regenerates one table or figure of the paper's Sec. VI:
 * it simulates the configurations that figure compares and prints the
 * same rows/series. EXPERIMENTS.md records paper-vs-measured values.
 */

#ifndef LERGAN_BENCH_BENCH_UTIL_HH
#define LERGAN_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fpga_gan.hh"
#include "baselines/gpu.hh"
#include "baselines/prime.hh"
#include "common/args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/anomaly.hh"
#include "core/api.hh"
#include "exec/engine.hh"
#include "telemetry/profiler.hh"
#include "telemetry/tracing.hh"

namespace lergan {
namespace bench {

/** The evaluation uses ten timed iterations (Sec. VI-C). */
constexpr int kIterations = 10;

/** Configuration with every axis explicit. */
inline AcceleratorConfig
makeConfig(Connection conn, ReshapeMode reshape, bool duplicate,
           ReplicaDegree degree = ReplicaDegree::Low)
{
    AcceleratorConfig config;
    config.connection = conn;
    config.reshape = reshape;
    config.duplicate = duplicate;
    config.degree = degree;
    return config;
}

/** LerGAN-low granted only the PRIME baseline's CArray space. */
inline AcceleratorConfig
lerGanLowNs(const GanModel &model)
{
    const CompiledGan prime_map =
        compileGan(model, AcceleratorConfig::prime());
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    config.normalizedSpace = true;
    config.spaceBudgetCrossbars = prime_map.crossbarsUsed;
    return config;
}

/** PRIME granted the same CArray space as a LerGAN mapping. */
inline AcceleratorConfig
primeNs(const GanModel &model, ReplicaDegree lergan_degree)
{
    const CompiledGan lergan_map =
        compileGan(model, AcceleratorConfig::lerGan(lergan_degree));
    AcceleratorConfig config = AcceleratorConfig::prime();
    config.normalizedSpace = true;
    config.spaceBudgetCrossbars = lergan_map.crossbarsUsed;
    return config;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_claim)
{
    std::cout << "=== " << what << " ===\n";
    std::cout << "paper: " << paper_claim << "\n\n";
}

/**
 * Shared observability plumbing of the bench binaries: the --progress,
 * --metrics, --metrics-format and --self-profile options, the metrics
 * registry they populate, and the end-of-run export. Everything is off
 * by default, so the figure tables on stdout (the golden-diffed output)
 * are untouched unless a flag asks for more.
 *
 * Usage:
 *   ArgParser args;
 *   Observability::addOptions(args);
 *   args.parse(argc, argv, "...");
 *   Observability obs(args);
 *   options.onProgress = obs.progress();   // sweeps
 *   sweep.withTelemetry(obs.registry());   // when obs.registry()
 *   ...
 *   obs.finish();                          // writes --metrics file
 */
class Observability
{
  public:
    /** Declare the shared options on @p args (call before parse). */
    static void
    addOptions(ArgParser &args)
    {
        args.addOption("progress", "report per-point progress on stderr",
                       "", /*is_flag=*/true);
        args.addOption("metrics",
                       "write a metrics snapshot to this file (- for "
                       "stdout)");
        args.addOption("metrics-format",
                       "snapshot format: prom, json or csv", "prom");
        args.addOption("self-profile",
                       "profile the simulator's own host phases "
                       "(reported on stderr)",
                       "", /*is_flag=*/true);
        args.addOption("trace-spans",
                       "record lifecycle spans and write the NDJSON "
                       "span event log to this file (- for stdout)");
        args.addOption("trace-anomalies",
                       "record lifecycle spans and report slow/failed "
                       "points on stderr (value = host-ms quantile)",
                       "0.9");
        args.addOption("trace-capacity",
                       "flight-recorder ring capacity per worker lane "
                       "(spans kept for post-mortem)",
                       "4096");
    }

    explicit Observability(const ArgParser &args)
        : metricsPath_(args.get("metrics")),
          metricsFormat_(args.get("metrics-format")),
          spansPath_(args.get("trace-spans")),
          progressWanted_(args.getFlag("progress")),
          selfProfile_(args.getFlag("self-profile")),
          anomaliesWanted_(args.given("trace-anomalies"))
    {
        if (!metricsPath_.empty())
            registry_ = std::make_shared<MetricsRegistry>();
        if (!spansPath_.empty() || anomaliesWanted_) {
            const int capacity = args.getInt("trace-capacity");
            recorder_ = std::make_shared<FlightRecorder>(
                capacity > 0 ? static_cast<std::size_t>(capacity)
                             : FlightRecorder::kDefaultCapacity);
        }
        if (anomaliesWanted_) {
            anomalyOptions_.quantile =
                std::atof(args.get("trace-anomalies").c_str());
            LERGAN_ASSERT(anomalyOptions_.quantile > 0.0 &&
                              anomalyOptions_.quantile <= 1.0,
                          "--trace-anomalies quantile must be in (0,1]");
        }
        if (selfProfile_) {
            HostProfiler::global().reset();
            HostProfiler::global().enable();
        }
    }

    /** The registry to attach via withTelemetry() (null = no --metrics). */
    const std::shared_ptr<MetricsRegistry> &registry() const
    {
        return registry_;
    }

    /**
     * The flight recorder to attach via withTracing() (null unless
     * --trace-spans or --trace-anomalies was given).
     */
    const std::shared_ptr<FlightRecorder> &recorder() const
    {
        return recorder_;
    }

    /** True when --trace-anomalies asked for the slow-point report
     *  (the sweep then needs RunOptions::pointTelemetry). */
    bool anomaliesWanted() const { return anomaliesWanted_; }

    /**
     * Post-run reporting of a traced sweep: the --trace-anomalies
     * report on stderr. Call once, with the results of the sweep the
     * recorder observed. No-op when tracing is off.
     */
    void
    reportSweep(const std::vector<SweepResult> &results)
    {
        if (recorder_ && anomaliesWanted_)
            writeAnomalyReport(std::cerr, results, *recorder_,
                               anomalyOptions_);
    }

    /**
     * Progress hook for RunOptions::onProgress (null unless --progress).
     * The engine serializes invocations; "\r" keeps it to one line.
     */
    ProgressFn
    progress() const
    {
        if (!progressWanted_)
            return {};
        return [](std::size_t done, std::size_t total) {
            std::cerr << '\r' << "[" << done << '/' << total << "]"
                      << (done == total ? "\n" : "") << std::flush;
        };
    }

    /**
     * Export everything the flags asked for: the --metrics snapshot
     * (host-profile gauges folded in first), the --self-profile table
     * on stderr and — last, so the export's own span makes it into the
     * log — the --trace-spans NDJSON event log.
     */
    void
    finish()
    {
        if (recorder_) {
            // The export work is a traced unit too: one root "export"
            // span on the main ring, closed before the span log is
            // written out.
            MainLaneBinding bind(*recorder_);
            Span span(recorder_->allocateTraceId(), "export");
            exportMetrics();
        } else {
            exportMetrics();
        }
        exportSpans();
    }

  private:
    void
    exportMetrics()
    {
        if (selfProfile_) {
            std::cerr << "host profile:\n";
            HostProfiler::global().print(std::cerr);
        }
        if (!registry_)
            return;
        if (HostProfiler::global().enabled())
            HostProfiler::global().exportInto(*registry_);
        const MetricsSnapshot snapshot = registry_->snapshot();
        const auto write = [&](std::ostream &os) {
            if (metricsFormat_ == "json")
                snapshot.writeJson(os);
            else if (metricsFormat_ == "csv")
                snapshot.writeCsv(os);
            else if (metricsFormat_ == "prom")
                snapshot.writePrometheus(os);
            else
                LERGAN_FATAL("unknown --metrics-format '", metricsFormat_,
                             "' (expected prom, json or csv)");
        };
        if (metricsPath_ == "-") {
            write(std::cout);
            return;
        }
        std::ofstream out(metricsPath_);
        if (!out)
            LERGAN_FATAL("cannot write metrics file '", metricsPath_,
                         "'");
        write(out);
    }

    void
    exportSpans()
    {
        if (!recorder_ || spansPath_.empty())
            return;
        const std::vector<SpanEvent> events = recorder_->collect();
        if (spansPath_ == "-") {
            writeSpanNdjson(std::cout, events);
            return;
        }
        std::ofstream out(spansPath_);
        if (!out)
            LERGAN_FATAL("cannot write span log '", spansPath_, "'");
        writeSpanNdjson(out, events);
        if (recorder_->dropped() > 0) {
            std::cerr << "trace-spans: " << recorder_->dropped()
                      << " spans overwritten (ring capacity "
                      << recorder_->laneCapacity()
                      << "/lane) — oldest traces are partial\n";
        }
    }

    std::string metricsPath_;
    std::string metricsFormat_;
    std::string spansPath_;
    bool progressWanted_ = false;
    bool selfProfile_ = false;
    bool anomaliesWanted_ = false;
    AnomalyOptions anomalyOptions_;
    std::shared_ptr<MetricsRegistry> registry_;
    std::shared_ptr<FlightRecorder> recorder_;
};

/**
 * Wall-clock stopwatch for bench-side performance measurement.
 *
 * Times host phases of a bench run (the simulator's own speed, never
 * the simulated hardware's). Used by bench::Runner for the --bench-json
 * measurements; standalone benches may use it directly.
 */
class PerfTimer
{
  public:
    PerfTimer() : start_(clock::now()) {}

    /** Restart the stopwatch. */
    void restart() { start_ = clock::now(); }

    /** Milliseconds elapsed since construction or the last restart(). */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(clock::now() -
                                                         start_)
            .count();
    }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/** Geometric-style arithmetic mean helper used in the summary rows. */
class Mean
{
  public:
    void add(double value)
    {
        sum_ += value;
        ++count_;
    }
    double value() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  private:
    double sum_ = 0.0;
    int count_ = 0;
};

} // namespace bench
} // namespace lergan

#endif // LERGAN_BENCH_BENCH_UTIL_HH
