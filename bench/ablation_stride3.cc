/**
 * @file
 * Ablation: ZFDR on future large-stride GANs (paper Sec. IV-A claims
 * ZFDR is "capable of handling both existing GANs and future GANs with
 * larger stride (e.g. stride of 3)").
 *
 * Compares a synthetic stride-3 GAN against a like-for-like stride-2
 * control: stride 3 inserts two zeros per element, so the zero ratio is
 * worse and ZFDR's compute/storage savings must grow, not break.
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Ablation: ZFDR on a stride-3 GAN",
           "ZFDR stays zero-free and its benefit grows with the stride");

    TextTable table({"metric", "FutureGAN-s2", "FutureGAN-s3"});
    const GanModel s2 = futureGanStride2Control();
    const GanModel s3 = futureGanStride3();

    auto for_both = [&](const char *name, auto fn) {
        table.addRow({name, fn(s2), fn(s3)});
    };

    for_both("G.fwd multiply efficiency w/o ZFDR", [](const GanModel &m) {
        return TextTable::num(
                   100.0 * analyzePhase(m, Phase::GFwd).multEfficiency(),
                   1) +
               "%";
    });
    for_both("input storage blowup w/o ZFDR", [](const GanModel &m) {
        return TextTable::num(analyzeModel(m).storageBlowup()) + "x";
    });
    for_both("LerGAN-high ms/iter", [](const GanModel &m) {
        return TextTable::num(
            simulateTraining(m, AcceleratorConfig::lerGan(
                                    ReplicaDegree::High))
                .timeMs(),
            2);
    });
    for_both("speedup over PRIME", [](const GanModel &m) {
        const double prime =
            simulateTraining(m, AcceleratorConfig::prime()).timeMs();
        const double lergan =
            simulateTraining(m, AcceleratorConfig::lerGan(
                                    ReplicaDegree::High))
                .timeMs();
        return TextTable::num(prime / lergan) + "x";
    });
    for_both("energy saving over PRIME", [](const GanModel &m) {
        const double prime = simulateTraining(m, AcceleratorConfig::prime())
                                 .totalEnergyPj();
        const double lergan =
            simulateTraining(m, AcceleratorConfig::lerGan(
                                    ReplicaDegree::High))
                .totalEnergyPj();
        return TextTable::num(prime / lergan) + "x";
    });
    table.print(std::cout);

    // The coverage invariant must hold for every stride-3 sparse op.
    std::uint64_t checked = 0;
    for (Phase phase : kAllPhases) {
        for (const LayerOp &op : opsForPhase(s3, phase)) {
            if (!op.zfdrApplicable())
                continue;
            const ReshapeAnalysis analysis = analyzeReshape(op);
            if (analysis.corner.servedPositions +
                    analysis.edge.servedPositions +
                    analysis.inside.servedPositions !=
                analysis.totalPositions) {
                std::cout << "COVERAGE VIOLATION in " << op.label << "\n";
                return 1;
            }
            ++checked;
        }
    }
    std::cout << "\ncoverage invariant verified on " << checked
              << " stride-3 sparse ops\n";
    return 0;
}
