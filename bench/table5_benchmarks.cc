/**
 * @file
 * Table V reproduction: the eight GAN benchmark topologies, as parsed and
 * shape-resolved by the library — plus a wall-clock measurement of the
 * parallel sweep engine on the Table-V grid (all benchmarks x
 * {LerGAN-low, PRIME}), verifying that 1-worker and 4-worker runs
 * export byte-identical JSON.
 */

#include <chrono>
#include <sstream>

#include "core/sweep_io.hh"
#include "exec/thread_pool.hh"
#include "runner.hh"

namespace {

/** Fresh Table-V grid (fresh = cold compile cache). */
lergan::ExperimentSweep
tableVGrid()
{
    using namespace lergan;
    ExperimentSweep sweep;
    for (const GanModel &model : allBenchmarks())
        sweep.addBenchmark(model);
    sweep.addConfig("lergan-low",
                    AcceleratorConfig::lerGan(ReplicaDegree::Low));
    sweep.addConfig("prime", AcceleratorConfig::prime());
    return sweep;
}

/** Run the grid on @p threads workers and return (results, seconds). */
std::pair<std::vector<lergan::SweepResult>, double>
timedRun(const lergan::ExperimentSweep &sweep, int threads)
{
    lergan::RunOptions options;
    options.threads = threads;
    options.iterations = lergan::bench::kIterations;
    const auto start = std::chrono::steady_clock::now();
    auto results = sweep.run(options);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return {std::move(results), elapsed.count()};
}

/**
 * @param golden mask wall-clock, speedup and host-thread values (they
 * differ run to run) so the output byte-diffs cleanly against a
 * committed snapshot. The byte-identity verdict lines stay live.
 */
std::string
sweepEngineSection(bool golden)
{
    using namespace lergan;
    using lergan::bench::kIterations;

    std::ostringstream out;
    out << "\nParallel sweep engine on the Table-V grid ("
        << tableVGrid().pointCount() << " points x " << kIterations
        << " iterations):\n";

    const auto cacheState = [](const ExperimentSweep &sweep) {
        return std::to_string(sweep.cache().hits()) + " hits / " +
               std::to_string(sweep.cache().misses()) + " misses";
    };

    const ExperimentSweep seqSweep = tableVGrid();
    const auto [seqResults, seqSeconds] = timedRun(seqSweep, 1);
    const std::string seqCache = cacheState(seqSweep);
    const ExperimentSweep parSweep = tableVGrid();
    const auto [parResults, parSeconds] = timedRun(parSweep, 4);
    const std::string parCache = cacheState(parSweep);
    // Warm rerun: every compile is a cache hit, simulation only.
    const auto [warmResults, warmSeconds] = timedRun(seqSweep, 1);
    const std::string warmCache = cacheState(seqSweep);

    std::ostringstream seqJson, parJson, warmJson;
    writeSweepJson(seqJson, seqResults);
    writeSweepJson(parJson, parResults);
    writeSweepJson(warmJson, warmResults);

    TextTable table({"run", "workers", "wall-clock ms", "speedup",
                     "compile cache"});
    const auto row = [&](const char *name, int workers, double seconds,
                         const std::string &cache) {
        table.addRow({name, std::to_string(workers),
                      golden ? "-" : TextTable::num(seconds * 1e3, 1),
                      golden ? "-"
                             : TextTable::num(seqSeconds / seconds, 2) +
                                   "x",
                      cache});
    };
    row("sequential", 1, seqSeconds, seqCache);
    row("parallel", 4, parSeconds, parCache);
    row("warm rerun", 1, warmSeconds, warmCache);
    table.print(out);

    out << "1-worker vs 4-worker JSON byte-identical: "
        << (seqJson.str() == parJson.str() ? "yes" : "NO")
        << "; warm rerun byte-identical: "
        << (seqJson.str() == warmJson.str() ? "yes" : "NO")
        << "\n(speedup scales with the host's cores; this run saw "
        << (golden ? std::string("-")
                   : std::to_string(defaultThreadCount()))
        << " hardware thread(s))\n";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lergan;
    bench::Runner runner("table5", "Table V: GAN benchmark topologies",
                         "8 GANs; f/c/t layer chains with kernel+stride "
                         "specs");
    runner.args().addOption("golden",
                            "mask host-dependent values for golden "
                            "snapshots",
                            "", /*is_flag=*/true);
    runner.parse(argc, argv, "Table V benchmark topology reproduction");

    TextTable table({"name", "G layers", "D layers", "item", "dims",
                     "G weights", "D weights", "G tconv", "G conv"});
    for (const GanModel &model : allBenchmarks()) {
        std::uint64_t g_weights = 0, d_weights = 0;
        int tconv = 0, conv = 0;
        for (const LayerSpec &l : model.generator) {
            g_weights += l.numWeights();
            tconv += l.kind == LayerKind::TConv;
            conv += l.kind == LayerKind::Conv;
        }
        for (const LayerSpec &l : model.discriminator)
            d_weights += l.numWeights();
        table.addRow({model.name, std::to_string(model.generator.size()),
                      std::to_string(model.discriminator.size()),
                      std::to_string(model.itemSize),
                      std::to_string(model.spatialDims),
                      std::to_string(g_weights), std::to_string(d_weights),
                      std::to_string(tconv), std::to_string(conv)});
    }
    table.print(std::cout);

    std::cout << "\nPer-layer shapes:\n";
    for (const GanModel &model : allBenchmarks()) {
        std::cout << model.name << "\n";
        for (const auto *net : {&model.generator, &model.discriminator}) {
            for (const LayerSpec &l : *net) {
                std::cout << "  " << l.name << ": " << l.inChannels << "x"
                          << l.inSize << "^" << l.spatialDims << " -> "
                          << l.outChannels << "x" << l.outSize << "^"
                          << l.spatialDims;
                if (l.kind != LayerKind::FullyConnected) {
                    std::cout << "  k" << l.kernel << " s" << l.stride
                              << " p" << l.pad << "/" << l.padHi << " r"
                              << l.rem;
                }
                std::cout << "\n";
            }
        }
    }

    std::cout << runner.measure(
        tableVGrid().pointCount() * 3,
        [&] { return sweepEngineSection(runner.args().getFlag("golden")); });
    return runner.finish();
}
