/**
 * @file
 * Table V reproduction: the eight GAN benchmark topologies, as parsed and
 * shape-resolved by the library.
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    bench::banner("Table V: GAN benchmark topologies",
                  "8 GANs; f/c/t layer chains with kernel+stride specs");

    TextTable table({"name", "G layers", "D layers", "item", "dims",
                     "G weights", "D weights", "G tconv", "G conv"});
    for (const GanModel &model : allBenchmarks()) {
        std::uint64_t g_weights = 0, d_weights = 0;
        int tconv = 0, conv = 0;
        for (const LayerSpec &l : model.generator) {
            g_weights += l.numWeights();
            tconv += l.kind == LayerKind::TConv;
            conv += l.kind == LayerKind::Conv;
        }
        for (const LayerSpec &l : model.discriminator)
            d_weights += l.numWeights();
        table.addRow({model.name, std::to_string(model.generator.size()),
                      std::to_string(model.discriminator.size()),
                      std::to_string(model.itemSize),
                      std::to_string(model.spatialDims),
                      std::to_string(g_weights), std::to_string(d_weights),
                      std::to_string(tconv), std::to_string(conv)});
    }
    table.print(std::cout);

    std::cout << "\nPer-layer shapes:\n";
    for (const GanModel &model : allBenchmarks()) {
        std::cout << model.name << "\n";
        for (const auto *net : {&model.generator, &model.discriminator}) {
            for (const LayerSpec &l : *net) {
                std::cout << "  " << l.name << ": " << l.inChannels << "x"
                          << l.inSize << "^" << l.spatialDims << " -> "
                          << l.outChannels << "x" << l.outSize << "^"
                          << l.spatialDims;
                if (l.kind != LayerKind::FullyConnected) {
                    std::cout << "  k" << l.kernel << " s" << l.stride
                              << " p" << l.pad << "/" << l.padHi << " r"
                              << l.rem;
                }
                std::cout << "\n";
            }
        }
    }
    return 0;
}
