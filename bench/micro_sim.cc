/**
 * @file
 * google-benchmark microbenchmarks for the simulator substrate: event
 * queue throughput, routing, reshape enumeration and whole-iteration
 * simulation.
 */

#include <benchmark/benchmark.h>

#include "core/api.hh"
#include "sim/event_queue.hh"
#include "zfdr/reshape.hh"

namespace {

using namespace lergan;

void
BM_EventQueue(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue queue;
        int fired = 0;
        for (int i = 0; i < n; ++i)
            queue.scheduleAt(static_cast<PicoSeconds>(i * 7 % 1000),
                             [&fired] { ++fired; });
        queue.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueue)->Arg(1 << 10)->Arg(1 << 14);

void
BM_RouteHTree(benchmark::State &state)
{
    AcceleratorConfig config = AcceleratorConfig::lerGan(ReplicaDegree::Low);
    Machine machine(config);
    int i = 0;
    for (auto _ : state) {
        // Alternate endpoints to defeat the route cache.
        const Route route = machine.topo().route(
            machine.bank(0).tiles[i % 16],
            machine.bank(5).tiles[(i * 7) % 16]);
        benchmark::DoNotOptimize(route.latencyNs);
        ++i;
    }
}
BENCHMARK(BM_RouteHTree);

void
BM_ReshapeAnalysis(benchmark::State &state)
{
    const GanModel model = makeBenchmark("DCGAN");
    const auto ops = opsForPhase(model, Phase::GFwd);
    for (auto _ : state) {
        for (const LayerOp &op : ops) {
            if (!op.zfdrApplicable())
                continue;
            const ReshapeAnalysis analysis = analyzeReshape(op);
            benchmark::DoNotOptimize(analysis.distinctMatrices());
        }
    }
}
BENCHMARK(BM_ReshapeAnalysis);

void
BM_CompileGan(benchmark::State &state)
{
    const GanModel model = makeBenchmark("DCGAN");
    const AcceleratorConfig config =
        AcceleratorConfig::lerGan(ReplicaDegree::Middle);
    for (auto _ : state) {
        const CompiledGan compiled = compileGan(model, config);
        benchmark::DoNotOptimize(compiled.crossbarsUsed);
    }
}
BENCHMARK(BM_CompileGan);

void
BM_TrainIteration(benchmark::State &state)
{
    const GanModel model = makeBenchmark("cGAN");
    LerGanAccelerator acc(model,
                          AcceleratorConfig::lerGan(ReplicaDegree::Low));
    for (auto _ : state) {
        const TrainingReport report = acc.trainIteration();
        benchmark::DoNotOptimize(report.iterationTime);
    }
}
BENCHMARK(BM_TrainIteration);

} // namespace

BENCHMARK_MAIN();
