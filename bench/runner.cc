#include "runner.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/strings.hh"
#include "exec/thread_pool.hh"
#include "telemetry/profiler.hh"

namespace lergan {
namespace bench {

namespace {

/** Nearest-rank percentile of an unsorted sample set (q in [0,1]). */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size()));
    return samples[std::min(rank, samples.size() - 1)];
}

/** Per-phase host milliseconds of @p after minus @p before. */
std::map<std::string, double>
phaseDeltaMs(const std::map<std::string, HostPhaseStat> &before,
             const std::map<std::string, HostPhaseStat> &after)
{
    std::map<std::string, double> delta;
    for (const auto &[phase, stat] : after) {
        std::uint64_t earlier = 0;
        if (auto it = before.find(phase); it != before.end())
            earlier = it->second.ns;
        if (stat.ns > earlier)
            delta[phase] = static_cast<double>(stat.ns - earlier) / 1e6;
    }
    return delta;
}

/** Fixed-point number with enough digits for a perf trajectory. */
std::string
num(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", value);
    return buf;
}

std::string
formatEntry(const std::string &label, const std::string &commit,
            std::size_t grid_points, int iterations,
            unsigned hardware_threads,
            const std::vector<BenchMeasurement> &measurements)
{
    std::ostringstream os;
    os << "    {\n";
    os << "      \"label\": \"" << JsonWriter::escape(label) << "\",\n";
    os << "      \"commit\": \"" << JsonWriter::escape(commit) << "\",\n";
    os << "      \"grid_points\": " << grid_points << ",\n";
    os << "      \"iterations\": " << iterations << ",\n";
    os << "      \"hardware_threads\": " << hardware_threads << ",\n";
    os << "      \"measurements\": [\n";
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const BenchMeasurement &m = measurements[i];
        os << "        {\n";
        os << "          \"workers\": " << m.workers << ",\n";
        os << "          \"repetitions\": " << m.repetitions << ",\n";
        os << "          \"wall_ms\": " << num(m.wallMs) << ",\n";
        os << "          \"points_per_sec\": " << num(m.pointsPerSec)
           << ",\n";
        if (m.scalingEfficiency >= 0.0) {
            os << "          \"scaling_efficiency\": "
               << num(m.scalingEfficiency) << ",\n";
        }
        os << "          \"p50_host_ms_per_point\": "
           << num(m.p50HostMsPerPoint) << ",\n";
        os << "          \"p95_host_ms_per_point\": "
           << num(m.p95HostMsPerPoint) << ",\n";
        os << "          \"host_phases_ms\": {";
        bool first = true;
        for (const auto &[phase, ms] : m.hostPhasesMs) {
            os << (first ? " " : ", ") << '"'
               << JsonWriter::escape(phase) << "\": " << num(ms);
            first = false;
        }
        os << (first ? "}" : " }") << "\n";
        os << "        }" << (i + 1 < measurements.size() ? "," : "")
           << "\n";
    }
    os << "      ]\n";
    os << "    }";
    return os.str();
}

} // namespace

void
writeBenchJson(const std::string &path, const std::string &bench,
               const std::string &label, const std::string &commit,
               std::size_t grid_points, int iterations,
               unsigned hardware_threads,
               const std::vector<BenchMeasurement> &measurements,
               bool append)
{
    const std::string entry = formatEntry(
        label, commit, grid_points, iterations, hardware_threads,
        measurements);

    std::string content;
    if (append) {
        std::ifstream in(path);
        if (!in)
            LERGAN_FATAL("--bench-append: cannot read '", path, "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        content = buffer.str();
        // Appending to a schema/1 file upgrades the header in place:
        // /2 only adds fields, so the old entries stay valid (they
        // simply lack hardware_threads / scaling_efficiency).
        const std::string oldSchema = "\"schema\": \"lergan-bench/1\"";
        const std::size_t schemaAt = content.find(oldSchema);
        if (schemaAt != std::string::npos)
            content.replace(schemaAt, oldSchema.size(),
                            "\"schema\": \"lergan-bench/2\"");
        // The writer's own tail is the splice anchor; anything else
        // means the file was not produced (or was edited) by us.
        const std::string tail = "\n  ]\n}";
        const std::size_t pos = content.rfind(tail);
        if (pos == std::string::npos)
            LERGAN_FATAL("--bench-append: '", path,
                         "' does not end with a bench-json entries "
                         "array");
        content.insert(pos, ",\n" + entry);
    } else {
        std::ostringstream os;
        os << "{\n";
        os << "  \"schema\": \"lergan-bench/2\",\n";
        os << "  \"bench\": \"" << JsonWriter::escape(bench) << "\",\n";
        os << "  \"entries\": [\n";
        os << entry << "\n";
        os << "  ]\n}\n";
        content = os.str();
    }

    std::string error;
    if (!isValidJson(content, &error))
        LERGAN_FATAL("bench-json writer produced invalid JSON for '",
                     path, "': ", error);

    std::ofstream out(path);
    if (!out)
        LERGAN_FATAL("cannot write bench-json file '", path, "'");
    out << content;
}

double
lastOneWorkerPointsPerSec(const std::string &bench_json_text)
{
    const std::string anchor = "\"workers\": 1,";
    const std::size_t at = bench_json_text.rfind(anchor);
    if (at == std::string::npos)
        return -1.0;
    const std::string key = "\"points_per_sec\": ";
    const std::size_t keyAt = bench_json_text.find(key, at);
    if (keyAt == std::string::npos)
        return -1.0;
    return std::strtod(bench_json_text.c_str() + keyAt + key.size(),
                       nullptr);
}

double
lastScalingEfficiency(const std::string &bench_json_text, int workers)
{
    const std::string anchor =
        "\"workers\": " + std::to_string(workers) + ",";
    const std::size_t at = bench_json_text.rfind(anchor);
    if (at == std::string::npos)
        return -1.0;
    const std::string key = "\"scaling_efficiency\": ";
    const std::size_t keyAt = bench_json_text.find(key, at);
    // The field is optional (schema/1 entries lack it), so the search
    // must not run past this measurement object into the next one.
    const std::size_t objEnd = bench_json_text.find('}', at);
    if (keyAt == std::string::npos || keyAt > objEnd)
        return -1.0;
    return std::strtod(bench_json_text.c_str() + keyAt + key.size(),
                       nullptr);
}

Runner::Runner(std::string bench_name, std::string title,
               std::string paper_claim)
    : benchName_(std::move(bench_name)), title_(std::move(title)),
      paperClaim_(std::move(paper_claim))
{
}

void
Runner::parse(int argc, char **argv, const std::string &program_doc)
{
    args_.addOption("threads", "worker threads (0 = hardware threads)",
                    "0");
    args_.addOption("bench-json",
                    "measure host performance (points/sec, p50/p95 host "
                    "ms/point) and write a BENCH_*.json entry to this "
                    "file");
    args_.addOption("bench-append",
                    "append the entry to an existing --bench-json file",
                    "", /*is_flag=*/true);
    args_.addOption("bench-label",
                    "label recorded in the bench-json entry", "current");
    args_.addOption("bench-commit",
                    "commit id recorded in the bench-json entry",
                    "unknown");
    args_.addOption("bench-workers",
                    "comma-separated worker counts to measure (0 = "
                    "hardware threads)",
                    "1,2,4,8");
    args_.addOption("bench-repeats",
                    "timed repetitions per measured worker count", "3");
    args_.addOption("bench-check",
                    "perf-regression guard: fail when measured 1-worker "
                    "points/sec (or any measured multi-worker scaling "
                    "efficiency) drops >20% below this committed "
                    "BENCH_*.json baseline");
    Observability::addOptions(args_);
    args_.parse(argc, argv, program_doc);
    obs_ = std::make_unique<Observability>(args_);
    banner(title_, paperClaim_);
}

Observability &
Runner::obs()
{
    LERGAN_ASSERT(obs_ != nullptr, "Runner::parse() not called");
    return *obs_;
}

int
Runner::threads() const
{
    return args_.getInt("threads");
}

bool
Runner::measurementWanted() const
{
    return args_.given("bench-json") || args_.given("bench-check");
}

std::vector<int>
Runner::measuredWorkerCounts() const
{
    std::vector<int> counts;
    for (const std::string &item : split(args_.get("bench-workers"), ',')) {
        if (item.empty())
            continue;
        int workers = std::atoi(item.c_str());
        if (workers <= 0)
            workers = static_cast<int>(defaultThreadCount());
        if (std::find(counts.begin(), counts.end(), workers) ==
            counts.end())
            counts.push_back(workers);
    }
    if (counts.empty())
        counts.push_back(1);
    return counts;
}

std::vector<SweepResult>
Runner::runSweep(ExperimentSweep &sweep, int iterations)
{
    if (obs().registry())
        sweep.withTelemetry(obs().registry());
    if (obs().recorder())
        sweep.withTracing(obs().recorder());

    RunOptions options;
    options.threads = threads();
    options.iterations = iterations;
    options.onProgress = obs().progress();
    // The anomaly report ranks points by host time, so the traced run
    // needs the per-point telemetry it is ranked by.
    options.pointTelemetry = obs().anomaliesWanted();
    auto results = sweep.run(options);
    obs().reportSweep(results);

    if (measurementWanted())
        measureSweep(sweep, iterations);
    return results;
}

void
Runner::measureSweep(ExperimentSweep &sweep, int iterations)
{
    measuredIterations_ = iterations;
    // Measurement runs are silent and unobserved: no telemetry, no
    // tracing, no progress — the product-default fast path is the
    // measured one.
    const auto registry = sweep.telemetry();
    const auto recorder = sweep.recorder();
    sweep.withTelemetry(nullptr);
    sweep.withTracing(nullptr);

    HostProfiler &profiler = HostProfiler::global();
    const bool wasEnabled = profiler.enabled();
    profiler.enable();

    const int repeats = std::max(1, args_.getInt("bench-repeats"));
    for (int workers : measuredWorkerCounts()) {
        RunOptions options;
        options.threads = workers;
        options.iterations = iterations;
        options.pointTelemetry = true;

        sweep.run(options); // warm-up: caches hot, allocators settled

        const auto phasesBefore = profiler.stats();
        std::vector<double> pointMs;
        PerfTimer timer;
        for (int rep = 0; rep < repeats; ++rep) {
            const auto results = sweep.run(options);
            for (const SweepResult &result : results)
                pointMs.push_back(result.telemetry.hostMs);
        }
        const double wallMs = timer.elapsedMs();
        const auto phasesAfter = profiler.stats();

        BenchMeasurement m;
        m.workers = workers;
        m.repetitions = repeats;
        m.points = sweep.pointCount();
        m.wallMs = wallMs;
        m.pointsPerSec =
            wallMs > 0.0 ? static_cast<double>(pointMs.size()) /
                               (wallMs / 1e3)
                         : 0.0;
        m.p50HostMsPerPoint = percentile(pointMs, 0.5);
        m.p95HostMsPerPoint = percentile(pointMs, 0.95);
        m.hostPhasesMs = phaseDeltaMs(phasesBefore, phasesAfter);
        measurements_.push_back(m);

        std::cerr << "bench: " << benchName_ << " workers=" << workers
                  << " " << num(m.pointsPerSec) << " points/sec (p50 "
                  << num(m.p50HostMsPerPoint) << " ms/point, p95 "
                  << num(m.p95HostMsPerPoint) << " ms/point)\n";
    }

    profiler.enable(wasEnabled);
    sweep.withTelemetry(registry);
    sweep.withTracing(recorder);
}

void
Runner::measureBody(std::size_t points, const std::function<void()> &body)
{
    HostProfiler &profiler = HostProfiler::global();
    const bool wasEnabled = profiler.enabled();
    profiler.enable();

    const int repeats = std::max(1, args_.getInt("bench-repeats"));
    body(); // warm-up

    const auto phasesBefore = profiler.stats();
    std::vector<double> repMsPerPoint;
    PerfTimer timer;
    for (int rep = 0; rep < repeats; ++rep) {
        PerfTimer repTimer;
        body();
        if (points > 0)
            repMsPerPoint.push_back(repTimer.elapsedMs() /
                                    static_cast<double>(points));
    }
    const double wallMs = timer.elapsedMs();
    const auto phasesAfter = profiler.stats();

    BenchMeasurement m;
    m.workers = 1;
    m.repetitions = repeats;
    m.points = points;
    m.wallMs = wallMs;
    m.pointsPerSec =
        wallMs > 0.0
            ? static_cast<double>(points) * repeats / (wallMs / 1e3)
            : 0.0;
    // No per-point host times outside the sweep engine: the percentiles
    // describe per-repetition ms/point instead (documented in the
    // header).
    m.p50HostMsPerPoint = percentile(repMsPerPoint, 0.5);
    m.p95HostMsPerPoint = percentile(repMsPerPoint, 0.95);
    m.hostPhasesMs = phaseDeltaMs(phasesBefore, phasesAfter);
    measurements_.push_back(m);

    std::cerr << "bench: " << benchName_ << " " << num(m.pointsPerSec)
              << " points/sec\n";

    profiler.enable(wasEnabled);
}

void
Runner::computeScalingEfficiencies()
{
    const BenchMeasurement *one = nullptr;
    for (const BenchMeasurement &m : measurements_)
        if (m.workers == 1) {
            one = &m;
            break;
        }
    if (!one || one->pointsPerSec <= 0.0)
        return; // no 1-worker reference in this run
    // Normalize by the cores actually available: W workers on an
    // H-core machine can at best run min(W, H) points concurrently, so
    // ideal is 1.0 on every machine and oversubscribed counts are not
    // penalized for the cores they do not have.
    const double hw = static_cast<double>(defaultThreadCount());
    for (BenchMeasurement &m : measurements_) {
        const double ideal =
            one->pointsPerSec *
            std::min(static_cast<double>(m.workers), hw);
        m.scalingEfficiency = m.pointsPerSec / ideal;
    }
}

void
Runner::applyScalingGuard(const std::string &baseline_text)
{
    for (const BenchMeasurement &m : measurements_) {
        if (m.workers == 1 || m.scalingEfficiency < 0.0)
            continue;
        const double committed =
            lastScalingEfficiency(baseline_text, m.workers);
        if (committed <= 0.0)
            continue; // baseline predates the scaling schema
        const double floor = committed * 0.8;
        const bool ok = m.scalingEfficiency >= floor;
        std::cerr << "perf guard: " << m.workers
                  << "-worker scaling efficiency "
                  << num(m.scalingEfficiency)
                  << " vs committed baseline " << num(committed)
                  << " (floor " << num(floor) << "): "
                  << (ok ? "ok" : "REGRESSION") << "\n";
        if (!ok)
            guardFailed_ = true;
    }
}

void
Runner::applyGuard(const BenchMeasurement &measured)
{
    guardRan_ = true;
    const std::string path = args_.get("bench-check");
    std::ifstream in(path);
    if (!in)
        LERGAN_FATAL("--bench-check: cannot read baseline '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const double baseline = lastOneWorkerPointsPerSec(buffer.str());
    if (baseline <= 0.0)
        LERGAN_FATAL("--bench-check: no 1-worker points_per_sec entry "
                     "in '",
                     path, "'");
    const double floor = baseline * 0.8;
    const bool ok = measured.pointsPerSec >= floor;
    std::cerr << "perf guard: measured " << num(measured.pointsPerSec)
              << " points/sec vs committed baseline " << num(baseline)
              << " (floor " << num(floor) << "): "
              << (ok ? "ok" : "REGRESSION") << "\n";
    if (!ok)
        guardFailed_ = true;
}

int
Runner::finish()
{
    computeScalingEfficiencies();

    if (args_.given("bench-check") && !measurements_.empty()) {
        // Guard against the 1-worker measurement when present (it is
        // the least scheduler-noisy one), else the first.
        const BenchMeasurement *oneWorker = nullptr;
        for (const BenchMeasurement &m : measurements_)
            if (m.workers == 1) {
                oneWorker = &m;
                break;
            }
        applyGuard(oneWorker ? *oneWorker : measurements_.front());
        // Second half of the guard: every measured multi-worker count
        // must hold its committed scaling efficiency.
        std::ifstream in(args_.get("bench-check"));
        if (in) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            applyScalingGuard(buffer.str());
        }
    }

    if (args_.given("bench-json")) {
        LERGAN_ASSERT(!measurements_.empty(),
                      "--bench-json given but the bench never ran a "
                      "measurable workload");
        writeBenchJson(args_.get("bench-json"), benchName_,
                       args_.get("bench-label"),
                       args_.get("bench-commit"),
                       measurements_.front().points,
                       measuredIterations_, defaultThreadCount(),
                       measurements_, args_.getFlag("bench-append"));
    }

    obs().finish();
    return guardFailed_ ? 1 : 0;
}

} // namespace bench
} // namespace lergan
