/**
 * @file
 * Machine-readable export of the core evaluation grid: all eight
 * benchmarks x {LerGAN low/middle/high, PRIME} as JSON and CSV, for
 * plotting outside the repo.
 *
 * Usage:
 *   ./build/bench/export_results --json results.json --csv results.csv
 *
 * --telemetry augments both exports with per-point host observations
 * (cache hit, wall ms) and a run summary (cache totals, wall clock);
 * combined with --trace-spans/--trace-anomalies it additionally gains
 * per-point span-count and queue-wait-ms columns. The default output
 * shape is unchanged without the flags, so existing consumers and the
 * golden diffs are unaffected.
 */

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "common/args.hh"
#include "core/sweep.hh"
#include "core/sweep_io.hh"
#include "workloads/zoo.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;

    ArgParser args;
    args.addOption("json", "JSON output path", "lergan_results.json");
    args.addOption("csv", "CSV output path", "lergan_results.csv");
    args.addOption("iterations", "iterations per point", "1");
    args.addOption("threads",
                   "sweep workers (0 = one per hardware thread)", "0");
    args.addOption("audit",
                   "run cross-layer invariant checks on every point", "",
                   /*is_flag=*/true);
    args.addOption("telemetry",
                   "add per-point host observations and a cache/wall "
                   "summary to the exports",
                   "", /*is_flag=*/true);
    Observability::addOptions(args);
    args.parse(argc, argv, "export the evaluation grid for plotting");
    Observability obs(args);

    ExperimentSweep sweep;
    for (const GanModel &model : allBenchmarks())
        sweep.addBenchmark(model);
    sweep.addConfig("lergan-low",
                    AcceleratorConfig::lerGan(ReplicaDegree::Low));
    sweep.addConfig("lergan-middle",
                    AcceleratorConfig::lerGan(ReplicaDegree::Middle));
    sweep.addConfig("lergan-high",
                    AcceleratorConfig::lerGan(ReplicaDegree::High));
    sweep.addConfig("prime", AcceleratorConfig::prime());
    if (args.getFlag("audit"))
        sweep.auditWith(AuditOptions::full());
    if (obs.registry())
        sweep.withTelemetry(obs.registry());
    if (obs.recorder())
        sweep.withTracing(obs.recorder());

    RunOptions options;
    options.threads = args.getInt("threads");
    options.iterations = args.getInt("iterations");
    options.onProgress = obs.progress();
    options.pointTelemetry =
        args.getFlag("telemetry") || obs.anomaliesWanted();

    const auto began = std::chrono::steady_clock::now();
    const auto results = sweep.run(options);
    obs.reportSweep(results);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - began)
            .count();

    SweepTelemetrySummary summary;
    summary.cacheHits = sweep.cache().hits();
    summary.cacheMisses = sweep.cache().misses();
    summary.wallMs = wall_ms;
    const SweepTelemetrySummary *summary_ptr =
        options.pointTelemetry ? &summary : nullptr;

    std::ofstream json(args.get("json"));
    writeSweepJson(json, results, summary_ptr);
    std::ofstream csv(args.get("csv"));
    writeSweepCsv(csv, results, summary_ptr);

    std::cout << "wrote " << results.size() << " points to "
              << args.get("json") << " and " << args.get("csv") << "\n";
    obs.finish();
    return 0;
}
