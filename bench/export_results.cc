/**
 * @file
 * Machine-readable export of the core evaluation grid: all eight
 * benchmarks x {LerGAN low/middle/high, PRIME} as JSON and CSV, for
 * plotting outside the repo.
 *
 * Usage:
 *   ./build/bench/export_results --json results.json --csv results.csv
 */

#include <fstream>
#include <iostream>

#include "common/args.hh"
#include "core/sweep.hh"
#include "workloads/zoo.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("json", "JSON output path", "lergan_results.json");
    args.addOption("csv", "CSV output path", "lergan_results.csv");
    args.addOption("iterations", "iterations per point", "1");
    args.parse(argc, argv, "export the evaluation grid for plotting");

    ExperimentSweep sweep;
    for (const GanModel &model : allBenchmarks())
        sweep.add(model);
    sweep.add("lergan-low", AcceleratorConfig::lerGan(ReplicaDegree::Low));
    sweep.add("lergan-middle",
              AcceleratorConfig::lerGan(ReplicaDegree::Middle));
    sweep.add("lergan-high",
              AcceleratorConfig::lerGan(ReplicaDegree::High));
    sweep.add("prime", AcceleratorConfig::prime());

    const auto results = sweep.run(args.getInt("iterations"));

    std::ofstream json(args.get("json"));
    ExperimentSweep::writeJson(json, results);
    std::ofstream csv(args.get("csv"));
    ExperimentSweep::writeCsv(csv, results);

    std::cout << "wrote " << results.size() << " points to "
              << args.get("json") << " and " << args.get("csv") << "\n";
    return 0;
}
