/**
 * @file
 * Machine-readable export of the core evaluation grid: all eight
 * benchmarks x {LerGAN low/middle/high, PRIME} as JSON and CSV, for
 * plotting outside the repo.
 *
 * Usage:
 *   ./build/bench/export_results --json results.json --csv results.csv
 */

#include <fstream>
#include <iostream>

#include "common/args.hh"
#include "core/sweep.hh"
#include "core/sweep_io.hh"
#include "workloads/zoo.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;

    ArgParser args;
    args.addOption("json", "JSON output path", "lergan_results.json");
    args.addOption("csv", "CSV output path", "lergan_results.csv");
    args.addOption("iterations", "iterations per point", "1");
    args.addOption("threads",
                   "sweep workers (0 = one per hardware thread)", "0");
    args.addOption("audit",
                   "run cross-layer invariant checks on every point", "",
                   /*is_flag=*/true);
    args.parse(argc, argv, "export the evaluation grid for plotting");

    ExperimentSweep sweep;
    for (const GanModel &model : allBenchmarks())
        sweep.addBenchmark(model);
    sweep.addConfig("lergan-low",
                    AcceleratorConfig::lerGan(ReplicaDegree::Low));
    sweep.addConfig("lergan-middle",
                    AcceleratorConfig::lerGan(ReplicaDegree::Middle));
    sweep.addConfig("lergan-high",
                    AcceleratorConfig::lerGan(ReplicaDegree::High));
    sweep.addConfig("prime", AcceleratorConfig::prime());
    if (args.getFlag("audit"))
        sweep.auditWith(AuditOptions::full());

    RunOptions options;
    options.threads = args.getInt("threads");
    options.iterations = args.getInt("iterations");
    const auto results = sweep.run(options);

    std::ofstream json(args.get("json"));
    writeSweepJson(json, results);
    std::ofstream csv(args.get("csv"));
    writeSweepCsv(csv, results);

    std::cout << "wrote " << results.size() << " points to "
              << args.get("json") << " and " << args.get("csv") << "\n";
    return 0;
}
