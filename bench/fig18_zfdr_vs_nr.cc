/**
 * @file
 * Fig. 18 reproduction: ZFDR versus normal reshaping (NR), both on the
 * 3D connection, normalized to the 2D+NR baseline.
 *
 * Paper: ZFDR with duplication 5.11x, ZFDR without duplication 2.77x,
 * NR only 1.31x — both techniques are needed.
 */

#include <sstream>

#include "runner.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig18",
                  "Fig. 18: ZFDR vs normal reshape, on the 3D connection",
                  "vs 2D+NR: ZFDR+dup 5.11x, ZFDR 2.77x, NR 1.31x on "
                  "average");
    runner.parse(argc, argv, "Fig. 18 reproduction");

    const std::string text =
        runner.measure(allBenchmarks().size() * 4, [&] {
            TextTable table({"benchmark", "NR+3D", "ZFDR+3D",
                             "ZFDR+3D+dup"});
            Mean m_nr, m_zfdr, m_dup;
            for (const GanModel &model : allBenchmarks()) {
                const double base =
                    simulateTraining(model,
                                     makeConfig(Connection::HTree,
                                                ReshapeMode::Normal, false))
                        .timeMs();
                const double nr_3d =
                    simulateTraining(model,
                                     makeConfig(Connection::ThreeD,
                                                ReshapeMode::Normal, false))
                        .timeMs();
                const double zfdr_3d =
                    simulateTraining(model,
                                     makeConfig(Connection::ThreeD,
                                                ReshapeMode::Zfdr, false))
                        .timeMs();
                const double zfdr_dup =
                    simulateTraining(model,
                                     makeConfig(Connection::ThreeD,
                                                ReshapeMode::Zfdr, true,
                                                ReplicaDegree::High))
                        .timeMs();
                m_nr.add(base / nr_3d);
                m_zfdr.add(base / zfdr_3d);
                m_dup.add(base / zfdr_dup);
                table.addRow({model.name,
                              TextTable::num(base / nr_3d) + "x",
                              TextTable::num(base / zfdr_3d) + "x",
                              TextTable::num(base / zfdr_dup) + "x"});
            }
            table.addRow({"MEAN (paper 1.31 / 2.77 / 5.11)",
                          TextTable::num(m_nr.value()) + "x",
                          TextTable::num(m_zfdr.value()) + "x",
                          TextTable::num(m_dup.value()) + "x"});
            std::ostringstream out;
            table.print(out);
            return out.str();
        });
    std::cout << text;
    return runner.finish();
}
