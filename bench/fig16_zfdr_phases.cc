/**
 * @file
 * Fig. 16 reproduction: per-phase effect of ZFDR (compute-only, i.e. the
 * reshape scheme in isolation), plus the SArray input-storage saving.
 *
 * Paper: distinct speedups on DCGAN/cGAN/3D-GAN/GPGAN/DiscoGAN; no
 * speedup on the fully-connected MAGAN discriminator; up to 5.2x SArray
 * space saved for inputs (DCGAN), 3.86x on average.
 */

#include <sstream>

#include "runner.hh"

#include "zfdr/cost.hh"

namespace {

using namespace lergan;

/** Compute-only cost of one phase (MMV waves + per-item operand writes),
 *  in nanoseconds per item, under one reshape scheme. */
double
phaseComputeNs(const GanModel &model, Phase phase, bool zfdr,
               const ReRamParams &params)
{
    const CrossbarGeom geom;
    double total = 0;
    for (const LayerOp &op : opsForPhase(model, phase)) {
        OpCost cost;
        if (zfdr && op.zfdrApplicable()) {
            const ReshapeAnalysis analysis = analyzeReshape(op);
            cost = zfdrOpCost(op, analysis, ReplicaVector{}, geom);
        } else {
            cost = normalOpCost(op, 1, geom);
        }
        total += params.mmvWaveNs * static_cast<double>(cost.waves);
        const bool writes = phase == Phase::DBwdWeight ||
                            phase == Phase::GBwdWeight;
        if (writes && op.pattern != OpPattern::DenseFc) {
            total += params.weightWriteNsPerElem *
                     static_cast<double>(cost.weightElems);
        }
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig16",
                  "Fig. 16: ZFDR speedup per GAN phase + input storage "
                  "saving",
                  "speedup where T-CONVs exist; none on FC layers; SArray "
                  "input saving up to 5.2x (DCGAN), avg 3.86x");
    runner.parse(argc, argv, "Fig. 16 reproduction");

    const std::string text =
        runner.measure(allBenchmarks().size(), [&] {
            const ReRamParams params;
            TextTable table({"benchmark", "G.fwd", "D.fwd", "D.bwd_err",
                             "D.bwd_w", "G.bwd_err", "G.bwd_w",
                             "input storage saving"});

            Mean storage_mean;
            double storage_max = 0;
            for (const GanModel &model : allBenchmarks()) {
                std::vector<std::string> row{model.name};
                for (Phase phase : kAllPhases) {
                    const double normal =
                        phaseComputeNs(model, phase, false, params);
                    const double zfdr =
                        phaseComputeNs(model, phase, true, params);
                    row.push_back(TextTable::num(normal / zfdr) + "x");
                }
                // SArray saving: stored input elements with vs without
                // zeros, summed over all ops of all phases.
                OpZeroStats stats = analyzeModel(model);
                const double saving = stats.storageBlowup();
                storage_mean.add(saving);
                storage_max = std::max(storage_max, saving);
                row.push_back(TextTable::num(saving) + "x");
                table.addRow(row);
            }
            std::ostringstream out;
            table.print(out);
            out << "\ninput storage saving: max "
                << TextTable::num(storage_max)
                << "x (paper: up to 5.2x), mean "
                << TextTable::num(storage_mean.value())
                << "x (paper: 3.86x)\n";
            return out.str();
        });
    std::cout << text;
    return runner.finish();
}
