/**
 * @file
 * Fig. 20 reproduction: LerGAN energy saving over PRIME across
 * duplication degrees.
 *
 * Paper: 7.68x average saving; LerGAN-low-NS reaches 28.47x; more
 * duplication saves less energy (more update writes and switching).
 */

#include <sstream>

#include "runner.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig20", "Fig. 20: LerGAN vs PRIME (energy saving)",
                  "avg 7.68x; low-NS up to 28.47x; saving shrinks as "
                  "duplication grows");
    runner.parse(argc, argv, "Fig. 20 reproduction");

    const std::string text =
        runner.measure(allBenchmarks().size() * 5, [&] {
            TextTable table({"benchmark", "low", "middle", "high",
                             "low-NS"});
            Mean m_low, m_mid, m_high, m_ns;
            for (const GanModel &model : allBenchmarks()) {
                const double prime =
                    simulateTraining(model, AcceleratorConfig::prime())
                        .totalEnergyPj();
                auto saving = [&](const AcceleratorConfig &config) {
                    return prime /
                           simulateTraining(model, config).totalEnergyPj();
                };
                const double low =
                    saving(AcceleratorConfig::lerGan(ReplicaDegree::Low));
                const double mid =
                    saving(AcceleratorConfig::lerGan(ReplicaDegree::Middle));
                const double high =
                    saving(AcceleratorConfig::lerGan(ReplicaDegree::High));
                const double ns = saving(lerGanLowNs(model));
                m_low.add(low);
                m_mid.add(mid);
                m_high.add(high);
                m_ns.add(ns);
                table.addRow({model.name, TextTable::num(low) + "x",
                              TextTable::num(mid) + "x",
                              TextTable::num(high) + "x",
                              TextTable::num(ns) + "x"});
            }
            table.addRow({"MEAN", TextTable::num(m_low.value()) + "x",
                          TextTable::num(m_mid.value()) + "x",
                          TextTable::num(m_high.value()) + "x",
                          TextTable::num(m_ns.value()) + "x"});
            std::ostringstream out;
            table.print(out);
            return out.str();
        });
    std::cout << text;
    return runner.finish();
}
