/**
 * @file
 * Ablation: minibatch-size scaling (the paper fixes batch 64; this
 * checks the pipeline fills and the LerGAN-vs-PRIME gap is not a batch
 * artifact).
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Ablation: minibatch scaling on DCGAN",
           "per-item time drops as the pipeline fills; the PRIME gap "
           "persists across batch sizes");

    const GanModel model = makeBenchmark("DCGAN");
    TextTable table({"batch", "LerGAN ms/iter", "LerGAN us/item",
                     "PRIME ms/iter", "speedup"});
    for (int batch : {4, 8, 16, 32, 64, 128}) {
        AcceleratorConfig lergan_cfg =
            AcceleratorConfig::lerGan(ReplicaDegree::High);
        lergan_cfg.batchSize = batch;
        AcceleratorConfig prime_cfg = AcceleratorConfig::prime();
        prime_cfg.batchSize = batch;
        const double lergan =
            simulateTraining(model, lergan_cfg).timeMs();
        const double prime = simulateTraining(model, prime_cfg).timeMs();
        table.addRow({std::to_string(batch), TextTable::num(lergan, 2),
                      TextTable::num(1e3 * lergan / batch, 1),
                      TextTable::num(prime, 2),
                      TextTable::num(prime / lergan) + "x"});
    }
    table.print(std::cout);
    return 0;
}
