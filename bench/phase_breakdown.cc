/**
 * @file
 * Phase-level timing breakdown (analysis companion to the paper's
 * Fig. 7/8/13 dataflow discussion): how long each training phase is
 * active and how much the phases overlap under pipelining. Phase
 * windows summing to far more than 100% of the iteration is the
 * overlap the 3D connection enables.
 */

#include "bench_util.hh"

#include "core/phase_report.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Phase-level timing breakdown (DCGAN)",
           "companion analysis to the Fig. 13 dataflows");

    for (const auto &[name, config] :
         {std::pair<const char *, AcceleratorConfig>{
              "LerGAN-high",
              AcceleratorConfig::lerGan(ReplicaDegree::High)},
          {"PRIME", AcceleratorConfig::prime()}}) {
        const GanModel model = makeBenchmark("DCGAN");
        LerGanAccelerator accelerator(model, config);
        Tracer tracer;
        const TrainingReport report =
            accelerator.trainIterationTraced(tracer);
        std::cout << name << " (" << report.timeMs() << " ms/iter):\n";
        printPhaseTimes(std::cout, tracer, report.iterationTime);
        std::cout << '\n';
    }
    return 0;
}
