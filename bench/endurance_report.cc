/**
 * @file
 * Endurance analysis (paper Sec. II-A): with >1e10 cell endurance and
 * 1e5 iterations per training run, a ReRAM PIM should survive
 * "1e5 ~ 1e7 such networks". Reproduces that estimate from simulated
 * write counts and shows how duplication spends lifetime.
 */

#include "bench_util.hh"

#include "reram/endurance.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Endurance: trainable networks before cell wear-out",
           "paper Sec. II-A: 1e5 ~ 1e7 trainings at 1e10 ~ 1e12 "
           "endurance");

    TextTable table({"benchmark", "config", "writes/cell/iter",
                     "trainings @1e10", "trainings @1e12"});
    for (const char *name : {"DCGAN", "cGAN", "MAGAN-MNIST"}) {
        const GanModel model = makeBenchmark(name);
        for (const auto &[label, config] :
             {std::pair<const char *, AcceleratorConfig>{
                  "LerGAN-low", AcceleratorConfig::lerGan(
                                    ReplicaDegree::Low)},
              {"LerGAN-high",
               AcceleratorConfig::lerGan(ReplicaDegree::High)},
              {"PRIME", AcceleratorConfig::prime()}}) {
            LerGanAccelerator accelerator(model, config);
            const TrainingReport report = accelerator.trainIteration();
            const std::uint64_t stored =
                accelerator.compiled().weightElems;

            EnduranceParams low_end;   // 1e10 cycles
            EnduranceParams high_end;
            high_end.cellEndurance = 1e12;
            const EnduranceReport at10 =
                estimateEndurance(report.stats, stored, low_end);
            const EnduranceReport at12 =
                estimateEndurance(report.stats, stored, high_end);
            table.addRow({model.name, label,
                          TextTable::num(
                              at10.writesPerCellPerIteration, 2),
                          TextTable::num(at10.survivableTrainings, 0),
                          TextTable::num(at12.survivableTrainings, 0)});
        }
    }
    table.print(std::cout);
    std::cout << "\nNote: the per-item gradient writes of Dw<-/Gw<- are "
                 "the dominant wear component; kernel updates add one "
                 "write per stored copy per iteration.\n";
    return 0;
}
