/**
 * @file
 * Ablation: mapping a GAN across several 3DCU pairs (Sec. IV-B: "we map
 * generator to one or several 3DCUs").
 *
 * More pairs add CArray capacity (less duplication shrinkage, less
 * crossbar time-sharing) but layer blocks on different pairs exchange
 * their activations over the narrow inter-pair links — for mid-size
 * GANs the crossing cost wins, while capacity-starved volumetric GANs
 * see the pressure drop. The bench prints both effects.
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Ablation: CU-pair scaling",
           "extension of Sec. IV-B's multi-3DCU mapping");

    TextTable table({"benchmark", "pairs", "ms/iter", "oversubscribed "
                                                      "xbars",
                     "crossbars used", "mJ/iter"});
    for (const char *name : {"DCGAN", "3D-GAN"}) {
        const GanModel model = makeBenchmark(name);
        for (int pairs : {1, 2, 4}) {
            AcceleratorConfig config =
                AcceleratorConfig::lerGan(ReplicaDegree::High);
            config.cuPairs = pairs;
            LerGanAccelerator accelerator(model, config);
            const TrainingReport report = accelerator.trainIteration();
            table.addRow(
                {model.name, std::to_string(pairs),
                 TextTable::num(report.timeMs(), 2),
                 std::to_string(
                     accelerator.compiled().oversubscribedCrossbars),
                 std::to_string(report.crossbarsUsed),
                 TextTable::num(pjToMj(report.totalEnergyPj()), 1)});
        }
    }
    table.print(std::cout);
    std::cout << "\nReading guide: oversubscribed crossbars time-share "
                 "physical ones (reprogramming); inter-pair hops ride "
                 "the port-level bypass links, which do not stripe.\n";
    return 0;
}
