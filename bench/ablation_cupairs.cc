/**
 * @file
 * Ablation: mapping a GAN across several 3DCU pairs (Sec. IV-B: "we map
 * generator to one or several 3DCUs").
 *
 * More pairs add CArray capacity (less duplication shrinkage, less
 * crossbar time-sharing) but layer blocks on different pairs exchange
 * their activations over the narrow inter-pair links — for mid-size
 * GANs the crossing cost wins, while capacity-starved volumetric GANs
 * see the pressure drop. The bench prints both effects; the 2x3 grid
 * runs through the parallel sweep engine.
 */

#include "bench_util.hh"
#include "core/sweep.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Ablation: CU-pair scaling",
           "extension of Sec. IV-B's multi-3DCU mapping");

    ExperimentSweep sweep;
    sweep.addBenchmark(makeBenchmark("DCGAN"))
        .addBenchmark(makeBenchmark("3D-GAN"));
    for (int pairs : {1, 2, 4}) {
        AcceleratorConfig config =
            AcceleratorConfig::lerGan(ReplicaDegree::High);
        config.cuPairs = pairs;
        sweep.addConfig("pairs=" + std::to_string(pairs), config);
    }

    RunOptions options;
    options.threads = 0; // one worker per hardware thread
    const auto results = sweep.run(options);

    TextTable table({"benchmark", "pairs", "ms/iter", "oversubscribed "
                                                      "xbars",
                     "crossbars used", "mJ/iter"});
    for (const SweepResult &result : results) {
        table.addRow(
            {result.benchmark,
             result.configLabel.substr(std::string("pairs=").size()),
             TextTable::num(result.report.timeMs(), 2),
             std::to_string(result.oversubscribed),
             std::to_string(result.crossbarsUsed),
             TextTable::num(pjToMj(result.report.totalEnergyPj()), 1)});
    }
    table.print(std::cout);
    std::cout << "\nReading guide: oversubscribed crossbars time-share "
                 "physical ones (reprogramming); inter-pair hops ride "
                 "the port-level bypass links, which do not stripe.\n";
    return 0;
}
