/**
 * @file
 * Fig. 24 reproduction: energy breakdown inside a ReRAM tile.
 *
 * Paper: ADC 45.14% and cell switching 40.16% dominate; the remainder is
 * DAC, sample-and-hold, drivers and the tile buffer. Weight-update
 * writes physically switch cells, so they are folded into the cell-
 * switching share here.
 */

#include <sstream>

#include "runner.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig24", "Fig. 24: ReRAM tile energy breakdown",
                  "ADC 45.14%, cell switching 40.16%, rest ~14.7%");
    runner.parse(argc, argv, "Fig. 24 reproduction");

    const std::string text = runner.measure(allBenchmarks().size(), [&] {
        StatSet total;
        for (const GanModel &model : allBenchmarks()) {
            const TrainingReport report = simulateTraining(
                model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
            total.merge(report.stats);
        }

        const double adc = total.get("energy.compute.adc");
        const double cell =
            total.get("energy.compute.cell") + total.get("energy.update");
        const double dac = total.get("energy.compute.dac");
        const double sh = total.get("energy.compute.sh");
        const double driver = total.get("energy.compute.driver");
        const double buffer = total.get("energy.buffer");
        const double tile_total = adc + cell + dac + sh + driver + buffer;

        TextTable table({"component", "share", "paper"});
        auto row = [&](const char *name, double value, const char *paper) {
            table.addRow(
                {name, TextTable::num(100.0 * value / tile_total, 2) + "%",
                 paper});
        };
        row("ADC", adc, "45.14%");
        row("cell switching (incl. updates)", cell, "40.16%");
        row("DAC", dac, "-");
        row("sample & hold", sh, "-");
        row("drivers/decoders", driver, "-");
        row("tile buffer", buffer, "-");
        std::ostringstream out;
        table.print(out);

        out << "\nWith 1-pJ cell switching [66] and a 60% more "
               "efficient ADC [37], the paper projects ~3x power "
               "reduction; here that hypothetical saves "
            << TextTable::num(
                   tile_total / (tile_total - 0.95 * cell - 0.6 * adc), 2)
            << "x of tile energy.\n";
        return out.str();
    });
    std::cout << text;
    return runner.finish();
}
