/**
 * @file
 * Fig. 22 reproduction: LerGAN energy against FPGA-GAN and the GPU.
 *
 * Paper: 9.75x saving over the GPU; roughly energy parity with the
 * FPGA accelerator (LerGAN consumes 1.04x FPGA-GAN's energy on
 * average, losing slightly on big GANs and MAGAN).
 */

#include <sstream>

#include "runner.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig22",
                  "Fig. 22: LerGAN vs FPGA-GAN and GPU (energy saving)",
                  "9.75x over GPU; 1/1.04x (near parity) vs FPGA-GAN");
    runner.parse(argc, argv, "Fig. 22 reproduction");

    const std::string text =
        runner.measure(allBenchmarks().size() * 3, [&] {
            TextTable table({"benchmark", "LerGAN mJ/iter", "vs FPGA-GAN",
                             "vs GPU"});
            Mean m_fpga, m_gpu;
            for (const GanModel &model : allBenchmarks()) {
                const double lergan =
                    simulateTraining(
                        model,
                        AcceleratorConfig::lerGan(ReplicaDegree::High))
                        .totalEnergyPj();
                const double fpga = simulateFpgaGan(model).totalEnergyPj();
                const double gpu = simulateGpu(model).totalEnergyPj();
                m_fpga.add(fpga / lergan);
                m_gpu.add(gpu / lergan);
                table.addRow({model.name,
                              TextTable::num(pjToMj(lergan), 1),
                              TextTable::num(fpga / lergan) + "x",
                              TextTable::num(gpu / lergan) + "x"});
            }
            table.addRow({"MEAN (paper 0.96 / 9.75)", "",
                          TextTable::num(m_fpga.value()) + "x",
                          TextTable::num(m_gpu.value()) + "x"});
            std::ostringstream out;
            table.print(out);
            return out.str();
        });
    std::cout << text;
    return runner.finish();
}
