/**
 * @file
 * Ablation: item-size scaling of a DCGAN-shaped GAN (8x8 up to 128x128).
 *
 * Bigger items mean more zero-insertion work, more inter-phase cache
 * traffic and more CArray pressure; the LerGAN-over-PRIME advantage
 * should persist (the paper's "bigger GANs favor PIM" argument from
 * Fig. 21's DiscoGAN discussion).
 */

#include "bench_util.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Ablation: item-size scaling (DCGAN-shaped)",
           "LerGAN's advantage persists as items grow");

    TextTable table({"item", "weights", "LerGAN ms", "PRIME ms",
                     "speedup", "energy saving"});
    for (int item : {8, 16, 32, 64, 128}) {
        const GanModel model = dcganScaled(item);
        const TrainingReport lergan = simulateTraining(
            model, AcceleratorConfig::lerGan(ReplicaDegree::High));
        const TrainingReport prime =
            simulateTraining(model, AcceleratorConfig::prime());
        table.addRow({std::to_string(item),
                      std::to_string(model.totalWeights()),
                      TextTable::num(lergan.timeMs(), 2),
                      TextTable::num(prime.timeMs(), 2),
                      TextTable::num(prime.timeMs() / lergan.timeMs()) +
                          "x",
                      TextTable::num(prime.totalEnergyPj() /
                                     lergan.totalEnergyPj()) +
                          "x"});
    }
    table.print(std::cout);
    return 0;
}
