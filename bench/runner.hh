/**
 * @file
 * Unified driver for the figure/table bench binaries.
 *
 * Every bench used to copy-paste the same plumbing: an ArgParser, the
 * shared Observability options, a --threads knob for sweep-based grids
 * and the final export calls. bench::Runner owns all of that, plus the
 * host-performance measurement facility behind --bench-json: any bench
 * built on the Runner can emit a machine-readable points/sec +
 * p50/p95-host-ms-per-point entry (schema below) without writing a line
 * of measurement code.
 *
 * Usage (sweep-based bench):
 * @code
 *   bench::Runner runner("fig19", "Fig. 19: ...", "paper claim ...");
 *   runner.args().addOption("trace", "...");     // bench-specific flags
 *   runner.parse(argc, argv, "Fig. 19 reproduction");
 *   ExperimentSweep sweep;  ...build grid...
 *   const auto results = runner.runSweep(sweep, kIterations);
 *   ...print tables from results...
 *   return runner.finish();
 * @endcode
 *
 * Non-sweep benches wrap their simulation work in measure():
 * @code
 *   const auto rows = runner.measure(points, [&] { ...simulate...; });
 *   ...print rows...
 * @endcode
 *
 * --bench-json FILE writes (or, with --bench-append, appends an entry
 * to) a BENCH_*.json performance-trajectory file:
 *
 *   {
 *     "schema": "lergan-bench/2",
 *     "bench": "fig19",
 *     "entries": [
 *       { "label": "scaling", "commit": "<sha>", "grid_points": 48,
 *         "iterations": 10, "hardware_threads": 8,
 *         "measurements": [
 *           { "workers": 1, "repetitions": 3, "wall_ms": ...,
 *             "points_per_sec": ..., "scaling_efficiency": ...,
 *             "p50_host_ms_per_point": ...,
 *             "p95_host_ms_per_point": ...,
 *             "host_phases_ms": { "schedule": ..., "simulate": ... } },
 *           ... ] },
 *       ... ]
 *   }
 *
 * Schema lergan-bench/2 added "hardware_threads" (the measuring
 * machine's defaultThreadCount()) per entry and "scaling_efficiency"
 * per measurement. Efficiency is points/sec at W workers divided by
 * (1-worker points/sec × min(W, hardware_threads)) — 1.0 means the
 * curve is ideal for the cores actually available, so the number stays
 * meaningful on machines with fewer cores than workers (oversubscribed
 * worker counts are expected to hold ~1.0, not W×). Appending to a
 * schema/1 file upgrades the schema line in place; old entries are
 * preserved and simply lack the new fields. Host wall-clock numbers
 * are facts about the machine that ran the bench; they are never part
 * of golden comparisons. The committed BENCH_*.json files track the
 * simulator's speed trajectory on the reference container
 * (scripts/bench_baseline.sh regenerates them).
 *
 * --bench-check FILE is the perf-regression guard: it re-measures the
 * bench and fails the process (exit 1) when (a) the measured 1-worker
 * points/sec drops more than 20% below the last committed entry's
 * 1-worker baseline, or (b) any measured multi-worker scaling
 * efficiency drops more than 20% below the efficiency the last
 * committed entry records for that worker count (contention
 * regressions show up here even when 1-worker throughput is intact).
 * scripts/check.sh runs it at 1 and 4 workers (skippable via
 * LERGAN_SKIP_PERF_GUARD=1 for slow or noisy machines).
 */

#ifndef LERGAN_BENCH_RUNNER_HH
#define LERGAN_BENCH_RUNNER_HH

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/sweep.hh"

namespace lergan {
namespace bench {

/** One timed configuration (worker count) of a bench's workload. */
struct BenchMeasurement {
    int workers = 1;
    int repetitions = 0;
    std::size_t points = 0;            ///< grid points per repetition
    double wallMs = 0.0;               ///< total wall time of the reps
    double pointsPerSec = 0.0;
    /**
     * points/sec ÷ (1-worker points/sec × min(workers, hardware
     * threads)); 1.0 = ideal scaling for the available cores. Negative
     * when the run had no 1-worker reference to normalize against
     * (then omitted from the JSON).
     */
    double scalingEfficiency = -1.0;
    double p50HostMsPerPoint = 0.0;
    double p95HostMsPerPoint = 0.0;
    /** Per-phase host time (HostProfiler delta over the timed reps). */
    std::map<std::string, double> hostPhasesMs;
};

/** Unified bench driver: argument parsing, observability, perf. */
class Runner
{
  public:
    /**
     * @param bench_name  short id recorded in the JSON entry ("fig19").
     * @param title       banner headline.
     * @param paper_claim banner "paper:" line.
     */
    Runner(std::string bench_name, std::string title,
           std::string paper_claim);

    /** Declare bench-specific options here before parse(). */
    ArgParser &args() { return args_; }

    /**
     * Declare the shared options (threads, observability, bench-json),
     * parse argv, construct the Observability plumbing and print the
     * banner — the exact sequence every bench main used to open with.
     */
    void parse(int argc, char **argv, const std::string &program_doc);

    /** The shared observability plumbing (valid after parse()). */
    Observability &obs();

    /** --threads value (0 = hardware concurrency). */
    int threads() const;

    /** True when --bench-json or --bench-check was given. */
    bool measurementWanted() const;

    /**
     * Run @p sweep once under the shared flags (--threads, --metrics
     * telemetry, --progress) and return the results for printing. When
     * --bench-json / --bench-check is active, afterwards re-runs the
     * (now warm) sweep per measured worker count — one warm-up plus
     * --bench-repeats timed repetitions each — with per-point host
     * telemetry, and records the measurements.
     */
    std::vector<SweepResult> runSweep(ExperimentSweep &sweep,
                                      int iterations);

    /**
     * Non-sweep benches: run @p body once and return its result (the
     * data the bench prints). When measurement is active, re-runs the
     * body (warm-up + timed repetitions, single configuration at the
     * --threads setting) and records a measurement over @p points
     * simulated grid points; the percentile fields then describe
     * per-repetition ms/point rather than true per-point times.
     */
    template <typename Fn>
    auto
    measure(std::size_t points, Fn &&body)
    {
        auto result = body();
        if (measurementWanted())
            measureBody(points, [&body] { (void)body(); });
        return result;
    }

    /**
     * Export everything: the --bench-json entry, the --bench-check
     * verdict and the Observability (--metrics / --self-profile) output.
     *
     * @return the process exit code: 1 when the --bench-check guard
     * detected a regression, else 0. Bench mains end with
     * `return runner.finish();`.
     */
    int finish();

  private:
    void measureSweep(ExperimentSweep &sweep, int iterations);
    void measureBody(std::size_t points,
                     const std::function<void()> &body);
    /** Worker counts to measure (--bench-workers, 0 = hardware). */
    std::vector<int> measuredWorkerCounts() const;
    /** Fill scalingEfficiency on every measurement from the 1-worker
     *  reference (no-op when the run measured no 1-worker count). */
    void computeScalingEfficiencies();
    /** Apply the --bench-check guard against @p measured points/sec. */
    void applyGuard(const BenchMeasurement &measured);
    /** Apply the scaling-efficiency side of --bench-check against
     *  every measured multi-worker count. */
    void applyScalingGuard(const std::string &baseline_text);

    std::string benchName_;
    std::string title_;
    std::string paperClaim_;
    ArgParser args_;
    std::unique_ptr<Observability> obs_;
    std::vector<BenchMeasurement> measurements_;
    int measuredIterations_ = kIterations;
    bool guardFailed_ = false;
    bool guardRan_ = false;
};

/**
 * Write one BENCH_*.json file (or append an entry to an existing one).
 * Exposed for tests; benches go through Runner::finish().
 *
 * @param append splice the entry into @p path's existing entries array
 *        instead of rewriting the file (fatal when the file does not
 *        end with the writer's own "\n  ]\n}" tail).
 */
void writeBenchJson(const std::string &path, const std::string &bench,
                    const std::string &label, const std::string &commit,
                    std::size_t grid_points, int iterations,
                    unsigned hardware_threads,
                    const std::vector<BenchMeasurement> &measurements,
                    bool append);

/**
 * @return the "points_per_sec" of the last 1-worker measurement in
 * @p bench_json_text (a file produced by writeBenchJson), or a negative
 * value when the file contains none.
 */
double lastOneWorkerPointsPerSec(const std::string &bench_json_text);

/**
 * @return the "scaling_efficiency" of the last @p workers-worker
 * measurement in @p bench_json_text, or a negative value when the file
 * records none for that worker count (e.g. schema/1 entries).
 */
double lastScalingEfficiency(const std::string &bench_json_text,
                             int workers);

} // namespace bench
} // namespace lergan

#endif // LERGAN_BENCH_RUNNER_HH
