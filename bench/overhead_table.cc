/**
 * @file
 * Sec. VI-E reproduction: software and hardware overheads of LerGAN.
 *
 * Paper: ZFDR/ZFDM compilation costs 32.52% extra compile time (minutes,
 * negligible against days of training); the added switches and wires
 * cost 13.3% area versus PRIME, justified by a 2.1x speedup at equal
 * space.
 */

#include "bench_util.hh"

#include "interconnect/three_d.hh"

int
main()
{
    using namespace lergan;
    using namespace lergan::bench;
    banner("Sec. VI-E: overheads",
           "compile +32.52%; area +13.3%; 2.1x speedup at equal space");

    // Software: compile-time overhead of the zero-free flow.
    TextTable sw({"benchmark", "traditional (s)", "LerGAN (s)",
                  "overhead"});
    Mean m_compile, m_space;
    for (const GanModel &model : allBenchmarks()) {
        const CompiledGan compiled = compileGan(
            model, AcceleratorConfig::lerGan(ReplicaDegree::Middle));
        const double overhead =
            compiled.compileMs / compiled.compileMsTraditional - 1.0;
        m_compile.add(overhead);
        sw.addRow({model.name,
                   TextTable::num(compiled.compileMsTraditional / 1e3, 1),
                   TextTable::num(compiled.compileMs / 1e3, 1),
                   TextTable::num(100 * overhead, 1) + "%"});
    }
    sw.print(std::cout);
    std::cout << "mean compile overhead: "
              << TextTable::num(100 * m_compile.value(), 2)
              << "% (paper: 32.52%)\n\n";

    // Hardware: area overhead of the 3D connection.
    const AreaModel area = areaModel3dcu(ReRamParams{});
    std::cout << "area overhead of the 3D connection: "
              << TextTable::num(100 * area.overhead(), 1)
              << "% (paper: 13.3%)\n\n";

    // Equal-space speedup: LerGAN-low-NS vs PRIME.
    TextTable ns({"benchmark", "equal-space speedup"});
    for (const GanModel &model : allBenchmarks()) {
        const double prime =
            simulateTraining(model, AcceleratorConfig::prime()).timeMs();
        const double lergan =
            simulateTraining(model, lerGanLowNs(model)).timeMs();
        m_space.add(prime / lergan);
        ns.addRow({model.name, TextTable::num(prime / lergan) + "x"});
    }
    ns.print(std::cout);
    std::cout << "mean equal-space speedup: "
              << TextTable::num(m_space.value())
              << "x (paper: 2.1x)\n";
    return 0;
}
