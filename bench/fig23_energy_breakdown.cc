/**
 * @file
 * Fig. 23 reproduction: where LerGAN's energy goes, aggregated across
 * the experimented benchmarks.
 *
 * Paper: computing dominates with 70.4%; communication takes 16% thanks
 * to the 3D connection; the rest is buffers, storage, updates and
 * control.
 */

#include <sstream>

#include "runner.hh"

int
main(int argc, char **argv)
{
    using namespace lergan;
    using namespace lergan::bench;
    Runner runner("fig23", "Fig. 23: LerGAN overall energy breakdown",
                  "computing 70.4%, communication 16%, others 13.6%");
    runner.parse(argc, argv, "Fig. 23 reproduction");

    const std::string text = runner.measure(allBenchmarks().size(), [&] {
        StatSet total;
        for (const GanModel &model : allBenchmarks()) {
            const TrainingReport report = simulateTraining(
                model, AcceleratorConfig::lerGan(ReplicaDegree::Low));
            total.merge(report.stats);
        }

        const double all = total.sumPrefix("energy.");
        TextTable table({"component", "share", "paper"});
        auto row = [&](const char *name, double value, const char *paper) {
            table.addRow({name,
                          TextTable::num(100.0 * value / all, 1) + "%",
                          paper});
        };
        row("computing (crossbar MMVs)",
            total.sumPrefix("energy.compute."), "70.4%");
        row("communication (wires/bus)", total.sumPrefix("energy.comm."),
            "16.0%");
        row("buffers (BArray)", total.get("energy.buffer"), "-");
        row("storage (SArray)", total.get("energy.storage"), "-");
        row("weight updates", total.get("energy.update"), "-");
        row("control/switching", total.get("energy.control"), "-");
        std::ostringstream out;
        table.print(out);

        out << "\ncommunication detail:\n";
        TextTable detail({"wire kind", "share of comm"});
        const double comm = total.sumPrefix("energy.comm.");
        for (const char *kind : {"htree", "added", "bypass", "bus"}) {
            detail.addRow(
                {kind,
                 TextTable::num(100.0 *
                                    total.get(std::string("energy.comm.") +
                                              kind) /
                                    comm,
                                1) +
                     "%"});
        }
        detail.print(out);
        return out.str();
    });
    std::cout << text;
    return runner.finish();
}
