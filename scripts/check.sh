#!/bin/sh
# Full verification: plain build + complete test suite, then a
# ThreadSanitizer build of the execution-engine tests (ctest label
# `tsan`) and an ASan+UBSan build of the audit/exporter tests (ctest
# label `audit`). Run from anywhere; builds land in build/, build-tsan/
# and build-asan/.
#
# Usage: scripts/check.sh [jobs]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${1:-$(nproc 2>/dev/null || echo 2)}

echo "== plain build + full test suite =="
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"

# Host-performance guard: measure the fig19 grid at 1 and 4 workers
# and fail when the 1-worker points/sec drops >20% below the committed
# BENCH_fig19.json baseline, or when the 4-worker scaling efficiency
# drops >20% below the efficiency the committed baseline records (a
# contention regression shows up there even when single-worker
# throughput is intact; see bench/runner.hh). Wall-clock measurements
# are machine-dependent; set LERGAN_SKIP_PERF_GUARD=1 on slow or noisy
# machines.
if [ "${LERGAN_SKIP_PERF_GUARD:-0}" = "1" ]; then
    echo "== perf guard skipped (LERGAN_SKIP_PERF_GUARD=1) =="
elif [ -f "$root/BENCH_fig19.json" ]; then
    echo "== perf guard: fig19 throughput + scaling efficiency vs" \
         "committed BENCH_fig19.json =="
    "$root/build/bench/fig19_lergan_vs_prime" \
        --bench-check "$root/BENCH_fig19.json" \
        --bench-workers 1,4 --bench-repeats 2 >/dev/null
else
    echo "== perf guard skipped (no BENCH_fig19.json baseline) =="
fi

# Critical-path recording overhead guard: a warm A/B replay of the
# fig19 grid templates with and without an ExecRecord attached must not
# exceed the committed overhead ratio by more than 4 points (the ratio
# is mostly machine-independent; LERGAN_SKIP_PERF_GUARD skips it too).
if [ "${LERGAN_SKIP_PERF_GUARD:-0}" = "1" ]; then
    echo "== critpath overhead guard skipped (LERGAN_SKIP_PERF_GUARD=1) =="
elif [ -f "$root/BENCH_fig19_critpath.json" ]; then
    echo "== critpath overhead guard: fig19 recording A/B vs committed" \
         "BENCH_fig19_critpath.json =="
    "$root/build/bench/fig19_lergan_vs_prime" \
        --critpath-check "$root/BENCH_fig19_critpath.json" >/dev/null
else
    echo "== critpath overhead guard skipped (no baseline) =="
fi

# Span tracing overhead guard: a warm A/B run of the fig19 grid with
# and without a flight recorder attached must not exceed max(3%, the
# committed overhead + 2 points) — the tracing layer's "≤3% on the
# reference container" budget (LERGAN_SKIP_PERF_GUARD skips it too).
if [ "${LERGAN_SKIP_PERF_GUARD:-0}" = "1" ]; then
    echo "== tracing overhead guard skipped (LERGAN_SKIP_PERF_GUARD=1) =="
elif [ -f "$root/BENCH_fig19_tracing.json" ]; then
    echo "== tracing overhead guard: fig19 span-recording A/B vs" \
         "committed BENCH_fig19_tracing.json =="
    "$root/build/bench/fig19_lergan_vs_prime" \
        --tracing-check "$root/BENCH_fig19_tracing.json" >/dev/null
else
    echo "== tracing overhead guard skipped (no baseline) =="
fi

# The exec tests exercise the worker pool and the compile cache under
# real concurrency, and the fault tests drive the Monte Carlo driver's
# seeded trials across the same pool; TSan is the check that the
# "shared immutable compiled model, per-worker mutable state" contract
# actually holds.
echo "== ThreadSanitizer availability probe =="
probe_dir=$(mktemp -d)
trap 'rm -rf "$probe_dir"' EXIT
cat >"$probe_dir/probe.cc" <<'EOF'
#include <thread>
int main() { std::thread([] {}).join(); }
EOF
if c++ -std=c++20 -fsanitize=thread "$probe_dir/probe.cc" \
        -o "$probe_dir/probe" 2>/dev/null && "$probe_dir/probe"; then
    echo "== TSan build of the exec + fault + telemetry + critpath +" \
         "tracing tests (ctest -L 'tsan|faults|telemetry|critpath|tracing') =="
    cmake -B "$root/build-tsan" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread" >/dev/null
    cmake --build "$root/build-tsan" -j "$jobs" \
        --target test_exec test_faults test_telemetry test_critpath \
        test_tracing
    ctest --test-dir "$root/build-tsan" \
        -L 'tsan|faults|telemetry|critpath|tracing' \
        --output-on-failure -j "$jobs"
else
    echo "ThreadSanitizer unavailable on this toolchain; skipping the" \
         "tsan-labelled tests (plain suite already ran)."
fi

# The audit tests walk every cross-layer data structure a simulation
# produces (stats, traces, compiled mappings), which makes them the
# densest drivers for Address- and UBSanitizer.
echo "== ASan+UBSan availability probe =="
if c++ -std=c++20 -fsanitize=address,undefined "$probe_dir/probe.cc" \
        -o "$probe_dir/probe-asan" 2>/dev/null && \
        "$probe_dir/probe-asan"; then
    echo "== ASan+UBSan build of the audit tests (ctest -L audit) =="
    cmake -B "$root/build-asan" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
        >/dev/null
    cmake --build "$root/build-asan" -j "$jobs" \
        --target test_audit test_sweep_io
    ctest --test-dir "$root/build-asan" -L audit --output-on-failure \
        -j "$jobs"
else
    echo "ASan+UBSan unavailable on this toolchain; skipping the" \
         "audit-labelled sanitizer rerun (plain suite already ran)."
fi

echo "== all checks passed =="
