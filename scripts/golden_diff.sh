#!/bin/sh
# Byte-diff a binary's stdout against a committed golden snapshot.
#
# Usage: golden_diff.sh <golden-file> <binary> [args...]
#
# Exits non-zero (with a unified diff on stdout) when the output
# deviates. Regenerate snapshots with scripts/update_goldens.sh.
set -eu

golden="$1"
shift

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

"$@" > "$tmp"
diff -u "$golden" "$tmp"
