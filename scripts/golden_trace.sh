#!/bin/sh
# Diff a bench's span NDJSON export against a committed golden.
#
# Usage: golden_trace.sh <golden-file> <binary> <threads> [args...]
#
# Runs the binary with --trace-spans at the given worker count, strips
# each line's trailing "host" object (lane, begin/duration, queue wait
# — wall-clock facts about this machine), and byte-diffs the rest.
# Running at both 1 and 4 workers against the SAME golden is the span
# determinism check: trace ids, span ids, names, parent links and the
# deterministic attributes are pure functions of the point grid, so
# they must not depend on thread count or completion order.
set -eu

golden="$1"
bin="$2"
threads="$3"
shift 3

raw="$(mktemp)"
tmp="$(mktemp)"
trap 'rm -f "$raw" "$tmp"' EXIT

"$bin" --threads "$threads" --trace-spans "$raw" "$@" > /dev/null
sed -E 's/,"host":\{[^{}]*\}\}$/}/' "$raw" > "$tmp"
diff -u "$golden" "$tmp"
