#!/usr/bin/env python3
"""Plot the exported evaluation grid.

Usage:
    ./build/bench/export_results --json results.json
    python3 scripts/plot_results.py results.json [out_prefix]

Produces <out_prefix>_speedup.svg and <out_prefix>_energy.svg using only
the standard library (hand-written SVG bars), so it runs offline.
"""

import json
import sys


def load(path):
    with open(path) as fh:
        return json.load(fh)


def group(rows):
    """-> {benchmark: {config: row}} preserving benchmark order."""
    table = {}
    for row in rows:
        table.setdefault(row["benchmark"], {})[row["config"]] = row
    return table


def bars_svg(title, series, out_path):
    """series: list of (label, {config: value}) with a shared config set."""
    configs = sorted({c for _, values in series for c in values})
    width, height, margin = 980, 360, 50
    plot_w, plot_h = width - 2 * margin, height - 2 * margin
    peak = max(v for _, values in series for v in values.values()) or 1.0
    group_w = plot_w / max(1, len(series))
    bar_w = group_w / (len(configs) + 1)
    palette = ["#4878a8", "#e08214", "#5aae61", "#9970ab", "#c51b7d"]

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{width/2}" y="20" text-anchor="middle" '
        f'font-size="14">{title}</text>',
        f'<line x1="{margin}" y1="{height-margin}" x2="{width-margin}" '
        f'y2="{height-margin}" stroke="#333"/>',
    ]
    for gi, (label, values) in enumerate(series):
        x0 = margin + gi * group_w
        for ci, config in enumerate(configs):
            value = values.get(config, 0.0)
            bar_h = plot_h * value / peak
            x = x0 + (ci + 0.5) * bar_w
            y = height - margin - bar_h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w*0.9:.1f}" '
                f'height="{bar_h:.1f}" fill="{palette[ci % len(palette)]}"'
                f'><title>{label} {config}: {value:.2f}</title></rect>'
            )
        parts.append(
            f'<text x="{x0 + group_w/2:.1f}" y="{height-margin+14}" '
            f'text-anchor="middle">{label}</text>'
        )
    for ci, config in enumerate(configs):
        parts.append(
            f'<rect x="{margin + ci*140}" y="{28}" width="10" height="10" '
            f'fill="{palette[ci % len(palette)]}"/>'
            f'<text x="{margin + ci*140 + 14}" y="{37}">{config}</text>'
        )
    parts.append("</svg>")
    with open(out_path, "w") as fh:
        fh.write("\n".join(parts))
    print(f"wrote {out_path}")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    rows = load(sys.argv[1])
    prefix = sys.argv[2] if len(sys.argv) > 2 else "lergan"
    table = group(rows)

    speedup, energy = [], []
    for benchmark, configs in table.items():
        base = configs.get("prime")
        if base is None:
            continue
        speedup.append(
            (
                benchmark,
                {
                    c: base["ms_per_iteration"] / r["ms_per_iteration"]
                    for c, r in configs.items()
                    if c != "prime"
                },
            )
        )
        energy.append(
            (
                benchmark,
                {
                    c: base["mj_per_iteration"] / r["mj_per_iteration"]
                    for c, r in configs.items()
                    if c != "prime"
                },
            )
        )
    bars_svg("Speedup over PRIME (Fig. 19)", speedup,
             f"{prefix}_speedup.svg")
    bars_svg("Energy saving over PRIME (Fig. 20)", energy,
             f"{prefix}_energy.svg")


if __name__ == "__main__":
    main()
