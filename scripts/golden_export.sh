#!/bin/sh
# Byte-diff export_results output (JSON + CSV, with auditing on)
# against the committed goldens.
#
# Usage: golden_export.sh <golden-dir> <export_results-binary> <threads>
#
# Running this at both --threads 1 and --threads 4 against the SAME
# goldens is the determinism check: sweep exports must not depend on
# worker count or completion order.
set -eu

goldendir="$1"
bin="$2"
threads="$3"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$bin" --json "$tmp/results.json" --csv "$tmp/results.csv" \
    --threads "$threads" --audit > /dev/null
diff -u "$goldendir/export_results.json" "$tmp/results.json"
diff -u "$goldendir/export_results.csv" "$tmp/results.csv"
