#!/bin/sh
# Diff a bench's sim-time metrics snapshot against a committed golden.
#
# Usage: golden_metrics.sh <golden-file> <binary> <threads> [args...]
#
# Runs the binary with --metrics (Prometheus text format) at the given
# worker count, strips the host_* lines (wall clocks, worker busy time
# — facts about this machine, not the simulated one), and byte-diffs
# the rest. Running at both 1 and 4 workers against the SAME golden is
# the telemetry determinism check: every sim-time instrument is an
# integer accumulator, so totals must not depend on thread interleaving.
set -eu

golden="$1"
bin="$2"
threads="$3"
shift 3

raw="$(mktemp)"
tmp="$(mktemp)"
trap 'rm -f "$raw" "$tmp"' EXIT

"$bin" --threads "$threads" --metrics "$raw" --metrics-format prom \
    "$@" > /dev/null
grep -v -e '^host_' -e '^# TYPE host_' "$raw" > "$tmp"
diff -u "$golden" "$tmp"
