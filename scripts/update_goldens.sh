#!/bin/sh
# Regenerate the committed golden snapshots in tests/golden/ from the
# current build. Run after an intentional change to simulator numbers
# or export formats, then review the diff like any other code change:
#
#   cmake --build build
#   scripts/update_goldens.sh [build-dir]
#   git diff tests/golden/
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
out="$root/tests/golden"
mkdir -p "$out"

for bench in fig16_zfdr_phases fig17_3d_vs_htree fig18_zfdr_vs_nr \
    fig19_lergan_vs_prime fig20_energy_vs_prime fig21_perf_fpga_gpu \
    fig22_energy_fpga_gpu fig23_energy_breakdown fig24_tile_breakdown
do
    echo "golden: $bench"
    "$build/bench/$bench" > "$out/$bench.txt"
done

# table5 measures wall-clock; --golden masks the host-dependent cells.
echo "golden: table5_benchmarks"
"$build/bench/table5_benchmarks" --golden > "$out/table5_benchmarks.txt"

echo "golden: export_results"
"$build/bench/export_results" --json "$out/export_results.json" \
    --csv "$out/export_results.csv" --threads 1 --audit > /dev/null

# Seeded Monte Carlo: deterministic for any worker count, so the same
# snapshot serves the 1- and 4-worker golden tests.
echo "golden: fault_sweep"
"$build/bench/fault_sweep" --golden --threads 1 > "$out/fault_sweep.txt"

# Sim-time telemetry snapshot: integer accumulators only, so the same
# golden serves the 1- and 4-worker determinism tests. host_* lines
# are wall-clock facts about the generating machine and stay out.
echo "golden: fig19_metrics"
raw="$(mktemp)"
"$build/bench/fig19_lergan_vs_prime" --threads 1 --metrics "$raw" \
    --metrics-format prom > /dev/null
grep -v -e '^host_' -e '^# TYPE host_' "$raw" \
    > "$out/fig19_metrics.prom"
rm -f "$raw"

# Span NDJSON export: trace/span ids and deterministic attributes are
# pure functions of the point grid, so the same golden serves the 1-
# and 4-worker determinism tests. Each line's "host" object (lane,
# begin/duration, queue wait — wall-clock facts) is stripped.
echo "golden: fig19_spans"
raw="$(mktemp)"
"$build/bench/fig19_lergan_vs_prime" --threads 1 --trace-spans "$raw" \
    > /dev/null
sed -E 's/,"host":\{[^{}]*\}\}$/}/' "$raw" \
    > "$out/fig19_spans.ndjson"
rm -f "$raw"

echo "done; review with: git diff tests/golden/"
