#!/bin/sh
# Regenerate the committed BENCH_*.json host-performance baselines.
#
# Builds the bench binaries, then measures the fig19 grid (the paper's
# headline figure and the widest sweep) across a 1/2/4/8-worker scaling
# curve and appends a fresh "scaling" entry (points/sec + scaling
# efficiency per worker count, schema lergan-bench/2) to
# BENCH_fig19.json, preserving the earlier entries — the file is the
# perf trajectory. Run it on the reference container after a perf-
# relevant change and commit the result; scripts/check.sh guards future
# changes against the newest entry (1-worker throughput and 4-worker
# scaling efficiency; see --bench-check in bench/runner.hh).
#
# Usage: scripts/bench_baseline.sh [jobs]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${1:-$(nproc 2>/dev/null || echo 2)}
commit=$(git -C "$root" rev-parse --short HEAD 2>/dev/null || echo unknown)

cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs" --target fig19_lergan_vs_prime

# Append when the trajectory file exists, otherwise start one.
append=""
[ -f "$root/BENCH_fig19.json" ] && append="--bench-append"

"$root/build/bench/fig19_lergan_vs_prime" \
    --bench-json "$root/BENCH_fig19.json" $append \
    --bench-label scaling \
    --bench-commit "$commit" \
    --bench-workers 1,2,4,8 \
    --bench-repeats 3 >/dev/null

echo "wrote $root/BENCH_fig19.json (commit $commit)"

# Critical-path recording overhead (warm A/B over the grid templates):
# scripts/check.sh fails when a future change pushes the measured
# overhead more than 4 points above this committed figure.
"$root/build/bench/fig19_lergan_vs_prime" \
    --critpath-baseline "$root/BENCH_fig19_critpath.json" >/dev/null

echo "wrote $root/BENCH_fig19_critpath.json"

# Span tracing overhead (warm A/B over the fig19 grid with and without
# a flight recorder attached): scripts/check.sh fails when a future
# change pushes the measured overhead above max(3%, committed + 2).
"$root/build/bench/fig19_lergan_vs_prime" \
    --tracing-baseline "$root/BENCH_fig19_tracing.json" >/dev/null

echo "wrote $root/BENCH_fig19_tracing.json"
