/**
 * @file
 * Small string utilities used by the topology DSL parser and reporters.
 */

#ifndef LERGAN_COMMON_STRINGS_HH
#define LERGAN_COMMON_STRINGS_HH

#include <string>
#include <vector>

namespace lergan {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &text, char sep);

/** Remove leading/trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** @return true iff @p text starts with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** @return true iff @p text ends with @p suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/**
 * Parse a non-negative integer, failing loudly on malformed input.
 *
 * @param text  Digits to parse.
 * @param what  Context used in the error message.
 */
int parseInt(const std::string &text, const std::string &what);

} // namespace lergan

#endif // LERGAN_COMMON_STRINGS_HH
