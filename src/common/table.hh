/**
 * @file
 * Plain-text table printer used by every bench binary.
 *
 * Produces aligned, pipe-separated rows so figure reproductions read like
 * the tables/series in the paper.
 */

#ifndef LERGAN_COMMON_TABLE_HH
#define LERGAN_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace lergan {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimal places. */
    static std::string num(double value, int precision = 2);

    /** Render the whole table (header, rule, rows) to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lergan

#endif // LERGAN_COMMON_TABLE_HH
