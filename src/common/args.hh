/**
 * @file
 * Minimal command-line argument parser for the bench and example
 * binaries.
 *
 * Supports "--flag", "--key value" and "--key=value" forms, typed
 * accessors with defaults, and an auto-generated usage message. Unknown
 * arguments are fatal so typos never silently fall back to defaults.
 */

#ifndef LERGAN_COMMON_ARGS_HH
#define LERGAN_COMMON_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace lergan {

/** Parsed command line. */
class ArgParser
{
  public:
    /**
     * Declare an option before parsing.
     *
     * @param name     option name without the leading dashes ("batch").
     * @param help     one-line description for the usage message.
     * @param fallback default value ("" for boolean flags).
     * @param is_flag  true for valueless boolean flags.
     */
    void addOption(const std::string &name, const std::string &help,
                   const std::string &fallback = "", bool is_flag = false);

    /**
     * Parse argv. Fatal on unknown options or missing values; prints the
     * usage message and exits 0 when --help is present.
     *
     * @param program_doc one-line description of the binary.
     */
    void parse(int argc, char **argv, const std::string &program_doc);

    /** @return true if the flag/option was given on the command line. */
    bool given(const std::string &name) const;

    /** String value (explicit or default). */
    std::string get(const std::string &name) const;

    /** Integer value; fatal on malformed input. */
    int getInt(const std::string &name) const;

    /** Double value; fatal on malformed input. */
    double getDouble(const std::string &name) const;

    /** Boolean flag presence. */
    bool getFlag(const std::string &name) const;

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the usage text. */
    std::string usage(const std::string &program_doc) const;

  private:
    struct Option {
        std::string help;
        std::string fallback;
        bool isFlag = false;
    };

    std::map<std::string, Option> options_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
    std::string program_;
};

} // namespace lergan

#endif // LERGAN_COMMON_ARGS_HH
