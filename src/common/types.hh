/**
 * @file
 * Fundamental quantity types shared by all simulator components.
 *
 * Times are kept in picoseconds as unsigned 64-bit integers so that event
 * ordering is exact; energies are kept in picojoules as doubles since they
 * are only ever accumulated and reported.
 */

#ifndef LERGAN_COMMON_TYPES_HH
#define LERGAN_COMMON_TYPES_HH

#include <cstdint>

namespace lergan {

/** Simulated time in picoseconds. */
using PicoSeconds = std::uint64_t;

/** Energy in picojoules. */
using PicoJoules = double;

/** Data size in bytes. */
using Bytes = std::uint64_t;

/** Convert nanoseconds to the canonical picosecond representation. */
constexpr PicoSeconds
nsToPs(double ns)
{
    return static_cast<PicoSeconds>(ns * 1e3 + 0.5);
}

/** Convert picoseconds to (floating) nanoseconds for reporting. */
constexpr double
psToNs(PicoSeconds ps)
{
    return static_cast<double>(ps) * 1e-3;
}

/** Convert picoseconds to (floating) milliseconds for reporting. */
constexpr double
psToMs(PicoSeconds ps)
{
    return static_cast<double>(ps) * 1e-9;
}

/** Convert picojoules to millijoules for reporting. */
constexpr double
pjToMj(PicoJoules pj)
{
    return pj * 1e-9;
}

} // namespace lergan

#endif // LERGAN_COMMON_TYPES_HH
