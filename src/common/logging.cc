#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace lergan {
namespace detail {

namespace {

/** Human-readable tag for each level. */
const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
emit(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", levelTag(level), msg.c_str());
}

void
terminate(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", levelTag(level), msg.c_str(),
                 file, line);
    if (level == LogLevel::Fatal)
        std::exit(1);
    std::abort();
}

} // namespace detail
} // namespace lergan
