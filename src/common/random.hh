/**
 * @file
 * Deterministic pseudo-random generator for workload synthesis.
 *
 * A thin xoshiro256** wrapper so every run of every test/bench is
 * reproducible regardless of the standard library implementation.
 */

#ifndef LERGAN_COMMON_RANDOM_HH
#define LERGAN_COMMON_RANDOM_HH

#include <cstdint>

namespace lergan {

/**
 * xoshiro256** PRNG (Blackman & Vigna, public domain reference algorithm).
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x1e57ULL);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return uniform double in [0, 1). */
    double nextDouble();

  private:
    std::uint64_t state_[4];
};

} // namespace lergan

#endif // LERGAN_COMMON_RANDOM_HH
