/**
 * @file
 * Lightweight named-statistic registry.
 *
 * Components register scalar counters/accumulators under dotted names
 * ("tile.adc_energy_pj"). A StatSet can be merged, scaled, diffed and
 * pretty-printed; benches use it to emit the per-figure series.
 */

#ifndef LERGAN_COMMON_STATS_HH
#define LERGAN_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>

namespace lergan {

/**
 * An ordered map from statistic name to accumulated double value.
 *
 * Deliberately simple: all statistics in this project are accumulated
 * scalars (times, energies, counts). Ordering is lexicographic so reports
 * are deterministic.
 */
class StatSet
{
  public:
    /** Add @p delta to the statistic named @p name (creating it at 0). */
    void add(const std::string &name, double delta);

    /** Overwrite the statistic named @p name. */
    void set(const std::string &name, double value);

    /** @return value of @p name, or 0 if absent. */
    double get(const std::string &name) const;

    /** @return true iff a statistic named @p name exists. */
    bool has(const std::string &name) const;

    /** Merge all statistics of @p other into this set (summing). */
    void merge(const StatSet &other);

    /** Multiply every statistic by @p factor. */
    void scale(double factor);

    /** Sum of all statistics whose name starts with @p prefix. */
    double sumPrefix(const std::string &prefix) const;

    /** Remove all statistics. */
    void clear();

    /** Number of registered statistics. */
    std::size_t size() const { return values_.size(); }

    /** Iteration support for reporting. */
    auto begin() const { return values_.begin(); }
    auto end() const { return values_.end(); }

    /** Print "name = value" lines, optionally filtered by prefix. */
    void print(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::map<std::string, double> values_;
};

} // namespace lergan

#endif // LERGAN_COMMON_STATS_HH
