#include "common/strings.hh"

#include <cctype>

#include "common/logging.hh"

namespace lergan {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == sep) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

int
parseInt(const std::string &text, const std::string &what)
{
    if (text.empty())
        LERGAN_FATAL("expected an integer for ", what, ", got empty string");
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
            LERGAN_FATAL("expected an integer for ", what, ", got '", text,
                         "'");
        }
    }
    return std::stoi(text);
}

} // namespace lergan
