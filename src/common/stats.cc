#include "common/stats.hh"

#include <iomanip>

namespace lergan {

void
StatSet::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.values_)
        values_[name] += value;
}

void
StatSet::scale(double factor)
{
    for (auto &[name, value] : values_)
        value *= factor;
}

double
StatSet::sumPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second;
    }
    return total;
}

void
StatSet::clear()
{
    values_.clear();
}

void
StatSet::print(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : values_) {
        if (!prefix.empty() &&
            name.compare(0, prefix.size(), prefix) != 0) {
            continue;
        }
        os << std::left << std::setw(40) << name << " = "
           << std::setprecision(12) << value << '\n';
    }
}

} // namespace lergan
