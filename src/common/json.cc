#include "common/json.hh"

#include <cstdio>

#include "common/logging.hh"

namespace lergan {

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted the comma
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            os_ << ',';
        hasElement_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    LERGAN_ASSERT(!hasElement_.empty() && !pendingKey_,
                  "endObject: not inside an object");
    hasElement_.pop_back();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    LERGAN_ASSERT(!hasElement_.empty() && !pendingKey_,
                  "endArray: not inside an array");
    hasElement_.pop_back();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    LERGAN_ASSERT(!hasElement_.empty(), "key outside of an object");
    if (hasElement_.back())
        os_ << ',';
    hasElement_.back() = true;
    os_ << '"' << escape(name) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separator();
    os_ << '"' << escape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    separator();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separator();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    separator();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separator();
    os_ << (flag ? "true" : "false");
    return *this;
}

} // namespace lergan
