#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace lergan {

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted the comma
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            os_ << ',';
        hasElement_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    LERGAN_ASSERT(!hasElement_.empty() && !pendingKey_,
                  "endObject: not inside an object");
    hasElement_.pop_back();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    LERGAN_ASSERT(!hasElement_.empty() && !pendingKey_,
                  "endArray: not inside an array");
    hasElement_.pop_back();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    LERGAN_ASSERT(!hasElement_.empty(), "key outside of an object");
    if (hasElement_.back())
        os_ << ',';
    hasElement_.back() = true;
    os_ << '"' << escape(name) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separator();
    os_ << '"' << escape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    separator();
    if (!std::isfinite(number)) {
        // JSON has no representation for NaN or Infinity; "nan" would
        // make the whole document unparsable.
        os_ << "null";
        return *this;
    }
    // 17 significant digits round-trip every finite double exactly.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separator();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    separator();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separator();
    os_ << (flag ? "true" : "false");
    return *this;
}

namespace {

/** Recursive-descent JSON acceptor (no DOM, no value extraction). */
class JsonChecker
{
  public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool
    check(std::string *error)
    {
        ok_ = true;
        pos_ = 0;
        skipSpace();
        parseValue();
        skipSpace();
        if (ok_ && pos_ != text_.size())
            failAt(pos_, "trailing characters after the JSON value");
        if (!ok_ && error)
            *error = error_;
        return ok_;
    }

  private:
    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    bool ok_ = true;
    std::string error_;

    void
    failAt(std::size_t pos, const std::string &what)
    {
        if (!ok_)
            return; // keep the first error
        ok_ = false;
        error_ = what + " at byte " + std::to_string(pos);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipSpace()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (atEnd() || peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    expectLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            failAt(pos_, "invalid literal");
            return;
        }
        pos_ += word.size();
    }

    void
    parseValue()
    {
        if (!ok_)
            return;
        if (atEnd()) {
            failAt(pos_, "unexpected end of input");
            return;
        }
        if (++depth_ > kMaxDepth) {
            failAt(pos_, "nesting deeper than 256 levels");
            return;
        }
        switch (peek()) {
          case '{': parseObject(); break;
          case '[': parseArray(); break;
          case '"': parseString(); break;
          case 't': expectLiteral("true"); break;
          case 'f': expectLiteral("false"); break;
          case 'n': expectLiteral("null"); break;
          default:  parseNumber(); break;
        }
        --depth_;
    }

    void
    parseObject()
    {
        consume('{');
        skipSpace();
        if (consume('}'))
            return;
        while (ok_) {
            skipSpace();
            if (atEnd() || peek() != '"') {
                failAt(pos_, "expected an object key string");
                return;
            }
            parseString();
            skipSpace();
            if (!consume(':')) {
                failAt(pos_, "expected ':' after an object key");
                return;
            }
            skipSpace();
            parseValue();
            skipSpace();
            if (consume('}'))
                return;
            if (!consume(',')) {
                failAt(pos_, "expected ',' or '}' in an object");
                return;
            }
        }
    }

    void
    parseArray()
    {
        consume('[');
        skipSpace();
        if (consume(']'))
            return;
        while (ok_) {
            skipSpace();
            parseValue();
            skipSpace();
            if (consume(']'))
                return;
            if (!consume(',')) {
                failAt(pos_, "expected ',' or ']' in an array");
                return;
            }
        }
    }

    void
    parseString()
    {
        consume('"');
        while (ok_) {
            if (atEnd()) {
                failAt(pos_, "unterminated string");
                return;
            }
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_++]);
            if (c == '"')
                return;
            if (c < 0x20) {
                failAt(pos_ - 1, "unescaped control character");
                return;
            }
            if (c != '\\')
                continue;
            if (atEnd()) {
                failAt(pos_, "unterminated escape");
                return;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': case '\\': case '/': case 'b': case 'f':
              case 'n': case 'r': case 't':
                break;
              case 'u':
                for (int i = 0; i < 4; ++i) {
                    if (atEnd() ||
                        !std::isxdigit(
                            static_cast<unsigned char>(peek()))) {
                        failAt(pos_, "invalid \\u escape");
                        return;
                    }
                    ++pos_;
                }
                break;
              default:
                failAt(pos_ - 1, "invalid escape character");
                return;
            }
        }
    }

    void
    parseNumber()
    {
        const std::size_t start = pos_;
        consume('-');
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            failAt(start, "invalid number");
            return;
        }
        if (!consume('0'))
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        if (consume('.')) {
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek()))) {
                failAt(pos_, "digits must follow a decimal point");
                return;
            }
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!consume('+'))
                consume('-');
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek()))) {
                failAt(pos_, "digits must follow an exponent");
                return;
            }
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
    }
};

} // namespace

bool
isValidJson(std::string_view text, std::string *error)
{
    return JsonChecker(text).check(error);
}

} // namespace lergan
