/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user-caused errors the simulation cannot
 * continue from, warn()/inform() for non-fatal status messages.
 */

#ifndef LERGAN_COMMON_LOGGING_HH
#define LERGAN_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace lergan {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/**
 * Emit a formatted message; for Fatal exits with code 1, for Panic aborts.
 *
 * @param level Message severity.
 * @param file  Source file of the call site.
 * @param line  Source line of the call site.
 * @param msg   Fully formatted message text.
 */
[[noreturn]] void terminate(LogLevel level, const char *file, int line,
                            const std::string &msg);

/** Emit a non-terminating message to stderr. */
void emit(LogLevel level, const std::string &msg);

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace lergan

/** Internal invariant violated: print message and abort. */
#define LERGAN_PANIC(...)                                                    \
    ::lergan::detail::terminate(::lergan::LogLevel::Panic, __FILE__,         \
                                __LINE__, ::lergan::detail::concat(__VA_ARGS__))

/** User error the run cannot continue from: print message and exit(1). */
#define LERGAN_FATAL(...)                                                    \
    ::lergan::detail::terminate(::lergan::LogLevel::Fatal, __FILE__,         \
                                __LINE__, ::lergan::detail::concat(__VA_ARGS__))

/** Suspicious but survivable condition. */
#define LERGAN_WARN(...)                                                     \
    ::lergan::detail::emit(::lergan::LogLevel::Warn,                         \
                           ::lergan::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define LERGAN_INFORM(...)                                                   \
    ::lergan::detail::emit(::lergan::LogLevel::Inform,                       \
                           ::lergan::detail::concat(__VA_ARGS__))

/** Checked invariant with message; active in all build types. */
#define LERGAN_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            LERGAN_PANIC("assertion failed: " #cond " — ",                   \
                         ::lergan::detail::concat(__VA_ARGS__));             \
        }                                                                    \
    } while (false)

#endif // LERGAN_COMMON_LOGGING_HH
