#include "common/args.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace lergan {

void
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &fallback, bool is_flag)
{
    LERGAN_ASSERT(!options_.count(name), "duplicate option --", name);
    options_[name] = Option{help, fallback, is_flag};
}

std::string
ArgParser::usage(const std::string &program_doc) const
{
    std::ostringstream oss;
    oss << program_ << ": " << program_doc << "\n\noptions:\n";
    for (const auto &[name, option] : options_) {
        oss << "  --" << name;
        if (!option.isFlag)
            oss << " <value>";
        oss << "\n      " << option.help;
        if (!option.fallback.empty())
            oss << " (default: " << option.fallback << ")";
        oss << "\n";
    }
    oss << "  --help\n      show this message\n";
    return oss.str();
}

void
ArgParser::parse(int argc, char **argv, const std::string &program_doc)
{
    program_ = argc > 0 ? argv[0] : "?";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        if (arg == "help") {
            std::fputs(usage(program_doc).c_str(), stdout);
            std::exit(0);
        }
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(arg);
        if (it == options_.end())
            LERGAN_FATAL("unknown option --", arg, "\n",
                         usage(program_doc));
        if (it->second.isFlag) {
            LERGAN_ASSERT(!has_value, "flag --", arg,
                          " does not take a value");
            values_[arg] = "1";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                LERGAN_FATAL("option --", arg, " needs a value");
            value = argv[++i];
        }
        values_[arg] = value;
    }
}

bool
ArgParser::given(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
ArgParser::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it != values_.end())
        return it->second;
    auto opt = options_.find(name);
    LERGAN_ASSERT(opt != options_.end(), "undeclared option --", name);
    return opt->second.fallback;
}

int
ArgParser::getInt(const std::string &name) const
{
    const std::string text = get(name);
    try {
        std::size_t used = 0;
        const int value = std::stoi(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        LERGAN_FATAL("option --", name, " expects an integer, got '", text,
                     "'");
    }
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string text = get(name);
    try {
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        LERGAN_FATAL("option --", name, " expects a number, got '", text,
                     "'");
    }
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return get(name) == "1";
}

} // namespace lergan
