#include "common/random.hh"

#include "common/logging.hh"

namespace lergan {

namespace {

/** splitmix64 step used to expand a single seed into the full state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto &word : state_)
        word = splitmix64(seed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    LERGAN_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t value = next();
        if (value >= threshold)
            return value % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace lergan
