/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Used by the trace exporter (Chrome trace format) and the machine-
 * readable bench output. Write-only by design: the project never parses
 * JSON, so a full DOM would be dead weight.
 */

#ifndef LERGAN_COMMON_JSON_HH
#define LERGAN_COMMON_JSON_HH

#include <ostream>
#include <string>
#include <vector>

namespace lergan {

/**
 * Streaming writer producing syntactically valid JSON.
 *
 * Usage:
 * @code
 *   JsonWriter json(os);
 *   json.beginObject();
 *   json.key("name").value("DCGAN");
 *   json.key("layers").beginArray();
 *   json.value(1).value(2);
 *   json.endArray();
 *   json.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);

    /** Escape a string per RFC 8259. */
    static std::string escape(const std::string &text);

  private:
    /** Emit a comma when needed and mark the container as non-empty. */
    void separator();

    std::ostream &os_;
    /** true = the current container already has an element. */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

} // namespace lergan

#endif // LERGAN_COMMON_JSON_HH
