/**
 * @file
 * Minimal streaming JSON writer, plus a structural validity checker.
 *
 * The writer feeds the trace exporter (Chrome trace format) and the
 * machine-readable bench output. The checker exists for the tests and
 * the golden-regression harness: it accepts or rejects a byte string as
 * RFC 8259 JSON without building a DOM (the project never needs parsed
 * values, only the guarantee that consumers can parse them).
 */

#ifndef LERGAN_COMMON_JSON_HH
#define LERGAN_COMMON_JSON_HH

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lergan {

/**
 * Streaming writer producing syntactically valid JSON.
 *
 * Usage:
 * @code
 *   JsonWriter json(os);
 *   json.beginObject();
 *   json.key("name").value("DCGAN");
 *   json.key("layers").beginArray();
 *   json.value(1).value(2);
 *   json.endArray();
 *   json.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    /**
     * Numbers print round-trip exact (%.17g): re-parsing the emitted
     * text recovers the identical double, so byte-identical exports are
     * value-identical too. JSON has no NaN/Infinity — non-finite values
     * emit null.
     */
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);

    /** Escape a string per RFC 8259. */
    static std::string escape(const std::string &text);

  private:
    /** Emit a comma when needed and mark the container as non-empty. */
    void separator();

    std::ostream &os_;
    /** true = the current container already has an element. */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

/**
 * @return true iff @p text is one complete, syntactically valid JSON
 * value (RFC 8259) with nothing but whitespace around it. On failure,
 * @p error (when non-null) receives a description with a byte offset.
 */
bool isValidJson(std::string_view text, std::string *error = nullptr);

} // namespace lergan

#endif // LERGAN_COMMON_JSON_HH
