#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace lergan {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LERGAN_ASSERT(!headers_.empty(), "a table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    LERGAN_ASSERT(cells.size() == headers_.size(),
                  "row has ", cells.size(), " cells, expected ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? " |" : " | ");
        }
        os << '\n';
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-')
           << (c + 1 == headers_.size() ? "|" : "|");
    os << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace lergan
