#include "audit/audit.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/strings.hh"
#include "core/compiler.hh"
#include "core/machine.hh"
#include "core/phase_report.hh"
#include "core/report.hh"
#include "core/validate.hh"
#include "sim/trace.hh"
#include "zfdr/formulas.hh"
#include "zfdr/reshape.hh"

namespace lergan {

namespace {

/** Relative closeness under the context tolerance. */
bool
near(double a, double b, double tol)
{
    return std::abs(a - b) <=
           tol * std::max({std::abs(a), std::abs(b), 1.0});
}

/** printf-lite failure helper. */
template <typename... Args>
void
fail(AuditVerdict &verdict, const char *check, Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    verdict.fail(check, oss.str());
}

/**
 * The component families of the accelerator's energy accounting. The
 * breakdowns (fig23, the exporters, TrainingReport::print) enumerate
 * exactly these; an `energy.*` key outside them is charged into the
 * total but silently missing from every breakdown.
 */
constexpr const char *kEnergyPrefixFamilies[] = {
    "energy.compute.",
    "energy.comm.",
};
constexpr const char *kEnergyScalarComponents[] = {
    "energy.control",
    "energy.buffer",
    "energy.storage",
    "energy.update",
};

bool
knownEnergyComponent(const std::string &name)
{
    for (const char *prefix : kEnergyPrefixFamilies)
        if (startsWith(name, prefix))
            return true;
    for (const char *scalar : kEnergyScalarComponents)
        if (name == scalar)
            return true;
    return false;
}

/**
 * (a) Energy conservation. Every `energy.*` statistic must be finite,
 * non-negative and claimed by a known component family; the family sum
 * must equal the prefix-summed total; and the total must still match
 * the snapshot the accelerator took when the run finished
 * ("audit.energy_total_pj"), which catches post-run mutation. The
 * scaled "total.energy_mj" aggregate is re-derived too.
 */
bool
checkEnergy(const AuditInput &input, const AuditOptions &options,
            AuditVerdict &verdict)
{
    const StatSet &stats = input.report->stats;
    double family_sum = 0.0;
    for (const auto &[name, value] : stats) {
        if (!startsWith(name, "energy."))
            continue;
        if (!std::isfinite(value)) {
            fail(verdict, "energy", name, " is not finite");
            continue;
        }
        if (value < 0.0)
            fail(verdict, "energy", name, " is negative: ", value);
        if (!knownEnergyComponent(name)) {
            fail(verdict, "energy", name,
                 " belongs to no known component family (breakdowns"
                 " will not account for it)");
            continue;
        }
        family_sum += value;
    }

    const double total = input.report->totalEnergyPj();
    if (!near(family_sum, total, options.relTolerance)) {
        fail(verdict, "energy", "component families sum to ", family_sum,
             " pJ but the energy.* total is ", total, " pJ");
    }
    if (!stats.has("audit.energy_total_pj")) {
        fail(verdict, "energy",
             "missing audit.energy_total_pj snapshot (report did not"
             " come from an accelerator run)");
    } else if (!near(stats.get("audit.energy_total_pj"), total,
                     options.relTolerance)) {
        fail(verdict, "energy", "energy statistics changed after the"
                                " run: snapshot ",
             stats.get("audit.energy_total_pj"), " pJ vs current total ",
             total, " pJ");
    }
    if (stats.has("total.energy_mj")) {
        const double expected =
            pjToMj(total) * stats.get("total.iterations");
        if (!near(stats.get("total.energy_mj"), expected,
                  options.relTolerance)) {
            fail(verdict, "energy", "total.energy_mj is ",
                 stats.get("total.energy_mj"), " but ",
                 stats.get("total.iterations"),
                 " iterations of the per-iteration total give ",
                 expected);
        }
    }
    return true;
}

/**
 * (b) Time consistency. One trace event per simulated task, every
 * interval inside [0, makespan], the phase grouping a partition of the
 * events whose union reaches exactly the event-queue makespan, and the
 * scaled "total.time_ms" aggregate consistent with the iteration time.
 */
bool
checkTiming(const AuditInput &input, const AuditOptions &options,
            AuditVerdict &verdict)
{
    if (input.trace == nullptr)
        return false; // nothing to audit against

    const StatSet &stats = input.report->stats;
    const PicoSeconds makespan = input.report->iterationTime;
    const auto &events = input.trace->events();

    if (stats.has("sim.tasks") &&
        stats.get("sim.tasks") != static_cast<double>(events.size())) {
        fail(verdict, "timing", "trace has ", events.size(),
             " events for ", stats.get("sim.tasks"),
             " simulated tasks");
    }

    PicoSeconds last_end = 0;
    std::uint64_t busy_total = 0;
    for (const TraceEvent &event : events) {
        if (event.end < event.start) {
            fail(verdict, "timing", event.label, " ends (", event.end,
                 ") before it starts (", event.start, ")");
        }
        if (event.end > makespan) {
            fail(verdict, "timing", event.label, " ends at ", event.end,
                 " ps, after the makespan ", makespan, " ps");
        }
        last_end = std::max(last_end, event.end);
        busy_total += event.end - event.start;
    }
    if (!events.empty() && last_end != makespan) {
        fail(verdict, "timing", "last task ends at ", last_end,
             " ps but the event-queue makespan is ", makespan, " ps");
    }

    // The phase grouping must partition the events: summed busy times
    // and task counts equal the raw totals, and the phase windows must
    // reach the makespan.
    std::uint64_t phase_busy = 0, phase_tasks = 0;
    PicoSeconds phase_end = 0;
    for (const PhaseTime &phase : phaseTimes(*input.trace)) {
        phase_busy += phase.busy;
        phase_tasks += phase.tasks;
        phase_end = std::max(phase_end, phase.lastEnd);
    }
    if (phase_tasks != events.size()) {
        fail(verdict, "timing", "phase grouping covers ", phase_tasks,
             " of ", events.size(), " trace events");
    }
    if (phase_busy != busy_total) {
        fail(verdict, "timing", "phase busy times sum to ", phase_busy,
             " ps but the trace holds ", busy_total, " ps of work");
    }
    if (!events.empty() && phase_end != makespan) {
        fail(verdict, "timing", "phase windows end at ", phase_end,
             " ps but the makespan is ", makespan, " ps");
    }

    if (stats.has("total.time_ms")) {
        const double expected =
            input.report->timeMs() * stats.get("total.iterations");
        if (!near(stats.get("total.time_ms"), expected,
                  options.relTolerance)) {
            fail(verdict, "timing", "total.time_ms is ",
                 stats.get("total.time_ms"), " but ",
                 stats.get("total.iterations"),
                 " iterations of the makespan give ", expected);
        }
    }
    return true;
}

/**
 * (c) Zero accounting. For every reshaped op of the compiled model the
 * closed-form class counts (Eq. 11-13) must match direct window
 * enumeration, and the classes must jointly serve every output
 * position. Asymmetrically padded ops are skipped (the paper's closed
 * forms assume symmetry; enumeration is authoritative there).
 */
bool
checkZeros(const AuditInput &input, const AuditOptions &,
           AuditVerdict &verdict)
{
    for (const CompiledPhase &phase : input.compiled->phases) {
        for (const MappedOp &mapped : phase.ops) {
            const LayerOp &op = mapped.op;
            if (!mapped.usesZfdr || !op.zfdrApplicable())
                continue;
            if (op.padLo != op.padHi)
                continue;

            const ReshapeAnalysis analysis = analyzeReshape(op);
            ClassCounts counts;
            if (op.pattern == OpPattern::SparseGridConv) {
                counts = tconvClassCounts(op.data, op.stride, op.padLo,
                                          op.rem, op.spatialDims);
            } else {
                counts = wconvClassCounts(op.data, op.padLo, op.window,
                                          op.stride, op.rem,
                                          op.spatialDims);
            }
            const auto mismatch = [&](const char *cls,
                                      std::uint64_t enumerated,
                                      std::uint64_t formula) {
                if (enumerated != formula) {
                    fail(verdict, "zeros", op.label, ": ", cls,
                         " class enumerates ", enumerated,
                         " matrices but the closed form gives ",
                         formula);
                }
            };
            mismatch("corner", analysis.corner.matrices, counts.corner);
            mismatch("edge", analysis.edge.matrices, counts.edge);
            mismatch("inside", analysis.inside.matrices, counts.inside);

            const std::uint64_t served = analysis.corner.servedPositions +
                                         analysis.edge.servedPositions +
                                         analysis.inside.servedPositions;
            if (served != analysis.totalPositions) {
                fail(verdict, "zeros", op.label,
                     ": reshape classes serve ", served, " of ",
                     analysis.totalPositions, " output positions");
            }
        }
    }
    return true;
}

/** (d) Mapping validity: every validateMapping violation is a finding. */
bool
checkMapping(const AuditInput &input, const AuditOptions &,
             AuditVerdict &verdict)
{
    const ValidationResult result =
        validateMapping(*input.model, *input.config, *input.compiled);
    for (const std::string &violation : result.violations)
        verdict.fail("mapping", violation);
    return true;
}

/**
 * (e) Graceful degradation. A run compiled against a fault map (or a
 * manual failed-tile list) must route around every unusable tile: no
 * allocation range reserves crossbars there, the placement's bank usage
 * is zero there, and — when the run was traced — no task executed on a
 * killed tile's compute resource. Skipped entirely on healthy runs so
 * their verdicts (and the goldens that pin them) are unchanged.
 */
bool
checkFaults(const AuditInput &input, const AuditOptions &,
            AuditVerdict &verdict)
{
    const FaultImpact &impact = input.compiled->faultImpact;
    const auto &manual = input.config->failedTiles;
    if (!impact.active && manual.empty())
        return false; // healthy run: nothing to audit against

    std::set<std::pair<int, int>> unusable(manual.begin(), manual.end());
    if (impact.active) {
        unusable.insert(impact.unusableTiles.begin(),
                        impact.unusableTiles.end());
    }

    for (const CompiledPhase &phase : input.compiled->phases) {
        for (const MappedOp &mapped : phase.ops) {
            for (const CrossbarRange &range : mapped.allocation.ranges) {
                if (range.count > 0 &&
                    unusable.count({range.bank, range.tile})) {
                    fail(verdict, "faults", mapped.op.label,
                         " reserves ", range.count,
                         " crossbars on unusable tile (bank ", range.bank,
                         ", tile ", range.tile, ")");
                }
            }
        }
    }

    const auto &usage = input.compiled->bankUsage;
    for (const auto &[bank, tile] : unusable) {
        if (bank < 0 || tile < 0 ||
            static_cast<std::size_t>(bank) >= usage.size() ||
            static_cast<std::size_t>(tile) >= usage[bank].size()) {
            fail(verdict, "faults", "unusable tile (bank ", bank,
                 ", tile ", tile, ") is outside the machine");
            continue;
        }
        if (usage[bank][tile] != 0) {
            fail(verdict, "faults", "killed tile (bank ", bank,
                 ", tile ", tile, ") still holds ", usage[bank][tile],
                 " crossbars of placement");
        }
    }

    if (input.trace != nullptr) {
        // Re-derive the resource ids of the killed tiles' compute
        // pipelines from a fresh machine of the same config and make
        // sure no traced task ran on one.
        const Machine machine(*input.config);
        std::set<std::size_t> dead;
        for (const auto &[bank, tile] : unusable) {
            if (bank >= 0 && tile >= 0 && bank < 6 * input.config->cuPairs &&
                tile < input.config->reram.tilesPerBank)
                dead.insert(machine.tileComputeRes(bank, tile));
        }
        for (const TraceEvent &event : input.trace->events()) {
            if (dead.count(event.lane)) {
                fail(verdict, "faults", event.label,
                     " executed on the compute resource of a killed"
                     " tile (lane ",
                     event.lane, ")");
            }
        }
    }
    return true;
}

} // namespace

std::string
AuditVerdict::summary() const
{
    if (ok()) {
        return "ok (" + std::to_string(checksRun) + " check" +
               (checksRun == 1 ? "" : "s") + ")";
    }
    std::string out;
    for (const AuditFinding &finding : failures) {
        if (!out.empty())
            out += "; ";
        out += finding.check + ": " + finding.detail;
    }
    return out;
}

AuditError::AuditError(AuditVerdict verdict)
    : std::runtime_error("audit failed: " + verdict.summary()),
      verdict_(std::move(verdict))
{
}

AuditContext::AuditContext(AuditOptions options)
    : options_(std::move(options))
{
    if (options_.energy)
        checks_.emplace_back("energy", checkEnergy);
    if (options_.timing)
        checks_.emplace_back("timing", checkTiming);
    if (options_.zeros)
        checks_.emplace_back("zeros", checkZeros);
    if (options_.mapping)
        checks_.emplace_back("mapping", checkMapping);
    if (options_.faults)
        checks_.emplace_back("faults", checkFaults);
}

void
AuditContext::registerCheck(std::string name, CheckFn check)
{
    checks_.emplace_back(std::move(name), std::move(check));
}

AuditVerdict
AuditContext::run(const AuditInput &input) const
{
    AuditVerdict verdict;
    verdict.ran = true;
    for (const auto &[name, check] : checks_) {
        if (check(input, options_, verdict))
            ++verdict.checksRun;
    }
    return verdict;
}

} // namespace lergan
