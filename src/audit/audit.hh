/**
 * @file
 * Cross-layer result auditing (the "does the simulator agree with
 * itself" layer).
 *
 * Every headline number this repo produces is the sum of independent
 * estimates made in different layers: the tile model charges energies,
 * the event queue produces a makespan, the compiler sizes reshape
 * classes from closed forms, the allocator reserves crossbars. An
 * AuditContext re-derives each of those from the *other* side of the
 * layer boundary and flags disagreement:
 *
 *  - energy:  component families must account for every `energy.*`
 *    statistic, and the prefix-summed total must match the snapshot the
 *    accelerator took when the run finished (catches post-run mutation
 *    and scaling bugs in `total.*` aggregates);
 *  - timing:  the traced task intervals must partition into phases
 *    whose union reaches exactly the event-queue makespan, with one
 *    trace event per simulated task;
 *  - zeros:   the paper's closed-form ZFDR class counts (Eq. 11-13)
 *    must match direct window enumeration for every reshaped op of the
 *    compiled model;
 *  - mapping: validateMapping() must pass on the compiled mapping;
 *  - faults:  a degraded run (fault injection or manual failed tiles)
 *    must never place crossbars or schedule work on an unusable tile,
 *    and killed tiles must hold zero bank usage. Skipped on healthy
 *    runs — the verdict of a fault-free simulation is unchanged.
 *
 * Checks run after a simulation, over its immutable outputs; they never
 * mutate anything. Wire-up: SimulationSession::auditWith() /
 * ExperimentSweep::auditWith() run a context after every point and
 * surface the verdict (core/api.hh, core/sweep.hh).
 */

#ifndef LERGAN_AUDIT_AUDIT_HH
#define LERGAN_AUDIT_AUDIT_HH

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lergan {

class AcceleratorConfig;
class Tracer;
struct CompiledGan;
struct GanModel;
struct TrainingReport;

/** Which invariants to audit, and how strictly. */
struct AuditOptions {
    /** Master switch: disabled contexts audit nothing. */
    bool enabled = false;
    /** (a) energy conservation across component families. */
    bool energy = true;
    /** (b) phase/makespan consistency of the traced run. */
    bool timing = true;
    /** (c) ZFDR closed forms vs. direct enumeration. */
    bool zeros = true;
    /** (d) validateMapping() on the compiled mapping. */
    bool mapping = true;
    /** (e) degraded runs never touch unusable tiles (skipped when the
     *  run is healthy: no fault map and no manual failed tiles). */
    bool faults = true;
    /** Relative tolerance for floating-point sum comparisons. */
    double relTolerance = 1e-9;

    /** Everything on. */
    static AuditOptions
    full()
    {
        AuditOptions options;
        options.enabled = true;
        return options;
    }
};

/** One violated invariant. */
struct AuditFinding {
    /** Name of the check that failed ("energy", "timing", ...). */
    std::string check;
    /** Human-readable description of the violation. */
    std::string detail;
};

/** Outcome of auditing one simulation. */
struct AuditVerdict {
    /** True once a context actually ran (default-constructed = not). */
    bool ran = false;
    /** Checks that executed (a trace-less timing check is skipped). */
    std::size_t checksRun = 0;
    /** Every violated invariant, in check order. */
    std::vector<AuditFinding> failures;

    bool ok() const { return failures.empty(); }

    /** Record one violation. */
    void
    fail(std::string check, std::string detail)
    {
        failures.push_back({std::move(check), std::move(detail)});
    }

    /** "ok (4 checks)" or a semicolon-joined failure list. */
    std::string summary() const;
};

/** Everything a check may inspect. All outputs of one simulation. */
struct AuditInput {
    const GanModel *model = nullptr;
    const AcceleratorConfig *config = nullptr;
    const CompiledGan *compiled = nullptr;
    const TrainingReport *report = nullptr;
    /** Trace of the simulated iteration; null skips the timing check. */
    const Tracer *trace = nullptr;
};

/** Thrown by audited session runs when a check fails. */
class AuditError : public std::runtime_error
{
  public:
    explicit AuditError(AuditVerdict verdict);

    const AuditVerdict &verdict() const { return verdict_; }

  private:
    AuditVerdict verdict_;
};

/**
 * A registry of invariant checks, run over a simulation's outputs.
 *
 * Construction registers the standard checks selected by the options;
 * registerCheck() appends custom invariants, which run after the
 * standard ones in registration order. A context is immutable once
 * built and may audit many runs (also concurrently).
 */
class AuditContext
{
  public:
    /**
     * One invariant. Inspects the input, appends failures to the
     * verdict, and returns whether it actually ran (false = skipped,
     * e.g. the timing check without a trace).
     */
    using CheckFn = std::function<bool(const AuditInput &,
                                       const AuditOptions &,
                                       AuditVerdict &)>;

    explicit AuditContext(AuditOptions options = AuditOptions::full());

    /** Append a custom invariant check. */
    void registerCheck(std::string name, CheckFn check);

    /** Run every registered check over @p input. */
    AuditVerdict run(const AuditInput &input) const;

    const AuditOptions &options() const { return options_; }

    /** Registered checks (standard + custom). */
    std::size_t checkCount() const { return checks_.size(); }

  private:
    AuditOptions options_;
    std::vector<std::pair<std::string, CheckFn>> checks_;
};

} // namespace lergan

#endif // LERGAN_AUDIT_AUDIT_HH
