#include "reram/params_io.hh"

#include <fstream>
#include <functional>
#include <map>

#include "common/logging.hh"
#include "common/strings.hh"

namespace lergan {

namespace {

/** Accessor table mapping config keys to struct fields. */
struct Field {
    std::function<double(const ReRamParams &)> get;
    std::function<void(ReRamParams &, double)> set;
};

const std::map<std::string, Field> &
fields()
{
    static const std::map<std::string, Field> table = [] {
        std::map<std::string, Field> t;
        auto add = [&t](const std::string &key, auto member) {
            t[key] = Field{
                [member](const ReRamParams &p) {
                    return static_cast<double>(p.*member);
                },
                [member](ReRamParams &p, double v) {
                    using T = std::decay_t<decltype(p.*member)>;
                    p.*member = static_cast<T>(v);
                }};
        };
        add("bank_read_ns", &ReRamParams::bankReadNs);
        add("bank_write_ns", &ReRamParams::bankWriteNs);
        add("bank_read_pj", &ReRamParams::bankReadPj);
        add("bank_write_pj", &ReRamParams::bankWritePj);
        add("htree_ns", &ReRamParams::htreeNs);
        add("htree_pj", &ReRamParams::htreePj);
        add("tile_read_ns", &ReRamParams::tileReadNs);
        add("tile_write_ns", &ReRamParams::tileWriteNs);
        add("tile_read_pj", &ReRamParams::tileReadPj);
        add("tile_write_pj", &ReRamParams::tileWritePj);
        add("io_freq_ghz", &ReRamParams::ioFreqGhz);
        add("adc_pj_per_xbar", &ReRamParams::adcPjPerXbar);
        add("cell_pj_per_xbar", &ReRamParams::cellPjPerXbar);
        add("dac_pj_per_xbar", &ReRamParams::dacPjPerXbar);
        add("sh_pj_per_xbar", &ReRamParams::shPjPerXbar);
        add("driver_pj_per_xbar", &ReRamParams::driverPjPerXbar);
        add("mmv_wave_ns", &ReRamParams::mmvWaveNs);
        add("hop_pj_per_byte", &ReRamParams::hopPjPerByte);
        add("bus_pj_per_byte", &ReRamParams::busPjPerByte);
        add("buffer_pj_per_byte", &ReRamParams::bufferPjPerByte);
        add("weight_write_ns_per_elem",
            &ReRamParams::weightWriteNsPerElem);
        add("weight_write_pj_per_elem",
            &ReRamParams::weightWritePjPerElem);
        add("switch_reconfig_ns", &ReRamParams::switchReconfigNs);
        add("switch_reconfig_pj", &ReRamParams::switchReconfigPj);
        add("controller_pj_per_task",
            &ReRamParams::controllerPjPerTask);
        add("link_bytes_per_ns", &ReRamParams::linkBytesPerNs);
        return t;
    }();
    return table;
}

} // namespace

void
loadParams(std::istream &is, ReRamParams &params)
{
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            LERGAN_FATAL("params line ", line_no, ": expected key = value");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        auto it = fields().find(key);
        if (it == fields().end())
            LERGAN_FATAL("params line ", line_no, ": unknown key '", key,
                         "'");
        try {
            std::size_t used = 0;
            const double parsed = std::stod(value, &used);
            if (used != value.size())
                throw std::invalid_argument(value);
            it->second.set(params, parsed);
        } catch (const std::exception &) {
            LERGAN_FATAL("params line ", line_no, ": malformed number '",
                         value, "'");
        }
    }
}

ReRamParams
loadParamsFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        LERGAN_FATAL("cannot open params file '", path, "'");
    ReRamParams params;
    loadParams(file, params);
    return params;
}

void
saveParams(std::ostream &os, const ReRamParams &params)
{
    os << "# LerGAN ReRAM device parameters\n";
    for (const auto &[key, field] : fields())
        os << key << " = " << field.get(params) << '\n';
}

} // namespace lergan
