/**
 * @file
 * ReRAM endurance analysis.
 *
 * The paper motivates ReRAM with its >1e10 (up to 1e12) write endurance
 * (Sec. II-A): "If a network needs to be trained for 1e5 times,
 * ReRAM-based PIM can train 1e5 ~ 1e7 such networks." This module turns
 * a simulated training iteration's write counts into that lifetime
 * estimate, per configuration — duplication shortens lifetime because
 * every replica is rewritten on every update.
 */

#ifndef LERGAN_RERAM_ENDURANCE_HH
#define LERGAN_RERAM_ENDURANCE_HH

#include <cstdint>

#include "common/stats.hh"

namespace lergan {

/** Endurance assumptions (paper Sec. II-A citations [35][36][26]). */
struct EnduranceParams {
    /** Write cycles one cell survives. */
    double cellEndurance = 1e10;
    /** Iterations of one full training run (paper's example: 1e5). */
    double iterationsPerTraining = 1e5;
};

/** Lifetime estimate for one mapping. */
struct EnduranceReport {
    /** Average writes per *programmed* weight cell per iteration. */
    double writesPerCellPerIteration = 0.0;
    /** Training iterations before the hottest cells wear out. */
    double survivableIterations = 0.0;
    /** Complete training runs before wear-out. */
    double survivableTrainings = 0.0;
};

/**
 * Estimate endurance from one iteration's statistics.
 *
 * @param stats          a TrainingReport's stats (needs
 *                       "count.weight_writes").
 * @param stored_weights weight elements resident in CArrays (replicas
 *                       included) — the cells sharing the write load.
 */
EnduranceReport estimateEndurance(const StatSet &stats,
                                  std::uint64_t stored_weights,
                                  const EnduranceParams &params = {});

} // namespace lergan

#endif // LERGAN_RERAM_ENDURANCE_HH
