/**
 * @file
 * Functional model of an ISAAC-style ReRAM compute crossbar.
 *
 * The paper's CArrays use ISAAC's crossbar design (Sec. V): 16-bit
 * weights are bit-sliced across 4-bit cells (4 slices side by side),
 * inputs are fed bit-serially through 1-bit DACs, per-column analog sums
 * are digitized and shift-and-add logic reassembles the full-precision
 * dot product. This model executes that datapath exactly so tests can
 * certify the sliced arithmetic is lossless — the fixed-point substrate
 * really computes the same MMV the math says.
 *
 * Weights are signed 16-bit fixed-point; negative values are stored in
 * two's-complement bias form (ISAAC's scheme: store w + 2^15, subtract
 * the input sum times the bias after accumulation).
 */

#ifndef LERGAN_RERAM_CROSSBAR_HH
#define LERGAN_RERAM_CROSSBAR_HH

#include <cstdint>
#include <vector>

namespace lergan {

/** Geometry + precision of the compute crossbar. */
struct CrossbarSpec {
    int rows = 128;      ///< wordlines (vector length)
    int cellBits = 4;    ///< bits per ReRAM cell
    int weightBits = 16; ///< operand precision
    int inputBits = 16;  ///< bit-serial input precision

    int slices() const { return weightBits / cellBits; }
};

/**
 * One logical crossbar column group holding a vector of 16-bit weights
 * across cell slices, able to execute bit-serial MMVs.
 */
class ComputeCrossbar
{
  public:
    explicit ComputeCrossbar(CrossbarSpec spec = CrossbarSpec{});

    const CrossbarSpec &spec() const { return spec_; }

    /**
     * Program one column with @p weights (signed, must fit weightBits).
     * Shorter vectors leave the remaining rows at zero.
     */
    void program(const std::vector<std::int32_t> &weights);

    /** Cell conductance level of (row, slice), for inspection. */
    int cell(int row, int slice) const;

    /**
     * Execute the bit-serial MMV: @p inputs are signed values that fit
     * inputBits; the result is the exact dot product, reassembled from
     * cellBits x 1-bit partial sums by shift-and-add.
     */
    std::int64_t multiply(const std::vector<std::int32_t> &inputs) const;

    /** Number of analog column activations one MMV performs
     *  (slices x input bits), the unit the energy model charges. */
    int activationsPerMmv() const;

  private:
    CrossbarSpec spec_;
    /** Biased (unsigned) weights, one per row. */
    std::vector<std::uint32_t> biased_;
    /** Cell levels: cells_[row][slice], most-significant slice first. */
    std::vector<std::vector<int>> cells_;
    /** Count of programmed rows (for the bias correction term). */
    int programmedRows_ = 0;
};

} // namespace lergan

#endif // LERGAN_RERAM_CROSSBAR_HH
