#include "reram/endurance.hh"

#include "common/logging.hh"

namespace lergan {

EnduranceReport
estimateEndurance(const StatSet &stats, std::uint64_t stored_weights,
                  const EnduranceParams &params)
{
    LERGAN_ASSERT(stored_weights > 0, "endurance needs stored weights");
    EnduranceReport report;
    const double writes = stats.get("count.weight_writes");
    report.writesPerCellPerIteration =
        writes / static_cast<double>(stored_weights);
    if (report.writesPerCellPerIteration <= 0.0)
        return report; // inference-only mapping: effectively immortal
    report.survivableIterations =
        params.cellEndurance / report.writesPerCellPerIteration;
    report.survivableTrainings =
        report.survivableIterations / params.iterationsPerTraining;
    return report;
}

} // namespace lergan
