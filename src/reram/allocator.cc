#include "reram/allocator.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace lergan {

std::uint64_t
Allocation::reserved() const
{
    std::uint64_t total = 0;
    for (const CrossbarRange &range : ranges)
        total += range.count;
    return total;
}

std::vector<int>
Allocation::tiles() const
{
    std::vector<int> result;
    for (const CrossbarRange &range : ranges) {
        if (std::find(result.begin(), result.end(), range.tile) ==
            result.end()) {
            result.push_back(range.tile);
        }
    }
    return result;
}

CArrayAllocator::CArrayAllocator(int banks, int tiles_per_bank,
                                 std::uint64_t xbars_per_tile)
    : tilesPerBank_(tiles_per_bank), xbarsPerTile_(xbars_per_tile),
      used_(banks, std::vector<std::uint64_t>(tiles_per_bank, 0)),
      capacity_(banks,
                std::vector<std::uint64_t>(tiles_per_bank, xbars_per_tile)),
      failed_(banks, std::vector<bool>(tiles_per_bank, false)),
      cursor_(banks, 0)
{
    LERGAN_ASSERT(banks > 0 && tiles_per_bank > 0 && xbars_per_tile > 0,
                  "allocator: invalid geometry");
}

Allocation
CArrayAllocator::allocate(int bank, std::uint64_t count,
                          std::uint64_t per_tile_chunk,
                          const std::string &label)
{
    LERGAN_ASSERT(bank >= 0 && bank < banks(), "allocate: bad bank ",
                  bank);
    LERGAN_ASSERT(per_tile_chunk > 0, "allocate: chunk must be positive");

    Allocation allocation;
    allocation.label = label;
    std::uint64_t remaining = count;

    // Pass 1: hand out real capacity, spreading chunk-wise from the
    // round-robin cursor.
    int tile = cursor_[bank];
    for (int visited = 0; visited < tilesPerBank_ && remaining > 0;
         ++visited, tile = (tile + 1) % tilesPerBank_) {
        if (failed_[bank][tile])
            continue;
        const std::uint64_t free = capacity_[bank][tile] - used_[bank][tile];
        if (free == 0)
            continue;
        const std::uint64_t take =
            std::min({remaining, free, per_tile_chunk});
        CrossbarRange range;
        range.bank = bank;
        range.tile = tile;
        range.first = used_[bank][tile];
        range.count = take;
        allocation.ranges.push_back(range);
        used_[bank][tile] += take;
        remaining -= take;
    }
    // Pass 2: keep sweeping tiles for whatever a chunk-limited first
    // pass left over.
    for (int visited = 0; visited < tilesPerBank_ && remaining > 0;
         ++visited, tile = (tile + 1) % tilesPerBank_) {
        if (failed_[bank][tile])
            continue;
        const std::uint64_t free = capacity_[bank][tile] - used_[bank][tile];
        if (free == 0)
            continue;
        const std::uint64_t take = std::min(remaining, free);
        CrossbarRange range;
        range.bank = bank;
        range.tile = tile;
        range.first = used_[bank][tile];
        range.count = take;
        allocation.ranges.push_back(range);
        used_[bank][tile] += take;
        remaining -= take;
    }

    if (remaining > 0) {
        // The mapping exceeds the bank: the overflow time-shares
        // crossbars (reprogramming between uses). Record it and pin the
        // overflow to the cursor tile so the simulator's tile contention
        // reflects the sharing.
        allocation.oversubscribed = remaining;
        oversubscribed_ += remaining;
        if (allocation.ranges.empty()) {
            int pin = cursor_[bank];
            for (int probe = 0; probe < tilesPerBank_; ++probe) {
                if (!failed_[bank][pin])
                    break;
                pin = (pin + 1) % tilesPerBank_;
            }
            CrossbarRange range;
            range.bank = bank;
            range.tile = pin;
            range.first = 0;
            range.count = 0;
            allocation.ranges.push_back(range);
        }
    }

    cursor_[bank] = tile;
    return allocation;
}

std::uint64_t
CArrayAllocator::freeInBank(int bank) const
{
    LERGAN_ASSERT(bank >= 0 && bank < banks(), "freeInBank: bad bank");
    std::uint64_t free = 0;
    for (int tile = 0; tile < tilesPerBank_; ++tile) {
        if (!failed_[bank][tile])
            free += capacity_[bank][tile] - used_[bank][tile];
    }
    return free;
}

std::uint64_t
CArrayAllocator::usedInTile(int bank, int tile) const
{
    LERGAN_ASSERT(bank >= 0 && bank < banks() && tile >= 0 &&
                      tile < tilesPerBank_,
                  "usedInTile: bad coordinates");
    return used_[bank][tile];
}

void
CArrayAllocator::markFailed(int bank, int tile)
{
    LERGAN_ASSERT(bank >= 0 && bank < banks() && tile >= 0 &&
                      tile < tilesPerBank_,
                  "markFailed: bad coordinates");
    if (failed_[bank][tile])
        return; // idempotent: the capacity was already written off
    LERGAN_ASSERT(used_[bank][tile] == 0,
                  "markFailed: tile already holds allocations");
    failed_[bank][tile] = true;
}

void
CArrayAllocator::reduceCapacity(int bank, int tile,
                                std::uint64_t dead_xbars)
{
    LERGAN_ASSERT(bank >= 0 && bank < banks() && tile >= 0 &&
                      tile < tilesPerBank_,
                  "reduceCapacity: bad coordinates");
    LERGAN_ASSERT(used_[bank][tile] == 0,
                  "reduceCapacity: tile already holds allocations");
    capacity_[bank][tile] -= std::min(dead_xbars, capacity_[bank][tile]);
}

std::uint64_t
CArrayAllocator::capacityOfTile(int bank, int tile) const
{
    LERGAN_ASSERT(bank >= 0 && bank < banks() && tile >= 0 &&
                      tile < tilesPerBank_,
                  "capacityOfTile: bad coordinates");
    return failed_[bank][tile] ? 0 : capacity_[bank][tile];
}

bool
CArrayAllocator::isFailed(int bank, int tile) const
{
    LERGAN_ASSERT(bank >= 0 && bank < banks() && tile >= 0 &&
                      tile < tilesPerBank_,
                  "isFailed: bad coordinates");
    return failed_[bank][tile];
}

void
CArrayAllocator::printMap(std::ostream &os) const
{
    for (int bank = 0; bank < banks(); ++bank) {
        os << "bank " << bank << ": ";
        for (int tile = 0; tile < tilesPerBank_; ++tile) {
            const double fill = static_cast<double>(used_[bank][tile]) /
                                static_cast<double>(xbarsPerTile_);
            os << std::setw(4) << static_cast<int>(100 * fill) << "%";
        }
        os << "  (free " << freeInBank(bank) << " xbars)\n";
    }
    if (oversubscribed_ > 0)
        os << "oversubscribed: " << oversubscribed_ << " crossbars\n";
}

} // namespace lergan
