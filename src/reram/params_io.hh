/**
 * @file
 * Load / save ReRamParams as "key = value" text.
 *
 * Lets experiments run against modified device assumptions (e.g. the
 * Fig. 24 discussion's 1-pJ cell switching and 60%-better ADC) without
 * recompiling: write a params file, pass it to a bench or example.
 * Unknown keys are fatal — a typo must not silently keep the default.
 */

#ifndef LERGAN_RERAM_PARAMS_IO_HH
#define LERGAN_RERAM_PARAMS_IO_HH

#include <istream>
#include <ostream>
#include <string>

#include "reram/params.hh"

namespace lergan {

/**
 * Parse "key = value" lines ('#' starts a comment; blank lines ignored)
 * over the defaults in @p params. Fatal on unknown keys or malformed
 * numbers.
 */
void loadParams(std::istream &is, ReRamParams &params);

/** Convenience: load from a file path (fatal if unreadable). */
ReRamParams loadParamsFile(const std::string &path);

/** Write every tunable as "key = value" (round-trips with loadParams). */
void saveParams(std::ostream &os, const ReRamParams &params);

} // namespace lergan

#endif // LERGAN_RERAM_PARAMS_IO_HH
