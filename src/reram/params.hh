/**
 * @file
 * ReRAM PIM hardware parameters.
 *
 * Values marked [Table IV] come directly from the paper's hardware
 * configuration table; the remaining per-component crossbar energies are
 * ISAAC-style calibration constants (the paper builds its CArrays from
 * ISAAC crossbars). The evaluation compares configurations that all share
 * these constants, so results are a function of the architecture, not of
 * the absolute calibration.
 */

#ifndef LERGAN_RERAM_PARAMS_HH
#define LERGAN_RERAM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace lergan {

/** Full device/bank/tile parameter set. */
struct ReRamParams {
    /** @name Bank level [Table IV] */
    ///@{
    double bankReadNs = 32.8;
    double bankWriteNs = 41.4;
    double bankReadPj = 413.0;
    double bankWritePj = 665.0;
    std::uint64_t bankBytes = 2ull << 30;  ///< 2 GB per bank
    int tilesPerBank = 16;
    ///@}

    /** @name H-tree interconnect [Table IV] */
    ///@{
    double htreeNs = 29.9;
    double htreePj = 386.0;
    ///@}

    /** @name Tile level [Table IV] */
    ///@{
    double tileReadNs = 2.9;
    double tileWriteNs = 11.5;
    double tileReadPj = 330.0;  ///< Table IV wire-level: 3.3, scaled
    double tileWritePj = 3480.0; ///< Table IV wire-level: 34.8, scaled
    std::uint64_t tileBytes = 128ull << 20;   ///< 128 MB per tile
    std::uint64_t carrayBytes = 64ull << 20;  ///< half the tile computes
    std::uint64_t barrayBytes = 2ull << 20;   ///< 1/64 of the tile buffers
    std::uint64_t sarrayBytes = 62ull << 20;  ///< the rest stores
    ///@}

    /** I/O frequency in GHz [Table IV]. */
    double ioFreqGhz = 1.6;

    /** Bytes per operand (16-bit precision, as in PipeLayer). */
    int bytesPerElem = 2;

    /**
     * @name Crossbar MMV component energies
     * Per 128x128-crossbar activation (one 16-bit bit-serial MMV wave
     * through one crossbar: 16 input phases x 128 column conversions).
     * Ratios follow the paper's Fig. 24 tile breakdown (ADC 45.14%,
     * cell switching 40.16%, remainder split across DAC, sample&hold and
     * drivers/decoders); the absolute scale is calibrated to the
     * machine-level power the paper's own cross-platform results imply
     * (47.2x speedup over a ~23 W FPGA at 1.04x its energy puts the
     * full 16 GB PIM at kilowatt-class power while computing).
     */
    ///@{
    double adcPjPerXbar = 18500.0;
    double cellPjPerXbar = 11800.0;
    double dacPjPerXbar = 2500.0;
    double shPjPerXbar = 1400.0;
    double driverPjPerXbar = 2100.0;
    ///@}

    /** t_m: latency of one MMV wave (16-bit bit-serial input). */
    double mmvWaveNs = 50.0;

    /** @name Data movement energies
     * Effective per-byte figures including the 1.6 GHz I/O drivers and
     * routing-node logic, at the same machine-level calibration as the
     * crossbar energies (Table IV's raw-wire 386 pJ/H-tree access is the
     * wire component only). */
    ///@{
    double hopPjPerByte = 350.0;   ///< neighbor tile-to-tile wire
    /**
     * Shared-bus bytes round-trip through the memory channel and host
     * (Sec. I: off-chip accesses cost ~2 orders of magnitude more than
     * an FP op) — this is the long path the 3D bypass wires avoid.
     */
    double busPjPerByte = 28000.0;
    double bufferPjPerByte = 90.0; ///< BArray access
    ///@}

    /** @name Weight update (CArray writes)
     * Writes are row-parallel (a 128-cell wordline programs at once) and
     * tens of crossbars program concurrently per tile, so the amortized
     * per-element time is far below a single-cell write. Energy follows
     * Table IV's 34.8 pJ per 16-byte tile write (~4.4 pJ per 16-bit
     * element). */
    ///@{
    double weightWriteNsPerElem = 0.01;
    double weightWritePjPerElem = 900.0;
    ///@}

    /** @name Switch / controller (3D connection) */
    ///@{
    double switchReconfigNs = 4.0;   ///< flipping one node's switch state
    double switchReconfigPj = 250.0;
    double controllerPjPerTask = 150.0; ///< FSM bookkeeping per macro-op
    ///@}

    /** Link width in bytes transferred per I/O cycle on a tile wire. */
    double linkBytesPerNs = 3.2; ///< 1.6 GHz x 16-bit links

    /** Derived: weight elements one tile's CArray holds. */
    std::uint64_t
    carrayWeightsPerTile() const
    {
        return carrayBytes / bytesPerElem;
    }

    /** Derived: crossbars per tile (128x128 cells, 4-bit each). */
    std::uint64_t
    crossbarsPerTile() const
    {
        const std::uint64_t cells_per_xbar = 128ull * 128ull;
        const std::uint64_t bytes_per_xbar = cells_per_xbar * 4 / 8;
        return carrayBytes / bytes_per_xbar;
    }
};

} // namespace lergan

#endif // LERGAN_RERAM_PARAMS_HH
