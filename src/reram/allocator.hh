/**
 * @file
 * CArray crossbar allocation.
 *
 * The compiler needs to place every reshaped weight matrix (and its
 * replicas) into actual crossbars inside actual tiles. This allocator
 * hands out crossbar ranges per bank, spreading an op's crossbars over
 * consecutive tiles for wire-level parallelism, and keeps exact
 * capacity accounting so oversubscription (a mapping larger than the
 * bank) is detected and reported instead of silently assumed away.
 */

#ifndef LERGAN_RERAM_ALLOCATOR_HH
#define LERGAN_RERAM_ALLOCATOR_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lergan {

/** A contiguous run of crossbars inside one tile. */
struct CrossbarRange {
    int bank = -1;
    int tile = -1;
    std::uint64_t first = 0; ///< first crossbar index within the tile
    std::uint64_t count = 0;
};

/** One allocation (possibly spanning several tiles). */
struct Allocation {
    /** Owner label ("G.l2.tconv@G.fwd"). */
    std::string label;
    std::vector<CrossbarRange> ranges;
    /** Crossbars requested beyond the bank's remaining capacity; these
     *  time-share physical crossbars (reprogramming), which the
     *  simulator models as tile contention. */
    std::uint64_t oversubscribed = 0;

    /** Total crossbars actually reserved. */
    std::uint64_t reserved() const;

    /** Tiles this allocation touches, in first-use order. */
    std::vector<int> tiles() const;
};

/** Per-bank crossbar bookkeeping. */
class CArrayAllocator
{
  public:
    /**
     * @param banks           number of banks.
     * @param tiles_per_bank  tiles per bank (16).
     * @param xbars_per_tile  CArray crossbars per tile (8192).
     */
    CArrayAllocator(int banks, int tiles_per_bank,
                    std::uint64_t xbars_per_tile);

    /**
     * Allocate @p count crossbars in @p bank, starting at the tile after
     * the previous allocation (round-robin), spreading across tiles in
     * chunks of @p per_tile_chunk so multi-crossbar ops use parallel
     * wires. If the bank runs out, the remainder is recorded as
     * oversubscription on the least-loaded tiles.
     */
    Allocation allocate(int bank, std::uint64_t count,
                        std::uint64_t per_tile_chunk,
                        const std::string &label);

    /**
     * Mark a tile as failed (manufacturing defect or worn-out cells):
     * no future allocation touches it. Fault-injection tests use this
     * to show mappings route around dead tiles. Idempotent: marking an
     * already-failed tile again is a no-op, so a fault map that lists a
     * tile under several fault classes never double-subtracts capacity.
     */
    void markFailed(int bank, int tile);

    /** True when the tile was marked failed. */
    bool isFailed(int bank, int tile) const;

    /**
     * Permanently remove @p dead_xbars crossbars from the tile's
     * capacity (stuck-at cells or dead columns disabled individual
     * crossbars, but the tile as a whole survives). Clamped to the
     * remaining capacity; only legal before the tile holds allocations.
     */
    void reduceCapacity(int bank, int tile, std::uint64_t dead_xbars);

    /** Usable crossbars in one tile (after failures and reductions). */
    std::uint64_t capacityOfTile(int bank, int tile) const;

    /** Crossbars still free in @p bank. */
    std::uint64_t freeInBank(int bank) const;

    /** Crossbars used in one tile (excluding oversubscription). */
    std::uint64_t usedInTile(int bank, int tile) const;

    /** Total oversubscribed crossbars across all banks. */
    std::uint64_t totalOversubscribed() const { return oversubscribed_; }

    int banks() const { return static_cast<int>(used_.size()); }
    int tilesPerBank() const { return tilesPerBank_; }
    std::uint64_t xbarsPerTile() const { return xbarsPerTile_; }

    /** Print a per-tile occupancy map. */
    void printMap(std::ostream &os) const;

  private:
    int tilesPerBank_;
    std::uint64_t xbarsPerTile_;
    /** used_[bank][tile] = crossbars handed out. */
    std::vector<std::vector<std::uint64_t>> used_;
    /** capacity_[bank][tile] = usable crossbars (<= xbarsPerTile_). */
    std::vector<std::vector<std::uint64_t>> capacity_;
    /** failed_[bank][tile] = tile is unusable. */
    std::vector<std::vector<bool>> failed_;
    /** Next tile to start allocating from, per bank. */
    std::vector<int> cursor_;
    std::uint64_t oversubscribed_ = 0;
};

} // namespace lergan

#endif // LERGAN_RERAM_ALLOCATOR_HH
