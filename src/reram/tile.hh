/**
 * @file
 * Tile-level energy and latency accounting.
 *
 * A tile (PRIME-style, paper Sec. II-A) holds a CArray (crossbars doing
 * MMVs), a BArray (random-access buffer feeding the CArray) and an SArray
 * (plain storage). This model converts op costs (zfdr/cost.hh) into
 * component-resolved energy and occupancy time; the Fig. 24 tile energy
 * breakdown is read straight out of the statistic keys charged here.
 */

#ifndef LERGAN_RERAM_TILE_HH
#define LERGAN_RERAM_TILE_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "reram/params.hh"

namespace lergan {

/** Stateless per-tile cost calculator (all tiles are identical). */
class TileModel
{
  public:
    explicit TileModel(const ReRamParams &params) : params_(params) {}

    const ReRamParams &params() const { return params_; }

    /** Latency of @p waves sequential MMV waves. */
    PicoSeconds mmvTime(std::uint64_t waves) const;

    /**
     * Charge the energy of @p crossbar_activations MMV crossbar firings
     * into @p stats under "energy.compute.{adc,cell,dac,sh,driver}".
     */
    void chargeMmv(StatSet &stats, std::uint64_t crossbar_activations) const;

    /** Charge BArray traffic ("energy.buffer"). */
    void chargeBuffer(StatSet &stats, Bytes bytes) const;

    /** Charge SArray reads/writes ("energy.storage"). */
    void chargeStorage(StatSet &stats, Bytes read, Bytes written) const;

    /**
     * Charge a weight update of @p elems CArray elements
     * ("energy.update", also booked under cell switching since updates
     * physically switch cells). @return the write time.
     */
    PicoSeconds chargeWeightWrite(StatSet &stats, std::uint64_t elems) const;

    /** Total energy of one crossbar activation (all components). */
    PicoJoules perCrossbarEnergy() const;

  private:
    ReRamParams params_;
};

} // namespace lergan

#endif // LERGAN_RERAM_TILE_HH
