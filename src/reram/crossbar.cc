#include "reram/crossbar.hh"

#include "common/logging.hh"

namespace lergan {

ComputeCrossbar::ComputeCrossbar(CrossbarSpec spec) : spec_(spec)
{
    LERGAN_ASSERT(spec_.rows > 0, "crossbar needs rows");
    LERGAN_ASSERT(spec_.weightBits % spec_.cellBits == 0,
                  "weight bits must slice evenly into cells");
    LERGAN_ASSERT(spec_.weightBits <= 30 && spec_.inputBits <= 30,
                  "precision too wide for the functional model");
    // Unprogrammed rows hold the zero weight (bias form).
    program({});
}

void
ComputeCrossbar::program(const std::vector<std::int32_t> &weights)
{
    LERGAN_ASSERT(static_cast<int>(weights.size()) <= spec_.rows,
                  "programming ", weights.size(), " rows into a ",
                  spec_.rows, "-row crossbar");
    const std::int32_t limit = 1 << (spec_.weightBits - 1);
    const std::uint32_t bias = static_cast<std::uint32_t>(limit);

    biased_.assign(spec_.rows, bias); // zero weight in bias form
    for (std::size_t r = 0; r < weights.size(); ++r) {
        LERGAN_ASSERT(weights[r] >= -limit && weights[r] < limit,
                      "weight ", weights[r], " does not fit ",
                      spec_.weightBits, " bits");
        biased_[r] = static_cast<std::uint32_t>(weights[r] + limit);
    }
    programmedRows_ = static_cast<int>(weights.size());

    // Slice into cells, most-significant slice first.
    const std::uint32_t cell_mask = (1u << spec_.cellBits) - 1;
    cells_.assign(spec_.rows, std::vector<int>(spec_.slices(), 0));
    for (int r = 0; r < spec_.rows; ++r) {
        for (int s = 0; s < spec_.slices(); ++s) {
            const int shift = (spec_.slices() - 1 - s) * spec_.cellBits;
            cells_[r][s] = static_cast<int>((biased_[r] >> shift) &
                                            cell_mask);
        }
    }
}

int
ComputeCrossbar::cell(int row, int slice) const
{
    LERGAN_ASSERT(row >= 0 && row < spec_.rows && slice >= 0 &&
                      slice < spec_.slices(),
                  "cell index out of range");
    return cells_[row][slice];
}

std::int64_t
ComputeCrossbar::multiply(const std::vector<std::int32_t> &inputs) const
{
    LERGAN_ASSERT(static_cast<int>(inputs.size()) <= spec_.rows,
                  "feeding ", inputs.size(), " inputs into a ",
                  spec_.rows, "-row crossbar");
    const std::int32_t in_limit = 1 << (spec_.inputBits - 1);
    const std::uint32_t in_bias = static_cast<std::uint32_t>(in_limit);

    // Biased inputs; absent rows carry the zero input (bias form).
    std::vector<std::uint32_t> biased_in(spec_.rows, in_bias);
    for (std::size_t r = 0; r < inputs.size(); ++r) {
        LERGAN_ASSERT(inputs[r] >= -in_limit && inputs[r] < in_limit,
                      "input ", inputs[r], " does not fit ",
                      spec_.inputBits, " bits");
        biased_in[r] = static_cast<std::uint32_t>(inputs[r] + in_limit);
    }

    // The analog part: for every input bit-plane and every cell slice,
    // the column accumulates bit * cell-level; shift-and-add merges the
    // partial sums — this is the datapath ISAAC's ADC pipeline digitizes.
    std::int64_t biased_sum = 0;
    for (int b = 0; b < spec_.inputBits; ++b) {
        for (int s = 0; s < spec_.slices(); ++s) {
            const int w_shift = (spec_.slices() - 1 - s) * spec_.cellBits;
            std::int64_t column = 0;
            for (int r = 0; r < spec_.rows; ++r) {
                if ((biased_in[r] >> b) & 1u)
                    column += cells_[r][s];
            }
            biased_sum += column << (b + w_shift);
        }
    }

    // Digital bias correction: sum_r (W^ - Bw)(X^ - Bx)
    //   = S - Bw * sum X^ - Bx * sum W^ + rows * Bw * Bx.
    std::int64_t sum_w = 0, sum_x = 0;
    for (int r = 0; r < spec_.rows; ++r) {
        sum_w += biased_[r];
        sum_x += biased_in[r];
    }
    const std::int64_t bw = 1ll << (spec_.weightBits - 1);
    const std::int64_t bx = 1ll << (spec_.inputBits - 1);
    return biased_sum - bw * sum_x - bx * sum_w +
           static_cast<std::int64_t>(spec_.rows) * bw * bx;
}

int
ComputeCrossbar::activationsPerMmv() const
{
    return spec_.inputBits * spec_.slices();
}

} // namespace lergan
