#include "reram/tile.hh"

namespace lergan {

PicoSeconds
TileModel::mmvTime(std::uint64_t waves) const
{
    return nsToPs(params_.mmvWaveNs * static_cast<double>(waves));
}

void
TileModel::chargeMmv(StatSet &stats, std::uint64_t crossbar_activations) const
{
    const double n = static_cast<double>(crossbar_activations);
    stats.add("energy.compute.adc", params_.adcPjPerXbar * n);
    stats.add("energy.compute.cell", params_.cellPjPerXbar * n);
    stats.add("energy.compute.dac", params_.dacPjPerXbar * n);
    stats.add("energy.compute.sh", params_.shPjPerXbar * n);
    stats.add("energy.compute.driver", params_.driverPjPerXbar * n);
    stats.add("count.crossbar_activations", n);
}

void
TileModel::chargeBuffer(StatSet &stats, Bytes bytes) const
{
    stats.add("energy.buffer", params_.bufferPjPerByte *
                                   static_cast<double>(bytes));
}

void
TileModel::chargeStorage(StatSet &stats, Bytes read, Bytes written) const
{
    // SArray accesses are tile-granularity reads/writes [Table IV],
    // charged per 16-byte access row.
    const double reads = static_cast<double>(read) / 16.0;
    const double writes = static_cast<double>(written) / 16.0;
    stats.add("energy.storage", params_.tileReadPj * reads +
                                    params_.tileWritePj * writes);
}

PicoSeconds
TileModel::chargeWeightWrite(StatSet &stats, std::uint64_t elems) const
{
    const double n = static_cast<double>(elems);
    // Updating a weight physically switches its cells; the Fig. 24
    // reproduction folds this into the cell-switching share.
    stats.add("energy.update", params_.weightWritePjPerElem * n);
    stats.add("count.weight_writes", n);
    return nsToPs(params_.weightWriteNsPerElem * n);
}

PicoJoules
TileModel::perCrossbarEnergy() const
{
    return params_.adcPjPerXbar + params_.cellPjPerXbar +
           params_.dacPjPerXbar + params_.shPjPerXbar +
           params_.driverPjPerXbar;
}

} // namespace lergan
