#include "faults/montecarlo.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace lergan {

namespace {

/** splitmix64 finalizer — the repo's standard bit mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
monteCarloTrialSeed(std::uint64_t base_seed, std::size_t point_index,
                    int trial)
{
    // Two mixing rounds decorrelate (point, trial) lattices: adjacent
    // trials of adjacent points must not share fault maps.
    return mix64(mix64(base_seed + 0x632be59bd9b4e019ull * point_index) +
                 static_cast<std::uint64_t>(trial));
}

FaultMonteCarlo &
FaultMonteCarlo::addBenchmark(const GanModel &model)
{
    models_.push_back(model);
    return *this;
}

FaultMonteCarlo &
FaultMonteCarlo::addConfig(const std::string &label,
                           const AcceleratorConfig &config)
{
    configs_.emplace_back(label, config);
    return *this;
}

std::vector<SweepResult>
FaultMonteCarlo::run(const MonteCarloOptions &options) const
{
    LERGAN_ASSERT(options.trials > 0, "need at least one trial");
    LERGAN_ASSERT(!models_.empty() && !configs_.empty(),
                  "Monte Carlo needs at least one benchmark and config");

    // Every trial is one explicit sweep point whose config carries the
    // trial seed; the sweep engine provides the worker pool, compiled-
    // model caching and slot-indexed (order-independent) results.
    ExperimentSweep sweep;
    if (options.audit.enabled)
        sweep.auditWith(options.audit);
    if (options.telemetry)
        sweep.withTelemetry(options.telemetry);
    if (options.recorder)
        sweep.withTracing(options.recorder);
    std::size_t point_index = 0;
    for (const GanModel &model : models_) {
        for (const auto &[label, config] : configs_) {
            for (int trial = 0; trial < options.trials; ++trial) {
                AcceleratorConfig trial_config = config;
                trial_config.faults.seed = monteCarloTrialSeed(
                    options.baseSeed, point_index, trial);
                sweep.addPoint(model, label, trial_config);
            }
            ++point_index;
        }
    }

    RunOptions run_options;
    run_options.threads = options.threads;
    run_options.iterations = options.iterations;
    run_options.onProgress = options.onProgress;
    const std::vector<SweepResult> trials = sweep.run(run_options);

    std::vector<SweepResult> results;
    results.reserve(point_index);
    const int n = options.trials;
    for (std::size_t p = 0; p * n < trials.size(); ++p) {
        SweepResult out;
        out.faults.trials = n;
        std::vector<double> ms, mj, cap;
        ms.reserve(n);
        mj.reserve(n);
        cap.reserve(n);
        bool have_representative = false;
        for (int t = 0; t < n; ++t) {
            const SweepResult &trial = trials[p * n + t];
            if (trial.failed) {
                // E.g. the fault map killed a whole bank: the trial is
                // a data point ("this rate fails outright"), not an
                // abort.
                ++out.faults.failedTrials;
                if (out.error.empty())
                    out.error = trial.error;
                continue;
            }
            ms.push_back(trial.report.timeMs());
            mj.push_back(pjToMj(trial.report.totalEnergyPj()));
            cap.push_back(
                trial.report.stats.get("fault.capacity_lost_frac"));
            if (!have_representative) {
                // First successful trial (a fixed slot, not a race
                // winner) represents the point's per-run fields.
                have_representative = true;
                out.benchmark = trial.benchmark;
                out.configLabel = trial.configLabel;
                out.report = trial.report;
                out.crossbarsUsed = trial.crossbarsUsed;
                out.oversubscribed = trial.oversubscribed;
                out.audit = trial.audit;
            }
            if (trial.audit.ran && !trial.audit.ok() && out.audit.ok()) {
                // Any failing audit outranks a passing representative:
                // an invariant violation must not hide in the tail.
                out.audit = trial.audit;
            }
        }
        out.faults.msPerIteration = TrialDistribution::of(std::move(ms));
        out.faults.mjPerIteration = TrialDistribution::of(std::move(mj));
        out.faults.capacityLost = TrialDistribution::of(std::move(cap));
        if (!have_representative) {
            out.failed = true;
            const SweepResult &first = trials[p * n];
            out.benchmark = first.benchmark;
            out.configLabel = first.configLabel;
        } else {
            out.error.clear();
        }
        results.push_back(std::move(out));
    }
    if (options.telemetry) {
        std::uint64_t failed = 0;
        for (const SweepResult &result : results)
            failed += result.faults.failedTrials;
        options.telemetry->counter("faults.trials.run")
            .add(trials.size());
        options.telemetry->counter("faults.trials.failed").add(failed);
        options.telemetry->counter("faults.points.run")
            .add(results.size());
    }
    return results;
}

} // namespace lergan
