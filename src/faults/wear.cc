#include "faults/wear.hh"

#include "common/logging.hh"

namespace lergan {

WearMap
computeWearMap(const WearInputs &inputs, double prior_iterations,
               double cell_endurance)
{
    LERGAN_ASSERT(inputs.cellsPerTile > 0, "wear needs tile capacity");
    LERGAN_ASSERT(cell_endurance > 0.0, "wear needs positive endurance");
    LERGAN_ASSERT(prior_iterations >= 0.0,
                  "wear needs non-negative iterations");

    WearMap wear(inputs.writesPerIteration.size());
    for (std::size_t bank = 0; bank < wear.size(); ++bank) {
        wear[bank].reserve(inputs.writesPerIteration[bank].size());
        for (double writes : inputs.writesPerIteration[bank]) {
            const double per_cell =
                writes / static_cast<double>(inputs.cellsPerTile);
            wear[bank].push_back(prior_iterations * per_cell /
                                 cell_endurance);
        }
    }
    return wear;
}

void
applyWear(FaultMap &map, const WearMap &wear)
{
    LERGAN_ASSERT(wear.size() == map.tiles.size(),
                  "applyWear: bank count mismatch");
    for (std::size_t bank = 0; bank < wear.size(); ++bank) {
        LERGAN_ASSERT(wear[bank].size() == map.tiles[bank].size(),
                      "applyWear: tile count mismatch");
        for (std::size_t tile = 0; tile < wear[bank].size(); ++tile) {
            TileFaults &f = map.tiles[bank][tile];
            f.wear = wear[bank][tile];
            if (f.wear >= 1.0)
                f.killed = true;
        }
    }
}

} // namespace lergan
