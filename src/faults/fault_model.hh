/**
 * @file
 * Deterministic, seed-driven ReRAM fault-map generation.
 *
 * Related work on memristive GAN accelerators (AM-DCGAN, the
 * passive-RRAM GAN study) identifies device variation and stuck-at
 * faults as the first-order threat to this class of hardware. This
 * module turns a FaultConfig's rates into a concrete per-tile FaultMap:
 *
 *  - stuck-at-LRS/HRS *cells*: a crossbar whose faulty-cell fraction
 *    exceeds the cell tolerance cannot hold weights and is dead;
 *  - stuck-at *columns* (bitline shorts): a crossbar with too many dead
 *    columns loses its MMV outputs and is dead;
 *  - *tile-kill* faults: peripheral/driver defects retire a whole tile;
 *  - a tile whose dead-crossbar fraction exceeds the tile tolerance is
 *    retired too (not enough live arrays to be worth routing to).
 *
 * Everything is a pure function of (geometry, FaultConfig): the same
 * seed produces the byte-identical map (serialize() pins this in the
 * tests), so degraded runs are exactly reproducible and Monte Carlo
 * robustness sweeps are just seed sweeps. Wear-out faults are layered
 * on separately (faults/wear.hh) because they depend on the compiled
 * mapping's write densities, not on sampling.
 */

#ifndef LERGAN_FAULTS_FAULT_MODEL_HH
#define LERGAN_FAULTS_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "core/config.hh"
#include "reram/params.hh"

namespace lergan {

/** Physical extent the fault sampler covers. */
struct FaultGeometry {
    int banks = 6;
    int tilesPerBank = 16;
    std::uint64_t crossbarsPerTile = 8192;
    std::uint64_t cellsPerCrossbar = 128ull * 128ull;
    std::uint64_t columnsPerCrossbar = 128;
};

/** Geometry of @p config's machine (6 banks per CU pair). */
FaultGeometry faultGeometry(int cu_pairs, const ReRamParams &params);

/** Sampled faults of one tile. */
struct TileFaults {
    /** Stuck-at cells in the tile (LRS + HRS). */
    std::uint64_t stuckCells = 0;
    /** Of those, cells stuck at LRS (low resistance, reads as max). */
    std::uint64_t stuckLrsCells = 0;
    /** Stuck bitline columns in the tile. */
    std::uint64_t stuckColumns = 0;
    /** Crossbars lost to cell/column faults (tile still alive). */
    std::uint64_t deadCrossbars = 0;
    /** Wear fraction of the hottest cells (1.0 = end of endurance). */
    double wear = 0.0;
    /** Whole tile unusable (kill fault, dead-crossbar or wear limit). */
    bool killed = false;
};

/** Per-tile fault state of one machine. */
struct FaultMap {
    FaultGeometry geometry;
    /** tiles[bank][tile]. */
    std::vector<std::vector<TileFaults>> tiles;

    /** Coordinates of every killed tile, bank-major. */
    std::vector<std::pair<int, int>> killedTiles() const;

    /** Killed tiles in one bank. */
    int killedInBank(int bank) const;

    /** Crossbars unusable map-wide (killed tiles + dead crossbars). */
    std::uint64_t lostCrossbars() const;

    /** Total crossbars of the geometry. */
    std::uint64_t totalCrossbars() const;

    /**
     * Canonical byte representation (one line per faulty tile). Two
     * maps built from the same seed and rates serialize identically —
     * the determinism contract the tests pin.
     */
    std::string serialize() const;
};

/**
 * Sample a fault map. Deterministic: the map is a pure function of
 * (@p geometry, @p config) — the RNG is seeded from config.seed only.
 * Wear is left at zero; layer it on with applyWear (faults/wear.hh).
 */
FaultMap buildFaultMap(const FaultGeometry &geometry,
                       const FaultConfig &config);

/**
 * @name Deterministic distribution helpers
 * Shared by the sampler and the wear model; exposed for tests.
 */
///@{

/** P[Binomial(n, p) > k], exact for small n, normal-approx for large. */
double binomialTailAbove(std::uint64_t n, double p, std::uint64_t k);

/** One Binomial(n, p) sample from @p rng (normal-approx for large n). */
std::uint64_t sampleBinomial(Rng &rng, std::uint64_t n, double p);

///@}

} // namespace lergan

#endif // LERGAN_FAULTS_FAULT_MODEL_HH
