/**
 * @file
 * Wear-out fault derivation from write densities.
 *
 * The paper's endurance argument (Sec. II-A, reram/endurance.hh) gives
 * each cell ~1e10 write cycles; the ZFDR replica policy (Table III)
 * multiplies the cells that absorb update writes, because every stored
 * copy is rewritten on every update. This module turns a compiled
 * mapping's per-tile write densities into a wear map: the fraction of
 * one cell-lifetime the tile's hottest cells have consumed after a
 * given number of prior training iterations. Tiles at or past 1.0 are
 * worn out and join the fault map as killed tiles.
 *
 * The inputs are plain per-tile numbers (no dependency on the compiled
 * model types) so this layer stays below core; core/compiler.cc adapts
 * a CompiledGan into WearInputs.
 */

#ifndef LERGAN_FAULTS_WEAR_HH
#define LERGAN_FAULTS_WEAR_HH

#include <cstdint>
#include <vector>

#include "faults/fault_model.hh"

namespace lergan {

/** Per-tile write-load description of one mapping. */
struct WearInputs {
    /** Weight cells one tile's CArray holds. */
    std::uint64_t cellsPerTile = 0;
    /**
     * writesPerIteration[bank][tile]: weight-element writes into the
     * tile during one training iteration (kernel rewrites once per
     * update; W-CONV per-item gradient writes once per minibatch item;
     * replicas multiply both).
     */
    std::vector<std::vector<double>> writesPerIteration;
};

/** wear[bank][tile] in cell lifetimes (>= 1.0 means worn out). */
using WearMap = std::vector<std::vector<double>>;

/**
 * Wear after @p prior_iterations of training.
 *
 * wear = prior_iterations * (writes/iteration / cells) / endurance —
 * the average writes one of the tile's *programmed* cells absorbed,
 * normalized by fill so a densely duplicated tile (more of its cells
 * active and rewritten) wears faster than a sparsely used one.
 */
WearMap computeWearMap(const WearInputs &inputs, double prior_iterations,
                       double cell_endurance);

/**
 * Merge @p wear into @p map: each tile's wear field is set and tiles at
 * or beyond one full cell lifetime are killed.
 */
void applyWear(FaultMap &map, const WearMap &wear);

} // namespace lergan

#endif // LERGAN_FAULTS_WEAR_HH
