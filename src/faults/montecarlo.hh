/**
 * @file
 * Seeded Monte Carlo robustness sweeps.
 *
 * A robustness experiment asks: given a fault model (FaultConfig rates),
 * how does a configuration's latency/energy/capacity *distribution* look
 * across fault-map realizations? Because fault maps are pure functions
 * of their seed, a Monte Carlo run is just a seed sweep: every trial is
 * one ordinary experiment point whose config carries a per-trial seed
 * mixed from (base seed, point index, trial index). Trials therefore
 * ride the normal parallel sweep engine — compiled-model cache, worker
 * pool, per-point error capture — and the aggregates are deterministic
 * for any worker count: trial results come back slot-indexed and every
 * TrialDistribution sorts its samples before summarizing.
 *
 * This driver lives in src/faults but compiles into lergan_core (see
 * faults/CMakeLists.txt): it needs the sweep engine above it, while the
 * samplers below stay core-free.
 */

#ifndef LERGAN_FAULTS_MONTECARLO_HH
#define LERGAN_FAULTS_MONTECARLO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep.hh"

namespace lergan {

/** Options of one Monte Carlo run. */
struct MonteCarloOptions {
    /** Seeded fault-map realizations per (benchmark, config) point. */
    int trials = 32;
    /** Worker threads (0 = one per hardware thread). */
    int threads = 1;
    /** Training iterations simulated per trial. */
    int iterations = 1;
    /**
     * Base seed of the run. Each trial's FaultConfig::seed is mixed
     * from (baseSeed, point index, trial index), so two runs with the
     * same base seed reproduce byte-identical results and two points
     * never share a fault map by accident.
     */
    std::uint64_t baseSeed = 1;
    /** Audit every trial under these options (enabled = run it). */
    AuditOptions audit;
    /** Progress hook, called as (trials done, trials total). */
    ProgressFn onProgress;
    /**
     * Metrics registry the trials record into (null = no telemetry).
     * Besides the per-trial sim.* metrics, the aggregation records
     * faults.trials.run / faults.trials.failed counters — computed from
     * the slot-indexed results, so deterministic for any worker count.
     */
    std::shared_ptr<MetricsRegistry> telemetry;
    /**
     * Flight recorder the trials record spans into (null = untraced).
     * Each trial is one sweep point, so its trace id is its trial slot
     * in the expanded grid + 1 — a slow or failed realization is
     * explainable like any other sweep point (core/anomaly.hh).
     */
    std::shared_ptr<FlightRecorder> recorder;
};

/**
 * A grid of benchmarks x fault-carrying configurations, each point run
 * as MonteCarloOptions::trials seeded trials.
 */
class FaultMonteCarlo
{
  public:
    /** Add a benchmark model to the grid. */
    FaultMonteCarlo &addBenchmark(const GanModel &model);

    /**
     * Add a configuration to the grid. @p config.faults carries the
     * fault rates; its seed field is overwritten per trial.
     */
    FaultMonteCarlo &addConfig(const std::string &label,
                               const AcceleratorConfig &config);

    /**
     * Run the grid. Returns one SweepResult per (benchmark, config)
     * point, benchmark-major, with SweepResult::faults aggregating the
     * per-trial metrics: report/audit/crossbars fields are taken from
     * the first successful trial (the representative realization), and
     * a point whose every trial failed is a failed SweepResult carrying
     * the first trial's error. Deterministic across worker counts.
     */
    std::vector<SweepResult> run(const MonteCarloOptions &options) const;

  private:
    std::vector<GanModel> models_;
    std::vector<std::pair<std::string, AcceleratorConfig>> configs_;
};

/** The per-trial seed mix (exposed for tests). */
std::uint64_t monteCarloTrialSeed(std::uint64_t base_seed,
                                  std::size_t point_index, int trial);

} // namespace lergan

#endif // LERGAN_FAULTS_MONTECARLO_HH
