/**
 * @file
 * Aggregate statistics of a Monte Carlo robustness sweep.
 *
 * Kept free of core dependencies: core/sweep.hh embeds FaultSweepStats
 * in SweepResult so the exporters can serialize trial distributions
 * next to the per-point metrics, and the Monte Carlo driver
 * (faults/montecarlo.hh) fills them in.
 */

#ifndef LERGAN_FAULTS_FAULT_STATS_HH
#define LERGAN_FAULTS_FAULT_STATS_HH

#include <cstdint>
#include <vector>

namespace lergan {

/** Summary of one sampled metric across Monte Carlo trials. */
struct TrialDistribution {
    double mean = 0.0;
    /** 95th percentile (nearest-rank over the sorted samples). */
    double p95 = 0.0;
    double min = 0.0;
    double max = 0.0;

    /**
     * Summarize @p samples. Order-insensitive: the samples are sorted
     * internally, so trial completion order cannot leak into the
     * aggregate (the permutation-invariance property the tests pin).
     */
    static TrialDistribution of(std::vector<double> samples);
};

/** Monte Carlo aggregate of one (benchmark, config) sweep point. */
struct FaultSweepStats {
    /** Trials attempted (0 = this point was not a Monte Carlo point). */
    int trials = 0;
    /** Trials that failed outright (e.g. a fault map killed a bank). */
    int failedTrials = 0;
    /** Latency distribution over successful trials, ms/iteration. */
    TrialDistribution msPerIteration;
    /** Energy distribution over successful trials, mJ/iteration. */
    TrialDistribution mjPerIteration;
    /** CArray capacity lost to faults, fraction of machine crossbars. */
    TrialDistribution capacityLost;

    bool ran() const { return trials > 0; }
};

} // namespace lergan

#endif // LERGAN_FAULTS_FAULT_STATS_HH
