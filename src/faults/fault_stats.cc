#include "faults/fault_stats.hh"

#include <algorithm>
#include <cmath>

namespace lergan {

TrialDistribution
TrialDistribution::of(std::vector<double> samples)
{
    TrialDistribution dist;
    if (samples.empty())
        return dist;
    std::sort(samples.begin(), samples.end());
    double sum = 0.0;
    for (double sample : samples)
        sum += sample;
    dist.mean = sum / static_cast<double>(samples.size());
    // Nearest-rank percentile: deterministic, no interpolation.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(0.95 * static_cast<double>(samples.size())));
    dist.p95 = samples[std::max<std::size_t>(rank, 1) - 1];
    dist.min = samples.front();
    dist.max = samples.back();
    return dist;
}

} // namespace lergan
