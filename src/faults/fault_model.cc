#include "faults/fault_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace lergan {

namespace {

/** splitmix64 step — decorrelates the user seed from the rate knobs. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Standard normal deviate via Box-Muller (two uniform draws). */
double
sampleGaussian(Rng &rng)
{
    // Guard the log: nextDouble() is in [0, 1).
    const double u1 = 1.0 - rng.nextDouble();
    const double u2 = rng.nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace

double
binomialTailAbove(std::uint64_t n, double p, std::uint64_t k)
{
    if (n == 0 || p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return k < n ? 1.0 : 0.0;
    if (k >= n)
        return 0.0;

    if (n <= 4096) {
        // Exact: sum P[X = i] for i in (k, n] in log space.
        double tail = 0.0;
        double log_pmf = static_cast<double>(n) * std::log1p(-p); // P[X=0]
        const double logit = std::log(p) - std::log1p(-p);
        for (std::uint64_t i = 1; i <= n; ++i) {
            log_pmf += std::log(static_cast<double>(n - i + 1)) -
                       std::log(static_cast<double>(i)) + logit;
            if (i > k)
                tail += std::exp(log_pmf);
        }
        return std::clamp(tail, 0.0, 1.0);
    }

    // Normal approximation with continuity correction.
    const double mean = static_cast<double>(n) * p;
    const double sd = std::sqrt(mean * (1.0 - p));
    if (sd == 0.0)
        return mean > static_cast<double>(k) ? 1.0 : 0.0;
    const double z = (static_cast<double>(k) + 0.5 - mean) / sd;
    return std::clamp(0.5 * std::erfc(z / std::sqrt(2.0)), 0.0, 1.0);
}

std::uint64_t
sampleBinomial(Rng &rng, std::uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    const double mean = static_cast<double>(n) * p;
    if (n <= 64) {
        // Direct Bernoulli trials.
        std::uint64_t count = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            count += rng.nextDouble() < p ? 1 : 0;
        return count;
    }
    if (mean < 16.0) {
        // Poisson-limit inversion (small expected counts).
        const double limit = std::exp(-mean);
        double product = rng.nextDouble();
        std::uint64_t count = 0;
        while (product > limit && count < n) {
            ++count;
            product *= rng.nextDouble();
        }
        return std::min(count, n);
    }
    // Normal approximation, rounded and clamped.
    const double sd = std::sqrt(mean * (1.0 - p));
    const double draw = mean + sd * sampleGaussian(rng);
    if (draw <= 0.0)
        return 0;
    if (draw >= static_cast<double>(n))
        return n;
    return static_cast<std::uint64_t>(std::llround(draw));
}

FaultGeometry
faultGeometry(int cu_pairs, const ReRamParams &params)
{
    LERGAN_ASSERT(cu_pairs > 0, "faultGeometry: need at least one pair");
    FaultGeometry geometry;
    geometry.banks = 6 * cu_pairs;
    geometry.tilesPerBank = params.tilesPerBank;
    geometry.crossbarsPerTile = params.crossbarsPerTile();
    return geometry;
}

std::vector<std::pair<int, int>>
FaultMap::killedTiles() const
{
    std::vector<std::pair<int, int>> killed;
    for (int bank = 0; bank < geometry.banks; ++bank)
        for (int tile = 0; tile < geometry.tilesPerBank; ++tile)
            if (tiles[bank][tile].killed)
                killed.emplace_back(bank, tile);
    return killed;
}

int
FaultMap::killedInBank(int bank) const
{
    int killed = 0;
    for (const TileFaults &tile : tiles[bank])
        killed += tile.killed ? 1 : 0;
    return killed;
}

std::uint64_t
FaultMap::lostCrossbars() const
{
    std::uint64_t lost = 0;
    for (const auto &bank : tiles) {
        for (const TileFaults &tile : bank) {
            lost += tile.killed
                        ? geometry.crossbarsPerTile
                        : std::min(tile.deadCrossbars,
                                   geometry.crossbarsPerTile);
        }
    }
    return lost;
}

std::uint64_t
FaultMap::totalCrossbars() const
{
    return static_cast<std::uint64_t>(geometry.banks) *
           geometry.tilesPerBank * geometry.crossbarsPerTile;
}

std::string
FaultMap::serialize() const
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "faultmap b" << geometry.banks << " t" << geometry.tilesPerBank
        << " x" << geometry.crossbarsPerTile << '\n';
    for (int bank = 0; bank < geometry.banks; ++bank) {
        for (int tile = 0; tile < geometry.tilesPerBank; ++tile) {
            const TileFaults &f = tiles[bank][tile];
            if (f.stuckCells == 0 && f.stuckColumns == 0 &&
                f.deadCrossbars == 0 && f.wear == 0.0 && !f.killed) {
                continue; // healthy tiles stay implicit
            }
            oss << bank << '.' << tile << ": cells=" << f.stuckCells
                << " lrs=" << f.stuckLrsCells
                << " cols=" << f.stuckColumns
                << " deadx=" << f.deadCrossbars << " wear=" << f.wear
                << (f.killed ? " KILLED" : "") << '\n';
        }
    }
    return oss.str();
}

FaultMap
buildFaultMap(const FaultGeometry &geometry, const FaultConfig &config)
{
    LERGAN_ASSERT(geometry.banks > 0 && geometry.tilesPerBank > 0 &&
                      geometry.crossbarsPerTile > 0,
                  "buildFaultMap: invalid geometry");
    FaultMap map;
    map.geometry = geometry;
    map.tiles.assign(geometry.banks,
                     std::vector<TileFaults>(geometry.tilesPerBank));

    // Probability that one crossbar dies of cell faults: more than the
    // tolerated fraction of its cells stuck. Computed once — it is a
    // property of the rates, not of the sampling.
    const auto tolerated_cells = static_cast<std::uint64_t>(
        config.cellTolerance *
        static_cast<double>(geometry.cellsPerCrossbar));
    const double p_dead_cells = binomialTailAbove(
        geometry.cellsPerCrossbar, config.cellStuckRate, tolerated_cells);
    const auto tolerated_cols = static_cast<std::uint64_t>(
        config.columnTolerance *
        static_cast<double>(geometry.columnsPerCrossbar));
    const double p_dead_cols =
        binomialTailAbove(geometry.columnsPerCrossbar,
                          config.columnStuckRate, tolerated_cols);

    const std::uint64_t cells_per_tile =
        geometry.crossbarsPerTile * geometry.cellsPerCrossbar;
    const std::uint64_t cols_per_tile =
        geometry.crossbarsPerTile * geometry.columnsPerCrossbar;
    const double dead_xbar_limit =
        config.tileDeadCrossbarTolerance *
        static_cast<double>(geometry.crossbarsPerTile);

    Rng rng(mix(config.seed));
    for (int bank = 0; bank < geometry.banks; ++bank) {
        for (int tile = 0; tile < geometry.tilesPerBank; ++tile) {
            TileFaults &f = map.tiles[bank][tile];
            f.killed = rng.nextDouble() < config.tileKillRate;
            f.stuckCells =
                sampleBinomial(rng, cells_per_tile, config.cellStuckRate);
            f.stuckLrsCells = sampleBinomial(rng, f.stuckCells,
                                             config.stuckAtLrsShare);
            f.stuckColumns = sampleBinomial(rng, cols_per_tile,
                                            config.columnStuckRate);
            const std::uint64_t dead =
                sampleBinomial(rng, geometry.crossbarsPerTile,
                               p_dead_cells) +
                sampleBinomial(rng, geometry.crossbarsPerTile, p_dead_cols);
            f.deadCrossbars = std::min(dead, geometry.crossbarsPerTile);
            if (static_cast<double>(f.deadCrossbars) > dead_xbar_limit)
                f.killed = true;
        }
    }
    return map;
}

} // namespace lergan
