#include "zfdr/reshape.hh"

#include "common/logging.hh"

namespace lergan {

const char *
reshapeClassName(ReshapeClass cls)
{
    switch (cls) {
      case ReshapeClass::Corner: return "corner";
      case ReshapeClass::Edge:   return "edge";
      case ReshapeClass::Inside: return "inside";
    }
    return "?";
}

ReshapeClass
ReshapeMatrix::cls(int spatial_dims) const
{
    if (interiorDims == spatial_dims)
        return ReshapeClass::Inside;
    if (interiorDims == spatial_dims - 1)
        return ReshapeClass::Edge;
    return ReshapeClass::Corner;
}

const ClassStats &
ReshapeAnalysis::byClass(ReshapeClass cls) const
{
    switch (cls) {
      case ReshapeClass::Corner: return corner;
      case ReshapeClass::Edge:   return edge;
      case ReshapeClass::Inside: return inside;
    }
    return corner;
}

std::uint64_t
ReshapeAnalysis::distinctMatrices() const
{
    return corner.matrices + edge.matrices + inside.matrices;
}

std::uint64_t
ReshapeAnalysis::totalWeightElems() const
{
    return corner.weightElems + edge.weightElems + inside.weightElems;
}

ReshapeAnalysis
analyzeReshape(const LayerOp &op)
{
    LERGAN_ASSERT(op.zfdrApplicable(),
                  "analyzeReshape needs a sparse op, got ", op.label);
    const Pattern1D p = op.pattern1d();
    const int dims = op.spatialDims;
    const std::uint64_t channel_elems =
        static_cast<std::uint64_t>(op.vecChannels) * op.outWidth;

    ReshapeAnalysis analysis;
    analysis.spatialDims = dims;
    analysis.totalPositions = ipow(p.positions, dims);

    // The d-dimensional masks are all tuples of 1-D masks; mask volumes
    // and reuse counts multiply across dimensions.
    const std::size_t g = p.groups.size();
    std::vector<std::size_t> idx(dims, 0);
    for (;;) {
        ReshapeMatrix matrix;
        matrix.maskVolume = 1;
        matrix.reuse = 1;
        for (int d = 0; d < dims; ++d) {
            const MaskGroup &group = p.groups[idx[d]];
            matrix.maskVolume *= group.mask.size();
            matrix.reuse *= group.reuse;
            if (group.interior)
                ++matrix.interiorDims;
        }
        analysis.matrices.push_back(matrix);

        // Odometer increment over the d-fold group product.
        int d = 0;
        while (d < dims && ++idx[d] == g) {
            idx[d] = 0;
            ++d;
        }
        if (d == dims)
            break;
    }

    for (const ReshapeMatrix &m : analysis.matrices) {
        ClassStats *stats = nullptr;
        switch (m.cls(dims)) {
          case ReshapeClass::Corner: stats = &analysis.corner; break;
          case ReshapeClass::Edge:   stats = &analysis.edge; break;
          case ReshapeClass::Inside: stats = &analysis.inside; break;
        }
        stats->matrices += 1;
        stats->servedPositions += m.reuse;
        stats->maxReuse = std::max(stats->maxReuse, m.reuse);
        stats->weightElems += m.maskVolume * channel_elems;
    }

    LERGAN_ASSERT(analysis.corner.servedPositions +
                          analysis.edge.servedPositions +
                          analysis.inside.servedPositions ==
                      analysis.totalPositions,
                  op.label, ": reshape classes must cover all positions");
    return analysis;
}

} // namespace lergan
