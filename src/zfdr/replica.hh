/**
 * @file
 * Replica (duplication) policy for reshaped weights (paper Sec. V,
 * Table III and Eq. 14).
 *
 * Because InsideReshape matrices are reused far more than Edge/Corner
 * ones, compute time is dominated by the inside class; duplicating
 * inside (and edge) matrices trades CArray space for parallelism. The
 * paper exposes three programmer-facing degrees:
 *
 *   low    : replicas = (corner 1, edge 1,     inside e_max)
 *   middle : replicas = (corner 1, edge e_max, inside e_max)
 *   high   : replicas = (corner 1, edge e_max, inside i_max)
 *
 * where e_max is the largest duplication for which inter-tile transfer
 * time does not exceed compute time, and i_max = LL * e_max.
 */

#ifndef LERGAN_ZFDR_REPLICA_HH
#define LERGAN_ZFDR_REPLICA_HH

#include <cstdint>

#include "zfdr/reshape.hh"

namespace lergan {

/** Programmer-selected duplication degree (paper Sec. V "Program"). */
enum class ReplicaDegree { Low, Middle, High };

/** @return printable degree name. */
const char *replicaDegreeName(ReplicaDegree degree);

/** Copies per matrix in each reshape class. */
struct ReplicaVector {
    std::uint64_t corner = 1;
    std::uint64_t edge = 1;
    std::uint64_t inside = 1;

    std::uint64_t
    forClass(ReshapeClass cls) const
    {
        switch (cls) {
          case ReshapeClass::Corner: return corner;
          case ReshapeClass::Edge:   return edge;
          case ReshapeClass::Inside: return inside;
        }
        return 1;
    }
};

/** Timing/space inputs to the e_max computation (paper Sec. V). */
struct ReplicaCostParams {
    /** t_m: one MMV wave, in nanoseconds. */
    double mmvTimeNs = 50.0;
    /** t_t: one neighbor-tile hop, in nanoseconds. */
    double hopTimeNs = 2.9;
    /** Weight elements one tile's CArray can hold. */
    std::uint64_t carrayElemsPerTile = 1u << 20;
    /**
     * Amortized crossbar write time per element. Weight-gradient ops
     * (Dw<-, Gw<-) program their per-item gradient operand into the
     * crossbars before computing, so duplication also multiplies write
     * time; their replica choice balances both.
     */
    double writeNsPerElem = 0.01;
};

/**
 * Choose the replica vector for one sparse op.
 *
 * Implements the paper's constraint t_t_total <= t_c_total: duplication
 * stops growing once the layer spans so many tiles that shipping results
 * to the next layer would dominate the (shrinking) compute time.
 */
ReplicaVector chooseReplicas(const LayerOp &op,
                             const ReshapeAnalysis &analysis,
                             ReplicaDegree degree,
                             const ReplicaCostParams &params);

/**
 * Duplication count for dense ops mapped with the normal DataMapping
 * scheme (Eq. 14).
 *
 * @param degree     programmer-selected degree.
 * @param zfdr_elems s_zf: weight elements of the ZFDR-expanded mapping
 *                   this dense op shares bandwidth with.
 * @param base_elems s_n: weight elements before duplication.
 */
std::uint64_t denseReplicas(ReplicaDegree degree, std::uint64_t zfdr_elems,
                            std::uint64_t base_elems);

} // namespace lergan

#endif // LERGAN_ZFDR_REPLICA_HH
