/**
 * @file
 * Zero-Free Data Reshaping analysis (paper Sec. IV-A).
 *
 * Composes the exact 1-D zero patterns (nn/conv_pattern.hh) into the full
 * d-dimensional set of reshaped weight matrices for one layer op. Each
 * distinct d-dimensional window mask is one reshaped matrix stored in a
 * CArray; its reuse count is the number of output positions it serves.
 * Matrices are classified CornerReshape / EdgeReshape / InsideReshape by
 * how many dimensions use an interior (periodic) mask, matching the
 * paper's Case 1 / Case 2 / Case 3.
 */

#ifndef LERGAN_ZFDR_RESHAPE_HH
#define LERGAN_ZFDR_RESHAPE_HH

#include <cstdint>
#include <vector>

#include "nn/training.hh"

namespace lergan {

/** The three reshape classes of Sec. IV-A. */
enum class ReshapeClass { Corner, Edge, Inside };

/** @return printable class name. */
const char *reshapeClassName(ReshapeClass cls);

/** One distinct reshaped matrix. */
struct ReshapeMatrix {
    /** Useful taps per dimension multiplied out (rows before channels). */
    std::uint64_t maskVolume = 0;
    /** Output positions served by this matrix. */
    std::uint64_t reuse = 0;
    /** Number of dimensions whose 1-D mask is interior. */
    int interiorDims = 0;

    /** Classification per the paper's three cases. */
    ReshapeClass cls(int spatial_dims) const;
};

/** Aggregate statistics for one reshape class. */
struct ClassStats {
    /** Distinct matrices in the class. */
    std::uint64_t matrices = 0;
    /** Total positions served by the class. */
    std::uint64_t servedPositions = 0;
    /** Largest reuse of any single matrix. */
    std::uint64_t maxReuse = 0;
    /** Weight elements stored for one copy of every matrix. */
    std::uint64_t weightElems = 0;
};

/** Full ZFDR analysis of one sparse layer op. */
struct ReshapeAnalysis {
    ClassStats corner;
    ClassStats edge;
    ClassStats inside;
    /** Every distinct matrix (size = product of per-dim distinct masks). */
    std::vector<ReshapeMatrix> matrices;
    /** positions^d: total output positions of the scan. */
    std::uint64_t totalPositions = 0;
    int spatialDims = 2;

    /** Access one class. */
    const ClassStats &byClass(ReshapeClass cls) const;

    /** Total distinct matrices. */
    std::uint64_t distinctMatrices() const;

    /** Weight elements for one copy of everything. */
    std::uint64_t totalWeightElems() const;
};

/**
 * Analyze a sparse op (SparseGridConv or SparseKernelConv).
 *
 * @pre op.zfdrApplicable().
 * Weight element counts include the channel dimensions: a matrix with
 * mask volume V stores V * vecChannels * outWidth values.
 */
ReshapeAnalysis analyzeReshape(const LayerOp &op);

} // namespace lergan

#endif // LERGAN_ZFDR_RESHAPE_HH
