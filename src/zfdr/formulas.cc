#include "zfdr/formulas.hh"

#include "common/logging.hh"

namespace lergan {

namespace {

/** ceil(a / b) for non-negative a, positive b. */
int
ceilDiv(int a, int b)
{
    return a <= 0 ? 0 : (a + b - 1) / b;
}

/** n choose k for the tiny values used in class counting. */
std::uint64_t
choose(int n, int k)
{
    std::uint64_t result = 1;
    for (int i = 0; i < k; ++i)
        result = result * (n - i) / (i + 1);
    return result;
}

/** Integer power. */
std::uint64_t
upow(std::uint64_t base, int exp)
{
    std::uint64_t r = 1;
    for (int i = 0; i < exp; ++i)
        r *= base;
    return r;
}

/**
 * Class counts from per-dimension edge/interior mask counts. A composed
 * d-dimensional group is classified by how many of its dimensions use an
 * interior mask: all d -> inside, exactly d-1 -> edge, fewer -> corner
 * (the paper's corner case covers everything touching 2+ boundaries).
 */
ClassCounts
compose(std::uint64_t edge_1d, std::uint64_t interior_1d, int dims)
{
    ClassCounts counts;
    counts.inside = upow(interior_1d, dims);
    counts.edge = choose(dims, dims - 1) * upow(interior_1d, dims - 1) *
                  edge_1d;
    std::uint64_t total = upow(edge_1d + interior_1d, dims);
    counts.corner = total - counts.inside - counts.edge;
    return counts;
}

} // namespace

int
loopLength(int input, int insert_stride, int pad, int rem)
{
    LERGAN_ASSERT(input > 0 && insert_stride > 0 && pad >= 0 && rem >= 0,
                  "loopLength: bad arguments");
    if (pad >= insert_stride - 1)
        return input * insert_stride + (insert_stride - 1);
    if (pad + rem >= insert_stride - 1)
        return input * insert_stride;
    return input * insert_stride - (insert_stride - 1);
}

int
edgeR1(int pad, int insert_stride)
{
    return pad < insert_stride - 1 ? pad : pad - (insert_stride - 1);
}

int
edgeR2(int pad, int rem, int insert_stride)
{
    return pad + rem >= insert_stride - 1 ? (pad + rem) - (insert_stride - 1)
                                          : pad + rem;
}

int
tconvEdge1d(int input, int insert_stride, int pad, int rem)
{
    const int grid = (input - 1) * insert_stride + 1 + rem + 2 * pad;
    return grid - loopLength(input, insert_stride, pad, rem);
}

ClassCounts
tconvClassCounts(int input, int insert_stride, int pad, int rem,
                 int spatial_dims)
{
    const int edge_1d = tconvEdge1d(input, insert_stride, pad, rem);
    LERGAN_ASSERT(edge_1d >= 0, "tconvClassCounts: negative edge count");
    return compose(edge_1d, insert_stride, spatial_dims);
}

ClassCounts
wconvClassCounts(int input, int pad, int out, int stride, int rem,
                 int spatial_dims)
{
    (void)input;
    (void)out;
    const int edge_1d = ceilDiv(pad, stride) + ceilDiv(pad - rem, stride);
    return compose(edge_1d, 1, spatial_dims);
}

int
wconvInteriorReuse(int input, int out, int stride)
{
    return input - (out - 1) * stride;
}

} // namespace lergan
