#include "zfdr/replica.hh"

#include <algorithm>

#include "common/logging.hh"
#include "zfdr/formulas.hh"

namespace lergan {

const char *
replicaDegreeName(ReplicaDegree degree)
{
    switch (degree) {
      case ReplicaDegree::Low:    return "low";
      case ReplicaDegree::Middle: return "middle";
      case ReplicaDegree::High:   return "high";
    }
    return "?";
}

namespace {

/** ceil division for 64-bit counts. */
std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Compute time of a layer for a candidate replica vector: the slowest
 * class dominates (the paper's "execution time of parallel tasks is
 * decided by the longest task").
 */
double
computeTimeNs(const LayerOp &op, const ReshapeAnalysis &analysis,
              const ReplicaVector &replicas, const ReplicaCostParams &params)
{
    const std::uint64_t vpp = op.vectorsPerPosition;
    std::uint64_t waves = 0;
    for (ReshapeClass cls :
         {ReshapeClass::Corner, ReshapeClass::Edge, ReshapeClass::Inside}) {
        const ClassStats &stats = analysis.byClass(cls);
        if (stats.matrices == 0)
            continue;
        waves = std::max(waves, ceilDiv(stats.maxReuse * vpp,
                                        replicas.forClass(cls)));
    }
    return static_cast<double>(waves) * params.mmvTimeNs;
}

/** Transfer time: hops needed to drain the layer's result tiles. */
double
transferTimeNs(const ReshapeAnalysis &analysis,
               const ReplicaVector &replicas, const ReplicaCostParams &params)
{
    const std::uint64_t elems =
        analysis.corner.weightElems * replicas.corner +
        analysis.edge.weightElems * replicas.edge +
        analysis.inside.weightElems * replicas.inside;
    const std::uint64_t tiles =
        std::max<std::uint64_t>(1, ceilDiv(elems, params.carrayElemsPerTile));
    return static_cast<double>(tiles - 1) * params.hopTimeNs;
}

} // namespace

ReplicaVector
chooseReplicas(const LayerOp &op, const ReshapeAnalysis &analysis,
               ReplicaDegree degree, const ReplicaCostParams &params)
{
    const std::uint64_t vpp = op.vectorsPerPosition;

    // Weight-gradient ops write their operand into the crossbars per
    // item, so every extra replica costs write time; balance writes
    // against the MMV waves saved instead of applying Table III.
    const bool per_item_write = op.phase == Phase::DBwdWeight ||
                                op.phase == Phase::GBwdWeight;
    if (per_item_write) {
        const std::uint64_t issues =
            std::max<std::uint64_t>(1, analysis.inside.maxReuse * vpp);
        const std::uint64_t base_elems = std::max<std::uint64_t>(
            1, analysis.totalWeightElems());
        std::uint64_t best_r = 1;
        double best_t = -1.0;
        for (std::uint64_t r = 1; r <= issues; r = r * 2) {
            const double t =
                params.writeNsPerElem *
                    static_cast<double>(base_elems * r) +
                params.mmvTimeNs *
                    static_cast<double>(ceilDiv(issues, r));
            if (best_t < 0 || t < best_t) {
                best_t = t;
                best_r = r;
            }
        }
        std::uint64_t chosen = 1;
        switch (degree) {
          case ReplicaDegree::Low:
            chosen = 1;
            break;
          case ReplicaDegree::Middle:
            chosen = std::max<std::uint64_t>(1, best_r / 2);
            break;
          case ReplicaDegree::High:
            chosen = best_r;
            break;
        }
        // Every class serves vpp vectors per position, so every class
        // needs the duplication (capped by its own workload).
        ReplicaVector replicas;
        replicas.corner = std::min(
            chosen, std::max<std::uint64_t>(
                        1, analysis.corner.maxReuse * vpp));
        replicas.edge = std::min(
            chosen,
            std::max<std::uint64_t>(1, analysis.edge.maxReuse * vpp));
        replicas.inside = std::min(
            chosen,
            std::max<std::uint64_t>(1, analysis.inside.maxReuse * vpp));
        return replicas;
    }

    // No point replicating a matrix beyond its own workload.
    const std::uint64_t edge_cap =
        std::max<std::uint64_t>(1, analysis.edge.maxReuse * vpp);
    const std::uint64_t inside_cap =
        std::max<std::uint64_t>(1, analysis.inside.maxReuse * vpp);

    // The loop length bounds how far inside duplication outruns edge
    // duplication (paper: replica_i_max = LL * replica_e_max).
    std::uint64_t ll = 1;
    if (op.pattern == OpPattern::SparseGridConv) {
        // For asymmetric padding the leading pad is used; LL only steers
        // the duplication heuristic.
        ll = static_cast<std::uint64_t>(
            loopLength(op.data, op.stride, op.padLo, op.rem));
    } else {
        ll = std::max<std::uint64_t>(
            1, wconvInteriorReuse(op.data, op.window, op.stride));
    }

    // Find e_max: the largest edge duplication whose matching inside
    // duplication keeps transfers no slower than compute.
    std::uint64_t e_max = 1;
    for (std::uint64_t r_e = 1; r_e <= edge_cap; ++r_e) {
        ReplicaVector candidate;
        candidate.corner = 1;
        candidate.edge = r_e;
        candidate.inside = std::min(inside_cap, ll * r_e);
        const double t_c = computeTimeNs(op, analysis, candidate, params);
        const double t_t = transferTimeNs(analysis, candidate, params);
        if (t_t > t_c && r_e > 1)
            break;
        e_max = r_e;
        // Once compute is a single wave, more duplication cannot help.
        if (t_c <= params.mmvTimeNs)
            break;
    }
    const std::uint64_t i_max = std::min(inside_cap, ll * e_max);

    ReplicaVector replicas;
    replicas.corner = 1;
    switch (degree) {
      case ReplicaDegree::Low:
        replicas.edge = 1;
        replicas.inside = std::min(inside_cap, e_max);
        break;
      case ReplicaDegree::Middle:
        replicas.edge = std::min(edge_cap, e_max);
        replicas.inside = std::min(inside_cap, e_max);
        break;
      case ReplicaDegree::High:
        replicas.edge = std::min(edge_cap, e_max);
        replicas.inside = i_max;
        break;
    }
    return replicas;
}

std::uint64_t
denseReplicas(ReplicaDegree degree, std::uint64_t zfdr_elems,
              std::uint64_t base_elems)
{
    LERGAN_ASSERT(base_elems > 0, "denseReplicas: empty layer");
    switch (degree) {
      case ReplicaDegree::Low:
        return 1;
      case ReplicaDegree::Middle:
        return std::max<std::uint64_t>(1, zfdr_elems / (2 * base_elems));
      case ReplicaDegree::High:
        return std::max<std::uint64_t>(1, zfdr_elems / base_elems);
    }
    return 1;
}

} // namespace lergan
