#include "zfdr/cost.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lergan {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

std::uint64_t
CrossbarGeom::crossbarsFor(std::uint64_t matrix_rows,
                           std::uint64_t matrix_cols) const
{
    if (matrix_rows == 0 || matrix_cols == 0)
        return 0;
    return ceilDiv(matrix_rows, rows) *
           ceilDiv(matrix_cols * cellsPerWeight(), cols);
}

OpCost
zfdrOpCost(const LayerOp &op, const ReshapeAnalysis &analysis,
           const ReplicaVector &replicas, const CrossbarGeom &geom)
{
    OpCost cost;
    const std::uint64_t vpp = op.vectorsPerPosition;
    cost.inputElems = op.inputData;
    cost.outputElems = op.outputData;

    for (const ReshapeMatrix &matrix : analysis.matrices) {
        if (matrix.maskVolume == 0) {
            // All-zero windows need no computation at all under ZFDR.
            continue;
        }
        const ReshapeClass cls = matrix.cls(analysis.spatialDims);
        const std::uint64_t copies = replicas.forClass(cls);
        const std::uint64_t matrix_rows =
            matrix.maskVolume * op.vecChannels;
        const std::uint64_t crossbars =
            geom.crossbarsFor(matrix_rows, op.outWidth);

        const std::uint64_t issues = matrix.reuse * vpp;
        cost.mmvs += issues;
        cost.crossbarActivations += issues * crossbars;
        cost.weightElems += matrix_rows * op.outWidth * copies;
        cost.crossbarsUsed += crossbars * copies;
        cost.waves = std::max(cost.waves, ceilDiv(issues, copies));
    }
    return cost;
}

OpCost
normalOpCost(const LayerOp &op, std::uint64_t replicas,
             const CrossbarGeom &geom)
{
    LERGAN_ASSERT(replicas >= 1, "normalOpCost: replicas must be >= 1");
    OpCost cost;
    cost.inputElems = op.inputWithZeros;
    cost.outputElems = op.outputData;

    // The dense matrix stored in CArrays, zeros included.
    std::uint64_t matrix_rows = 0;
    std::uint64_t positions = 1;
    switch (op.pattern) {
      case OpPattern::DenseFc:
      case OpPattern::OuterProductFc:
        matrix_rows = op.denseRows;
        positions = 1;
        break;
      case OpPattern::DenseConv:
        matrix_rows = op.denseRows;
        positions = ipow(op.positions, op.spatialDims);
        break;
      case OpPattern::SparseGridConv:
        // Normal reshape keeps the dense kernel and scans every window.
        matrix_rows = ipow(op.window, op.spatialDims) *
                      static_cast<std::uint64_t>(op.vecChannels);
        positions = ipow(op.positions, op.spatialDims);
        break;
      case OpPattern::SparseKernelConv: {
        // The zero-inserted grad map is stored verbatim as the kernel.
        const std::uint64_t extent =
            static_cast<std::uint64_t>(op.window - 1) * op.stride + 1 +
            op.rem;
        matrix_rows = ipow(extent, op.spatialDims) *
                      static_cast<std::uint64_t>(op.vecChannels);
        positions = ipow(op.positions, op.spatialDims);
        break;
      }
    }

    const std::uint64_t vpp = op.vectorsPerPosition;
    const std::uint64_t issues = positions * vpp;
    const std::uint64_t crossbars =
        geom.crossbarsFor(matrix_rows, op.outWidth);

    cost.mmvs = issues;
    cost.crossbarActivations = issues * crossbars;
    cost.weightElems = matrix_rows * op.outWidth * replicas;
    cost.crossbarsUsed = crossbars * replicas;
    cost.waves = ceilDiv(issues, replicas);
    return cost;
}

} // namespace lergan
