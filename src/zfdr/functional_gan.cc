#include "zfdr/functional_gan.hh"

#include "common/logging.hh"

namespace lergan {

namespace {

/** Kernel tensor shape for any layer kind. */
std::vector<int>
kernelShapeOf(const LayerSpec &layer)
{
    if (layer.kind == LayerKind::FullyConnected)
        return {layer.outChannels, layer.inChannels};
    return kernelShape(layer);
}

} // namespace

FunctionalGan::FunctionalGan(const GanModel &model, Rng &rng)
    : model_(model)
{
    for (const LayerSpec &layer : model_.generator)
        genKernels_.push_back(
            Tensor::random(kernelShapeOf(layer), rng, -3, 3));
    for (const LayerSpec &layer : model_.discriminator)
        discKernels_.push_back(
            Tensor::random(kernelShapeOf(layer), rng, -3, 3));
}

const Tensor &
FunctionalGan::kernel(NetRole role, std::size_t layer) const
{
    const auto &kernels =
        role == NetRole::Generator ? genKernels_ : discKernels_;
    LERGAN_ASSERT(layer < kernels.size(), "kernel index out of range");
    return kernels[layer];
}

FunctionalTrace
FunctionalGan::forward(NetRole role, const Tensor &input,
                       bool use_zfdr) const
{
    const auto &net = model_.net(role);
    FunctionalTrace trace;
    trace.activations.push_back(input);
    for (std::size_t l = 0; l < net.size(); ++l) {
        const LayerSpec &layer = net[l];
        const Tensor &k = kernel(role, l);
        const Tensor &prev = trace.activations.back();
        switch (layer.kind) {
          case LayerKind::FullyConnected:
            trace.activations.push_back(fcForwardRef(
                prev.reshaped({layer.inChannels}), k, layer));
            break;
          case LayerKind::Conv:
            trace.activations.push_back(convForwardRef(
                prev.reshaped(inputShape(layer)), k, layer));
            break;
          case LayerKind::TConv: {
            const Tensor in = prev.reshaped(inputShape(layer));
            trace.activations.push_back(
                use_zfdr ? tconvForwardZfdr(in, k, layer)
                         : tconvForwardRef(in, k, layer));
            break;
          }
        }
    }
    return trace;
}

void
FunctionalGan::backward(NetRole role, FunctionalTrace &trace,
                        const Tensor &grad_output, bool use_zfdr) const
{
    const auto &net = model_.net(role);
    LERGAN_ASSERT(trace.activations.size() == net.size() + 1,
                  "backward needs a full forward trace");
    trace.inputGrads.assign(net.size(), Tensor{});
    trace.weightGrads.assign(net.size(), Tensor{});

    Tensor grad = grad_output;
    for (std::size_t l = net.size(); l-- > 0;) {
        const LayerSpec &layer = net[l];
        const Tensor &k = kernel(role, l);
        switch (layer.kind) {
          case LayerKind::FullyConnected: {
            const Tensor g = grad.reshaped({layer.outChannels});
            const Tensor a =
                trace.activations[l].reshaped({layer.inChannels});
            trace.weightGrads[l] = fcWeightGradRef(a, g, layer);
            trace.inputGrads[l] = fcBackwardDataRef(g, k, layer);
            break;
          }
          case LayerKind::Conv: {
            const Tensor g = grad.reshaped(outputShape(layer));
            const Tensor a =
                trace.activations[l].reshaped(inputShape(layer));
            // Dw<- is a W-CONV-S; error transfer is a ZFDR_T pattern.
            trace.weightGrads[l] =
                use_zfdr ? convWeightGradZfdr(a, g, layer)
                         : convWeightGradRef(a, g, layer);
            trace.inputGrads[l] =
                use_zfdr ? convBackwardDataZfdr(g, k, layer)
                         : convBackwardDataRef(g, k, layer);
            break;
          }
          case LayerKind::TConv: {
            const Tensor g = grad.reshaped(outputShape(layer));
            const Tensor a =
                trace.activations[l].reshaped(inputShape(layer));
            // Gw<- is a W-CONV-T; error transfer through a T-CONV is a
            // dense S-CONV (no zeros to remove).
            trace.weightGrads[l] =
                use_zfdr ? tconvWeightGradZfdr(a, g, layer)
                         : tconvWeightGradRef(a, g, layer);
            trace.inputGrads[l] = tconvBackwardDataRef(g, k, layer);
            break;
          }
        }
        grad = trace.inputGrads[l];
    }
}

} // namespace lergan
