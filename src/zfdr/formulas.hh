/**
 * @file
 * The paper's closed-form ZFDR expressions (Sec. IV-A, Eq. 11-13).
 *
 * These are the formulas LerGAN's compiler uses to size the reshape
 * classes without enumerating windows. The enumeration in zfdr/reshape.hh
 * is the authoritative ground truth; unit tests check the closed forms
 * against it on every benchmark layer.
 *
 * Erratum handled: the paper states the T-CONV edge count as
 * "R1*S'*2 + R1*S'*2"; reproducing its own CONV1 total of 25 reshaped
 * matrices requires R1*S'*2 + R2*S'*2, which we implement.
 */

#ifndef LERGAN_ZFDR_FORMULAS_HH
#define LERGAN_ZFDR_FORMULAS_HH

#include <cstdint>

namespace lergan {

/**
 * Loop Length (Eq. 11): the period of the reshaped-weight reuse pattern
 * along one dimension of a T-CONV.
 *
 * @param input         I, input side length.
 * @param insert_stride S', converse stride.
 * @param pad           P, forward padding (W - P' - 1).
 * @param rem           R, remainder of Eq. 5.
 */
int loopLength(int input, int insert_stride, int pad, int rem);

/** R1 (Eq. 12). */
int edgeR1(int pad, int insert_stride);

/** R2 (Eq. 13). */
int edgeR2(int pad, int rem, int insert_stride);

/** Number of distinct 1-D edge masks of a T-CONV: grid length - LL. */
int tconvEdge1d(int input, int insert_stride, int pad, int rem);

/** Distinct reshaped matrices per class of a d-dimensional T-CONV ZFDR. */
struct ClassCounts {
    std::uint64_t corner = 0; ///< Case 1: no interior dimension
    std::uint64_t edge = 0;   ///< Case 2: all but one dimension interior
    std::uint64_t inside = 0; ///< Case 3: all dimensions interior
};

/**
 * T-CONV ZFDR class counts (paper Case 1-3 generalized to d dimensions):
 * corner = E^d, inside = S'^d, edge = everything in between, where
 * E = tconvEdge1d and the per-dimension interior class has S' masks.
 */
ClassCounts tconvClassCounts(int input, int insert_stride, int pad, int rem,
                             int spatial_dims);

/**
 * W-CONV-S ZFDR class counts: per dimension there are
 * ceil(P/S) + ceil((P-R)/S) edge masks and exactly one interior (full)
 * mask, reused I - (O-1)S times (paper Case 1-3).
 */
ClassCounts wconvClassCounts(int input, int pad, int out, int stride,
                             int rem, int spatial_dims);

/** Interior reuse of a W-CONV-S along one dimension: I - (O-1)S. */
int wconvInteriorReuse(int input, int out, int stride);

} // namespace lergan

#endif // LERGAN_ZFDR_FORMULAS_HH
