#include "zfdr/functional.hh"

#include "common/logging.hh"
#include "nn/conv_pattern.hh"

namespace lergan {

namespace {

std::vector<int>
cat(int head, const std::vector<int> &tail)
{
    std::vector<int> index{head};
    index.insert(index.end(), tail.begin(), tail.end());
    return index;
}

std::vector<int>
cat2(int a, int b, const std::vector<int> &tail)
{
    std::vector<int> index{a, b};
    index.insert(index.end(), tail.begin(), tail.end());
    return index;
}

std::vector<int>
spatial(int side, int dims)
{
    return std::vector<int>(dims, side);
}

/**
 * Walk the d-fold product of the per-dimension masks at position @p pos:
 * invokes @p fn with the window-offset tuple and the data element index
 * tuple it maps to.
 */
void
forEachMaskTuple(
    const Pattern1D &pattern, int insert_stride, int pad_lo,
    const std::vector<int> &pos,
    const std::function<void(const std::vector<int> &offsets,
                             const std::vector<int> &data)> &fn)
{
    const int dims = static_cast<int>(pos.size());
    std::vector<const std::vector<int> *> masks(dims);
    std::vector<int> extent(dims);
    for (int d = 0; d < dims; ++d) {
        masks[d] = &pattern.maskOf(pos[d]);
        extent[d] = static_cast<int>(masks[d]->size());
        if (extent[d] == 0)
            return; // all-zero window: nothing to compute
    }
    std::vector<int> offsets(dims), data(dims);
    forEachIndex(extent, [&](const std::vector<int> &sel) {
        for (int d = 0; d < dims; ++d) {
            offsets[d] = (*masks[d])[sel[d]];
            data[d] = (pos[d] + offsets[d] - pad_lo) / insert_stride;
        }
        fn(offsets, data);
    });
}

} // namespace

Tensor
tconvForwardZfdr(const Tensor &input, const Tensor &kernel,
                 const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::TConv, "tconvForwardZfdr: ",
                  layer.name, " is not a T-CONV");
    const int pad_lo = layer.kernel - 1 - layer.pad;
    const int pad_hi = layer.kernel - 1 - layer.padHi;
    const Pattern1D pattern =
        sparseGridPattern(layer.inSize, layer.stride, pad_lo, pad_hi,
                          layer.rem, layer.kernel);
    LERGAN_ASSERT(pattern.positions == layer.outSize,
                  "tconvForwardZfdr: pattern/shape mismatch");

    Tensor out(outputShape(layer));
    forEachIndex(spatial(layer.outSize, layer.spatialDims),
                 [&](const std::vector<int> &p) {
        // One reshaped-matrix MMV per output position: gather the
        // non-zero inputs, multiply by the mask-selected kernel entries.
        forEachMaskTuple(pattern, layer.stride, pad_lo, p,
                         [&](const std::vector<int> &w,
                             const std::vector<int> &t) {
            for (int oc = 0; oc < layer.outChannels; ++oc) {
                std::int64_t acc = 0;
                for (int ic = 0; ic < layer.inChannels; ++ic)
                    acc += input.at(cat(ic, t)) *
                           kernel.at(cat2(oc, ic, w));
                out.at(cat(oc, p)) += acc;
            }
        });
    });
    return out;
}

Tensor
convBackwardDataZfdr(const Tensor &grad_out, const Tensor &kernel,
                     const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::Conv,
                  "convBackwardDataZfdr: ", layer.name,
                  " is not an S-CONV");
    // The zero-inserted map is the output gradient; its grid uses the
    // backprop padding W - 1 - P per side.
    const int pad_lo = layer.kernel - 1 - layer.pad;
    const int pad_hi = layer.kernel - 1 - layer.padHi;
    const Pattern1D pattern =
        sparseGridPattern(layer.outSize, layer.stride, pad_lo, pad_hi,
                          layer.rem, layer.kernel);
    LERGAN_ASSERT(pattern.positions == layer.inSize,
                  "convBackwardDataZfdr: pattern/shape mismatch");

    Tensor grad_in(inputShape(layer));
    std::vector<int> flipped(layer.spatialDims);
    forEachIndex(spatial(layer.inSize, layer.spatialDims),
                 [&](const std::vector<int> &x) {
        forEachMaskTuple(pattern, layer.stride, pad_lo, x,
                         [&](const std::vector<int> &w,
                             const std::vector<int> &q) {
            // Backprop correlates with the flipped (transposed) kernel.
            for (int d = 0; d < layer.spatialDims; ++d)
                flipped[d] = layer.kernel - 1 - w[d];
            for (int ic = 0; ic < layer.inChannels; ++ic) {
                std::int64_t acc = 0;
                for (int oc = 0; oc < layer.outChannels; ++oc)
                    acc += grad_out.at(cat(oc, q)) *
                           kernel.at(cat2(oc, ic, flipped));
                grad_in.at(cat(ic, x)) += acc;
            }
        });
    });
    return grad_in;
}

Tensor
convWeightGradZfdr(const Tensor &input, const Tensor &grad_out,
                   const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::Conv, "convWeightGradZfdr: ",
                  layer.name, " is not an S-CONV");
    const Pattern1D pattern =
        sparseKernelPattern(layer.inSize, layer.pad, layer.padHi,
                            layer.outSize, layer.stride, layer.rem);
    LERGAN_ASSERT(pattern.positions == layer.kernel,
                  "convWeightGradZfdr: pattern/shape mismatch");

    Tensor grad_kernel(kernelShape(layer));
    const int dims = layer.spatialDims;
    std::vector<int> x(dims);
    forEachIndex(spatial(layer.kernel, dims),
                 [&](const std::vector<int> &w) {
        // The zero-free gradient taps selected by the masks of this
        // kernel position form the reshaped "weight"; the gathered input
        // elements are the MMV vector.
        std::vector<const std::vector<int> *> masks(dims);
        std::vector<int> extent(dims);
        for (int d = 0; d < dims; ++d) {
            masks[d] = &pattern.maskOf(w[d]);
            extent[d] = static_cast<int>(masks[d]->size());
        }
        std::vector<int> q(dims);
        forEachIndex(extent, [&](const std::vector<int> &sel) {
            for (int d = 0; d < dims; ++d) {
                q[d] = (*masks[d])[sel[d]];
                x[d] = w[d] + q[d] * layer.stride - layer.pad;
            }
            for (int oc = 0; oc < layer.outChannels; ++oc)
                for (int ic = 0; ic < layer.inChannels; ++ic)
                    grad_kernel.at(cat2(oc, ic, w)) +=
                        input.at(cat(ic, x)) * grad_out.at(cat(oc, q));
        });
    });
    return grad_kernel;
}

Tensor
tconvWeightGradZfdr(const Tensor &input, const Tensor &grad_out,
                    const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::TConv,
                  "tconvWeightGradZfdr: ", layer.name,
                  " is not a T-CONV");
    const int pad_lo = layer.kernel - 1 - layer.pad;
    const int pad_hi = layer.kernel - 1 - layer.padHi;
    // The window scanning the zero-inserted input is the dense gradient
    // map (extent O per dimension); positions are the W^d kernel cells.
    const Pattern1D pattern =
        sparseGridPattern(layer.inSize, layer.stride, pad_lo, pad_hi,
                          layer.rem, layer.outSize);
    LERGAN_ASSERT(pattern.positions == layer.kernel,
                  "tconvWeightGradZfdr: pattern/shape mismatch");

    Tensor grad_kernel(kernelShape(layer));
    forEachIndex(spatial(layer.kernel, layer.spatialDims),
                 [&](const std::vector<int> &w) {
        forEachMaskTuple(pattern, layer.stride, pad_lo, w,
                         [&](const std::vector<int> &o,
                             const std::vector<int> &t) {
            for (int oc = 0; oc < layer.outChannels; ++oc)
                for (int ic = 0; ic < layer.inChannels; ++ic)
                    grad_kernel.at(cat2(oc, ic, w)) +=
                        input.at(cat(ic, t)) * grad_out.at(cat(oc, o));
        });
    });
    return grad_kernel;
}

} // namespace lergan
