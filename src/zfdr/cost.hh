/**
 * @file
 * Per-op cost model: MMV waves, crossbar activations, storage and traffic.
 *
 * These costs are the interface between the shape analytics (nn, zfdr)
 * and the hardware simulation (reram, core). They are per input item;
 * the accelerator scales by batch and distributes over tiles.
 */

#ifndef LERGAN_ZFDR_COST_HH
#define LERGAN_ZFDR_COST_HH

#include <cstdint>

#include "zfdr/replica.hh"
#include "zfdr/reshape.hh"

namespace lergan {

/** Geometry of one ReRAM crossbar used as a compute array. */
struct CrossbarGeom {
    int rows = 128;      ///< wordlines
    int cols = 128;      ///< bitlines
    int cellBits = 4;    ///< bits per ReRAM cell (paper: 4)
    int weightBits = 16; ///< operand precision (paper: 16)

    /** Cells (columns) occupied by one weight. */
    int cellsPerWeight() const { return weightBits / cellBits; }

    /** Weight elements one crossbar holds. */
    std::uint64_t
    weightsPerCrossbar() const
    {
        return static_cast<std::uint64_t>(rows) *
               (cols / cellsPerWeight());
    }

    /** Crossbars needed for a rows x cols weight matrix. */
    std::uint64_t crossbarsFor(std::uint64_t matrix_rows,
                               std::uint64_t matrix_cols) const;
};

/** Execution cost of one layer op on the PIM substrate, per item. */
struct OpCost {
    /** Sequential MMV waves (critical path of the op). */
    std::uint64_t waves = 0;
    /** Total MMV issues across all matrices. */
    std::uint64_t mmvs = 0;
    /** Crossbar activations (an MMV through k crossbars counts k). */
    std::uint64_t crossbarActivations = 0;
    /** Weight elements stored in CArrays, replicas included. */
    std::uint64_t weightElems = 0;
    /** Crossbars occupied by the stored weights. */
    std::uint64_t crossbarsUsed = 0;
    /** Input elements streamed in per item. */
    std::uint64_t inputElems = 0;
    /** Output elements produced per item. */
    std::uint64_t outputElems = 0;
};

/**
 * Cost of a sparse op under ZFDR with the given replica vector.
 *
 * Waves follow the paper's model: classes execute in parallel across
 * their matrices; the op finishes when its most-reused matrix (scaled by
 * duplication) has served all its positions.
 */
OpCost zfdrOpCost(const LayerOp &op, const ReshapeAnalysis &analysis,
                  const ReplicaVector &replicas, const CrossbarGeom &geom);

/**
 * Cost of any op under normal reshaping (PRIME-style): one dense kernel
 * matrix, every window position becomes an MMV, zeros are stored and fed.
 *
 * @param replicas whole-matrix duplication factor (Eq. 14 DataMapping).
 */
OpCost normalOpCost(const LayerOp &op, std::uint64_t replicas,
                    const CrossbarGeom &geom);

} // namespace lergan

#endif // LERGAN_ZFDR_COST_HH
