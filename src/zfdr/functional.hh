/**
 * @file
 * Functional execution of the ZFDR reshaped-matrix formulation.
 *
 * Each routine computes its convolution exactly the way the hardware
 * does under ZFDR: for every output position, the per-dimension masks
 * (nn/conv_pattern.hh) select which kernel/operand entries form the
 * reshaped matrix, the non-zero inputs are gathered into the MMV vector,
 * and zeros are never touched. Bit-exact agreement with the direct
 * references (nn/functional.hh) is what certifies the paper's central
 * claim that ZFDR removes *only* zero-related work.
 */

#ifndef LERGAN_ZFDR_FUNCTIONAL_HH
#define LERGAN_ZFDR_FUNCTIONAL_HH

#include "nn/functional.hh"

namespace lergan {

/** T-CONV forward via reshaped kernel matrices (paper Fig. 10/11). */
Tensor tconvForwardZfdr(const Tensor &input, const Tensor &kernel,
                        const LayerSpec &layer);

/**
 * Error backprop through an S-CONV via ZFDR_T on the zero-inserted
 * gradient map (the kernel enters transposed/flipped, as in Eq. 3).
 */
Tensor convBackwardDataZfdr(const Tensor &grad_out, const Tensor &kernel,
                            const LayerSpec &layer);

/**
 * S-CONV weight gradient via ZFDR_WS: the zero-free gradient acts as
 * the reshaped kernel scanning the padded input (paper Fig. 6).
 */
Tensor convWeightGradZfdr(const Tensor &input, const Tensor &grad_out,
                          const LayerSpec &layer);

/**
 * T-CONV weight gradient via ZFDR_T on the zero-inserted input, scanned
 * by the dense output-gradient map.
 */
Tensor tconvWeightGradZfdr(const Tensor &input, const Tensor &grad_out,
                           const LayerSpec &layer);

} // namespace lergan

#endif // LERGAN_ZFDR_FUNCTIONAL_HH
