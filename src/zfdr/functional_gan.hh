/**
 * @file
 * Whole-GAN functional execution: forward and backward passes through
 * every layer of a GanModel, with each sparse convolution optionally
 * computed through its ZFDR reshaped-matrix path.
 *
 * Activations are linear (identity non-linearity) and integer-valued so
 * traces compare bit-exactly; the point is the dataflow and the
 * reshaping, not training dynamics. A trace run with ZFDR on must equal
 * one with ZFDR off — the end-to-end version of the paper's central
 * claim, covering the exact op sequencing the accelerator simulates.
 */

#ifndef LERGAN_ZFDR_FUNCTIONAL_GAN_HH
#define LERGAN_ZFDR_FUNCTIONAL_GAN_HH

#include "nn/model.hh"
#include "zfdr/functional.hh"

namespace lergan {

/** All tensors one network pass produces. */
struct FunctionalTrace {
    /** activations[0] = the input; activations[l+1] = layer l's output. */
    std::vector<Tensor> activations;
    /** inputGrads[l] = gradient at layer l's input (backward pass). */
    std::vector<Tensor> inputGrads;
    /** weightGrads[l] = gradient of layer l's kernel. */
    std::vector<Tensor> weightGrads;
};

/** One GAN with concrete integer weights, runnable both ways. */
class FunctionalGan
{
  public:
    /** Random small-integer weights for every layer of both nets. */
    FunctionalGan(const GanModel &model, Rng &rng);

    const GanModel &model() const { return model_; }

    /** Kernel tensor of one layer. */
    const Tensor &kernel(NetRole role, std::size_t layer) const;

    /**
     * Forward pass of one network.
     *
     * @param use_zfdr compute T-CONVs through the reshaped-matrix path.
     * @return trace with activations filled.
     */
    FunctionalTrace forward(NetRole role, const Tensor &input,
                            bool use_zfdr) const;

    /**
     * Backward pass: error transfer and weight gradients, consuming a
     * forward trace and the gradient at the network output.
     *
     * @param use_zfdr compute the sparse backward ops via ZFDR.
     */
    void backward(NetRole role, FunctionalTrace &trace,
                  const Tensor &grad_output, bool use_zfdr) const;

  private:
    GanModel model_;
    std::vector<Tensor> genKernels_;
    std::vector<Tensor> discKernels_;
};

} // namespace lergan

#endif // LERGAN_ZFDR_FUNCTIONAL_GAN_HH
