#include "workloads/zoo.hh"

#include "common/logging.hh"
#include "nn/parser.hh"

namespace lergan {

namespace {

/** Table V, verbatim. */
struct BenchmarkDef {
    const char *name;
    const char *generator;
    const char *discriminator;
    int itemSize;
    int spatialDims;
};

const BenchmarkDef kTableV[] = {
    {"DCGAN",
     "100f-(1024t-512t-256t-128t)(5k2s)-t3",
     "(3c-128c-256c-512c-1024c)(5k2s)-f1", 64, 2},
    {"cGAN",
     "100f-(256t-128t-64t)(4k2s)-t3",
     "(3c-64c-128c-256c)(4k2s)-f1", 64, 2},
    {"3D-GAN",
     "100f-(512t-256t-128t)(4k2s)-t3",
     "(1c-64c-128c-256c-512c)(4k2s)-f1", 64, 3},
    {"ArtGAN-CIFAR-10",
     "100f-1024t4k1s-512t4k2s-256t4k2s-128t4k2s-128t3k1s-t3",
     "3c4k2s-128c3k1s-(128c-256c-512c-1024c)(4k2s)-f11", 32, 2},
    {"GPGAN",
     "100f-(512t-256t-128t-64t)(4k2s)-t3",
     "(3c-64c-128c-256c-512c)(4k2s)-f1", 64, 2},
    {"MAGAN-MNIST",
     "50f-128t7k1s-64t4k2s-t1",
     "784f-256f-256f-784f-f11", 28, 2},
    {"DiscoGAN-4pairs",
     "(3c-64c-128c-256c-512t-256t-128t-64t)(4k2s)-t3",
     "(3c-64c-128c-256c-512c)(4k2s)-f1", 64, 2},
    {"DiscoGAN-5pairs",
     "(3c-64c-128c-256c-512c)(4k2s)-100f-(512t-256t-128t-64t)(4k2s)-t3",
     "(3c-64c-128c-256c-512c)(4k2s)-f1", 64, 2},
};

} // namespace

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &def : kTableV)
        names.emplace_back(def.name);
    return names;
}

GanModel
makeBenchmark(const std::string &name)
{
    for (const auto &def : kTableV) {
        if (name == def.name) {
            return parseGan(def.name, def.generator, def.discriminator,
                            def.itemSize, def.spatialDims);
        }
    }
    LERGAN_FATAL("unknown benchmark '", name, "'");
}

std::vector<GanModel>
allBenchmarks()
{
    std::vector<GanModel> models;
    for (const auto &def : kTableV)
        models.push_back(makeBenchmark(def.name));
    return models;
}

GanModel
futureGanStride3()
{
    // Stride-3 T-CONVs triple the map per layer: 3 -> 9 -> 27 -> 81.
    return parseGan("FutureGAN-s3",
                    "100f-(512t-256t-128t)(7k3s)-t3",
                    "(3c-128c-256c-512c)(7k3s)-f1", 81, 2);
}

GanModel
futureGanStride2Control()
{
    // Same depth and kernel but the usual stride 2 (map 8 -> 64),
    // giving the ablation a like-for-like comparison point.
    return parseGan("FutureGAN-s2",
                    "100f-(512t-256t-128t)(7k2s)-t3",
                    "(3c-128c-256c-512c)(7k2s)-f1", 64, 2);
}

GanModel
dcganScaled(int item_size)
{
    LERGAN_ASSERT(item_size >= 8 && (item_size & (item_size - 1)) == 0,
                  "dcganScaled: item size must be a power of two >= 8");
    // Channel ladder: widest next to the 4x4 seed, halving outward.
    int stages = 0;
    for (int s = 4; s < item_size; s *= 2)
        ++stages;
    std::string gen = "100f";
    std::string disc;
    int channels = 64 << (stages - 1);
    for (int s = 0; s < stages; ++s) {
        gen += "-" + std::to_string(channels) + "t5k2s";
        channels /= 2;
    }
    gen += "-t3";
    disc = "3c";
    channels = 64;
    for (int s = 1; s < stages; ++s) {
        disc += "-" + std::to_string(channels) + "c";
        channels *= 2;
    }
    disc = "(" + disc + "-" + std::to_string(channels) + "c)(5k2s)-f1";
    return parseGan("DCGAN-" + std::to_string(item_size), gen, disc,
                    item_size, 2);
}

} // namespace lergan
