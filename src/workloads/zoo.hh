/**
 * @file
 * The eight GAN benchmarks of the paper's Table V.
 */

#ifndef LERGAN_WORKLOADS_ZOO_HH
#define LERGAN_WORKLOADS_ZOO_HH

#include <string>
#include <vector>

#include "nn/model.hh"

namespace lergan {

/** Names of all Table V benchmarks, in table order. */
std::vector<std::string> benchmarkNames();

/**
 * Build one benchmark by name ("DCGAN", "cGAN", "3D-GAN",
 * "ArtGAN-CIFAR-10", "GPGAN", "MAGAN-MNIST", "DiscoGAN-4pairs",
 * "DiscoGAN-5pairs"). Fatal on unknown names.
 */
GanModel makeBenchmark(const std::string &name);

/** All eight benchmarks, in table order. */
std::vector<GanModel> allBenchmarks();

/**
 * A synthetic stride-3 GAN ("future GANs with larger stride (e.g.
 * stride of 3)", Sec. IV-A). Each transposed convolution inserts two
 * zeros between elements, so zero ratios are even more extreme than in
 * the Table V networks; bench/ablation_stride3 uses it to show ZFDR
 * holds up beyond stride 2.
 */
GanModel futureGanStride3();

/** The stride-2 control with the same depth/kernel for the ablation. */
GanModel futureGanStride2Control();

/**
 * DCGAN-shaped generator/discriminator scaled to @p item_size (32, 64
 * or 128): one 5k2s (de)conv stage per factor of two above the 4x4
 * seed. Used by the item-size scaling ablation.
 */
GanModel dcganScaled(int item_size);

/** The paper's training minibatch size (Sec. VI-C). */
constexpr int kBatchSize = 64;

} // namespace lergan

#endif // LERGAN_WORKLOADS_ZOO_HH
