/**
 * @file
 * PRIME baseline: the ReRAM NN accelerator of Chi et al. [15], modified
 * to run GAN training as in the paper's Sec. VI-A.
 *
 * PRIME shares LerGAN's tile substrate but keeps the conventional
 * H-tree/bus interconnect and normal (zero-carrying) data reshaping.
 * It is simulated by the same LerGanAccelerator with the corresponding
 * configuration, which is exactly the paper's methodology ("GANs running
 * on modified ReRAM-based NN accelerator").
 */

#ifndef LERGAN_BASELINES_PRIME_HH
#define LERGAN_BASELINES_PRIME_HH

#include "core/accelerator.hh"

namespace lergan {

/** Plain PRIME: H-tree + normal reshape, no duplication. */
TrainingReport simulatePrime(const GanModel &model, int batch_size = 64);

/**
 * Normalized-space PRIME: granted the same CArray crossbar budget as a
 * reference LerGAN mapping, spent on naive kernel duplication
 * (Fig. 16/19/20's "NS" bars).
 */
TrainingReport simulatePrimeNs(const GanModel &model,
                               std::uint64_t budget_crossbars,
                               int batch_size = 64);

} // namespace lergan

#endif // LERGAN_BASELINES_PRIME_HH
