#include "baselines/prime.hh"

namespace lergan {

TrainingReport
simulatePrime(const GanModel &model, int batch_size)
{
    AcceleratorConfig config = AcceleratorConfig::prime();
    config.batchSize = batch_size;
    LerGanAccelerator accelerator(model, config);
    TrainingReport report = accelerator.trainIteration();
    report.config = "PRIME";
    return report;
}

TrainingReport
simulatePrimeNs(const GanModel &model, std::uint64_t budget_crossbars,
                int batch_size)
{
    AcceleratorConfig config = AcceleratorConfig::prime();
    config.batchSize = batch_size;
    config.duplicate = true;
    config.degree = ReplicaDegree::Low;
    config.normalizedSpace = true;
    config.spaceBudgetCrossbars = budget_crossbars;
    LerGanAccelerator accelerator(model, config);
    TrainingReport report = accelerator.trainIteration();
    report.config = "PRIME-NS";
    return report;
}

} // namespace lergan
