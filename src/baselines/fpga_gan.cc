#include "baselines/fpga_gan.hh"

#include "nn/zero_analysis.hh"

namespace lergan {

TrainingReport
simulateFpgaGan(const GanModel &model, const FpgaParams &params)
{
    double useful_macs = 0.0;
    double total_bytes = 0.0;

    auto add_phase = [&](Phase phase, int batch_factor) {
        for (const LayerOp &op : opsForPhase(model, phase)) {
            const OpZeroStats stats = analyzeOp(op);
            const double items =
                static_cast<double>(params.batchSize) * batch_factor;
            // Zero-skipping dataflow: only useful MACs execute.
            useful_macs +=
                static_cast<double>(stats.usefulMults) * items;
            // On-chip BRAM is tiny relative to GAN layers: activations
            // (zeros removed) spill to DDR between layers, and weights
            // stream in once per layer per batch tile.
            total_bytes += 2.0 *
                           static_cast<double>(stats.usefulInputs +
                                               op.outputData) *
                           items;
        }
        // Weight streaming per phase.
        total_bytes += 2.0 * static_cast<double>(model.totalWeights());
    };

    for (const PhaseInstance &inst : phasesForStep(true))
        add_phase(inst.phase, inst.batchFactor);
    for (const PhaseInstance &inst : phasesForStep(false))
        add_phase(inst.phase, inst.batchFactor);

    const double weights = static_cast<double>(model.totalWeights());
    total_bytes += 3.0 * weights * 2.0; // 16-bit update traffic

    const double macs_per_s =
        static_cast<double>(params.dspCount) * params.clockGhz * 1e9 *
        params.utilization;
    const double compute_s = useful_macs / macs_per_s;
    const double memory_s = total_bytes / (params.ddrBwGBs * 1e9);
    const double time_s = std::max(compute_s, memory_s);

    TrainingReport report;
    report.benchmark = model.name;
    report.config = "FPGA-GAN";
    report.iterationTime = nsToPs(time_s * 1e9);
    report.stats.set("energy.board",
                     params.boardPowerW * time_s * 1e12);
    report.stats.set("energy.dram", params.ddrPjPerByte * total_bytes);
    report.stats.set("fpga.macs", useful_macs);
    report.stats.set("fpga.bytes", total_bytes);
    report.stats.set("fpga.compute_bound", compute_s >= memory_s ? 1 : 0);
    return report;
}

} // namespace lergan
