/**
 * @file
 * Analytical FPGA-GAN baseline (Song et al., HPCA 2018 [47], on the
 * Xilinx VCU118 board named in Sec. VI-A).
 *
 * That accelerator removes zero operations with a custom dataflow, so it
 * computes only useful multiplies — but it runs at FPGA clock rates with
 * a bounded DSP array, and streams weights and activations through
 * off-chip DDR4. It is therefore far slower than PIM but very energy
 * proportional: the paper finds LerGAN 47.2x faster yet consuming 1.04x
 * the energy of FPGA-GAN on average.
 */

#ifndef LERGAN_BASELINES_FPGA_GAN_HH
#define LERGAN_BASELINES_FPGA_GAN_HH

#include "core/report.hh"
#include "nn/model.hh"

namespace lergan {

/** Board parameters, defaulting to a VCU118-class design. The MAC array
 *  reflects the accelerator actually synthesized (a fraction of the
 *  board's 6840 DSP slices), which is what makes the FPGA the slowest
 *  but most energy-proportional platform in the comparison. */
struct FpgaParams {
    int dspCount = 2520;         ///< DSP48 slices used by the design
    double clockGhz = 0.2;       ///< achievable accelerator clock
    double utilization = 0.4;    ///< sustained MAC issue rate
    double ddrBwGBs = 19.2;      ///< one DDR4-2400 channel
    double boardPowerW = 6.5;    ///< average power of the trimmed design
    double ddrPjPerByte = 15.0;  ///< off-chip access energy
    int batchSize = 64;
};

/** Simulate one training iteration analytically. */
TrainingReport simulateFpgaGan(const GanModel &model,
                               const FpgaParams &params = FpgaParams{});

} // namespace lergan

#endif // LERGAN_BASELINES_FPGA_GAN_HH
