/**
 * @file
 * Analytical GPU baseline (NVIDIA Titan X class, as in Sec. VI-A).
 *
 * The GPU trains the GAN with dense kernels: transposed convolutions are
 * materialized as zero-inserted grids (cuDNN-style), so the device pays
 * for every zero multiply, and all inter-layer activations round-trip
 * through off-chip GDDR. Time is the roofline maximum of compute and
 * memory per phase; energy is TDP-proportional plus per-byte DRAM cost.
 *
 * Substitution note (DESIGN.md): the paper measured a real Titan X; we
 * model it from public specs. Only the relative position against the
 * PIM configurations matters for the reproduced figures.
 */

#ifndef LERGAN_BASELINES_GPU_HH
#define LERGAN_BASELINES_GPU_HH

#include "core/report.hh"
#include "nn/model.hh"

namespace lergan {

/** Device parameters, defaulting to a Titan X (Maxwell). */
struct GpuParams {
    double peakTflops = 6.1;      ///< fp32 peak
    double memBwGBs = 336.0;      ///< GDDR5 bandwidth
    double utilization = 0.35;    ///< sustained fraction of peak on convs
    /** Average board power while training (below the 250 W TDP: the
     *  zero-heavy T-CONV phases keep many SMs memory-stalled). */
    double boardPowerW = 120.0;
    double dramPjPerByte = 20.0;  ///< off-chip access energy
    int batchSize = 64;
};

/** Simulate one training iteration analytically. */
TrainingReport simulateGpu(const GanModel &model,
                           const GpuParams &params = GpuParams{});

} // namespace lergan

#endif // LERGAN_BASELINES_GPU_HH
