#include "baselines/gpu.hh"

#include "nn/zero_analysis.hh"

#include <string>

namespace lergan {

TrainingReport
simulateGpu(const GanModel &model, const GpuParams &params)
{
    // Work per iteration: one discriminator step (m fakes through G,
    // 2m items through D fwd/bwd) plus one generator step.
    double total_flops = 0.0;
    double total_bytes = 0.0;
    double launch_s = 0.0;
    StatSet phase_stats;

    auto add_phase = [&](Phase phase, int batch_factor) {
        double phase_flops = 0.0;
        double phase_bytes = 0.0;
        int layers = 0;
        for (const LayerOp &op : opsForPhase(model, phase)) {
            const OpZeroStats stats = analyzeOp(op);
            const double items =
                static_cast<double>(params.batchSize) * batch_factor;
            // Dense execution: multiply-accumulate over every grid cell,
            // zeros included (2 flops per MAC).
            phase_flops +=
                2.0 * static_cast<double>(stats.totalMults) * items;
            // Activations (zeros included) stream out to GDDR and back in
            // for the next layer; weights re-read per layer per item
            // block (amortized across the batch).
            phase_bytes += 2.0 *
                           static_cast<double>(stats.totalInputs +
                                               op.outputData) *
                           items;
            ++layers;
        }
        total_flops += phase_flops;
        total_bytes += phase_bytes;
        // One kernel launch per layer per phase (batched over items).
        launch_s += 5e-6 * layers;
        phase_stats.add(std::string("gpu.phase.") + phaseName(phase) +
                            ".flops",
                        phase_flops);
        phase_stats.add(std::string("gpu.phase.") + phaseName(phase) +
                            ".bytes",
                        phase_bytes);
    };

    for (const PhaseInstance &inst : phasesForStep(true))
        add_phase(inst.phase, inst.batchFactor);
    for (const PhaseInstance &inst : phasesForStep(false))
        add_phase(inst.phase, inst.batchFactor);

    // Weight updates: read grads + weights, write weights.
    const double weights = static_cast<double>(model.totalWeights());
    total_flops += 2.0 * weights;
    total_bytes += 3.0 * weights * 4.0;

    const double compute_s =
        total_flops / (params.peakTflops * 1e12 * params.utilization);
    const double memory_s = total_bytes / (params.memBwGBs * 1e9);
    const double time_s = std::max(compute_s, memory_s) + launch_s;

    TrainingReport report;
    report.benchmark = model.name;
    report.config = "GPU";
    report.iterationTime = nsToPs(time_s * 1e9);
    report.stats.set("energy.board",
                     params.boardPowerW * time_s * 1e12); // W*s in pJ
    report.stats.set("energy.dram", params.dramPjPerByte * total_bytes);
    report.stats.set("gpu.flops", total_flops);
    report.stats.set("gpu.bytes", total_bytes);
    report.stats.set("gpu.launch_s", launch_s);
    report.stats.set("gpu.compute_bound", compute_s >= memory_s ? 1 : 0);
    report.stats.merge(phase_stats);
    return report;
}

} // namespace lergan
