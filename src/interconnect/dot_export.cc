#include "interconnect/dot_export.hh"

#include <map>

namespace lergan {

namespace {

const char *
linkColor(LinkKind kind)
{
    switch (kind) {
      case LinkKind::HTree:      return "gray40";
      case LinkKind::Horizontal: return "darkorange";
      case LinkKind::Vertical:   return "mediumblue";
      case LinkKind::Bypass:     return "forestgreen";
      case LinkKind::Bus:        return "crimson";
    }
    return "black";
}

const char *
nodeShape(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Tile:     return "box";
      case NodeKind::Router:   return "circle";
      case NodeKind::BankPort: return "doublecircle";
      case NodeKind::Bus:      return "hexagon";
    }
    return "ellipse";
}

} // namespace

void
exportDot(std::ostream &os, const Topology &topo)
{
    os << "graph lergan {\n"
       << "  graph [rankdir=TB, splines=true];\n"
       << "  node [fontsize=9];\n";

    // Cluster nodes by bank.
    std::map<int, std::vector<int>> by_bank;
    for (int id = 0; id < static_cast<int>(topo.numNodes()); ++id)
        by_bank[topo.node(id).bank].push_back(id);

    for (const auto &[bank, nodes] : by_bank) {
        if (bank >= 0) {
            os << "  subgraph cluster_bank" << bank << " {\n"
               << "    label=\"bank " << bank << "\";\n";
        }
        for (int id : nodes) {
            const TopoNode &node = topo.node(id);
            os << (bank >= 0 ? "    " : "  ") << "n" << id << " [label=\""
               << node.name << "\", shape=" << nodeShape(node.kind)
               << "];\n";
        }
        if (bank >= 0)
            os << "  }\n";
    }

    for (std::size_t i = 0; i < topo.numLinks(); ++i) {
        const TopoLink &link = topo.link(i);
        os << "  n" << link.a << " -- n" << link.b << " [color="
           << linkColor(link.kind) << ", penwidth="
           << (0.5 + link.bytesPerNs / 6.4) << "];\n";
    }
    os << "}\n";
}

} // namespace lergan
