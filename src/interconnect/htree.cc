#include "interconnect/htree.hh"

#include <string>

#include "common/logging.hh"

namespace lergan {

namespace {

/** Per-hop latency: Table IV's H-tree latency spread over the 4 levels. */
double
hopLatencyNs(const ReRamParams &params)
{
    return params.htreeNs / 4.0;
}

/** Per-hop, per-byte energy: the calibrated effective figure (see
 *  reram/params.hh; Table IV's 386 pJ H-tree access is the raw-wire
 *  component of it). */
double
hopPjPerByte(const ReRamParams &params)
{
    return params.hopPjPerByte;
}

} // namespace

HTreeBank
buildHTreeBank(Topology &topo, ResourcePool &pool, const ReRamParams &params,
               int bank_id)
{
    LERGAN_ASSERT(params.tilesPerBank == 16,
                  "the H-tree builder models 16-tile banks");
    HTreeBank bank;
    bank.bankId = bank_id;
    const std::string prefix = "b" + std::to_string(bank_id);

    auto make_node = [&](NodeKind kind, int depth, int index) {
        TopoNode node;
        node.kind = kind;
        node.bank = bank_id;
        node.depth = depth;
        node.index = index;
        node.name = prefix + ".d" + std::to_string(depth) + ".n" +
                    std::to_string(index);
        node.switchRes = pool.create(node.name + ".switch");
        return topo.addNode(node);
    };

    bank.port = make_node(NodeKind::BankPort, 0, 0);
    bank.routers.resize(3);
    for (int depth = 1; depth <= 3; ++depth) {
        const int row = 1 << depth;
        for (int i = 0; i < row; ++i)
            bank.routers[depth - 1].push_back(
                make_node(NodeKind::Router, depth, i));
    }
    for (int i = 0; i < params.tilesPerBank; ++i)
        bank.tiles.push_back(make_node(NodeKind::Tile, 4, i));

    // Wire widths: the leaf links carry the base tile bandwidth; widths
    // double through each merging level toward the bank port (merging
    // nodes at depths 1 and 3, multiplexing at depth 2).
    const double leaf_bw = params.linkBytesPerNs;
    const double bw_by_depth[4] = {4 * leaf_bw, 2 * leaf_bw, 2 * leaf_bw,
                                   leaf_bw};

    auto connect = [&](int parent, int child, int child_depth) {
        TopoLink link;
        link.a = parent;
        link.b = child;
        link.kind = LinkKind::HTree;
        link.latencyNs = hopLatencyNs(params);
        link.bytesPerNs = bw_by_depth[child_depth - 1];
        link.pjPerByte = hopPjPerByte(params);
        link.resources.push_back(
            pool.create(prefix + ".wire.d" + std::to_string(child_depth) +
                        "." + std::to_string(topo.node(child).index)));
        topo.addLink(link);
    };

    for (int i = 0; i < 2; ++i)
        connect(bank.port, bank.routers[0][i], 1);
    for (int depth = 2; depth <= 3; ++depth)
        for (std::size_t i = 0; i < bank.routers[depth - 1].size(); ++i)
            connect(bank.routers[depth - 2][i / 2],
                    bank.routers[depth - 1][i], depth);
    for (int i = 0; i < params.tilesPerBank; ++i)
        connect(bank.routers[2][i / 2], bank.tiles[i], 4);

    return bank;
}

int
htreeHopDistance(int tile_a, int tile_b)
{
    if (tile_a == tile_b)
        return 0;
    // Two leaves of a binary tree: up to the lowest common ancestor and
    // back down.
    int a = tile_a, b = tile_b, up = 0;
    while (a != b) {
        a /= 2;
        b /= 2;
        ++up;
    }
    return 2 * up;
}

} // namespace lergan
