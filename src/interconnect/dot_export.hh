/**
 * @file
 * Graphviz DOT export of an interconnect topology.
 *
 * Renders banks as clusters, tiles/routers/ports as nodes, and colors
 * each wire family (H-tree, horizontal, vertical, bypass, bus) so the
 * Fig. 12 structure can be inspected visually:
 *
 *   ./build/examples/topology_dump | dot -Tsvg > machine.svg
 */

#ifndef LERGAN_INTERCONNECT_DOT_EXPORT_HH
#define LERGAN_INTERCONNECT_DOT_EXPORT_HH

#include <ostream>

#include "interconnect/topology.hh"

namespace lergan {

/** Write @p topo as a Graphviz digraph (undirected edges). */
void exportDot(std::ostream &os, const Topology &topo);

} // namespace lergan

#endif // LERGAN_INTERCONNECT_DOT_EXPORT_HH
