/**
 * @file
 * H-tree bank builder (paper Fig. 9 / Fig. 12a).
 *
 * One bank is 16 tiles at the leaves of a 4-level binary tree. Levels
 * alternate merging and multiplexing routing nodes; wire width halves
 * below each merging node, so leaf wires carry a quarter of the bank-port
 * bandwidth. This is the baseline interconnect PRIME/PipeLayer use and
 * the substrate the 3D connection augments.
 */

#ifndef LERGAN_INTERCONNECT_HTREE_HH
#define LERGAN_INTERCONNECT_HTREE_HH

#include <vector>

#include "interconnect/topology.hh"
#include "reram/params.hh"

namespace lergan {

/** Handles into the topology for one built bank. */
struct HTreeBank {
    int bankId = -1;
    /** Bank-port (H-tree root) node id. */
    int port = -1;
    /** 16 tile node ids, in leaf order. */
    std::vector<int> tiles;
    /** Router node ids per depth: routers[0] = depth-1 row (2 nodes),
     *  routers[1] = depth-2 row (4), routers[2] = depth-3 row (8). */
    std::vector<std::vector<int>> routers;
};

/**
 * Build one H-tree bank into @p topo.
 *
 * Creates one wire resource per link and one switch resource per router
 * and tile node (used only if 3D links are attached later).
 */
HTreeBank buildHTreeBank(Topology &topo, ResourcePool &pool,
                         const ReRamParams &params, int bank_id);

/** Tree depth between two tiles of one bank (hops via common ancestor). */
int htreeHopDistance(int tile_a, int tile_b);

} // namespace lergan

#endif // LERGAN_INTERCONNECT_HTREE_HH
