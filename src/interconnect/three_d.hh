/**
 * @file
 * 3D-connected PIM builder (paper Sec. IV-B, Fig. 12-13).
 *
 * A 3DCU stacks three H-tree banks and adds:
 *  - horizontal wires between same-depth nodes whose parents differ,
 *  - vertical wires between corresponding nodes of adjacent banks,
 *  - one switch per node (two in the middle bank) arbitrating the added
 *    wires — modeled as FIFO switch resources shared by those links.
 *
 * Two 3DCUs form a CU pair (generator + discriminator) whose top and
 * bottom banks connect directly, bypassing the bus and CPU.
 *
 * Banks operate in Smode (plain memory; only H-tree wires usable) or
 * Cmode (computing; added wires usable). Mode filtering happens at
 * routing time via Topology::LinkFilter; reconfiguration costs are
 * charged by the memory controller (core/controller).
 */

#ifndef LERGAN_INTERCONNECT_THREE_D_HH
#define LERGAN_INTERCONNECT_THREE_D_HH

#include <array>

#include "interconnect/htree.hh"

namespace lergan {

/** Three stacked banks with 3D wiring. */
struct ThreeDCU {
    std::array<HTreeBank, 3> banks;
    /** Number of added horizontal/vertical links (area accounting). */
    int addedLinks = 0;
    /** Number of switches added (area accounting). */
    int addedSwitches = 0;
};

/** Which added-wire families a 3DCU gets (ablation switches). */
struct ThreeDOptions {
    bool horizontal = true;
    bool vertical = true;

    bool any() const { return horizontal || vertical; }
};

/**
 * Build one 3DCU (three banks) into @p topo.
 *
 * @param options which added-wire families to create; {false, false}
 *        builds plain stacked H-tree banks (the 2D baseline keeps an
 *        identical bank structure so only connectivity differs).
 */
ThreeDCU build3dcu(Topology &topo, ResourcePool &pool,
                   const ReRamParams &params, int first_bank_id,
                   const ThreeDOptions &options);

/** Convenience overload: all-or-nothing added wiring. */
inline ThreeDCU
build3dcu(Topology &topo, ResourcePool &pool, const ReRamParams &params,
          int first_bank_id, bool with_3d_links)
{
    return build3dcu(topo, pool, params, first_bank_id,
                     ThreeDOptions{with_3d_links, with_3d_links});
}

/** Directly connect two banks' ports (the CU-pair bypass, Fig. 13). */
void addBypassLink(Topology &topo, ResourcePool &pool,
                   const ReRamParams &params, const HTreeBank &a,
                   const HTreeBank &b);

/** Attach a bank's port to the shared bus node. */
void addBusLink(Topology &topo, ResourcePool &pool,
                const ReRamParams &params, int bus_node,
                const HTreeBank &bank);

/** Abstract-area accounting for the Sec. VI-E overhead comparison. */
struct AreaModel {
    double tileArea = 0.0;       ///< 48 tiles of silicon
    double htreeWireArea = 0.0;  ///< baseline wires
    double addedWireArea = 0.0;  ///< horizontal + vertical wires
    double switchArea = 0.0;     ///< added switches

    double
    baseline() const
    {
        return tileArea + htreeWireArea;
    }

    /** Fractional overhead versus the PRIME-style baseline. */
    double
    overhead() const
    {
        return (addedWireArea + switchArea) / baseline();
    }
};

/** Analytic area model of one 3DCU (see three_d.cc for the constants). */
AreaModel areaModel3dcu(const ReRamParams &params);

} // namespace lergan

#endif // LERGAN_INTERCONNECT_THREE_D_HH
