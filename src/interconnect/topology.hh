/**
 * @file
 * Interconnect topology graph with latency-weighted routing.
 *
 * Nodes are tiles, H-tree routing nodes, bank ports and the global bus;
 * links carry latency, bandwidth and per-byte energy, and reference the
 * FIFO resources (sim/resource.hh) a transfer must hold. Added 3D links
 * also hold their endpoints' switch resources, which models the paper's
 * one-switch-per-node limitation: a node cannot serve its horizontal and
 * vertical wires simultaneously.
 */

#ifndef LERGAN_INTERCONNECT_TOPOLOGY_HH
#define LERGAN_INTERCONNECT_TOPOLOGY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/resource.hh"

namespace lergan {

/** Role of a topology node. */
enum class NodeKind {
    Tile,     ///< compute/storage tile (H-tree leaf)
    Router,   ///< multiplexing or merging routing node
    BankPort, ///< root of a bank's H-tree
    Bus,      ///< shared inter-bank bus
};

/** Wire category, used for mode filtering and the area model. */
enum class LinkKind {
    HTree,      ///< original H-tree wire
    Horizontal, ///< added same-layer wire between different-parent nodes
    Vertical,   ///< added inter-bank (stacked) wire
    Bypass,     ///< direct bank-to-bank link between paired 3DCUs
    Bus,        ///< bank port to shared bus
};

/** Flit size used by the interconnect traffic metrics. */
constexpr Bytes kFlitBytes = 8;

/** Number of flits needed to carry @p bytes (at least one). */
constexpr std::uint64_t
flitsFor(Bytes bytes)
{
    return bytes == 0 ? 1 : (bytes + kFlitBytes - 1) / kFlitBytes;
}

/** Telemetry key prefix for traffic on a link kind ("ic.htree.wire"). */
constexpr const char *
linkKindMetricKey(LinkKind kind)
{
    switch (kind) {
      case LinkKind::HTree:
        return "ic.htree.wire";
      case LinkKind::Horizontal:
        return "ic.added.h";
      case LinkKind::Vertical:
        return "ic.added.v";
      case LinkKind::Bypass:
        return "ic.bypass";
      case LinkKind::Bus:
        return "ic.bus";
    }
    return "ic.unknown";
}

/** One topology node. */
struct TopoNode {
    NodeKind kind = NodeKind::Router;
    int bank = -1;     ///< owning bank id (-1 for the bus)
    int depth = 0;     ///< H-tree depth (0 = bank port)
    int index = 0;     ///< index within its depth row / tile id
    std::string name;
    /** Switch resource guarding added links at this node (kNoRes if none). */
    std::size_t switchRes = SIZE_MAX;
};

/** One bidirectional wire. */
struct TopoLink {
    int a = -1;
    int b = -1;
    LinkKind kind = LinkKind::HTree;
    double latencyNs = 0.0;     ///< hop latency
    double bytesPerNs = 1.0;    ///< bandwidth
    double pjPerByte = 0.0;     ///< transfer energy
    /** FIFO resources a transfer must occupy (wire + any switches). */
    std::vector<std::size_t> resources;
};

/** A computed route. */
struct Route {
    std::vector<int> links;      ///< link indices in path order
    double latencyNs = 0.0;      ///< sum of hop latencies
    double minBytesPerNs = 0.0;  ///< bottleneck bandwidth
    double pjPerByte = 0.0;      ///< summed per-byte energy

    bool valid() const { return minBytesPerNs > 0.0; }

    /** Wall time to move @p bytes along this route. */
    PicoSeconds
    transferTime(Bytes bytes) const
    {
        const double ns =
            latencyNs + static_cast<double>(bytes) / minBytesPerNs;
        return nsToPs(ns);
    }

    /** Energy to move @p bytes along this route. */
    PicoJoules
    transferEnergy(Bytes bytes) const
    {
        return pjPerByte * static_cast<double>(bytes);
    }
};

/** Mutable interconnect graph. */
class Topology
{
  public:
    /** Add a node; @return its id. */
    int addNode(TopoNode node);

    /** Add a bidirectional link; @return its index. */
    int addLink(TopoLink link);

    const TopoNode &node(int id) const { return nodes_[id]; }
    const TopoLink &link(int idx) const { return links_[idx]; }
    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numLinks() const { return links_.size(); }

    /** Predicate selecting which link kinds a route may use. */
    using LinkFilter = std::function<bool(const TopoLink &)>;

    /**
     * Latency-shortest path from @p from to @p to using only links
     * accepted by @p filter (all links when null).
     *
     * @return an invalid Route (minBytesPerNs == 0) when unreachable.
     */
    Route route(int from, int to, const LinkFilter &filter = nullptr) const;

    /** Gather all resource ids along @p route (wires and switches). */
    std::vector<std::size_t> routeResources(const Route &route) const;

  private:
    std::vector<TopoNode> nodes_;
    std::vector<TopoLink> links_;
    std::vector<std::vector<int>> adjacency_; ///< node -> link indices
};

} // namespace lergan

#endif // LERGAN_INTERCONNECT_TOPOLOGY_HH
