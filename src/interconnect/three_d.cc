#include "interconnect/three_d.hh"

#include <string>

#include "common/logging.hh"

namespace lergan {

namespace {

/** Added wires run point-to-point; give them tile-wire speed. */
double
addedLinkLatencyNs(const ReRamParams &params)
{
    return params.tileReadNs; // a short, direct neighbor wire
}

/**
 * Bandwidth of an added wire at @p depth: the paper sizes it like the
 * wire to the node's parent.
 */
double
addedLinkBw(const ReRamParams &params, int depth)
{
    const double leaf = params.linkBytesPerNs;
    switch (depth) {
      case 1: return 4 * leaf;
      case 2: return 2 * leaf;
      case 3: return 2 * leaf;
      default: return leaf;
    }
}

} // namespace

ThreeDCU
build3dcu(Topology &topo, ResourcePool &pool, const ReRamParams &params,
          int first_bank_id, const ThreeDOptions &options)
{
    ThreeDCU cu;
    for (int i = 0; i < 3; ++i)
        cu.banks[i] = buildHTreeBank(topo, pool, params, first_bank_id + i);
    if (!options.any())
        return cu;

    // The middle bank's nodes carry a second switch so they can talk to
    // the upper and lower bank simultaneously (paper Fig. 12b).
    std::vector<std::size_t> middle_second_switch(topo.numNodes(),
                                                  SIZE_MAX);
    auto second_switch = [&](int node_id) {
        if (middle_second_switch[node_id] == SIZE_MAX) {
            middle_second_switch[node_id] =
                pool.create(topo.node(node_id).name + ".switch2");
            ++cu.addedSwitches;
        }
        return middle_second_switch[node_id];
    };

    auto add_link = [&](int a, int b, LinkKind kind, int depth,
                        std::size_t switch_a, std::size_t switch_b) {
        TopoLink link;
        link.a = a;
        link.b = b;
        link.kind = kind;
        link.latencyNs = addedLinkLatencyNs(params);
        link.bytesPerNs = addedLinkBw(params, depth);
        link.pjPerByte = params.hopPjPerByte;
        link.resources.push_back(
            pool.create(topo.node(a).name + (kind == LinkKind::Horizontal
                                                 ? ".hwire"
                                                 : ".vwire")));
        link.resources.push_back(switch_a);
        link.resources.push_back(switch_b);
        topo.addLink(link);
        ++cu.addedLinks;
    };

    // Horizontal wires: same-depth neighbors with different parents
    // (depths 2, 3 and the tile row), inside every bank.
    for (const HTreeBank &bank : cu.banks) {
        if (!options.horizontal)
            break;
        auto row_pairs = [&](const std::vector<int> &row, int depth) {
            for (std::size_t i = 1; i + 1 < row.size(); i += 2) {
                add_link(row[i], row[i + 1], LinkKind::Horizontal, depth,
                         topo.node(row[i]).switchRes,
                         topo.node(row[i + 1]).switchRes);
                ++cu.addedSwitches; // the switch hardware itself
            }
        };
        row_pairs(bank.routers[1], 2);
        row_pairs(bank.routers[2], 3);
        row_pairs(bank.tiles, 4);
    }

    // Vertical wires: corresponding routers and tiles of adjacent banks.
    // Links into the middle bank (index 1) use its second switch on that
    // side so up- and down-traffic do not serialize against each other.
    for (int pair = 0; pair < 2 && options.vertical; ++pair) {
        const HTreeBank &upper = cu.banks[pair];
        const HTreeBank &lower = cu.banks[pair + 1];
        auto vertical = [&](int up_node, int down_node, int depth) {
            // The middle bank's downward wires use its second switch, so
            // one middle node can serve up- and down-traffic at once.
            const bool up_is_middle = (pair == 1);
            const std::size_t up_switch =
                up_is_middle ? second_switch(up_node)
                             : topo.node(up_node).switchRes;
            const std::size_t down_switch = topo.node(down_node).switchRes;
            add_link(up_node, down_node, LinkKind::Vertical, depth,
                     up_switch, down_switch);
        };
        for (int depth = 1; depth <= 3; ++depth)
            for (std::size_t i = 0; i < upper.routers[depth - 1].size();
                 ++i)
                vertical(upper.routers[depth - 1][i],
                         lower.routers[depth - 1][i], depth);
        for (std::size_t i = 0; i < upper.tiles.size(); ++i)
            vertical(upper.tiles[i], lower.tiles[i], 4);
    }
    return cu;
}

void
addBypassLink(Topology &topo, ResourcePool &pool, const ReRamParams &params,
              const HTreeBank &a, const HTreeBank &b)
{
    TopoLink link;
    link.a = a.port;
    link.b = b.port;
    link.kind = LinkKind::Bypass;
    link.latencyNs = params.tileReadNs * 2;
    link.bytesPerNs = 4 * params.linkBytesPerNs;
    link.pjPerByte = params.hopPjPerByte;
    link.resources.push_back(pool.create(
        "bypass." + std::to_string(a.bankId) + "-" +
        std::to_string(b.bankId)));
    topo.addLink(link);
}

void
addBusLink(Topology &topo, ResourcePool &pool, const ReRamParams &params,
           int bus_node, const HTreeBank &bank)
{
    TopoLink link;
    link.a = bus_node;
    link.b = bank.port;
    link.kind = LinkKind::Bus;
    // The shared bus pays the bank-level access latency and the
    // through-host round-trip energy; bandwidth is one channel's worth.
    link.latencyNs = params.bankReadNs;
    link.bytesPerNs = params.linkBytesPerNs;
    link.pjPerByte = params.busPjPerByte;
    link.resources.push_back(
        pool.create("buslink.b" + std::to_string(bank.bankId)));
    topo.addLink(link);
}

AreaModel
areaModel3dcu(const ReRamParams &params)
{
    (void)params;
    // Abstract units: one tile-pitch of minimum-width wire = 1. An H-tree
    // link at depth d spans 2^(4-d)/2 tile pitches and its width follows
    // the merging pattern (x4/x2/x2/x1 of the leaf width).
    const double widths[4] = {4, 2, 2, 1};
    const double lengths[4] = {4, 2, 2, 1};
    const int links_per_depth[4] = {2, 4, 8, 16};

    AreaModel area;
    double htree_per_bank = 0;
    for (int d = 0; d < 4; ++d)
        htree_per_bank += widths[d] * lengths[d] * links_per_depth[d];
    area.htreeWireArea = 3 * htree_per_bank;

    // A tile (128 MB ReRAM plus peripherals) dwarfs a wire: calibrated so
    // the finished overhead lands near the paper's reported 13.3%.
    const double tile_area_units = 27.5;
    area.tileArea = 3 * 16 * tile_area_units;

    // Horizontal: 1 + 3 + 7 links per bank at depths 2/3/4 (unit length).
    double horizontal = 0;
    horizontal += 1 * widths[1] * 1;
    horizontal += 3 * widths[2] * 1;
    horizontal += 7 * widths[3] * 1;
    horizontal *= 3; // per bank

    // Vertical: 14 router + 16 tile links per adjacent bank pair; through-
    // silicon connections are short but wide as the parent wire.
    double vertical = 0;
    for (int d = 0; d < 3; ++d)
        vertical += links_per_depth[d] * widths[d] * 1.0;
    vertical += 16 * widths[3] * 1.0;
    vertical *= 2; // two bank pairs

    area.addedWireArea = horizontal + vertical;

    // Switches: one per node (31 per bank x 3) plus the middle bank's
    // second switch (31), each a small crossbar of the wire width.
    const double switch_area_units = 0.6;
    area.switchArea = (31 * 3 + 31) * switch_area_units;
    return area;
}

} // namespace lergan
