#include "interconnect/topology.hh"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "common/logging.hh"

namespace lergan {

int
Topology::addNode(TopoNode node)
{
    nodes_.push_back(std::move(node));
    adjacency_.emplace_back();
    return static_cast<int>(nodes_.size()) - 1;
}

int
Topology::addLink(TopoLink link)
{
    LERGAN_ASSERT(link.a >= 0 && link.a < static_cast<int>(nodes_.size()) &&
                      link.b >= 0 &&
                      link.b < static_cast<int>(nodes_.size()),
                  "addLink: endpoint out of range");
    LERGAN_ASSERT(link.latencyNs >= 0 && link.bytesPerNs > 0,
                  "addLink: invalid cost parameters");
    const int idx = static_cast<int>(links_.size());
    adjacency_[link.a].push_back(idx);
    adjacency_[link.b].push_back(idx);
    links_.push_back(std::move(link));
    return idx;
}

Route
Topology::route(int from, int to, const LinkFilter &filter) const
{
    LERGAN_ASSERT(from >= 0 && from < static_cast<int>(nodes_.size()) &&
                      to >= 0 && to < static_cast<int>(nodes_.size()),
                  "route: endpoint out of range");
    Route result;
    if (from == to) {
        result.minBytesPerNs = std::numeric_limits<double>::infinity();
        return result;
    }

    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(nodes_.size(), inf);
    std::vector<int> via(nodes_.size(), -1); // incoming link index
    using QEntry = std::pair<double, int>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;

    dist[from] = 0.0;
    queue.emplace(0.0, from);
    while (!queue.empty()) {
        auto [d, u] = queue.top();
        queue.pop();
        if (d > dist[u])
            continue;
        if (u == to)
            break;
        for (int link_idx : adjacency_[u]) {
            const TopoLink &l = links_[link_idx];
            if (filter && !filter(l))
                continue;
            const int v = l.a == u ? l.b : l.a;
            const double nd = d + l.latencyNs;
            if (nd < dist[v]) {
                dist[v] = nd;
                via[v] = link_idx;
                queue.emplace(nd, v);
            }
        }
    }

    if (dist[to] == inf)
        return result; // unreachable: invalid route

    // Walk back to collect the path.
    std::vector<int> reversed;
    int cur = to;
    while (cur != from) {
        const int link_idx = via[cur];
        reversed.push_back(link_idx);
        const TopoLink &l = links_[link_idx];
        cur = l.a == cur ? l.b : l.a;
    }
    result.links.assign(reversed.rbegin(), reversed.rend());

    result.minBytesPerNs = inf;
    for (int link_idx : result.links) {
        const TopoLink &l = links_[link_idx];
        result.latencyNs += l.latencyNs;
        result.pjPerByte += l.pjPerByte;
        result.minBytesPerNs = std::min(result.minBytesPerNs, l.bytesPerNs);
    }
    return result;
}

std::vector<std::size_t>
Topology::routeResources(const Route &route) const
{
    std::set<std::size_t> unique;
    for (int link_idx : route.links)
        for (std::size_t res : links_[link_idx].resources)
            unique.insert(res);
    return {unique.begin(), unique.end()};
}

} // namespace lergan
