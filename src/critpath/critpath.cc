#include "critpath/critpath.hh"

#include <algorithm>
#include <iomanip>
#include <map>

#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/utilization.hh"

namespace lergan {

std::string
taskPhaseOf(const std::string &label)
{
    if (startsWith(label, "xfer:") || startsWith(label, "load:"))
        return "transfers";
    if (startsWith(label, "update:") ||
        label.find(".grad.readout") != std::string::npos ||
        label.find(".update.cpu") != std::string::npos) {
        return "updates";
    }
    const auto at = label.find('@');
    if (at != std::string::npos)
        return label.substr(at + 1);
    return "other";
}

PicoSeconds
CriticalPath::criticalDuration() const
{
    PicoSeconds total = 0;
    for (const CritEntry &entry : entries)
        total += entry.duration;
    return total;
}

std::size_t
CriticalPath::zeroSlackTasks() const
{
    std::size_t count = 0;
    for (PicoSeconds s : slack)
        count += s == 0;
    return count;
}

namespace {

/** Rollup of a name -> duration map, sorted by share descending. */
CritRollup
sortedRollup(const std::map<std::string, PicoSeconds> &totals)
{
    CritRollup rollup(totals.begin(), totals.end());
    std::sort(rollup.begin(), rollup.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    return rollup;
}

/** Per-task offset into ExecRecord::resPrev (CSR over resource lists),
 *  mirroring the executor's frozen layout. */
std::vector<std::size_t>
resourceSlotOffsets(const TaskGraph &graph)
{
    std::vector<std::size_t> offsets(graph.size() + 1, 0);
    for (TaskId id = 0; id < graph.size(); ++id)
        offsets[id + 1] = offsets[id] + graph.task(id).resources.size();
    return offsets;
}

/**
 * Per-task slack from a backward pass over the recorded timing graph:
 * dependency edges plus, for every reservation, the edge from the
 * previous holder. Both edge kinds guarantee start(succ) >= end(pred),
 * so latest-end times computed against them are feasible; the makespan
 * task (and, by induction, every binding chain into it) gets zero.
 */
std::vector<PicoSeconds>
computeSlack(const TaskGraph &graph, const ExecRecord &record)
{
    const std::size_t n = graph.size();
    const std::vector<std::size_t> offsets = resourceSlotOffsets(graph);

    // CSR successor lists of the timing graph, counting sort as usual.
    std::vector<std::size_t> succStart(n + 1, 0);
    for (const auto &[dep, task] : graph.edges()) {
        (void)task;
        succStart[dep + 1]++;
    }
    for (std::size_t slot = 0; slot < record.resPrev.size(); ++slot) {
        if (record.resPrev[slot] != kNoTask)
            succStart[record.resPrev[slot] + 1]++;
    }
    for (std::size_t id = 0; id < n; ++id)
        succStart[id + 1] += succStart[id];
    std::vector<TaskId> succIds(succStart[n]);
    std::vector<std::size_t> fill(succStart.begin(), succStart.end() - 1);
    for (const auto &[dep, task] : graph.edges())
        succIds[fill[dep]++] = task;
    for (TaskId id = 0; id < n; ++id) {
        for (std::size_t slot = offsets[id]; slot < offsets[id + 1];
             ++slot) {
            if (record.resPrev[slot] != kNoTask)
                succIds[fill[record.resPrev[slot]]++] = id;
        }
    }

    // Backward pass in reverse completion order (a reverse topological
    // order of the timing graph): the latest a task may end without
    // pushing any successor past its own latest end — or the makespan,
    // for sinks.
    std::vector<PicoSeconds> lateEnd(n, record.makespan);
    std::vector<PicoSeconds> slack(n, 0);
    for (std::size_t i = record.completionOrder.size(); i-- > 0;) {
        const TaskId id = record.completionOrder[i];
        PicoSeconds late = record.makespan;
        for (std::size_t e = succStart[id]; e < succStart[id + 1]; ++e) {
            const TaskId succ = succIds[e];
            const PicoSeconds dur =
                record.end[succ] - record.start[succ];
            late = std::min(late, lateEnd[succ] - dur);
        }
        lateEnd[id] = late;
        slack[id] = late - record.end[id];
    }
    return slack;
}

} // namespace

CriticalPath
extractCriticalPath(const TaskGraph &graph, const ExecRecord &record,
                    const std::vector<std::string> &resource_names)
{
    CriticalPath path;
    if (record.empty() || record.lastTask == kNoTask)
        return path;
    LERGAN_ASSERT(record.start.size() == graph.size(),
                  "execution record does not match the graph: ",
                  record.start.size(), " vs ", graph.size(), " tasks");
    path.makespan = record.makespan;

    // Walk binding predecessors back from the makespan task. Every hop
    // satisfies start(task) == end(pred), and predecessors fired
    // strictly earlier, so the walk terminates at a task that started
    // at time zero.
    std::vector<TaskId> chain;
    for (TaskId id = record.lastTask; id != kNoTask;
         id = record.bindingPred[id]) {
        chain.push_back(id);
        LERGAN_ASSERT(chain.size() <= graph.size(),
                      "binding-predecessor cycle");
    }
    std::reverse(chain.begin(), chain.end());

    std::map<std::string, PicoSeconds> by_phase;
    std::map<std::string, PicoSeconds> by_category;
    path.entries.reserve(chain.size());
    for (TaskId id : chain) {
        const Task &task = graph.task(id);
        CritEntry entry;
        entry.task = id;
        entry.label = task.label;
        entry.phase = taskPhaseOf(task.label);
        entry.kind = record.bindingKind[id];
        if (entry.kind == BindingKind::Resource &&
            record.bindingRes[id] < resource_names.size()) {
            entry.resource = resource_names[record.bindingRes[id]];
        }
        entry.category =
            task.resources.empty() ||
                    task.resources.front() >= resource_names.size()
                ? "none"
                : resourceCategoryOf(
                      resource_names[task.resources.front()]);
        entry.start = record.start[id];
        entry.duration = record.end[id] - record.start[id];
        by_phase[entry.phase] += entry.duration;
        by_category[entry.category] += entry.duration;
        path.entries.push_back(std::move(entry));
    }
    path.phaseRollup = sortedRollup(by_phase);
    path.resourceRollup = sortedRollup(by_category);
    path.slack = computeSlack(graph, record);
    return path;
}

namespace {

void
printRollup(std::ostream &os, const char *title,
            const CritRollup &rollup, PicoSeconds makespan)
{
    os << "  " << std::left << std::setw(14) << title << std::right;
    for (const auto &[name, time] : rollup) {
        os << "  " << name << " " << std::fixed << std::setprecision(1)
           << (makespan ? 100.0 * static_cast<double>(time) /
                              static_cast<double>(makespan)
                        : 0.0)
           << "%";
    }
    os << '\n';
}

} // namespace

void
CriticalPath::print(std::ostream &os, std::size_t top_k) const
{
    os << "  critical path: " << entries.size() << " links, "
       << std::fixed << std::setprecision(3) << psToMs(makespan)
       << " ms, " << zeroSlackTasks() << " zero-slack tasks\n";
    printRollup(os, "by phase:", phaseRollup, makespan);
    printRollup(os, "by resource:", resourceRollup, makespan);

    // The top_k longest links, heaviest first (ties: earliest start).
    std::vector<const CritEntry *> longest;
    longest.reserve(entries.size());
    for (const CritEntry &entry : entries)
        if (entry.duration > 0)
            longest.push_back(&entry);
    std::sort(longest.begin(), longest.end(),
              [](const CritEntry *a, const CritEntry *b) {
                  if (a->duration != b->duration)
                      return a->duration > b->duration;
                  return a->start < b->start;
              });
    if (longest.size() > top_k)
        longest.resize(top_k);
    for (const CritEntry *entry : longest) {
        os << "    " << std::fixed << std::setprecision(3)
           << std::setw(10) << psToMs(entry->duration) << " ms  "
           << std::left << std::setw(28) << entry->label << std::right
           << "  [" << bindingKindName(entry->kind);
        if (!entry->resource.empty())
            os << " " << entry->resource;
        os << "]\n";
    }
}

std::shared_ptr<const RecordedRun>
makeRecordedRun(std::shared_ptr<const TaskGraph> graph,
                std::vector<std::string> resource_names,
                ExecRecord record)
{
    auto run = std::make_shared<RecordedRun>();
    run->graph = std::move(graph);
    run->resourceNames = std::move(resource_names);
    run->record = std::move(record);
    run->path = extractCriticalPath(*run->graph, run->record,
                                    run->resourceNames);
    return run;
}

std::size_t
appendCriticalTrack(Tracer &tracer, const CriticalPath &path,
                    std::vector<std::string> &lane_names)
{
    // Resource lanes are the resource ids, so the first index past the
    // full name list is guaranteed unused by task spans.
    const std::size_t lane = lane_names.size();
    lane_names.push_back("critical path");
    for (const CritEntry &entry : path.entries) {
        tracer.record(entry.label, entry.start,
                      entry.start + entry.duration, lane);
    }
    return lane;
}

} // namespace lergan
