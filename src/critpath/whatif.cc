#include "critpath/whatif.hh"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "common/logging.hh"
#include "sim/utilization.hh"

namespace lergan {

namespace {

/** Compact scale factor for transform descriptions ("2", "0.5"). */
std::string
scaleText(double scale)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", scale);
    return buf;
}

/** Recorded duration of every task (end - start, == Task::duration). */
std::vector<PicoSeconds>
recordedDurations(const RecordedRun &run)
{
    const ExecRecord &record = run.record;
    std::vector<PicoSeconds> durations(record.start.size());
    for (std::size_t id = 0; id < durations.size(); ++id)
        durations[id] = record.end[id] - record.start[id];
    return durations;
}

/** True when any resource the task holds belongs to @p category. */
bool
holdsCategory(const RecordedRun &run, TaskId id,
              const std::string &category)
{
    for (std::size_t rid : run.graph->task(id).resources) {
        if (rid < run.resourceNames.size() &&
            category == resourceCategoryOf(run.resourceNames[rid])) {
            return true;
        }
    }
    return false;
}

/** CSR predecessor (dependency) lists by task. */
struct PredLists {
    std::vector<std::size_t> start;
    std::vector<TaskId> ids;
};

PredLists
predecessorLists(const TaskGraph &graph)
{
    const std::size_t n = graph.size();
    PredLists preds;
    preds.start.assign(n + 1, 0);
    for (const auto &[dep, task] : graph.edges()) {
        (void)dep;
        preds.start[task + 1]++;
    }
    for (std::size_t id = 0; id < n; ++id)
        preds.start[id + 1] += preds.start[id];
    preds.ids.resize(preds.start[n]);
    std::vector<std::size_t> fill(preds.start.begin(),
                                  preds.start.end() - 1);
    for (const auto &[dep, task] : graph.edges())
        preds.ids[fill[task]++] = dep;
    return preds;
}

/**
 * The sound lower bound: the longest dependency-only chain (any
 * schedule respects dependencies) maxed with each resource's total
 * work divided by its copy count (c copies retire at most c units of
 * work per unit time). @p order must be a topological order.
 */
PicoSeconds
lowerBound(const TaskGraph &graph,
           const std::vector<PicoSeconds> &durations,
           const std::vector<std::uint32_t> &copies,
           const std::vector<TaskId> &order, std::size_t resource_count)
{
    const std::size_t n = graph.size();
    const PredLists preds = predecessorLists(graph);
    std::vector<PicoSeconds> chain(n, 0);
    PicoSeconds longest = 0;
    for (TaskId id : order) {
        PicoSeconds ready = 0;
        for (std::size_t e = preds.start[id]; e < preds.start[id + 1];
             ++e) {
            ready = std::max(ready, chain[preds.ids[e]]);
        }
        chain[id] = ready + durations[id];
        longest = std::max(longest, chain[id]);
    }

    std::vector<PicoSeconds> work(resource_count, 0);
    for (TaskId id = 0; id < n; ++id)
        for (std::size_t rid : graph.task(id).resources)
            work[rid] += durations[id];
    for (std::size_t rid = 0; rid < resource_count; ++rid) {
        const std::uint64_t c =
            rid < copies.size() ? std::max<std::uint32_t>(copies[rid], 1)
                                : 1;
        longest = std::max(longest, (work[rid] + c - 1) / c);
    }
    return longest;
}

/**
 * Lean mirror of TaskGraph::execute: the same fire/completion events
 * popped in the same (time, insertion-seq) order, minus the pool,
 * stats, tracing and record machinery — plus transformed durations and
 * per-resource copy counts (c interchangeable FIFO units; a reservation
 * takes the earliest-free unit). With every copy count at one the
 * mirror reproduces the event simulation's schedule decision for
 * decision, so the makespan it returns IS the resimulated makespan of
 * the transformed graph. Optionally emits the fire order (a topological
 * order) for the lower bound's chain pass.
 */
PicoSeconds
simulateList(const TaskGraph &graph,
             const std::vector<PicoSeconds> &durations,
             const std::vector<std::uint32_t> &copies,
             std::size_t resource_count, std::vector<TaskId> *fire_order)
{
    const std::size_t n = graph.size();
    std::vector<std::uint32_t> unmet(n, 0);
    for (const auto &[dep, task] : graph.edges()) {
        (void)dep;
        unmet[task]++;
    }
    // CSR successor lists (addDep order preserved, as in the executor).
    std::vector<std::size_t> succStart(n + 1, 0);
    for (const auto &[dep, task] : graph.edges()) {
        (void)task;
        succStart[dep + 1]++;
    }
    for (std::size_t id = 0; id < n; ++id)
        succStart[id + 1] += succStart[id];
    std::vector<TaskId> succIds(succStart[n]);
    std::vector<std::size_t> fill(succStart.begin(),
                                  succStart.end() - 1);
    for (const auto &[dep, task] : graph.edges())
        succIds[fill[dep]++] = task;

    struct Event {
        PicoSeconds time;
        std::uint64_t seq;
        TaskId id;
        bool complete;
        bool operator>(const Event &other) const
        {
            return time != other.time ? time > other.time
                                      : seq > other.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue;
    std::uint64_t seq = 0;

    std::vector<PicoSeconds> ready(n, 0);
    for (TaskId id = 0; id < n; ++id)
        if (unmet[id] == 0)
            queue.push({0, seq++, id, false});

    // Per-resource unit free times, flattened CSR-style: copies[rid]
    // interchangeable FIFO units per resource, one slot each.
    std::vector<std::size_t> unitStart(resource_count + 1, 0);
    for (std::size_t rid = 0; rid < resource_count; ++rid) {
        const std::uint32_t c =
            rid < copies.size() ? std::max<std::uint32_t>(copies[rid], 1)
                                : 1;
        unitStart[rid + 1] = unitStart[rid] + c;
    }
    std::vector<PicoSeconds> unitFree(unitStart[resource_count], 0);
    const auto earliestUnit = [&](std::size_t rid) {
        std::size_t best = unitStart[rid];
        for (std::size_t u = best + 1; u < unitStart[rid + 1]; ++u)
            if (unitFree[u] < unitFree[best])
                best = u;
        return best;
    };

    PicoSeconds makespan = 0;
    std::size_t completed = 0;
    while (!queue.empty()) {
        const Event event = queue.top();
        queue.pop();
        const TaskId id = event.id;
        if (!event.complete) {
            if (fire_order)
                fire_order->push_back(id);
            PicoSeconds start = event.time;
            for (std::size_t rid : graph.task(id).resources)
                start = std::max(start, unitFree[earliestUnit(rid)]);
            const PicoSeconds end = start + durations[id];
            for (std::size_t rid : graph.task(id).resources)
                unitFree[earliestUnit(rid)] = end;
            queue.push({end, seq++, id, true});
        } else {
            makespan = std::max(makespan, event.time);
            ++completed;
            for (std::size_t e = succStart[id]; e < succStart[id + 1];
                 ++e) {
                const TaskId succ = succIds[e];
                ready[succ] = std::max(ready[succ], event.time);
                LERGAN_ASSERT(unmet[succ] > 0, "dependency underflow");
                if (--unmet[succ] == 0)
                    queue.push({ready[succ], seq++, succ, false});
            }
        }
    }
    LERGAN_ASSERT(completed == n, "task graph has a cycle: ", completed,
                  " of ", n, " tasks schedulable");
    return makespan;
}

} // namespace

WhatIfTransform
identityTransform(const RecordedRun &run)
{
    (void)run;
    WhatIfTransform transform;
    transform.description = "identity";
    return transform;
}

WhatIfTransform
scalePhase(const RecordedRun &run, const std::string &phase,
           double scale)
{
    WhatIfTransform transform;
    transform.description = "phase " + phase + " x" + scaleText(scale);
    transform.durations = recordedDurations(run);
    for (TaskId id = 0; id < transform.durations.size(); ++id) {
        if (taskPhaseOf(run.graph->task(id).label) == phase) {
            transform.durations[id] = static_cast<PicoSeconds>(
                static_cast<double>(transform.durations[id]) * scale +
                0.5);
        }
    }
    return transform;
}

WhatIfTransform
scaleResourceCategory(const RecordedRun &run, const std::string &category,
                      double throughput_scale)
{
    LERGAN_ASSERT(throughput_scale > 0.0,
                  "throughput scale must be positive");
    WhatIfTransform transform;
    transform.description =
        category + " throughput x" + scaleText(throughput_scale);
    transform.durations = recordedDurations(run);
    for (TaskId id = 0; id < transform.durations.size(); ++id) {
        if (holdsCategory(run, id, category)) {
            transform.durations[id] = static_cast<PicoSeconds>(
                static_cast<double>(transform.durations[id]) /
                    throughput_scale +
                0.5);
        }
    }
    return transform;
}

WhatIfTransform
duplicateResourceCategory(const RecordedRun &run,
                          const std::string &category,
                          std::uint32_t copies)
{
    LERGAN_ASSERT(copies >= 1, "need at least one copy");
    WhatIfTransform transform;
    transform.description = category + " x" + std::to_string(copies) +
                            " copies";
    transform.copies.assign(run.resourceNames.size(), 1);
    for (std::size_t rid = 0; rid < run.resourceNames.size(); ++rid) {
        if (category == resourceCategoryOf(run.resourceNames[rid]))
            transform.copies[rid] = copies;
    }
    return transform;
}

WhatIfEstimate
whatIf(const RecordedRun &run, const WhatIfTransform &transform)
{
    WhatIfEstimate estimate;
    if (run.empty() || run.record.empty())
        return estimate;
    const TaskGraph &graph = *run.graph;
    const ExecRecord &record = run.record;
    const std::size_t n = graph.size();
    LERGAN_ASSERT(transform.durations.empty() ||
                      transform.durations.size() == n,
                  "transform durations do not match the graph");

    const std::vector<PicoSeconds> durations =
        transform.durations.empty() ? recordedDurations(run)
                                    : transform.durations;

    std::size_t resource_count = run.resourceNames.size();
    for (TaskId id = 0; id < n; ++id)
        for (std::size_t rid : graph.task(id).resources)
            resource_count = std::max(resource_count, rid + 1);
    resource_count = std::max(resource_count, transform.copies.size());

    auto copiesOf = [&](std::size_t rid) -> std::size_t {
        return rid < transform.copies.size()
                   ? std::max<std::uint32_t>(transform.copies[rid], 1)
                   : 1;
    };

    // Fixed-order replay: walk the recorded completion order (a
    // topological order of the timing graph) and recompute every end
    // time against dependencies and the recorded per-resource grant
    // order. With c copies of a resource, a reservation waits for the
    // c-th most recent grant instead of the latest one.
    const PredLists preds = predecessorLists(graph);
    std::vector<PicoSeconds> end(n, 0);
    std::vector<std::vector<PicoSeconds>> grants(resource_count);
    for (TaskId id : record.completionOrder) {
        PicoSeconds start = 0;
        for (std::size_t e = preds.start[id]; e < preds.start[id + 1];
             ++e) {
            start = std::max(start, end[preds.ids[e]]);
        }
        for (std::size_t rid : graph.task(id).resources) {
            const std::vector<PicoSeconds> &g = grants[rid];
            const std::size_t c = copiesOf(rid);
            if (g.size() >= c)
                start = std::max(start, g[g.size() - c]);
        }
        end[id] = start + durations[id];
        for (std::size_t rid : graph.task(id).resources)
            grants[rid].push_back(end[id]);
        estimate.makespan = std::max(estimate.makespan, end[id]);
    }
    // The replay above keeps the recorded grant order, which a real
    // resimulation would not (list-scheduling anomalies cut both ways),
    // so it is the estimate, not the bound. The upper bound re-runs the
    // executor's own greedy policy on the transformed graph via the
    // lean mirror — for unchanged copy counts that IS the resimulated
    // makespan.
    estimate.upper = simulateList(graph, durations, transform.copies,
                                  resource_count, nullptr);
    estimate.lower = lowerBound(graph, durations, transform.copies,
                                record.completionOrder, resource_count);
    return estimate;
}

MakespanBounds
makespanBounds(const TaskGraph &graph, std::size_t resource_count)
{
    const std::size_t n = graph.size();
    MakespanBounds bounds;
    if (n == 0)
        return bounds;
    for (TaskId id = 0; id < n; ++id)
        for (std::size_t rid : graph.task(id).resources)
            resource_count = std::max(resource_count, rid + 1);

    std::vector<PicoSeconds> durations(n, 0);
    for (TaskId id = 0; id < n; ++id)
        durations[id] = graph.task(id).duration;

    // The mirror reproduces the event simulation's schedule exactly, so
    // the upper bound is the true makespan of this graph; the
    // dependency/work bound below is the (cheaper, analytic) lower one.
    // The mirror's fire order is a topological order the lower bound's
    // chain pass walks.
    std::vector<TaskId> order;
    order.reserve(n);
    bounds.upper =
        simulateList(graph, durations, {}, resource_count, &order);
    bounds.lower = lowerBound(graph, durations, {}, order,
                              resource_count);
    return bounds;
}

} // namespace lergan
