/**
 * @file
 * Critical-path extraction over a recorded task-graph execution.
 *
 * The executor's ExecRecord names, for every task, the *binding
 * predecessor* — the one dependency completion or resource release that
 * set the task's start time exactly (start(t) == end(bindingPred(t))).
 * Walking binding predecessors backward from the makespan task yields an
 * unbroken chain from time zero to the makespan whose durations sum to
 * the makespan *exactly*: there is no idle time anywhere on the chain,
 * because each link starts the instant its predecessor ends and the
 * first link starts at zero. That chain is the critical path; every
 * entry says which task, on which resource, in which phase, delayed the
 * run and by how much.
 *
 * A backward pass over the full recorded timing graph (dependency edges
 * plus per-resource reservation-succession edges) additionally gives
 * each task its slack: how much the task could slip without moving the
 * makespan, zero on the critical chain.
 */

#ifndef LERGAN_CRITPATH_CRITPATH_HH
#define LERGAN_CRITPATH_CRITPATH_HH

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/exec_record.hh"
#include "sim/task_graph.hh"
#include "sim/trace.hh"

namespace lergan {

/** One link of the critical chain. */
struct CritEntry {
    TaskId task = kNoTask;
    /** Task label ("D.fwd L3 img17"). */
    std::string label;
    /** Phase family of the label (transfers/updates/fwd/...). */
    std::string phase;
    /** Name of the binding resource ("" unless kind == Resource). */
    std::string resource;
    /** Category of the *first* resource the task held (compute, wire,
     *  switch, bus, cpu, other) or "none" for pure barriers. */
    std::string category;
    /** Why the task started when it did. */
    BindingKind kind = BindingKind::None;
    PicoSeconds start = 0;
    PicoSeconds duration = 0;
};

/** Named duration rollup (phase or resource category -> picoseconds). */
using CritRollup = std::vector<std::pair<std::string, PicoSeconds>>;

/** The extracted critical path of one recorded run. */
struct CriticalPath {
    /** Makespan of the recorded run. */
    PicoSeconds makespan = 0;
    /** The chain in time order: entries.front() starts at 0,
     *  entries.back() ends at makespan. */
    std::vector<CritEntry> entries;
    /** Chain time by phase family, sorted by share descending. */
    CritRollup phaseRollup;
    /** Chain time by resource category, sorted by share descending. */
    CritRollup resourceRollup;
    /** Per-task slack (indexed by TaskId): how far the task's finish
     *  could slip, given the recorded timing graph, without moving the
     *  makespan. Zero on the critical chain. */
    std::vector<PicoSeconds> slack;

    /** Sum of entry durations; equals makespan by construction. */
    PicoSeconds criticalDuration() const;

    /** Number of tasks with zero slack (>= entries.size()). */
    std::size_t zeroSlackTasks() const;

    /**
     * Print the rollups plus the @p top_k longest chain entries as an
     * indented report block.
     */
    void print(std::ostream &os, std::size_t top_k = 8) const;
};

/**
 * Classify a task label into its phase family — the same buckets the
 * phase report uses (transfers, updates, the "@phase" suffix, other).
 */
std::string taskPhaseOf(const std::string &label);

/**
 * Extract the critical path of one recorded execution.
 *
 * @param graph          the graph that was executed.
 * @param record         the record execute() filled for that run.
 * @param resource_names pool resource names indexed by resource id
 *                       (for binding-resource names and categories).
 */
CriticalPath extractCriticalPath(
    const TaskGraph &graph, const ExecRecord &record,
    const std::vector<std::string> &resource_names);

/**
 * Everything needed to analyse a run after the fact: the graph (shared
 * with whoever built it), the execution record and the extracted path.
 * This is what SimulationSession::withCriticalPath() hangs onto and the
 * what-if estimator replays.
 */
struct RecordedRun {
    std::shared_ptr<const TaskGraph> graph;
    std::vector<std::string> resourceNames;
    ExecRecord record;
    CriticalPath path;

    bool empty() const { return graph == nullptr; }
};

/**
 * Bundle a finished recording into a shareable RecordedRun: stores the
 * pieces and extracts the critical path. @p graph must be the graph
 * @p record came from (use the aliasing shared_ptr constructor to
 * share an owning template).
 */
std::shared_ptr<const RecordedRun>
makeRecordedRun(std::shared_ptr<const TaskGraph> graph,
                std::vector<std::string> resource_names,
                ExecRecord record);

/**
 * Append the critical chain to @p tracer as a dedicated display lane
 * and add that lane's name to @p lane_names, so a Chrome trace export
 * shows the chain as its own track above the per-resource ones.
 *
 * @return the lane id the chain was placed on.
 */
std::size_t appendCriticalTrack(Tracer &tracer, const CriticalPath &path,
                                std::vector<std::string> &lane_names);

} // namespace lergan

#endif // LERGAN_CRITPATH_CRITPATH_HH
