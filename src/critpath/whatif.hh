/**
 * @file
 * What-if makespan estimation over a recorded execution.
 *
 * A recorded run fixes the complete timing graph of one simulation:
 * dependency edges plus, for every resource, the order reservations
 * were granted in. Replaying that graph with transformed task durations
 * (or extra resource copies) gives an analytic makespan estimate in one
 * linear pass — no event queue, no resimulation. With the identity
 * transform the replay reproduces the recorded makespan bit-exactly,
 * because the replay recurrence
 *
 *     end(t) = max(max_deps end(d), max_res end(prev holder)) + dur(t)
 *
 * is precisely how the executor computed each start time.
 *
 * Each estimate comes with bounds on the *true* (resimulated) makespan
 * under the transform:
 *
 *   - lower: max of the longest dependency-only chain and every
 *     resource's total work divided by its copy count. Provably sound:
 *     any schedule respects dependencies, and a resource with c copies
 *     can retire at most c seconds of work per second.
 *   - upper: the executor's own greedy policy re-run on the transformed
 *     graph by a lean event-loop mirror (same (time, seq) event order,
 *     no pool/stats/trace machinery). For transforms that keep every
 *     copy count at one the mirror's schedule is decision-for-decision
 *     the resimulated one, so lower <= true <= upper holds by
 *     construction; extra copies generalize the mirror to c
 *     interchangeable FIFO units per resource.
 *
 * The fixed-grant-order replay is deliberately NOT used as the upper
 * bound: resimulation re-orders grants where the transform changes
 * release times, and classic list-scheduling anomalies push the true
 * makespan above the fixed-order replay on a sizable fraction of
 * graphs (measured: up to ~15% on seeded random DAGs). The replay is
 * the instant estimate; the mirror is the bound.
 *
 * makespanBounds() provides the same bounds for a *never-executed*
 * graph; its upper bound equals the event simulation's makespan, so
 * sweep pruning decisions match what a full simulation would conclude
 * while skipping the execution-side machinery.
 */

#ifndef LERGAN_CRITPATH_WHATIF_HH
#define LERGAN_CRITPATH_WHATIF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "critpath/critpath.hh"

namespace lergan {

/**
 * A transform of the recorded run: per-task durations and/or per-
 * resource copy counts. Empty vectors mean "unchanged".
 */
struct WhatIfTransform {
    /** Human-readable description ("wire throughput x2"). */
    std::string description;
    /** New duration per TaskId; empty = recorded durations. */
    std::vector<PicoSeconds> durations;
    /** Copies per resource id (>= 1); empty = one of each. */
    std::vector<std::uint32_t> copies;
};

/** Analytic estimate of the transformed run's makespan. */
struct WhatIfEstimate {
    /** Fixed-grant-order replay makespan (one linear pass, no event
     *  queue; exact for the identity transform). */
    PicoSeconds makespan = 0;
    /** Sound lower bound on the resimulated makespan. */
    PicoSeconds lower = 0;
    /** Upper bound from the executor-mirror reschedule; equals the
     *  resimulated makespan when copy counts are unchanged. */
    PicoSeconds upper = 0;
};

/** The do-nothing transform; whatIf() on it returns the recorded
 *  makespan exactly. */
WhatIfTransform identityTransform(const RecordedRun &run);

/**
 * Scale the duration of every task in phase family @p phase (see
 * taskPhaseOf) by @p scale. scale < 1 shrinks the phase.
 */
WhatIfTransform scalePhase(const RecordedRun &run,
                           const std::string &phase, double scale);

/**
 * Divide the duration of every task holding a resource of category
 * @p category (see resourceCategoryOf) by @p throughput_scale — e.g.
 * 2.0 models wires twice as fast.
 */
WhatIfTransform scaleResourceCategory(const RecordedRun &run,
                                      const std::string &category,
                                      double throughput_scale);

/**
 * Give every resource of category @p category @p copies
 * interchangeable copies (e.g. duplicate the tile class a congested
 * crossbar belongs to). Durations are unchanged; the replay lets
 * @p copies reservations overlap per resource.
 */
WhatIfTransform duplicateResourceCategory(const RecordedRun &run,
                                          const std::string &category,
                                          std::uint32_t copies);

/** Replay the recorded timing graph under @p transform. */
WhatIfEstimate whatIf(const RecordedRun &run,
                      const WhatIfTransform &transform);

/** Lower/upper makespan bounds for a graph (executed or not). */
struct MakespanBounds {
    PicoSeconds lower = 0;
    PicoSeconds upper = 0;

    /** True when the bracket proves this graph's makespan is below
     *  @p reference. */
    bool provenFasterThan(PicoSeconds reference) const
    {
        return upper < reference;
    }
    /** True when the bracket proves it is above @p reference. */
    bool provenSlowerThan(PicoSeconds reference) const
    {
        return lower > reference;
    }
};

/**
 * Analytic makespan bounds for @p graph without running the full event
 * simulation: the dependency/work lower bound plus an upper bound from
 * a lean mirror of the executor's event loop (identical schedule, none
 * of the pool/stats/trace machinery) — so upper equals the event
 * simulation's makespan exactly.
 *
 * @param resource_count size of the pool the graph's resource ids
 *                       index into.
 */
MakespanBounds makespanBounds(const TaskGraph &graph,
                              std::size_t resource_count);

} // namespace lergan

#endif // LERGAN_CRITPATH_WHATIF_HH
