#include "telemetry/profiler.hh"

#include <iomanip>

namespace lergan {

HostProfiler &
HostProfiler::global()
{
    static HostProfiler instance;
    return instance;
}

void
HostProfiler::record(const std::string &phase, std::uint64_t ns)
{
    std::lock_guard lock(mutex_);
    HostPhaseStat &stat = phases_[phase];
    stat.ns += ns;
    stat.calls += 1;
}

std::map<std::string, HostPhaseStat>
HostProfiler::stats() const
{
    std::lock_guard lock(mutex_);
    return phases_;
}

void
HostProfiler::reset()
{
    std::lock_guard lock(mutex_);
    phases_.clear();
}

void
HostProfiler::exportInto(MetricsRegistry &registry) const
{
    for (const auto &[phase, stat] : stats()) {
        registry.gauge("host.phase." + phase + ".ms")
            .set(static_cast<double>(stat.ns) * 1e-6);
        registry.gauge("host.phase." + phase + ".calls")
            .set(static_cast<double>(stat.calls));
    }
}

void
HostProfiler::print(std::ostream &os) const
{
    for (const auto &[phase, stat] : stats()) {
        os << "  " << std::left << std::setw(12) << phase << std::right
           << std::fixed << std::setprecision(3) << std::setw(12)
           << static_cast<double>(stat.ns) * 1e-6 << " ms  "
           << stat.calls << " calls\n";
    }
}

} // namespace lergan
