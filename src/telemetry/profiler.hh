/**
 * @file
 * Host-side self-profiler: where does the *simulator's own* wall-clock
 * time go?
 *
 * RAII scopes around the coarse host phases (parse, compile, schedule,
 * simulate, export) accumulate per-phase nanoseconds and call counts.
 * The profiler is process-global and DISABLED by default: a disabled
 * scope is one relaxed atomic load and no clock reads, so instrumented
 * hot paths cost nothing measurable until someone turns profiling on
 * (bench `--self-profile`, or HostProfiler::global().enable()).
 *
 * Host times are wall-clock facts about this machine, not about the
 * simulated hardware: exportInto() files them under the reserved
 * "host." metric prefix, which every golden comparison strips.
 */

#ifndef LERGAN_TELEMETRY_PROFILER_HH
#define LERGAN_TELEMETRY_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/tracing.hh"

namespace lergan {

/** Accumulated time of one host phase. */
struct HostPhaseStat {
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
};

/** Process-global accumulator of host-phase wall time. */
class HostProfiler
{
  public:
    /** The process-wide instance the RAII scopes record into. */
    static HostProfiler &global();

    void
    enable(bool on = true)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Add @p ns of wall time to @p phase (thread-safe). */
    void record(const std::string &phase, std::uint64_t ns);

    /** Per-phase accumulated stats, ordered by phase name. */
    std::map<std::string, HostPhaseStat> stats() const;

    /** Drop all accumulated phases (enabled flag unchanged). */
    void reset();

    /**
     * File every phase into @p registry as host.phase.<name>.ms /
     * .calls gauges — the "host." prefix keeps them out of goldens.
     */
    void exportInto(MetricsRegistry &registry) const;

    /** Print a "phase  ms  calls" table (no output when empty). */
    void print(std::ostream &os) const;

    /**
     * RAII phase scope. When the profiler is disabled at construction
     * the scope is inert: no clock is read, nothing is recorded.
     *
     * Times come from traceNowNs() — the same process-wide steady
     * epoch the span tracer uses — so profiler phases and flight-
     * recorder spans always agree on where zero is.
     */
    class Scope
    {
      public:
        Scope(HostProfiler &profiler, const char *phase)
            : profiler_(profiler), phase_(phase),
              active_(profiler.enabled())
        {
            if (active_)
                startNs_ = traceNowNs();
        }

        ~Scope()
        {
            if (!active_)
                return;
            profiler_.record(phase_, traceNowNs() - startNs_);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler &profiler_;
        const char *phase_;
        bool active_;
        std::uint64_t startNs_ = 0;
    };

    /** Convenience: Scope(*this, phase). */
    Scope
    scope(const char *phase)
    {
        return Scope(*this, phase);
    }

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::map<std::string, HostPhaseStat> phases_;
};

} // namespace lergan

#endif // LERGAN_TELEMETRY_PROFILER_HH
