/**
 * @file
 * Flight recorder: per-lane, cache-line-padded, lock-free ring buffers
 * of completed span events (telemetry/tracing.hh) — the always-on,
 * bounded-memory causal record of what recently happened to every
 * sweep point.
 *
 * Each worker lane owns one ring (plus one for the main thread), so a
 * recording thread never touches another thread's cache line: a push is
 * a plain struct store into the writer's own pre-sized slot array plus
 * one relaxed/release head increment — no lock, no allocation, no
 * contention (the PR 9 sharding discipline). When a ring fills, the
 * oldest events are overwritten: the recorder keeps the newest N spans
 * per lane, which is exactly what a post-mortem wants.
 *
 * Readers (the NDJSON exporter, the anomaly report, the failed-point
 * dump) run quiescent — after the sweep, or on the owning lane itself —
 * so snapshots never observe a torn event. The one concurrent-read
 * case, a lane dumping its own ring from inside a catch handler, is
 * same-thread and therefore ordered.
 *
 * Determinism contract: span/trace ids and the deterministic attributes
 * are pure functions of the point grid, so a sorted NDJSON export with
 * host times stripped is byte-identical at any worker count (the
 * fig19_spans golden pins this). Wall-clock fields (begin/dur, queue
 * wait, lane) live in each line's trailing "host" object, which the
 * golden harness strips — the same split the metrics goldens use for
 * the "host." prefix.
 */

#ifndef LERGAN_TELEMETRY_FLIGHT_RECORDER_HH
#define LERGAN_TELEMETRY_FLIGHT_RECORDER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lergan {

/** Identifies one traced unit of work (one sweep point, one run). */
using TraceId = std::uint64_t;
/** Identifies one span within its trace (1 = the root). */
using SpanId = std::uint64_t;

/**
 * One key/value attribute of a span. Plain data: keys are static
 * string literals, text values are copied into a fixed buffer
 * (truncated past kTextCapacity - 1 characters), so an attribute never
 * owns memory and never dangles.
 *
 * Attributes marked `host` are wall-clock facts about the measuring
 * machine (queue waits, durations); the NDJSON exporter files them in
 * the strippable "host" object so they stay out of determinism goldens.
 */
struct SpanAttr {
    enum class Kind : std::uint8_t { None, Bool, Int, Float, Text };

    static constexpr std::size_t kTextCapacity = 16;

    const char *key = nullptr;
    Kind kind = Kind::None;
    bool host = false;
    std::int64_t i = 0;
    double f = 0.0;
    char text[kTextCapacity] = {};

    void
    setText(std::string_view value)
    {
        kind = Kind::Text;
        const std::size_t n =
            value.size() < kTextCapacity - 1 ? value.size()
                                             : kTextCapacity - 1;
        std::memcpy(text, value.data(), n);
        text[n] = '\0';
    }
};

/** One completed span, as stored in a ring slot. Plain data. */
struct SpanEvent {
    static constexpr int kMaxAttrs = 4;
    /** Lane value of main-thread (non-pool) spans. */
    static constexpr std::uint32_t kMainLane = UINT32_MAX;

    TraceId trace = 0;
    SpanId span = 0;
    /** Parent span id within the same trace (0 = root). */
    SpanId parent = 0;
    /** Static string literal. */
    const char *name = "";
    /** Nanoseconds since the shared trace epoch (traceNowNs()). */
    std::uint64_t beginNs = 0;
    std::uint64_t endNs = 0;
    std::uint32_t lane = kMainLane;
    std::uint32_t attrCount = 0;
    std::array<SpanAttr, kMaxAttrs> attrs{};

    double
    durationMs() const
    {
        return static_cast<double>(endNs - beginNs) * 1e-6;
    }
};

/**
 * Single-writer ring of the newest `capacity` span events.
 *
 * The owning lane is the only writer; push() is a slot store plus a
 * release head increment, so a same-thread or quiescent reader always
 * sees fully written events. Capacity is rounded up to a power of two
 * and pre-allocated — steady-state recording allocates nothing.
 */
class FlightRing
{
  public:
    explicit FlightRing(std::size_t capacity);

    /** Record @p event, overwriting the oldest when full. */
    void
    push(const SpanEvent &event)
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        slots_[head & mask_] = event;
        head_.store(head + 1, std::memory_order_release);
    }

    /** Resident events, oldest to newest (quiescent/same-thread). */
    std::vector<SpanEvent> snapshot() const;

    /** Total events ever pushed (including overwritten ones). */
    std::uint64_t
    recorded() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Events lost to overwrite-oldest so far. */
    std::uint64_t
    dropped() const
    {
        const std::uint64_t total = recorded();
        return total > slots_.size() ? total - slots_.size() : 0;
    }

    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<SpanEvent> slots_;
    std::uint64_t mask_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
};

/**
 * The per-lane ring set one sweep (or session) records into.
 *
 * Lane rings are heap-allocated individually, so two lanes never share
 * a cache line; prepareLanes() grows the set once per pool width and
 * every later run reuses the same rings (no steady-state allocation).
 * The main thread (session runs, exporters) records into its own
 * dedicated ring.
 */
class FlightRecorder
{
  public:
    /** Default events kept per lane (~1 MiB/lane of post-mortem). */
    static constexpr std::size_t kDefaultCapacity = 4096;

    explicit FlightRecorder(std::size_t lane_capacity = kDefaultCapacity);

    /**
     * Ensure rings for lanes [0, @p lanes) exist. Called by the engine
     * before a run; must not race recording (the engine calls it before
     * the pool starts claiming).
     */
    void prepareLanes(std::size_t lanes);

    /** Ring of worker lane @p lane (prepareLanes'd first). */
    FlightRing &lane(std::size_t lane);

    /** The main thread's (non-pool) ring. */
    FlightRing &mainRing() { return *main_; }

    std::size_t laneCount() const { return lanes_.size(); }
    std::size_t laneCapacity() const { return laneCapacity_; }

    /**
     * All resident events across every ring, sorted by (trace, span) —
     * the deterministic order the NDJSON exporter relies on. Quiescent
     * readers only.
     */
    std::vector<SpanEvent> collect() const;

    /** Resident events of one trace, sorted by span id. */
    std::vector<SpanEvent> collectTrace(TraceId trace) const;

    /** Total events lost to overwrite-oldest across all rings. */
    std::uint64_t dropped() const;

    /** Total events ever recorded across all rings. */
    std::uint64_t recorded() const;

    /**
     * Allocate a trace id for a non-sweep unit of work (a session run,
     * a bench phase). Sweep points use their deterministic point index
     * + 1; allocated ids start at 2^32 so the two ranges never collide
     * in a shared recorder.
     */
    TraceId
    allocateTraceId()
    {
        return nextTraceId_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    std::size_t laneCapacity_;
    std::vector<std::unique_ptr<FlightRing>> lanes_;
    std::unique_ptr<FlightRing> main_;
    std::atomic<TraceId> nextTraceId_{TraceId{1} << 32};
};

/**
 * Write @p events (already in collect() order) as NDJSON, one span per
 * line with a fixed field order:
 *
 *   {"trace":1,"span":2,"parent":1,"name":"compile",
 *    "attrs":{"cache_hit":false},
 *    "host":{"lane":0,"begin_us":12.345,"dur_us":6.789,...}}
 *
 * Deterministic attributes land in "attrs" (omitted when empty); every
 * wall-clock fact — lane, begin/duration, host-marked attributes —
 * lands in the trailing "host" object, which @p include_host omits
 * entirely (the golden harness instead strips it with a line filter,
 * keeping the product output complete).
 */
void writeSpanNdjson(std::ostream &os,
                     const std::vector<SpanEvent> &events,
                     bool include_host = true);

/**
 * Print the span tree of one trace as an indented text timeline:
 * name, duration, attributes — the human-readable form the anomaly
 * report and the failed-point dump embed. @p events must belong to a
 * single trace, sorted by span id (collectTrace() order). Spans whose
 * parent is absent (evicted, or still open) print at the top level
 * with a note.
 */
void printSpanTree(std::ostream &os, const std::vector<SpanEvent> &events);

/**
 * One-stop failure dump: the span tree of @p trace as currently
 * resident in @p ring, rendered to a string (empty when the trace left
 * no events). Safe to call from the owning lane itself — same-thread
 * reads are ordered.
 */
std::string formatTraceDump(const FlightRing &ring, TraceId trace);

} // namespace lergan

#endif // LERGAN_TELEMETRY_FLIGHT_RECORDER_HH
