#include "telemetry/tracing.hh"

#include <chrono>

namespace lergan {

std::uint64_t
traceNowNs()
{
    // One epoch for the whole process, captured on first use (function-
    // local static: thread-safe, ordered before any span or profiler
    // scope can read the clock). Spans and HostProfiler phase scopes
    // both measure from here, so their timelines share an origin.
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

namespace tracing_detail {

ThreadState &
state()
{
    thread_local ThreadState ts;
    return ts;
}

} // namespace tracing_detail

Span *
currentSpan()
{
    return tracing_detail::state().current;
}

void
annotate(const char *key, bool value)
{
    if (Span *span = currentSpan())
        span->attr(key, value);
}

void
annotate(const char *key, std::int64_t value)
{
    if (Span *span = currentSpan())
        span->attr(key, value);
}

void
annotate(const char *key, std::string_view value)
{
    if (Span *span = currentSpan())
        span->attr(key, value);
}

void
annotate(const char *key, double value, bool host)
{
    if (Span *span = currentSpan())
        span->attr(key, value, host);
}

} // namespace lergan
