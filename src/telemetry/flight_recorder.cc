#include "telemetry/flight_recorder.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace lergan {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Stable (trace, span) ordering — the exporter's contract. */
void
sortEvents(std::vector<SpanEvent> &events)
{
    std::sort(events.begin(), events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.trace != b.trace)
                      return a.trace < b.trace;
                  return a.span < b.span;
              });
}

/** %.17g — round-trip exact, the repo's JSON number discipline. */
std::string
numExact(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

/** Microseconds with fixed sub-µs precision for host timestamps. */
std::string
numUs(std::uint64_t ns)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ns) * 1e-3);
    return buf;
}

void
writeAttrValue(std::ostream &os, const SpanAttr &attr)
{
    switch (attr.kind) {
    case SpanAttr::Kind::Bool:
        os << (attr.i ? "true" : "false");
        break;
    case SpanAttr::Kind::Int:
        os << attr.i;
        break;
    case SpanAttr::Kind::Float:
        os << numExact(attr.f);
        break;
    case SpanAttr::Kind::Text:
        os << '"' << JsonWriter::escape(attr.text) << '"';
        break;
    case SpanAttr::Kind::None:
        os << "null";
        break;
    }
}

} // namespace

FlightRing::FlightRing(std::size_t capacity)
    : slots_(roundUpPow2(capacity == 0 ? 1 : capacity)),
      mask_(slots_.size() - 1)
{
}

std::vector<SpanEvent>
FlightRing::snapshot() const
{
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t resident =
        head < slots_.size() ? head : slots_.size();
    std::vector<SpanEvent> events;
    events.reserve(resident);
    for (std::uint64_t i = head - resident; i < head; ++i)
        events.push_back(slots_[i & mask_]);
    return events;
}

FlightRecorder::FlightRecorder(std::size_t lane_capacity)
    : laneCapacity_(lane_capacity),
      main_(std::make_unique<FlightRing>(lane_capacity))
{
}

void
FlightRecorder::prepareLanes(std::size_t lanes)
{
    while (lanes_.size() < lanes)
        lanes_.push_back(std::make_unique<FlightRing>(laneCapacity_));
}

FlightRing &
FlightRecorder::lane(std::size_t lane)
{
    LERGAN_ASSERT(lane < lanes_.size(),
                  "flight-recorder lane ", lane, " not prepared (",
                  lanes_.size(), " lanes)");
    return *lanes_[lane];
}

std::vector<SpanEvent>
FlightRecorder::collect() const
{
    std::vector<SpanEvent> events = main_->snapshot();
    for (const auto &ring : lanes_) {
        const std::vector<SpanEvent> lane_events = ring->snapshot();
        events.insert(events.end(), lane_events.begin(),
                      lane_events.end());
    }
    sortEvents(events);
    return events;
}

std::vector<SpanEvent>
FlightRecorder::collectTrace(TraceId trace) const
{
    std::vector<SpanEvent> all = collect();
    std::vector<SpanEvent> events;
    for (const SpanEvent &event : all)
        if (event.trace == trace)
            events.push_back(event);
    return events;
}

std::uint64_t
FlightRecorder::dropped() const
{
    std::uint64_t total = main_->dropped();
    for (const auto &ring : lanes_)
        total += ring->dropped();
    return total;
}

std::uint64_t
FlightRecorder::recorded() const
{
    std::uint64_t total = main_->recorded();
    for (const auto &ring : lanes_)
        total += ring->recorded();
    return total;
}

void
writeSpanNdjson(std::ostream &os, const std::vector<SpanEvent> &events,
                bool include_host)
{
    for (const SpanEvent &event : events) {
        os << "{\"trace\":" << event.trace << ",\"span\":" << event.span
           << ",\"parent\":" << event.parent << ",\"name\":\""
           << JsonWriter::escape(event.name) << '"';
        bool any_attrs = false;
        for (std::uint32_t a = 0; a < event.attrCount; ++a) {
            const SpanAttr &attr = event.attrs[a];
            if (attr.host)
                continue;
            os << (any_attrs ? "," : ",\"attrs\":{") << '"'
               << JsonWriter::escape(attr.key) << "\":";
            writeAttrValue(os, attr);
            any_attrs = true;
        }
        if (any_attrs)
            os << '}';
        if (include_host) {
            // Every wall-clock fact rides in this one trailing object,
            // so a line filter can strip host-dependence wholesale.
            os << ",\"host\":{\"lane\":";
            if (event.lane == SpanEvent::kMainLane)
                os << -1;
            else
                os << event.lane;
            os << ",\"begin_us\":" << numUs(event.beginNs)
               << ",\"dur_us\":" << numUs(event.endNs - event.beginNs);
            for (std::uint32_t a = 0; a < event.attrCount; ++a) {
                const SpanAttr &attr = event.attrs[a];
                if (!attr.host)
                    continue;
                os << ",\"" << JsonWriter::escape(attr.key) << "\":";
                writeAttrValue(os, attr);
            }
            os << '}';
        }
        os << "}\n";
    }
}

void
printSpanTree(std::ostream &os, const std::vector<SpanEvent> &events)
{
    // Depth via parent links; an absent parent (evicted or still open)
    // anchors its subtree at the top level.
    std::map<SpanId, std::size_t> depth;
    for (const SpanEvent &event : events) {
        std::size_t d = 0;
        bool orphan = event.parent != 0;
        if (const auto it = depth.find(event.parent);
            it != depth.end()) {
            d = it->second + 1;
            orphan = false;
        }
        depth[event.span] = d;
        char dur[64];
        std::snprintf(dur, sizeof dur, "%10.3f ms",
                      event.durationMs());
        os << dur << "  ";
        for (std::size_t i = 0; i < d; ++i)
            os << "  ";
        os << event.name;
        for (std::uint32_t a = 0; a < event.attrCount; ++a) {
            const SpanAttr &attr = event.attrs[a];
            os << (a == 0 ? "  [" : ", ") << attr.key << '=';
            switch (attr.kind) {
            case SpanAttr::Kind::Bool:
                os << (attr.i ? "true" : "false");
                break;
            case SpanAttr::Kind::Int:
                os << attr.i;
                break;
            case SpanAttr::Kind::Float: {
                char buf[64];
                std::snprintf(buf, sizeof buf, "%.3f", attr.f);
                os << buf;
                break;
            }
            case SpanAttr::Kind::Text:
                os << attr.text;
                break;
            case SpanAttr::Kind::None:
                break;
            }
        }
        if (event.attrCount > 0)
            os << ']';
        if (orphan)
            os << "  (parent span not resident)";
        os << '\n';
    }
}

std::string
formatTraceDump(const FlightRing &ring, TraceId trace)
{
    std::vector<SpanEvent> events;
    for (const SpanEvent &event : ring.snapshot())
        if (event.trace == trace)
            events.push_back(event);
    if (events.empty())
        return {};
    std::sort(events.begin(), events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  return a.span < b.span;
              });
    std::ostringstream os;
    printSpanTree(os, events);
    return os.str();
}

} // namespace lergan
