/**
 * @file
 * Causal tracing: RAII span scopes over the flight recorder.
 *
 * A Span marks one stage of one traced unit of work (a sweep point, a
 * session run): it captures begin/end on the shared trace clock, links
 * to its parent, carries a handful of key/value attributes, and lands
 * in the calling thread's flight-recorder ring when it closes. The
 * whole apparatus is thread-local: bindTraceLane() points a thread at
 * its ring, a root Span opens a trace, nested Spans attach to the
 * current one. No locks anywhere — a span's only shared-memory effect
 * is the ring push at destruction.
 *
 * Cost discipline: an *unbound* thread's Span is inert — construction
 * is one thread-local load and a branch, no clock read, no store — so
 * instrumented hot paths (the sweep point body, the Monte Carlo trial
 * loop) cost nothing measurable until a recorder is attached
 * (`--trace-spans`, ExperimentSweep::withTracing). A bound span costs
 * two clock reads and one ring push. The fig19 tracing A/B guard pins
 * the on-cost.
 *
 * Determinism: span ids count up from 1 within each trace, in program
 * order on the owning thread, so a point's span sequence is a pure
 * function of its code path — identical at any worker count.
 *
 * Clock: all span timestamps (and HostProfiler phase scopes) derive
 * from one process-wide steady-clock epoch, captured on first use —
 * see traceNowNs(). Span nesting is asserted monotonic in debug
 * builds: closing a span that is not the innermost open one aborts.
 */

#ifndef LERGAN_TELEMETRY_TRACING_HH
#define LERGAN_TELEMETRY_TRACING_HH

#include <cassert>
#include <cstdint>
#include <string_view>

#include "telemetry/flight_recorder.hh"

namespace lergan {

/**
 * Nanoseconds since the process-wide trace epoch — one steady-clock
 * origin, captured once at first use (i.e. session start), shared by
 * every span and every HostProfiler phase scope so the two timelines
 * never disagree on where zero is.
 */
std::uint64_t traceNowNs();

class Span;

namespace tracing_detail {

/** Per-thread tracing state (the bound ring and the open trace). */
struct ThreadState {
    FlightRing *ring = nullptr;
    std::uint32_t lane = SpanEvent::kMainLane;
    Span *current = nullptr;
    TraceId trace = 0;
    SpanId nextSpan = 1;
};

ThreadState &state();

} // namespace tracing_detail

/**
 * RAII: bind the calling thread to @p ring (its flight-recorder lane)
 * for the binding's lifetime; restores the previous binding after.
 * Spans constructed while no binding is active are inert.
 */
class TraceLaneBinding
{
  public:
    TraceLaneBinding(FlightRing &ring, std::uint32_t lane)
    {
        auto &ts = tracing_detail::state();
        prevRing_ = ts.ring;
        prevLane_ = ts.lane;
        ts.ring = &ring;
        ts.lane = lane;
    }

    ~TraceLaneBinding()
    {
        auto &ts = tracing_detail::state();
        ts.ring = prevRing_;
        ts.lane = prevLane_;
    }

    TraceLaneBinding(const TraceLaneBinding &) = delete;
    TraceLaneBinding &operator=(const TraceLaneBinding &) = delete;

  private:
    FlightRing *prevRing_;
    std::uint32_t prevLane_;
};

/** Convenience: bind to @p recorder's main-thread ring. */
class MainLaneBinding : public TraceLaneBinding
{
  public:
    explicit MainLaneBinding(FlightRecorder &recorder)
        : TraceLaneBinding(recorder.mainRing(), SpanEvent::kMainLane)
    {
    }
};

/**
 * One causal span. Stack-only, non-copyable.
 *
 * The two-argument constructor opens a new trace (a root span); the
 * one-argument constructor opens a child of the thread's current span.
 * Attributes set through attr() are carried in the completed event
 * (first SpanEvent::kMaxAttrs stick; the rest are dropped). The event
 * is recorded at destruction, so only *completed* spans ever reach the
 * recorder — a span open when its lane's ring is read simply is not
 * there yet (the failure dump notes this).
 */
class Span
{
  public:
    /** Root span: open trace @p trace on the bound ring. */
    Span(TraceId trace, const char *name) : Span(name, trace, true) {}

    /** Child span of the thread's current span (same trace). */
    explicit Span(const char *name) : Span(name, 0, false) {}

    ~Span()
    {
        if (!active_)
            return;
        auto &ts = tracing_detail::state();
        // Monotonic nesting: the closing span must be the innermost
        // open one. A violation means scopes overlap instead of nest —
        // a tracing bug, caught in debug builds.
        assert(ts.current == this && "span scopes must nest");
        event_.endNs = traceNowNs();
        assert(event_.endNs >= event_.beginNs);
        ts.ring->push(event_);
        ts.current = parent_;
        if (root_) {
            ts.trace = prevTrace_;
            ts.nextSpan = prevNextSpan_;
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** False when the thread had no ring bound at construction. */
    bool active() const { return active_; }

    SpanId id() const { return event_.span; }
    TraceId trace() const { return event_.trace; }

    /** @name Attributes (no-ops on an inert span) */
    ///@{
    Span &
    attr(const char *key, bool value)
    {
        SpanAttr *slot = nextAttr(key, false);
        if (slot) {
            slot->kind = SpanAttr::Kind::Bool;
            slot->i = value ? 1 : 0;
        }
        return *this;
    }

    Span &
    attr(const char *key, std::int64_t value)
    {
        SpanAttr *slot = nextAttr(key, false);
        if (slot) {
            slot->kind = SpanAttr::Kind::Int;
            slot->i = value;
        }
        return *this;
    }

    Span &
    attr(const char *key, std::string_view value)
    {
        SpanAttr *slot = nextAttr(key, false);
        if (slot)
            slot->setText(value);
        return *this;
    }

    /**
     * Floating-point attribute. @p host marks it a wall-clock fact
     * (queue wait, milliseconds of anything): host attributes land in
     * the NDJSON line's strippable "host" object instead of "attrs".
     */
    Span &
    attr(const char *key, double value, bool host = false)
    {
        SpanAttr *slot = nextAttr(key, host);
        if (slot) {
            slot->kind = SpanAttr::Kind::Float;
            slot->f = value;
        }
        return *this;
    }
    ///@}

    /**
     * Spans opened so far in this span's trace (root included) — valid
     * while the span is alive; the engine reads it off the root after
     * the point body returns to report a per-point span count.
     */
    std::uint64_t
    spansInTrace() const
    {
        return active_ ? tracing_detail::state().nextSpan - 1 : 0;
    }

  private:
    Span(const char *name, TraceId trace, bool root) : root_(root)
    {
        auto &ts = tracing_detail::state();
        if (!ts.ring || (!root && !ts.current))
            return; // unbound thread (or orphan child): inert
        active_ = true;
        parent_ = ts.current;
        if (root) {
            prevTrace_ = ts.trace;
            prevNextSpan_ = ts.nextSpan;
            ts.trace = trace;
            ts.nextSpan = 1;
        }
        event_.trace = ts.trace;
        event_.span = ts.nextSpan++;
        event_.parent = parent_ && !root ? parent_->event_.span : 0;
        event_.name = name;
        event_.lane = ts.lane;
        event_.beginNs = traceNowNs();
        ts.current = this;
    }

    SpanAttr *
    nextAttr(const char *key, bool host)
    {
        if (!active_ || event_.attrCount >= SpanEvent::kMaxAttrs)
            return nullptr;
        SpanAttr &slot = event_.attrs[event_.attrCount++];
        slot.key = key;
        slot.host = host;
        return &slot;
    }

    bool active_ = false;
    bool root_;
    Span *parent_ = nullptr;
    TraceId prevTrace_ = 0;
    SpanId prevNextSpan_ = 1;
    SpanEvent event_;
};

/** @name Annotate the thread's current span (no-ops when none open) */
///@{
void annotate(const char *key, bool value);
void annotate(const char *key, std::int64_t value);
void annotate(const char *key, std::string_view value);
void annotate(const char *key, double value, bool host = false);
///@}

/** The thread's innermost open span (null when none / unbound). */
Span *currentSpan();

} // namespace lergan

#endif // LERGAN_TELEMETRY_TRACING_HH
