#include "telemetry/metrics.hh"

#include <bit>
#include <cstdio>

#include "common/json.hh"
#include "common/logging.hh"

namespace lergan {

namespace telemetry_detail {

std::size_t
assignShard()
{
    // Round-robin: the first kShards recording threads land on
    // distinct slots (a worker pool of <= kShards threads is fully
    // contention-free); later threads wrap around.
    static std::atomic<std::size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) % kShards;
}

} // namespace telemetry_detail

void
Histogram::observe(std::uint64_t sample)
{
    // One shard per recording thread: every store below lands on the
    // calling thread's own padded slot, and the min/max CAS loops can
    // only ever race with the same thread's earlier stores (they are
    // still atomic because readers merge concurrently).
    Shard &shard = shards_[telemetry_detail::shardIndex()];
    shard.buckets[bucketOf(sample)].fetch_add(1,
                                              std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(sample, std::memory_order_relaxed);
    std::uint64_t seen = shard.min.load(std::memory_order_relaxed);
    while (sample < seen &&
           !shard.min.compare_exchange_weak(seen, sample,
                                            std::memory_order_relaxed)) {
    }
    seen = shard.max.load(std::memory_order_relaxed);
    while (sample > seen &&
           !shard.max.compare_exchange_weak(seen, sample,
                                            std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::sum() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::bucketCount(int bucket) const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.buckets[bucket].load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::min() const
{
    // Empty shards keep the UINT64_MAX sentinel and never win the
    // reduction against a shard that observed anything.
    std::uint64_t lowest = UINT64_MAX;
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        total += shard.count.load(std::memory_order_relaxed);
        const std::uint64_t seen =
            shard.min.load(std::memory_order_relaxed);
        if (seen < lowest)
            lowest = seen;
    }
    return total == 0 ? 0 : lowest;
}

std::uint64_t
Histogram::max() const
{
    std::uint64_t highest = 0;
    for (const Shard &shard : shards_) {
        const std::uint64_t seen =
            shard.max.load(std::memory_order_relaxed);
        if (seen > highest)
            highest = seen;
    }
    return highest;
}

int
Histogram::bucketOf(std::uint64_t sample)
{
    return std::bit_width(sample);
}

std::uint64_t
Histogram::bucketUpperBound(int bucket)
{
    if (bucket >= kBuckets - 1)
        return UINT64_MAX;
    return (std::uint64_t{1} << bucket) - 1;
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &earlier) const
{
    MetricsSnapshot out = *this;
    for (auto &[name, value] : out.counters) {
        auto it = earlier.counters.find(name);
        if (it != earlier.counters.end())
            value -= it->second;
    }
    for (auto &[name, hist] : out.histograms) {
        auto it = earlier.histograms.find(name);
        if (it == earlier.histograms.end())
            continue;
        hist.count -= it->second.count;
        hist.sum -= it->second.sum;
        // Bucket-wise subtraction; buckets that cancel out disappear.
        std::vector<std::pair<int, std::uint64_t>> buckets;
        for (auto [bucket, count] : hist.buckets) {
            for (auto [old_bucket, old_count] : it->second.buckets)
                if (old_bucket == bucket)
                    count -= old_count;
            if (count != 0)
                buckets.emplace_back(bucket, count);
        }
        hist.buckets = std::move(buckets);
    }
    return out;
}

MetricsSnapshot
MetricsSnapshot::withoutPrefix(const std::string &prefix) const
{
    MetricsSnapshot out;
    for (const auto &[name, value] : counters)
        if (name.rfind(prefix, 0) != 0)
            out.counters.emplace(name, value);
    for (const auto &[name, value] : gauges)
        if (name.rfind(prefix, 0) != 0)
            out.gauges.emplace(name, value);
    for (const auto &[name, hist] : histograms)
        if (name.rfind(prefix, 0) != 0)
            out.histograms.emplace(name, hist);
    return out;
}

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        json.key(name).value(value);
    json.endObject();
    json.key("gauges").beginObject();
    for (const auto &[name, value] : gauges)
        json.key(name).value(value);
    json.endObject();
    json.key("histograms").beginObject();
    for (const auto &[name, hist] : histograms) {
        json.key(name).beginObject();
        json.key("count").value(hist.count);
        json.key("sum").value(hist.sum);
        json.key("min").value(hist.min);
        json.key("max").value(hist.max);
        json.key("buckets").beginArray();
        for (auto [bucket, count] : hist.buckets) {
            json.beginObject();
            json.key("le").value(Histogram::bucketUpperBound(bucket));
            json.key("count").value(count);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
    os << '\n';
}

namespace {

/** Prometheus metric names allow [a-zA-Z0-9_:] only. */
std::string
promName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            c = '_';
    }
    return out;
}

/** %.17g like the JSON writer, so text round-trips the double. */
std::string
promValue(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

} // namespace

void
MetricsSnapshot::writePrometheus(std::ostream &os) const
{
    for (const auto &[name, value] : counters) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " counter\n";
        os << p << ' ' << value << '\n';
    }
    for (const auto &[name, value] : gauges) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n";
        os << p << ' ' << promValue(value) << '\n';
    }
    for (const auto &[name, hist] : histograms) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        std::uint64_t cumulative = 0;
        for (auto [bucket, count] : hist.buckets) {
            cumulative += count;
            if (bucket >= Histogram::kBuckets - 1)
                continue; // folded into the final +Inf bucket
            os << p << "_bucket{le=\""
               << Histogram::bucketUpperBound(bucket) << "\"} "
               << cumulative << '\n';
        }
        os << p << "_bucket{le=\"+Inf\"} " << hist.count << '\n';
        os << p << "_sum " << hist.sum << '\n';
        os << p << "_count " << hist.count << '\n';
    }
}

void
MetricsSnapshot::writeCsv(std::ostream &os) const
{
    os << "kind,name,field,value\n";
    for (const auto &[name, value] : counters)
        os << "counter," << name << ",value," << value << '\n';
    for (const auto &[name, value] : gauges)
        os << "gauge," << name << ",value," << promValue(value) << '\n';
    for (const auto &[name, hist] : histograms) {
        os << "histogram," << name << ",count," << hist.count << '\n';
        os << "histogram," << name << ",sum," << hist.sum << '\n';
        os << "histogram," << name << ",min," << hist.min << '\n';
        os << "histogram," << name << ",max," << hist.max << '\n';
        for (auto [bucket, count] : hist.buckets) {
            os << "histogram," << name << ",le_"
               << Histogram::bucketUpperBound(bucket) << ',' << count
               << '\n';
        }
    }
}

MetricsRegistry::Instrument &
MetricsRegistry::instrument(const std::string &name, Kind kind)
{
    std::lock_guard lock(mutex_);
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        Instrument entry;
        entry.kind = kind;
        switch (kind) {
          case Kind::Counter:
            entry.counter = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            entry.gauge = std::make_unique<Gauge>();
            break;
          case Kind::Histogram:
            entry.histogram = std::make_unique<Histogram>();
            break;
        }
        it = instruments_.emplace(name, std::move(entry)).first;
    }
    LERGAN_ASSERT(it->second.kind == kind,
                  "metric '", name,
                  "' requested as two different instrument kinds");
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *instrument(name, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *instrument(name, Kind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *instrument(name, Kind::Histogram).histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    std::lock_guard lock(mutex_);
    for (const auto &[name, entry] : instruments_) {
        switch (entry.kind) {
          case Kind::Counter:
            out.counters.emplace(name, entry.counter->value());
            break;
          case Kind::Gauge:
            out.gauges.emplace(name, entry.gauge->value());
            break;
          case Kind::Histogram: {
            HistogramSnapshot hist;
            hist.count = entry.histogram->count();
            hist.sum = entry.histogram->sum();
            hist.min = entry.histogram->min();
            hist.max = entry.histogram->max();
            for (int b = 0; b < Histogram::kBuckets; ++b) {
                const std::uint64_t count =
                    entry.histogram->bucketCount(b);
                if (count != 0)
                    hist.buckets.emplace_back(b, count);
            }
            out.histograms.emplace(name, std::move(hist));
            break;
          }
        }
    }
    return out;
}

void
MetricsRegistry::clear()
{
    std::lock_guard lock(mutex_);
    instruments_.clear();
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard lock(mutex_);
    return instruments_.size();
}

} // namespace lergan
