/**
 * @file
 * Hierarchical metrics registry: counters, gauges and histograms under
 * dot-separated names ("sim.queue.depth", "ic.htree.wire.flits",
 * "cache.model.hits").
 *
 * Recording is cheap, thread-safe and contention-free: counters and
 * histograms are sharded into cache-line-padded per-thread slots (each
 * recording thread owns one slot via a round-robin thread→shard
 * assignment), so concurrent workers never write the same cache line —
 * no lock and no false sharing on the hot path (the registry mutex
 * guards only instrument *creation*). Readers merge the shards: a
 * counter's value is the sum of its slots, a histogram's buckets,
 * count and sum add across slots and min/max reduce across them, so a
 * MetricsSnapshot — an ordered, plain-data copy with delta semantics
 * and JSON / Prometheus-text / CSV exporters — is byte-identical to
 * what an unsharded registry would have produced.
 *
 * Determinism contract: counters and histograms accumulate integers,
 * so their totals are identical regardless of how many worker threads
 * interleaved the recording — a sweep's sim-time metrics snapshot is
 * byte-identical at 1 and N workers (the golden tests pin this).
 * Host-time measurements (wall clocks, worker busy time) live under the
 * reserved "host." prefix and are excluded from golden comparisons;
 * see MetricsSnapshot::withoutPrefix and docs/INTERNALS.md.
 */

#ifndef LERGAN_TELEMETRY_METRICS_HH
#define LERGAN_TELEMETRY_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace lergan {

namespace telemetry_detail {

/** Cache-line size the shard slots pad to (false-sharing avoidance). */
inline constexpr std::size_t kCacheLine = 64;

/** Shards per instrument: enough that the worker pools in use (the
 *  sweep engine rarely runs wider than the hardware) spread across
 *  distinct lines; threads beyond this share slots round-robin, which
 *  costs contention but never correctness. */
inline constexpr std::size_t kShards = 8;

/** Round-robin thread→shard assignment (definition in metrics.cc). */
std::size_t assignShard();

/** Stable shard of the calling thread, in [0, kShards). */
inline std::size_t
shardIndex()
{
    thread_local const std::size_t shard = assignShard();
    return shard;
}

} // namespace telemetry_detail

/**
 * Monotonic integer count (flits, transitions, tasks).
 *
 * Sharded: add() touches only the calling thread's padded slot;
 * value() sums the slots (exact — integer adds commute).
 */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        shards_[telemetry_detail::shardIndex()].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const Shard &shard : shards_)
            total += shard.value.load(std::memory_order_relaxed);
        return total;
    }

  private:
    struct alignas(telemetry_detail::kCacheLine) Shard {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, telemetry_detail::kShards> shards_;
};

/**
 * Last-written scalar (cache sizes, configuration facts, host times).
 *
 * Not sharded — "last write wins" has no per-thread merge — but padded
 * so a hot gauge never false-shares with a neighboring instrument.
 */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    alignas(telemetry_detail::kCacheLine) std::atomic<double> value_{0.0};
};

/**
 * Log2-bucketed distribution of unsigned samples (queue depths, waits
 * in picoseconds, makespans).
 *
 * Bucket i counts samples whose bit width is i: bucket 0 holds zeros,
 * bucket i >= 1 holds values in [2^(i-1), 2^i - 1]. Everything is an
 * atomic integer, so concurrent observes merge deterministically.
 *
 * Sharded like Counter: observe() writes only the calling thread's
 * shard (its buckets, count, sum and running min/max); readers merge —
 * buckets/count/sum add across shards, min/max reduce across the
 * non-empty ones. Merged totals equal an unsharded histogram's.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 65; ///< bit widths 0..64

    void observe(std::uint64_t sample);

    std::uint64_t count() const;
    std::uint64_t sum() const;
    /** Smallest / largest observed sample (0 / 0 when empty). */
    std::uint64_t min() const;
    std::uint64_t max() const;
    std::uint64_t bucketCount(int bucket) const;

    /** Bucket index of @p sample (its bit width). */
    static int bucketOf(std::uint64_t sample);

    /** Inclusive upper bound of @p bucket (UINT64_MAX for the last). */
    static std::uint64_t bucketUpperBound(int bucket);

  private:
    struct alignas(telemetry_detail::kCacheLine) Shard {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{UINT64_MAX};
        std::atomic<std::uint64_t> max{0};
    };
    std::array<Shard, telemetry_detail::kShards> shards_;
};

/** Plain-data copy of one histogram at snapshot time. */
struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /** (bucket index, count) for every non-empty bucket, ascending. */
    std::vector<std::pair<int, std::uint64_t>> buckets;
};

/**
 * Ordered plain-data view of a registry at one point in time.
 *
 * Ordering is lexicographic by name in every exporter, so two
 * snapshots with equal contents serialize byte-identically.
 */
class MetricsSnapshot
{
  public:
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    /**
     * This snapshot minus @p earlier: counters and histogram
     * counts/sums subtract; gauges and histogram min/max keep this
     * snapshot's values (they are not accumulative). Instruments absent
     * from @p earlier pass through unchanged.
     */
    MetricsSnapshot delta(const MetricsSnapshot &earlier) const;

    /** Copy without any instrument whose name starts with @p prefix
     *  (used to strip "host." metrics from golden comparisons). */
    MetricsSnapshot withoutPrefix(const std::string &prefix) const;

    /** One JSON object: {"counters":{},"gauges":{},"histograms":{}}. */
    void writeJson(std::ostream &os) const;

    /**
     * Prometheus text exposition: names are sanitized (non-alphanumeric
     * characters become '_'), histograms expand to cumulative _bucket /
     * _sum / _count series. One instrument per line, which is what lets
     * the golden harness strip host_* lines with a line filter.
     */
    void writePrometheus(std::ostream &os) const;

    /** "kind,name,field,value" rows (histograms expand per field). */
    void writeCsv(std::ostream &os) const;
};

/**
 * Shared, hierarchical instrument store.
 *
 * counter()/gauge()/histogram() create on first use and return a
 * reference that stays valid for the registry's lifetime, so hot paths
 * resolve a name once and record through the pointer. Requesting an
 * existing name with a different instrument kind is a logic error
 * (panics): one name means one time series.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Consistent-ordering copy of every instrument's current value. */
    MetricsSnapshot snapshot() const;

    /** Drop every instrument (outstanding references dangle). */
    void clear();

    /** Number of registered instruments. */
    std::size_t size() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Instrument {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument &instrument(const std::string &name, Kind kind);

    mutable std::mutex mutex_;
    std::map<std::string, Instrument> instruments_;
};

} // namespace lergan

#endif // LERGAN_TELEMETRY_METRICS_HH
