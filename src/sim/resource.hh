/**
 * @file
 * FIFO-reservation hardware resources.
 *
 * A Resource models one serially-occupied unit of hardware (a tile's MMV
 * pipeline, one interconnect link). Tasks reserve an interval starting no
 * earlier than both their ready time and the resource's next free time;
 * this yields first-come-first-served contention without modeling
 * per-cycle arbitration.
 */

#ifndef LERGAN_SIM_RESOURCE_HH
#define LERGAN_SIM_RESOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lergan {

/** A serially-shared hardware unit with FIFO reservations. */
class Resource
{
  public:
    /** @param name diagnostic name ("bank0.tile3", "link.v.12"). */
    explicit Resource(std::string name) : name_(std::move(name)) {}

    /**
     * Reserve the resource for @p duration, starting at or after @p ready.
     *
     * @return the actual start time of the reservation.
     */
    PicoSeconds
    reserve(PicoSeconds ready, PicoSeconds duration)
    {
        PicoSeconds start = ready > nextFree_ ? ready : nextFree_;
        waitTime_ += start - ready;
        nextFree_ = start + duration;
        busyTime_ += duration;
        ++reservations_;
        return start;
    }

    /** Earliest time a new reservation could begin. */
    PicoSeconds nextFree() const { return nextFree_; }

    /** Total time this resource has been occupied. */
    PicoSeconds busyTime() const { return busyTime_; }

    /**
     * Total time reservations spent queued behind earlier ones: the
     * summed gap between each task's ready time and its actual start.
     * This is the resource's contention, as opposed to its utilization.
     */
    PicoSeconds waitTime() const { return waitTime_; }

    /** Number of reservations made. */
    std::uint64_t reservations() const { return reservations_; }

    const std::string &name() const { return name_; }

    /** Forget all reservations (new simulation run). */
    void
    reset()
    {
        nextFree_ = 0;
        busyTime_ = 0;
        waitTime_ = 0;
        reservations_ = 0;
    }

  private:
    std::string name_;
    PicoSeconds nextFree_ = 0;
    PicoSeconds busyTime_ = 0;
    PicoSeconds waitTime_ = 0;
    std::uint64_t reservations_ = 0;
};

/** Owning pool of resources, indexed by a dense id. */
class ResourcePool
{
  public:
    /** Create a resource and return its id. */
    std::size_t
    create(std::string name)
    {
        resources_.emplace_back(std::move(name));
        return resources_.size() - 1;
    }

    Resource &operator[](std::size_t id) { return resources_[id]; }
    const Resource &operator[](std::size_t id) const
    {
        return resources_[id];
    }

    std::size_t size() const { return resources_.size(); }

    /** Reset every resource for a fresh run. */
    void
    resetAll()
    {
        for (auto &r : resources_)
            r.reset();
    }

  private:
    std::vector<Resource> resources_;
};

} // namespace lergan

#endif // LERGAN_SIM_RESOURCE_HH
