/**
 * @file
 * Two-level calendar (ladder) priority queue for discrete-event
 * simulation.
 *
 * The simulator's previous kernel was a binary heap: every push and pop
 * paid O(log n) comparisons plus a sift that moves whole entries. A DES
 * workload is far friendlier than the general case — events cluster
 * near the current time and the queue drains monotonically — which is
 * exactly what a calendar queue exploits:
 *
 *  - "near" holds the events inside the current time window, kept as a
 *    run sorted DESCENDING by (when, seq) so the next event pops off the
 *    back in O(1);
 *  - "far" holds everything beyond the window, completely unsorted, so
 *    scheduling a distant event is an O(1) append.
 *
 * When near drains, the next window is carved out of far: the window
 * width adapts to the observed event density (span / count), the
 * matching entries are swept into near with one partition + sort, and
 * the rest stay unsorted. Each event is therefore touched O(1) times
 * amortized outside of one small sort per window.
 *
 * Determinism contract (same as the old heap): events fire in ascending
 * (when, seq) order, where seq is the schedule order — equal-time
 * events fire exactly in the order they were scheduled. The property
 * test in tests/test_properties.cc drives this queue and the reference
 * binary heap (sim/heap_event_queue.hh) with ~1M randomized operations
 * and asserts identical firing sequences.
 *
 * The queue is a template over the payload type so the task-graph
 * executor can store POD task events (no type erasure, no indirect
 * call) while the general EventQueue stores sim::EventFn callbacks.
 *
 * Cancellation: scheduleAt returns the event's id; cancel(id) marks it
 * dead in O(1). Dead entries are skipped (and destroyed) at pop time,
 * so cancel never has to search either level.
 */

#ifndef LERGAN_SIM_CALENDAR_QUEUE_HH
#define LERGAN_SIM_CALENDAR_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lergan {
namespace sim {

/** Handle of one scheduled event (its global schedule sequence). */
using EventId = std::uint64_t;

/** Deterministic two-level calendar queue over arbitrary payloads. */
template <typename Payload>
class CalendarQueue
{
  public:
    /** Current simulated time (the when of the last popped event). */
    PicoSeconds now() const { return now_; }

    /** Events scheduled and neither fired nor cancelled. */
    std::size_t pending() const { return live_; }

    bool empty() const { return live_ == 0; }

    /**
     * Schedule @p payload at absolute time @p when.
     *
     * @pre when >= now(); scheduling into the past is a simulator bug.
     * @return the event's id (usable with cancel()).
     */
    EventId
    scheduleAt(PicoSeconds when, Payload payload)
    {
        LERGAN_ASSERT(when >= now_,
                      "event scheduled into the past: ", when, " < ",
                      now_);
        const EventId id = states_.size();
        states_.push_back(State::Pending);
        ++live_;
        Entry entry{when, id, std::move(payload)};
        if (when < windowEnd_) {
            // Ordered insert into the sorted (descending) near run.
            const auto at = std::upper_bound(
                near_.begin(), near_.end(), entry, laterFirst);
            near_.insert(at, std::move(entry));
        } else {
            far_.push_back(std::move(entry));
        }
        return id;
    }

    /**
     * Cancel a pending event in O(1).
     *
     * @return true when @p id was pending (now it never fires); false
     * when it already fired, was already cancelled, or never existed.
     */
    bool
    cancel(EventId id)
    {
        if (id >= states_.size() || states_[id] != State::Pending)
            return false;
        states_[id] = State::Cancelled;
        --live_;
        return true;
    }

    /**
     * Pop the next live event: advances now() to its time and moves its
     * payload into @p out.
     *
     * @return false when the queue is drained (now() unchanged).
     */
    bool
    pop(Payload &out)
    {
        while (true) {
            if (near_.empty() && !advanceWindow())
                return false;
            Entry entry = std::move(near_.back());
            near_.pop_back();
            const State state = states_[entry.seq];
            if (state == State::Cancelled)
                continue; // destroyed with the entry
            states_[entry.seq] = State::Fired;
            --live_;
            now_ = entry.when;
            out = std::move(entry.payload);
            return true;
        }
    }

    /** Drop all pending events and reset time and ids to zero. */
    void
    reset()
    {
        near_.clear();
        far_.clear();
        states_.clear();
        live_ = 0;
        now_ = 0;
        windowEnd_ = 0;
    }

  private:
    struct Entry {
        PicoSeconds when;
        EventId seq;
        Payload payload;
    };

    /** Descending (when, seq): the next event to fire sorts last. */
    static bool
    laterFirst(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    /**
     * Carve the next window out of far: pick a width matched to the
     * observed density, sweep the in-window entries into near (sorted),
     * keep the rest unsorted.
     *
     * @return false when far is empty too (the queue is drained).
     */
    bool
    advanceWindow()
    {
        if (far_.empty())
            return false;
        PicoSeconds lo = far_.front().when;
        PicoSeconds hi = lo;
        for (const Entry &entry : far_) {
            lo = std::min(lo, entry.when);
            hi = std::max(hi, entry.when);
        }
        // Aim for ~kTargetPerWindow events per window; always make
        // progress (width >= 1 guarantees the minimum entry moves).
        const PicoSeconds span = hi - lo + 1;
        const std::size_t windows =
            std::max<std::size_t>(1, far_.size() / kTargetPerWindow);
        const PicoSeconds width =
            std::max<PicoSeconds>(1, span / windows);
        // Unsigned-overflow-safe end of window.
        windowEnd_ = (lo + width < lo) ? hi + 1 : lo + width;

        auto inWindow = [this](const Entry &entry) {
            return entry.when < windowEnd_;
        };
        auto firstKept =
            std::partition(far_.begin(), far_.end(), inWindow);
        near_.reserve(near_.size() +
                      static_cast<std::size_t>(firstKept - far_.begin()));
        for (auto it = far_.begin(); it != firstKept; ++it)
            near_.push_back(std::move(*it));
        far_.erase(far_.begin(), firstKept);
        std::sort(near_.begin(), near_.end(), laterFirst);
        return true;
    }

    static constexpr std::size_t kTargetPerWindow = 32;

    std::vector<Entry> near_; ///< current window, sorted descending
    std::vector<Entry> far_;  ///< beyond the window, unsorted
    /** Lifecycle per event id; ids are dense, so a flat vector. */
    enum class State : std::uint8_t { Pending, Fired, Cancelled };
    std::vector<State> states_;
    std::size_t live_ = 0;
    PicoSeconds now_ = 0;
    PicoSeconds windowEnd_ = 0;
};

} // namespace sim
} // namespace lergan

#endif // LERGAN_SIM_CALENDAR_QUEUE_HH
