#include "sim/event_queue.hh"

namespace lergan {

EventId
EventQueue::scheduleAt(PicoSeconds when, Callback fn)
{
    return events_.scheduleAt(when, std::move(fn));
}

EventId
EventQueue::scheduleAfter(PicoSeconds delay, Callback fn)
{
    return scheduleAt(events_.now() + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    return events_.cancel(id);
}

PicoSeconds
EventQueue::run()
{
    // The callback is moved out before it runs so it may freely
    // schedule (or cancel) more events.
    sim::EventFn fn;
    while (events_.pop(fn))
        fn();
    return events_.now();
}

void
EventQueue::reset()
{
    events_.reset();
}

} // namespace lergan
