#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace lergan {

void
EventQueue::scheduleAt(PicoSeconds when, Callback fn)
{
    LERGAN_ASSERT(when >= now_, "event scheduled into the past: ", when,
                  " < ", now_);
    events_.push(Entry{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(PicoSeconds delay, Callback fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

PicoSeconds
EventQueue::run()
{
    while (!events_.empty()) {
        // Copy out before pop so the callback may schedule more events.
        Entry entry = events_.top();
        events_.pop();
        now_ = entry.when;
        entry.fn();
    }
    return now_;
}

void
EventQueue::reset()
{
    while (!events_.empty())
        events_.pop();
    now_ = 0;
    nextSeq_ = 0;
}

} // namespace lergan
