/**
 * @file
 * Derived Chrome counter tracks over a recorded trace.
 *
 * A Tracer's task spans already say *what ran when*; these helpers turn
 * them into sampled gauges — "how many transfers were in flight", "was
 * this wire busy" — recorded as counter samples ("ph":"C") that
 * Perfetto renders as curves next to the task spans.
 */

#ifndef LERGAN_SIM_TRACE_TRACKS_HH
#define LERGAN_SIM_TRACE_TRACKS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace lergan {

/**
 * Record a counter track named @p track sampling how many spans whose
 * label starts with @p label_prefix are concurrently active.
 *
 * @return the number of samples recorded.
 */
std::size_t addSpanOccupancyTrack(Tracer &tracer,
                                  const std::string &label_prefix,
                                  const std::string &track);

/**
 * Record a counter track named @p track sampling how many spans
 * recorded on display lane @p lane are concurrently active (for a FIFO
 * resource this is its 0/1 busy curve).
 *
 * @return the number of samples recorded.
 */
std::size_t addLaneOccupancyTrack(Tracer &tracer, std::size_t lane,
                                  const std::string &track);

/**
 * The lane with the largest summed span time among lanes whose
 * resource name (in @p lane_names, indexed by lane id) contains
 * @p name_fragment.
 *
 * @return the lane id, or SIZE_MAX when no lane matches.
 */
std::size_t busiestLane(const Tracer &tracer,
                        const std::vector<std::string> &lane_names,
                        const std::string &name_fragment);

} // namespace lergan

#endif // LERGAN_SIM_TRACE_TRACKS_HH
