/**
 * @file
 * Reference binary-heap event queue.
 *
 * This is the simulator's original O(log n) kernel, kept as the
 * executable specification of the (time, seq) determinism contract: the
 * property test in tests/test_properties.cc drives it and the
 * production calendar queue (sim/calendar_queue.hh) with the same ~1M
 * randomized schedule/fire/cancel operations and asserts identical
 * firing sequences. Anything still wanting a plain heap (it has the
 * better worst case for adversarial, non-clustered schedules) can use
 * it directly.
 *
 * Unlike the original, run() MOVES the top entry out of the heap
 * instead of copying it — the per-event std::function copy was pure
 * overhead. Cancellation is supported the same way as in the calendar
 * queue: a per-id state mark plus a pop-time skip.
 */

#ifndef LERGAN_SIM_HEAP_EVENT_QUEUE_HH
#define LERGAN_SIM_HEAP_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lergan {
namespace sim {

/** Binary-heap implementation of the deterministic event queue. */
class HeapEventQueue
{
  public:
    using Callback = std::function<void()>;

    PicoSeconds now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (@pre when >= now()).
     * @return the event's id, usable with cancel().
     */
    EventId
    scheduleAt(PicoSeconds when, Callback fn)
    {
        LERGAN_ASSERT(when >= now_,
                      "event scheduled into the past: ", when, " < ",
                      now_);
        const EventId id = states_.size();
        states_.push_back(State::Pending);
        ++live_;
        events_.push(Entry{when, id, std::move(fn)});
        return id;
    }

    EventId
    scheduleAfter(PicoSeconds delay, Callback fn)
    {
        return scheduleAt(now_ + delay, std::move(fn));
    }

    /** Cancel a pending event; @return true when it was pending. */
    bool
    cancel(EventId id)
    {
        if (id >= states_.size() || states_[id] != State::Pending)
            return false;
        states_[id] = State::Cancelled;
        --live_;
        return true;
    }

    /** Events scheduled and neither fired nor cancelled. */
    std::size_t pending() const { return live_; }

    /** Run until drained; @return the time of the last fired event. */
    PicoSeconds
    run()
    {
        while (!events_.empty()) {
            // Move (not copy) the entry out before pop: top() is const,
            // but the heap no longer cares about the moved-from value.
            Entry entry =
                std::move(const_cast<Entry &>(events_.top()));
            events_.pop();
            if (states_[entry.seq] == State::Cancelled)
                continue;
            states_[entry.seq] = State::Fired;
            --live_;
            now_ = entry.when;
            entry.fn();
        }
        return now_;
    }

    /** Drop all pending events and reset time to zero. */
    void
    reset()
    {
        while (!events_.empty())
            events_.pop();
        states_.clear();
        live_ = 0;
        now_ = 0;
    }

  private:
    struct Entry {
        PicoSeconds when;
        EventId seq;
        Callback fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    enum class State : std::uint8_t { Pending, Fired, Cancelled };

    std::priority_queue<Entry, std::vector<Entry>, Later> events_;
    std::vector<State> states_;
    std::size_t live_ = 0;
    PicoSeconds now_ = 0;
};

} // namespace sim
} // namespace lergan

#endif // LERGAN_SIM_HEAP_EVENT_QUEUE_HH
