/**
 * @file
 * Execution tracing for simulated task graphs.
 *
 * A Tracer records every task's (label, start, end, lane) interval; the
 * result can be dumped as a text timeline or exported in the Chrome
 * trace-event format (chrome://tracing, Perfetto) for visual inspection
 * of pipelining and contention.
 */

#ifndef LERGAN_SIM_TRACE_HH
#define LERGAN_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lergan {

/** One recorded task execution. */
struct TraceEvent {
    std::string label;
    PicoSeconds start = 0;
    PicoSeconds end = 0;
    /** Display lane: the task's first resource id (SIZE_MAX if none). */
    std::size_t lane = SIZE_MAX;
};

/** Collects task execution intervals during a simulation run. */
class Tracer
{
  public:
    /** Record one completed task. */
    void record(std::string label, PicoSeconds start, PicoSeconds end,
                std::size_t lane);

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Drop all recorded events. */
    void clear() { events_.clear(); }

    /**
     * Export in the Chrome trace-event JSON format. Lanes become thread
     * ids; times are emitted in microseconds as the format expects.
     *
     * @param lane_names optional resource names indexed by lane id.
     */
    void exportChromeTrace(
        std::ostream &os,
        const std::vector<std::string> &lane_names = {}) const;

    /** Print a compact text timeline (first @p limit events). */
    void printTimeline(std::ostream &os, std::size_t limit = 50) const;

  private:
    std::vector<TraceEvent> events_;
};

} // namespace lergan

#endif // LERGAN_SIM_TRACE_HH
