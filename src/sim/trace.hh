/**
 * @file
 * Execution tracing for simulated task graphs.
 *
 * A Tracer records every task's (label, start, end, lane) interval; the
 * result can be dumped as a text timeline or exported in the Chrome
 * trace-event format (chrome://tracing, Perfetto) for visual inspection
 * of pipelining and contention.
 */

#ifndef LERGAN_SIM_TRACE_HH
#define LERGAN_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/flight_recorder.hh"

namespace lergan {

/** One recorded task execution. */
struct TraceEvent {
    std::string label;
    PicoSeconds start = 0;
    PicoSeconds end = 0;
    /** Display lane: the task's first resource id (SIZE_MAX if none). */
    std::size_t lane = SIZE_MAX;
};

/** One sampled value of a named counter track at a sim-time instant. */
struct CounterSample {
    std::string track;
    PicoSeconds time = 0;
    double value = 0.0;
};

/** Collects task execution intervals during a simulation run. */
class Tracer
{
  public:
    /** Record one completed task. */
    void record(std::string label, PicoSeconds start, PicoSeconds end,
                std::size_t lane);

    /**
     * Record one sample of counter track @p track at sim time @p time.
     * A sample at the same track and time as the previous one for that
     * track overwrites it, so several updates within one event-queue
     * instant collapse to the final value.
     */
    void recordCounter(const std::string &track, PicoSeconds time,
                       double value);

    const std::vector<TraceEvent> &events() const { return events_; }

    const std::vector<CounterSample> &counterSamples() const
    {
        return counters_;
    }

    /** Drop all recorded events and counter samples. */
    void
    clear()
    {
        events_.clear();
        counters_.clear();
    }

    /**
     * Export in the Chrome trace-event JSON format. Lanes become thread
     * ids; times are emitted in microseconds as the format expects.
     * Counter samples become "ph":"C" counter tracks, which Perfetto
     * renders as value curves alongside the task spans. Tasks with no
     * lane land on a track named "(no resource)".
     *
     * @param lane_names optional resource names indexed by lane id.
     * @param host_spans optional flight-recorder span events (one
     *     collect()'s worth) merged in as nested "ph":"X" slices under
     *     a separate "host spans" process (pid 2, one tid per worker
     *     lane, timestamps on the trace epoch) — the simulated and the
     *     host timeline stay side by side in one viewer.
     */
    void exportChromeTrace(
        std::ostream &os,
        const std::vector<std::string> &lane_names = {},
        const std::vector<SpanEvent> *host_spans = nullptr) const;

    /** Print a compact text timeline (first @p limit events). */
    void printTimeline(std::ostream &os, std::size_t limit = 50) const;

  private:
    std::vector<TraceEvent> events_;
    std::vector<CounterSample> counters_;
};

} // namespace lergan

#endif // LERGAN_SIM_TRACE_HH
