#include "sim/trace.hh"

#include <algorithm>
#include <iomanip>

#include "common/json.hh"

namespace lergan {

void
Tracer::record(std::string label, PicoSeconds start, PicoSeconds end,
               std::size_t lane)
{
    events_.push_back(TraceEvent{std::move(label), start, end, lane});
}

void
Tracer::recordCounter(const std::string &track, PicoSeconds time,
                      double value)
{
    if (!counters_.empty()) {
        CounterSample &last = counters_.back();
        if (last.track == track && last.time == time) {
            last.value = value;
            return;
        }
    }
    counters_.push_back(CounterSample{track, time, value});
}

void
Tracer::exportChromeTrace(std::ostream &os,
                          const std::vector<std::string> &lane_names,
                          const std::vector<SpanEvent> *host_spans) const
{
    JsonWriter json(os);
    json.beginObject();
    json.key("traceEvents").beginArray();
    bool any_unlaned = false;
    for (const TraceEvent &event : events_) {
        const std::uint64_t lane =
            event.lane == SIZE_MAX ? 0 : event.lane + 1;
        any_unlaned = any_unlaned || event.lane == SIZE_MAX;
        json.beginObject();
        json.key("name").value(event.label);
        json.key("ph").value("X");
        json.key("ts").value(static_cast<double>(event.start) * 1e-6);
        json.key("dur").value(
            static_cast<double>(event.end - event.start) * 1e-6);
        json.key("pid").value(1);
        json.key("tid").value(lane);
        json.endObject();
    }
    for (const CounterSample &sample : counters_) {
        json.beginObject();
        json.key("name").value(sample.track);
        json.key("ph").value("C");
        json.key("ts").value(static_cast<double>(sample.time) * 1e-6);
        json.key("pid").value(1);
        json.key("args").beginObject();
        json.key("value").value(sample.value);
        json.endObject();
        json.endObject();
    }
    // Tasks without a resource share tid 0; give that track a name so
    // the viewer doesn't show a bare "Thread 0".
    if (any_unlaned) {
        json.beginObject();
        json.key("name").value("thread_name");
        json.key("ph").value("M");
        json.key("pid").value(1);
        json.key("tid").value(0);
        json.key("args").beginObject();
        json.key("name").value("(no resource)");
        json.endObject();
        json.endObject();
    }
    // Name the lanes after their resources.
    for (std::size_t lane = 0; lane < lane_names.size(); ++lane) {
        json.beginObject();
        json.key("name").value("thread_name");
        json.key("ph").value("M");
        json.key("pid").value(1);
        json.key("tid").value(static_cast<std::uint64_t>(lane + 1));
        json.key("args").beginObject();
        json.key("name").value(lane_names[lane]);
        json.endObject();
        json.endObject();
    }
    // Flight-recorder spans ride in a second process: host wall-clock
    // slices (trace-epoch microseconds) next to the simulated timeline.
    // Nesting falls out of the "X" format — the viewer stacks slices
    // whose intervals contain each other on the same tid.
    if (host_spans && !host_spans->empty()) {
        bool any_main = false;
        for (const SpanEvent &event : *host_spans) {
            const bool main = event.lane == SpanEvent::kMainLane;
            any_main = any_main || main;
            json.beginObject();
            json.key("name").value(event.name);
            json.key("ph").value("X");
            json.key("ts").value(
                static_cast<double>(event.beginNs) * 1e-3);
            json.key("dur").value(
                static_cast<double>(event.endNs - event.beginNs) *
                1e-3);
            json.key("pid").value(2);
            json.key("tid").value(
                main ? 0 : static_cast<std::uint64_t>(event.lane) + 1);
            json.key("args").beginObject();
            json.key("trace").value(event.trace);
            json.key("span").value(event.span);
            for (std::uint32_t a = 0; a < event.attrCount; ++a) {
                const SpanAttr &attr = event.attrs[a];
                switch (attr.kind) {
                case SpanAttr::Kind::Bool:
                    json.key(attr.key).value(attr.i != 0);
                    break;
                case SpanAttr::Kind::Int:
                    json.key(attr.key).value(
                        static_cast<double>(attr.i));
                    break;
                case SpanAttr::Kind::Float:
                    json.key(attr.key).value(attr.f);
                    break;
                case SpanAttr::Kind::Text:
                    json.key(attr.key).value(attr.text);
                    break;
                case SpanAttr::Kind::None:
                    break;
                }
            }
            json.endObject();
            json.endObject();
        }
        json.beginObject();
        json.key("name").value("process_name");
        json.key("ph").value("M");
        json.key("pid").value(2);
        json.key("args").beginObject();
        json.key("name").value("host spans");
        json.endObject();
        json.endObject();
        if (any_main) {
            json.beginObject();
            json.key("name").value("thread_name");
            json.key("ph").value("M");
            json.key("pid").value(2);
            json.key("tid").value(0);
            json.key("args").beginObject();
            json.key("name").value("(main thread)");
            json.endObject();
            json.endObject();
        }
    }
    json.endArray();
    json.endObject();
    os << '\n';
}

void
Tracer::printTimeline(std::ostream &os, std::size_t limit) const
{
    std::vector<const TraceEvent *> sorted;
    sorted.reserve(events_.size());
    for (const TraceEvent &event : events_)
        sorted.push_back(&event);
    std::sort(sorted.begin(), sorted.end(),
              [](const TraceEvent *a, const TraceEvent *b) {
                  return a->start < b->start;
              });
    const std::size_t shown = std::min(limit, sorted.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const TraceEvent &e = *sorted[i];
        os << std::fixed << std::setprecision(3) << std::setw(12)
           << psToNs(e.start) / 1e3 << " us  +" << std::setw(10)
           << psToNs(e.end - e.start) / 1e3 << " us  " << e.label << '\n';
    }
    if (sorted.size() > shown)
        os << "... (" << sorted.size() - shown << " more events)\n";
}

} // namespace lergan
