#include "sim/task_graph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lergan {

TaskId
TaskGraph::addTask(Task task)
{
    tasks_.push_back(std::move(task));
    successors_.emplace_back();
    depCount_.push_back(0);
    return tasks_.size() - 1;
}

void
TaskGraph::addDep(TaskId task, TaskId dep)
{
    LERGAN_ASSERT(task < tasks_.size(), "addDep: bad task id ", task);
    LERGAN_ASSERT(dep < tasks_.size(), "addDep: bad dep id ", dep);
    LERGAN_ASSERT(dep != task, "task cannot depend on itself");
    successors_[dep].push_back(task);
    depCount_[task]++;
}

ExecResult
TaskGraph::execute(ResourcePool &pool, Tracer *tracer,
                   MetricsRegistry *metrics) const
{
    ExecResult result;
    result.endTimes.assign(tasks_.size(), 0);

    EventQueue queue;
    std::vector<std::uint32_t> unmet(depCount_);
    std::vector<PicoSeconds> ready(tasks_.size(), 0);
    std::size_t completed = 0;

    // Occupancy of the executor itself, sampled at every fire and
    // completion when observability is on. Registry instruments are
    // resolved once up front; the event loop only touches atomics.
    std::size_t readyCount = 0;    // fire scheduled, not yet run
    std::size_t inflight = 0;      // fired, completion pending
    Histogram *depthHist = nullptr;
    Histogram *readyHist = nullptr;
    Histogram *inflightHist = nullptr;
    if (metrics) {
        depthHist = &metrics->histogram("sim.queue.depth");
        readyHist = &metrics->histogram("sim.ready.tasks");
        inflightHist = &metrics->histogram("sim.inflight.tasks");
    }
    const bool observing = tracer || metrics;
    auto sample = [&] {
        if (metrics) {
            depthHist->observe(queue.pending());
            readyHist->observe(readyCount);
            inflightHist->observe(inflight);
        }
        if (tracer) {
            const PicoSeconds now = queue.now();
            tracer->recordCounter("sim.queue.depth", now,
                                  static_cast<double>(queue.pending()));
            tracer->recordCounter("sim.ready.tasks", now,
                                  static_cast<double>(readyCount));
            tracer->recordCounter("sim.inflight.tasks", now,
                                  static_cast<double>(inflight));
        }
    };

    // fire() runs at the task's ready time; it commits FIFO reservations
    // on every resource the task needs and schedules the completion event.
    std::function<void(TaskId)> fire = [&](TaskId id) {
        const Task &t = tasks_[id];
        PicoSeconds start = queue.now();
        for (std::size_t rid : t.resources)
            start = std::max(start, pool[rid].nextFree());
        for (std::size_t rid : t.resources) {
            PicoSeconds got = pool[rid].reserve(start, t.duration);
            LERGAN_ASSERT(got == start, "non-FIFO reservation for ",
                          t.label);
        }
        const PicoSeconds end = start + t.duration;
        if (tracer) {
            tracer->record(t.label, start, end,
                           t.resources.empty() ? SIZE_MAX
                                               : t.resources.front());
        }
        queue.scheduleAt(end, [&, id, end] {
            const Task &task = tasks_[id];
            if (task.energy != 0)
                result.stats.add(task.energyKey, task.energy);
            result.endTimes[id] = end;
            result.makespan = std::max(result.makespan, end);
            ++completed;
            for (TaskId succ : successors_[id]) {
                ready[succ] = std::max(ready[succ], end);
                LERGAN_ASSERT(unmet[succ] > 0, "dependency underflow");
                if (--unmet[succ] == 0) {
                    ++readyCount;
                    queue.scheduleAt(ready[succ],
                                     [&fire, succ] { fire(succ); });
                }
            }
            --inflight;
            if (observing)
                sample();
        });
        --readyCount;
        ++inflight;
        if (observing)
            sample();
    };

    for (TaskId id = 0; id < tasks_.size(); ++id) {
        if (unmet[id] == 0) {
            ++readyCount;
            queue.scheduleAt(0, [&fire, id] { fire(id); });
        }
    }

    queue.run();
    LERGAN_ASSERT(completed == tasks_.size(),
                  "task graph has a cycle or orphaned dependency: ",
                  completed, " of ", tasks_.size(), " tasks completed");
    result.stats.set("sim.tasks", static_cast<double>(tasks_.size()));
    if (metrics) {
        metrics->counter("sim.graph.runs").add(1);
        metrics->counter("sim.tasks.executed").add(tasks_.size());
        metrics->histogram("sim.makespan_ps").observe(result.makespan);
    }
    return result;
}

} // namespace lergan
