#include "sim/task_graph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lergan {

TaskId
TaskGraph::addTask(Task task)
{
    tasks_.push_back(std::move(task));
    successors_.emplace_back();
    depCount_.push_back(0);
    return tasks_.size() - 1;
}

void
TaskGraph::addDep(TaskId task, TaskId dep)
{
    LERGAN_ASSERT(task < tasks_.size(), "addDep: bad task id ", task);
    LERGAN_ASSERT(dep < tasks_.size(), "addDep: bad dep id ", dep);
    LERGAN_ASSERT(dep != task, "task cannot depend on itself");
    successors_[dep].push_back(task);
    depCount_[task]++;
}

ExecResult
TaskGraph::execute(ResourcePool &pool, Tracer *tracer) const
{
    ExecResult result;
    result.endTimes.assign(tasks_.size(), 0);

    EventQueue queue;
    std::vector<std::uint32_t> unmet(depCount_);
    std::vector<PicoSeconds> ready(tasks_.size(), 0);
    std::size_t completed = 0;

    // fire() runs at the task's ready time; it commits FIFO reservations
    // on every resource the task needs and schedules the completion event.
    std::function<void(TaskId)> fire = [&](TaskId id) {
        const Task &t = tasks_[id];
        PicoSeconds start = queue.now();
        for (std::size_t rid : t.resources)
            start = std::max(start, pool[rid].nextFree());
        for (std::size_t rid : t.resources) {
            PicoSeconds got = pool[rid].reserve(start, t.duration);
            LERGAN_ASSERT(got == start, "non-FIFO reservation for ",
                          t.label);
        }
        const PicoSeconds end = start + t.duration;
        if (tracer) {
            tracer->record(t.label, start, end,
                           t.resources.empty() ? SIZE_MAX
                                               : t.resources.front());
        }
        queue.scheduleAt(end, [&, id, end] {
            const Task &task = tasks_[id];
            if (task.energy != 0)
                result.stats.add(task.energyKey, task.energy);
            result.endTimes[id] = end;
            result.makespan = std::max(result.makespan, end);
            ++completed;
            for (TaskId succ : successors_[id]) {
                ready[succ] = std::max(ready[succ], end);
                LERGAN_ASSERT(unmet[succ] > 0, "dependency underflow");
                if (--unmet[succ] == 0) {
                    queue.scheduleAt(ready[succ],
                                     [&fire, succ] { fire(succ); });
                }
            }
        });
    };

    for (TaskId id = 0; id < tasks_.size(); ++id) {
        if (unmet[id] == 0)
            queue.scheduleAt(0, [&fire, id] { fire(id); });
    }

    queue.run();
    LERGAN_ASSERT(completed == tasks_.size(),
                  "task graph has a cycle or orphaned dependency: ",
                  completed, " of ", tasks_.size(), " tasks completed");
    result.stats.set("sim.tasks", static_cast<double>(tasks_.size()));
    return result;
}

} // namespace lergan
