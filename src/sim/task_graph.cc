#include "sim/task_graph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lergan {

TaskId
TaskGraph::addTask(Task task)
{
    LERGAN_ASSERT(!frozen_->done, "addTask after the graph was executed");
    tasks_.push_back(std::move(task));
    depCount_.push_back(0);
    return tasks_.size() - 1;
}

void
TaskGraph::addDep(TaskId task, TaskId dep)
{
    LERGAN_ASSERT(!frozen_->done, "addDep after the graph was executed");
    LERGAN_ASSERT(task < tasks_.size(), "addDep: bad task id ", task);
    LERGAN_ASSERT(dep < tasks_.size(), "addDep: bad dep id ", dep);
    LERGAN_ASSERT(dep != task, "task cannot depend on itself");
    edges_.emplace_back(dep, task);
    depCount_[task]++;
}

const TaskGraph::Frozen &
TaskGraph::freeze() const
{
    Frozen &f = *frozen_;
    std::call_once(f.once, [this, &f] {
        const std::size_t n = tasks_.size();
        f.durations.resize(n);
        f.energies.resize(n);
        f.resStart.assign(n + 1, 0);
        for (std::size_t id = 0; id < n; ++id) {
            f.durations[id] = tasks_[id].duration;
            f.energies[id] = tasks_[id].energy;
            f.resStart[id + 1] =
                f.resStart[id] +
                static_cast<std::uint32_t>(tasks_[id].resources.size());
        }
        f.resIds.reserve(f.resStart[n]);
        for (const Task &task : tasks_)
            for (std::size_t rid : task.resources)
                f.resIds.push_back(static_cast<std::uint32_t>(rid));

        // CSR successor lists via a counting sort over the edge list:
        // stable, so each task's successors keep their addDep order —
        // the firing-order contract depends on it.
        f.succStart.assign(n + 1, 0);
        for (const auto &[dep, task] : edges_)
            f.succStart[dep + 1]++;
        for (std::size_t id = 0; id < n; ++id)
            f.succStart[id + 1] += f.succStart[id];
        f.succIds.resize(edges_.size());
        std::vector<std::uint32_t> fill(f.succStart.begin(),
                                        f.succStart.end() - 1);
        for (const auto &[dep, task] : edges_)
            f.succIds[fill[dep]++] = static_cast<std::uint32_t>(task);

        f.done = true;
    });
    return f;
}

ExecResult
TaskGraph::execute(ResourcePool &pool, Tracer *tracer,
                   MetricsRegistry *metrics, ExecScratch *scratch,
                   ExecRecord *record) const
{
    const Frozen &f = freeze();
    const std::size_t n = tasks_.size();

    ExecResult result;
    result.endTimes.assign(n, 0);

    ExecScratch local;
    ExecScratch &s = scratch ? *scratch : local;
    s.queue.reset();
    s.unmet.assign(depCount_.begin(), depCount_.end());
    s.ready.assign(n, 0);
    if (record) {
        s.bindingDep.assign(n, kNoTask);
        s.lastHolder.assign(pool.size(), kNoTask);
        // Every slot is written at fire/completion time, so a reused
        // record only pays for allocation once, not re-zeroing.
        record->start.resize(n);
        record->end.resize(n);
        record->bindingPred.resize(n);
        record->bindingKind.resize(n);
        record->bindingRes.resize(n);
        record->resPrev.resize(f.resStart[n]);
        record->completionOrder.resize(n);
        record->lastTask = kNoTask;
        record->makespan = 0;
    }

    std::size_t completed = 0;

    // Occupancy of the executor itself, sampled at every fire and
    // completion when observability is on. Registry instruments are
    // resolved once up front; the event loop only touches atomics.
    std::size_t readyCount = 0;    // fire scheduled, not yet run
    std::size_t inflight = 0;      // fired, completion pending
    Histogram *depthHist = nullptr;
    Histogram *readyHist = nullptr;
    Histogram *inflightHist = nullptr;
    if (metrics) {
        depthHist = &metrics->histogram("sim.queue.depth");
        readyHist = &metrics->histogram("sim.ready.tasks");
        inflightHist = &metrics->histogram("sim.inflight.tasks");
    }
    const bool observing = tracer || metrics;
    auto sample = [&] {
        if (metrics) {
            depthHist->observe(s.queue.pending());
            readyHist->observe(readyCount);
            inflightHist->observe(inflight);
        }
        if (tracer) {
            const PicoSeconds now = s.queue.now();
            tracer->recordCounter("sim.queue.depth", now,
                                  static_cast<double>(s.queue.pending()));
            tracer->recordCounter("sim.ready.tasks", now,
                                  static_cast<double>(readyCount));
            tracer->recordCounter("sim.inflight.tasks", now,
                                  static_cast<double>(inflight));
        }
    };

    for (TaskId id = 0; id < n; ++id) {
        if (s.unmet[id] == 0) {
            ++readyCount;
            s.queue.scheduleAt(0, TaskEvent{id, false});
        }
    }

    // The POD event loop. A fire event commits FIFO reservations on
    // every resource the task needs and schedules the completion event;
    // a completion charges energy and releases the successors. Event
    // (time, seq) order is identical to the historic closure-based
    // executor, so results, traces and metrics are byte-compatible.
    TaskEvent event;
    while (s.queue.pop(event)) {
        const TaskId id = event.task;
        if (!event.complete) {
            PicoSeconds start = s.queue.now();
            const std::uint32_t resBegin = f.resStart[id];
            const std::uint32_t resEnd = f.resStart[id + 1];
            if (!record) {
                for (std::uint32_t r = resBegin; r < resEnd; ++r)
                    start = std::max(start, pool[f.resIds[r]].nextFree());
            } else {
                // Binding rule: the fire time (now) is the ready time —
                // the moment the last dependency released the task. If
                // some resource was still occupied past that moment,
                // the task queued and the *most* contended resource's
                // previous holder is what actually delayed it;
                // otherwise the last-completing dependency did. Ties
                // between a dependency and a resource that freed at the
                // same instant bind to the dependency (a resource binds
                // only when its free time strictly exceeds ready, i.e.
                // the fire-time start value).
                std::uint32_t bind_slot = ExecRecord::kNoResource;
                for (std::uint32_t r = resBegin; r < resEnd; ++r) {
                    const std::uint32_t rid = f.resIds[r];
                    const PicoSeconds free = pool[rid].nextFree();
                    record->resPrev[r] = s.lastHolder[rid];
                    s.lastHolder[rid] = id;
                    if (free > start) {
                        start = free;
                        bind_slot = r;
                    }
                }
                record->start[id] = start;
                if (bind_slot != ExecRecord::kNoResource) {
                    record->bindingKind[id] = BindingKind::Resource;
                    record->bindingPred[id] = record->resPrev[bind_slot];
                    record->bindingRes[id] = f.resIds[bind_slot];
                } else if (s.bindingDep[id] != kNoTask) {
                    record->bindingKind[id] = BindingKind::Dependency;
                    record->bindingPred[id] = s.bindingDep[id];
                    record->bindingRes[id] = ExecRecord::kNoResource;
                } else {
                    record->bindingKind[id] = BindingKind::None;
                    record->bindingPred[id] = kNoTask;
                    record->bindingRes[id] = ExecRecord::kNoResource;
                }
            }
            for (std::uint32_t r = resBegin; r < resEnd; ++r) {
                const PicoSeconds got =
                    pool[f.resIds[r]].reserve(start, f.durations[id]);
                LERGAN_ASSERT(got == start, "non-FIFO reservation for ",
                              tasks_[id].label);
            }
            const PicoSeconds end = start + f.durations[id];
            if (tracer) {
                tracer->record(tasks_[id].label, start, end,
                               resBegin == resEnd ? SIZE_MAX
                                                  : f.resIds[resBegin]);
            }
            s.queue.scheduleAt(end, TaskEvent{id, true});
            --readyCount;
            ++inflight;
            if (observing)
                sample();
        } else {
            const PicoSeconds end = s.queue.now();
            if (f.energies[id] != 0)
                result.stats.add(tasks_[id].energyKey, f.energies[id]);
            result.endTimes[id] = end;
            result.makespan = std::max(result.makespan, end);
            ++completed;
            if (record) {
                record->end[id] = end;
                // Indexed store into the pre-sized order array (every
                // task completes exactly once, so `completed` is a
                // dense cursor) — no growth check per completion.
                record->completionOrder[completed - 1] = id;
                if (end >= record->makespan) {
                    record->makespan = end;
                    record->lastTask = id;
                }
            }
            for (std::uint32_t e = f.succStart[id];
                 e < f.succStart[id + 1]; ++e) {
                const TaskId succ = f.succIds[e];
                if (end >= s.ready[succ]) {
                    s.ready[succ] = end;
                    if (record)
                        s.bindingDep[succ] = id;
                }
                LERGAN_ASSERT(s.unmet[succ] > 0, "dependency underflow");
                if (--s.unmet[succ] == 0) {
                    ++readyCount;
                    s.queue.scheduleAt(s.ready[succ],
                                       TaskEvent{succ, false});
                }
            }
            --inflight;
            if (observing)
                sample();
        }
    }

    LERGAN_ASSERT(completed == n,
                  "task graph has a cycle or orphaned dependency: ",
                  completed, " of ", n, " tasks completed");
    result.stats.set("sim.tasks", static_cast<double>(n));
    if (metrics) {
        metrics->counter("sim.graph.runs").add(1);
        metrics->counter("sim.tasks.executed").add(n);
        metrics->histogram("sim.makespan_ps").observe(result.makespan);
    }
    return result;
}

} // namespace lergan
