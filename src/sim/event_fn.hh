/**
 * @file
 * Small-buffer-optimized move-only callable for simulation events.
 *
 * The event queue used to store std::function<void()>, which heap
 * allocates for any capture list beyond a couple of words and was
 * copied on every pop. EventFn is the replacement: callables up to
 * kInlineBytes live inside the event entry itself (no allocation, no
 * pointer chase on invoke), larger ones fall back to one heap box.
 * EventFn is move-only — an event is scheduled once and fired once, so
 * copyability was never part of the contract, only a cost.
 */

#ifndef LERGAN_SIM_EVENT_FN_HH
#define LERGAN_SIM_EVENT_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lergan {
namespace sim {

/** Move-only type-erased void() callable with small-buffer storage. */
class EventFn
{
  public:
    /** Captures up to this size are stored inline (no allocation). */
    static constexpr std::size_t kInlineBytes = 48;

    EventFn() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventFn> &&
                  std::is_invocable_r_v<void, D &>>>
    EventFn(F &&fn) // NOLINT: implicit, mirrors std::function
    {
        constexpr bool fits =
            sizeof(D) <= kInlineBytes &&
            alignof(D) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<D>;
        if constexpr (fits) {
            ::new (static_cast<void *>(storage_))
                D(std::forward<F>(fn));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(storage_) =
                new D(std::forward<F>(fn));
            ops_ = &boxedOps<D>;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { destroy(); }

    /** Invoke the stored callable (undefined when empty). */
    void
    operator()()
    {
        ops_->invoke(storage_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** True when the callable lives in the inline buffer (for tests). */
    bool
    inlineStored() const
    {
        return ops_ != nullptr && ops_->inlined;
    }

  private:
    struct Ops {
        void (*invoke)(void *storage);
        /** Move-construct into @p dst from @p src and destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage);
        bool inlined;
    };

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *storage) { (*std::launder(reinterpret_cast<D *>(storage)))(); },
        [](void *dst, void *src) noexcept {
            D *from = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        [](void *storage) {
            std::launder(reinterpret_cast<D *>(storage))->~D();
        },
        true,
    };

    template <typename D>
    static constexpr Ops boxedOps = {
        [](void *storage) { (**reinterpret_cast<D **>(storage))(); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<D **>(dst) =
                *reinterpret_cast<D **>(src);
        },
        [](void *storage) { delete *reinterpret_cast<D **>(storage); },
        false,
    };

    void
    moveFrom(EventFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
    }

    void
    destroy()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace sim
} // namespace lergan

#endif // LERGAN_SIM_EVENT_FN_HH
