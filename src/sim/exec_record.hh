/**
 * @file
 * Per-task execution recording for post-run dependence analysis.
 *
 * When a TaskGraph executes with an ExecRecord attached, the executor
 * writes down, for every task, when it started and finished and *why it
 * started when it did* — the binding predecessor: the dependency whose
 * completion released the task last, or, when the task then had to
 * queue behind earlier reservations, the previous holder of the most
 * contended resource. Following binding predecessors backward from the
 * makespan task yields the critical path (src/critpath); the recorded
 * per-resource reservation order (resPrev) additionally fixes the full
 * timing graph the what-if estimator replays.
 *
 * The record is pure output: recording never changes event order,
 * results, traces or metrics, and a null record costs one predictable
 * branch per event.
 */

#ifndef LERGAN_SIM_EXEC_RECORD_HH
#define LERGAN_SIM_EXEC_RECORD_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hh"

namespace lergan {

/** What determined a task's start time. */
enum class BindingKind : std::uint8_t {
    /** Task started at time zero with nothing ahead of it. */
    None,
    /** Start = the binding dependency's completion time. */
    Dependency,
    /** Start = the time the binding resource's previous reservation
     *  ended (the task was released earlier but had to queue). */
    Resource,
};

/** @return "none", "dep" or "resource". */
constexpr const char *
bindingKindName(BindingKind kind)
{
    switch (kind) {
      case BindingKind::None:       return "none";
      case BindingKind::Dependency: return "dep";
      case BindingKind::Resource:   return "resource";
    }
    return "?";
}

/**
 * Execution record of one TaskGraph run (all vectors indexed by TaskId
 * unless noted). Filled by TaskGraph::execute; resize/reset is the
 * executor's job, so one record can be reused across runs.
 */
struct ExecRecord {
    /** Sentinel resource id: the task held no resources. */
    static constexpr std::uint32_t kNoResource =
        std::numeric_limits<std::uint32_t>::max();

    std::vector<PicoSeconds> start;
    std::vector<PicoSeconds> end;
    /** Binding predecessor task (kNoTask-style SIZE_MAX when None). */
    std::vector<std::size_t> bindingPred;
    std::vector<BindingKind> bindingKind;
    /** Resource the task queued on when bindingKind == Resource. */
    std::vector<std::uint32_t> bindingRes;
    /**
     * Previous holder per (task, resource) reservation slot, laid out
     * exactly like the frozen CSR resource list: slot j of task t is
     * the j-th entry of task(t).resources. SIZE_MAX-valued entries mean
     * the reservation was the resource's first.
     */
    std::vector<std::size_t> resPrev;
    /**
     * Tasks in completion-processing order. Because a binding or
     * reservation predecessor always completes no later than (and at
     * equal times: is processed before) its successor, this is a
     * topological order of the recorded timing graph — the order every
     * replay and backward slack pass walks.
     */
    std::vector<std::size_t> completionOrder;
    /** The task whose completion set the makespan (ties: the last
     *  completion processed, i.e. the graph's final sink). */
    std::size_t lastTask = std::numeric_limits<std::size_t>::max();
    /** Completion time of lastTask. */
    PicoSeconds makespan = 0;

    bool empty() const { return start.empty(); }
};

} // namespace lergan

#endif // LERGAN_SIM_EXEC_RECORD_HH
