/**
 * @file
 * Discrete-event simulation kernel: the general-purpose scheduling API.
 *
 * EventQueue is a handle-based facade over the two-level calendar queue
 * (sim/calendar_queue.hh): scheduleAt() returns the event's EventId and
 * cancel(EventId) revokes a pending event in O(1). Callbacks are
 * sim::EventFn — a small-buffer-optimized move-only callable, so small
 * captures never allocate and nothing is ever copied on pop (the old
 * std::function-based heap copied every callback once per event).
 *
 * Determinism contract: events fire in ascending (time, seq) order
 * where seq is the scheduling order — events at the same timestamp fire
 * exactly in the order they were scheduled. Every simulation in this
 * project is fully deterministic because of this contract; the property
 * test in tests/test_properties.cc checks it against the reference
 * binary-heap implementation (sim/heap_event_queue.hh) over ~1M
 * randomized operations.
 */

#ifndef LERGAN_SIM_EVENT_QUEUE_HH
#define LERGAN_SIM_EVENT_QUEUE_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/calendar_queue.hh"
#include "sim/event_fn.hh"

namespace lergan {

/** Handle of a scheduled event (see sim::CalendarQueue). */
using EventId = sim::EventId;

/** Deterministic discrete-event queue with cancellable events. */
class EventQueue
{
  public:
    using Callback = sim::EventFn;

    /** Current simulated time. */
    PicoSeconds now() const { return events_.now(); }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now(); scheduling into the past is a simulator bug.
     * @return the event's handle, usable with cancel().
     */
    EventId scheduleAt(PicoSeconds when, Callback fn);

    /** Schedule @p fn to run @p delay after the current time. */
    EventId scheduleAfter(PicoSeconds delay, Callback fn);

    /**
     * Cancel a pending event: it will never fire. O(1).
     *
     * @return true when @p id was pending; false when it already fired,
     * was already cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** @return number of events scheduled and not yet fired/cancelled. */
    std::size_t pending() const { return events_.pending(); }

    /**
     * Run until the queue drains.
     *
     * @return the time of the last fired event (simulation end time).
     */
    PicoSeconds run();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    sim::CalendarQueue<sim::EventFn> events_;
};

} // namespace lergan

#endif // LERGAN_SIM_EVENT_QUEUE_HH
