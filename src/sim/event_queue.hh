/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A classic calendar of (time, sequence, callback) triples. Events at the
 * same timestamp fire in scheduling order, which makes every simulation in
 * this project fully deterministic.
 */

#ifndef LERGAN_SIM_EVENT_QUEUE_HH
#define LERGAN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace lergan {

/** Deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    PicoSeconds now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now(); scheduling into the past is a simulator bug.
     */
    void scheduleAt(PicoSeconds when, Callback fn);

    /** Schedule @p fn to run @p delay after the current time. */
    void scheduleAfter(PicoSeconds delay, Callback fn);

    /** @return number of events not yet fired. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Run until the queue drains.
     *
     * @return the time of the last fired event (simulation end time).
     */
    PicoSeconds run();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry {
        PicoSeconds when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events_;
    PicoSeconds now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace lergan

#endif // LERGAN_SIM_EVENT_QUEUE_HH
