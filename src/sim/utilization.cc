#include "sim/utilization.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <map>

namespace lergan {

std::vector<ResourceUsage>
topBusyResources(const ResourcePool &pool, PicoSeconds makespan,
                 std::size_t top_k)
{
    std::vector<ResourceUsage> usage;
    usage.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Resource &res = pool[i];
        ResourceUsage entry;
        entry.name = res.name();
        entry.busy = res.busyTime();
        entry.reservations = res.reservations();
        entry.utilization =
            makespan == 0 ? 0.0
                          : static_cast<double>(res.busyTime()) /
                                static_cast<double>(makespan);
        usage.push_back(std::move(entry));
    }
    std::sort(usage.begin(), usage.end(),
              [](const ResourceUsage &a, const ResourceUsage &b) {
                  if (a.busy != b.busy)
                      return a.busy > b.busy;
                  return a.name < b.name;
              });
    if (usage.size() > top_k)
        usage.resize(top_k);
    return usage;
}

double
utilizationOf(const ResourcePool &pool, PicoSeconds makespan,
              const std::string &name_fragment)
{
    if (makespan == 0)
        return 0.0;
    double total = 0.0;
    std::size_t matches = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Resource &res = pool[i];
        if (res.name().find(name_fragment) == std::string::npos)
            continue;
        total += static_cast<double>(res.busyTime()) /
                 static_cast<double>(makespan);
        ++matches;
    }
    return matches == 0 ? 0.0 : total / static_cast<double>(matches);
}

const char *
resourceCategoryOf(const std::string &name)
{
    if (name.find(".compute") != std::string::npos)
        return "compute";
    if (name.find("wire") != std::string::npos)
        return "wire";
    if (name.find("switch") != std::string::npos)
        return "switch";
    if (name.find("bus") != std::string::npos)
        return "bus";
    if (name.find("cpu") != std::string::npos)
        return "cpu";
    return "other";
}

void
recordPoolMetrics(const ResourcePool &pool, MetricsRegistry &registry)
{
    // Accumulate per category locally first: one registry lookup per
    // non-empty category instead of three per resource (the lookup
    // takes the registry's creation mutex, and pools hold thousands of
    // resources).
    struct CategoryTotals {
        std::uint64_t busy = 0;
        std::uint64_t wait = 0;
        std::uint64_t reservations = 0;
    };
    std::map<std::string, CategoryTotals> totals;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Resource &res = pool[i];
        if (res.reservations() == 0)
            continue;
        CategoryTotals &t = totals[resourceCategoryOf(res.name())];
        t.busy += static_cast<std::uint64_t>(res.busyTime());
        t.wait += static_cast<std::uint64_t>(res.waitTime());
        t.reservations += res.reservations();
    }
    for (const auto &[category, t] : totals) {
        registry.counter("sim.resource.busy_ps." + category).add(t.busy);
        registry.counter("sim.resource.wait_ps." + category).add(t.wait);
        registry.counter("sim.resource.reservations." + category)
            .add(t.reservations);
    }
}

void
printUtilization(std::ostream &os, const ResourcePool &pool,
                 PicoSeconds makespan, std::size_t top_k)
{
    for (const ResourceUsage &usage :
         topBusyResources(pool, makespan, top_k)) {
        os << "  " << std::left << std::setw(28) << usage.name
           << std::right << std::fixed << std::setprecision(3)
           << std::setw(12) << psToMs(usage.busy) << " ms  "
           << std::setprecision(1) << std::setw(5)
           << 100.0 * usage.utilization << "%  "
           << usage.reservations << " reservations\n";
    }
}

} // namespace lergan
