#include "sim/utilization.hh"

#include <algorithm>
#include <iomanip>

namespace lergan {

std::vector<ResourceUsage>
topBusyResources(const ResourcePool &pool, PicoSeconds makespan,
                 std::size_t top_k)
{
    std::vector<ResourceUsage> usage;
    usage.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Resource &res = pool[i];
        ResourceUsage entry;
        entry.name = res.name();
        entry.busy = res.busyTime();
        entry.reservations = res.reservations();
        entry.utilization =
            makespan == 0 ? 0.0
                          : static_cast<double>(res.busyTime()) /
                                static_cast<double>(makespan);
        usage.push_back(std::move(entry));
    }
    std::sort(usage.begin(), usage.end(),
              [](const ResourceUsage &a, const ResourceUsage &b) {
                  return a.busy > b.busy;
              });
    if (usage.size() > top_k)
        usage.resize(top_k);
    return usage;
}

double
utilizationOf(const ResourcePool &pool, PicoSeconds makespan,
              const std::string &name_fragment)
{
    if (makespan == 0)
        return 0.0;
    double total = 0.0;
    std::size_t matches = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Resource &res = pool[i];
        if (res.name().find(name_fragment) == std::string::npos)
            continue;
        total += static_cast<double>(res.busyTime()) /
                 static_cast<double>(makespan);
        ++matches;
    }
    return matches == 0 ? 0.0 : total / static_cast<double>(matches);
}

void
printUtilization(std::ostream &os, const ResourcePool &pool,
                 PicoSeconds makespan, std::size_t top_k)
{
    for (const ResourceUsage &usage :
         topBusyResources(pool, makespan, top_k)) {
        os << "  " << std::left << std::setw(28) << usage.name
           << std::right << std::fixed << std::setprecision(3)
           << std::setw(12) << psToMs(usage.busy) << " ms  "
           << std::setprecision(1) << std::setw(5)
           << 100.0 * usage.utilization << "%  "
           << usage.reservations << " reservations\n";
    }
}

} // namespace lergan
