/**
 * @file
 * Task-DAG executor on top of the event queue and resource pool.
 *
 * The compiler lowers one GAN training iteration into a DAG of compute and
 * transfer tasks. Each task occupies one or more resources for a fixed
 * duration and contributes energy under a named statistic key. Execution
 * is event-driven: a task fires when its last dependency completes, then
 * reserves its resources FIFO, which naturally models pipelining across a
 * minibatch and contention on tiles and links.
 *
 * Execution is built for replay speed. On the first execute() the graph
 * freezes its hot state into struct-of-arrays form — flat duration and
 * energy arrays plus CSR resource and successor lists — so the event
 * loop never touches the cold per-task strings or per-task vectors. The
 * events themselves are POD (task id + kind) dispatched by a switch in
 * the executor: no closures, no type erasure, no allocation per event.
 * With an ExecScratch the remaining per-run buffers (event calendar,
 * dependency counters, ready times) are reused across runs, so a replay
 * does near-zero allocation after the first execution.
 *
 * A frozen graph is immutable and may be executed concurrently from
 * several worker threads (each run's mutable state lives in its own
 * scratch); this is what makes per-iteration DAG templating safe.
 */

#ifndef LERGAN_SIM_TASK_GRAPH_HH
#define LERGAN_SIM_TASK_GRAPH_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/calendar_queue.hh"
#include "sim/exec_record.hh"
#include "sim/resource.hh"
#include "sim/trace.hh"
#include "telemetry/metrics.hh"

namespace lergan {

/** Dense id of a task inside one TaskGraph. */
using TaskId = std::size_t;

/** Sentinel meaning "no task". */
constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

/** One schedulable unit of work. */
struct Task {
    /** Diagnostic label ("D.fwd L3 img17"). */
    std::string label;
    /** Resources occupied for the whole duration (may be empty). */
    std::vector<std::size_t> resources;
    /** Occupancy time. Zero-duration tasks act as barriers. */
    PicoSeconds duration = 0;
    /** Energy charged when the task runs. */
    PicoJoules energy = 0;
    /** Statistic key the energy is charged to ("energy.compute.adc"). */
    std::string energyKey;
};

/** Result of executing a task graph. */
struct ExecResult {
    /** Completion time of the last task. */
    PicoSeconds makespan = 0;
    /** Energy per key, plus bookkeeping counters. */
    StatSet stats;
    /** Per-task end times (indexed by TaskId), for chained graphs. */
    std::vector<PicoSeconds> endTimes;
};

/** POD event of the task executor: fire or complete one task. */
struct TaskEvent {
    TaskId task = kNoTask;
    /** false = fire (start the task), true = completion. */
    bool complete = false;
};

/**
 * Reusable per-execution buffers of TaskGraph::execute().
 *
 * Optional: execute() allocates its own when none is given. Passing the
 * same scratch to repeated executions (of any graphs) reuses the event
 * calendar and counter buffers, eliminating steady-state allocation.
 * A scratch must not be shared between concurrent executions.
 */
class ExecScratch
{
  public:
    ExecScratch() = default;

  private:
    friend class TaskGraph;
    sim::CalendarQueue<TaskEvent> queue;
    std::vector<std::uint32_t> unmet;
    std::vector<PicoSeconds> ready;
    /**
     * @name Recording-only buffers (touched when an ExecRecord is
     * attached; empty and untouched otherwise)
     *
     * Kept as plain 4-byte TaskId slots refilled with one sentinel
     * assign() per recorded run. An epoch-stamped variant (8-byte
     * slots, no refill) measured consistently *slower* on the fig19
     * A/B — doubling the footprint of these two hot arrays costs more
     * in cache misses than the sequential memset-like refill saves.
     */
    ///@{
    std::vector<TaskId> bindingDep;  ///< dep that set each ready time
    std::vector<TaskId> lastHolder;  ///< last reserver per resource
    ///@}
};

/**
 * A directed acyclic graph of tasks with resource requirements.
 *
 * Build with addTask()/addDep(), then run execute(). The first
 * execution freezes the graph (further addTask/addDep calls are a bug);
 * a frozen graph may be executed repeatedly — and concurrently —
 * (resources and runtime state are reset per run).
 */
class TaskGraph
{
  public:
    /** Append a task; @return its id. @pre not yet executed. */
    TaskId addTask(Task task);

    /** Declare that @p task cannot start until @p dep has finished.
     *  @pre not yet executed. */
    void addDep(TaskId task, TaskId dep);

    /** Number of tasks in the graph. */
    std::size_t size() const { return tasks_.size(); }

    /** Read-only access for inspection in tests. */
    const Task &task(TaskId id) const { return tasks_[id]; }

    /**
     * Execute the whole DAG to completion.
     *
     * When @p tracer is given, the executor also records counter tracks
     * sampling the event-queue depth and the ready/in-flight task sets
     * over sim time. When @p metrics is given, the same samples feed
     * sim.* histograms and counters in the registry; only integer
     * instruments are touched, so concurrent executes from a worker
     * pool produce worker-count-independent totals.
     *
     * When @p record is given, the run additionally writes the
     * dependence record critical-path analysis consumes (per-task
     * start/finish, binding predecessors, per-resource reservation
     * order — see sim/exec_record.hh). Recording is pure output: event
     * order, results, traces and metrics are identical with it on.
     *
     * @param pool    resource pool the task resource ids index into.
     * @param tracer  optional recorder of per-task execution intervals.
     * @param metrics optional registry for sim.* metrics.
     * @param scratch optional reusable buffers (see ExecScratch).
     * @param record  optional execution record for critpath analysis.
     * @return makespan, accumulated energy statistics and task end times.
     */
    ExecResult execute(ResourcePool &pool, Tracer *tracer = nullptr,
                       MetricsRegistry *metrics = nullptr,
                       ExecScratch *scratch = nullptr,
                       ExecRecord *record = nullptr) const;

    /**
     * Dependency edges as (dep, task) pairs in addDep order — the cold
     * mirror of the frozen CSR lists, exposed for post-run analysis
     * (critical-path slack needs the full edge set, not just each
     * task's binding predecessor).
     */
    const std::vector<std::pair<TaskId, TaskId>> &edges() const
    {
        return edges_;
    }

  private:
    /**
     * Frozen hot state, built once on first execute: struct-of-arrays
     * mirrors of the task list plus CSR lists, so the event loop reads
     * only these flat arrays. Heap-held (with its own once_flag) to
     * keep TaskGraph movable.
     */
    struct Frozen {
        std::once_flag once;
        bool done = false;
        std::vector<PicoSeconds> durations;
        std::vector<PicoJoules> energies;
        std::vector<std::uint32_t> resStart; ///< size N+1
        std::vector<std::uint32_t> resIds;
        std::vector<std::uint32_t> succStart; ///< size N+1
        std::vector<std::uint32_t> succIds;
    };

    /** Build the SoA/CSR hot state (thread-safe, runs once). */
    const Frozen &freeze() const;

    std::vector<Task> tasks_;
    /** Dependency edges as (dep, task), in addDep order. */
    std::vector<std::pair<TaskId, TaskId>> edges_;
    std::vector<std::uint32_t> depCount_;
    mutable std::unique_ptr<Frozen> frozen_ =
        std::make_unique<Frozen>();
};

} // namespace lergan

#endif // LERGAN_SIM_TASK_GRAPH_HH
