/**
 * @file
 * Task-DAG executor on top of the event queue and resource pool.
 *
 * The compiler lowers one GAN training iteration into a DAG of compute and
 * transfer tasks. Each task occupies one or more resources for a fixed
 * duration and contributes energy under a named statistic key. Execution
 * is event-driven: a task fires when its last dependency completes, then
 * reserves its resources FIFO, which naturally models pipelining across a
 * minibatch and contention on tiles and links.
 */

#ifndef LERGAN_SIM_TASK_GRAPH_HH
#define LERGAN_SIM_TASK_GRAPH_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/trace.hh"
#include "telemetry/metrics.hh"

namespace lergan {

/** Dense id of a task inside one TaskGraph. */
using TaskId = std::size_t;

/** Sentinel meaning "no task". */
constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

/** One schedulable unit of work. */
struct Task {
    /** Diagnostic label ("D.fwd L3 img17"). */
    std::string label;
    /** Resources occupied for the whole duration (may be empty). */
    std::vector<std::size_t> resources;
    /** Occupancy time. Zero-duration tasks act as barriers. */
    PicoSeconds duration = 0;
    /** Energy charged when the task runs. */
    PicoJoules energy = 0;
    /** Statistic key the energy is charged to ("energy.compute.adc"). */
    std::string energyKey;
};

/** Result of executing a task graph. */
struct ExecResult {
    /** Completion time of the last task. */
    PicoSeconds makespan = 0;
    /** Energy per key, plus bookkeeping counters. */
    StatSet stats;
    /** Per-task end times (indexed by TaskId), for chained graphs. */
    std::vector<PicoSeconds> endTimes;
};

/**
 * A directed acyclic graph of tasks with resource requirements.
 *
 * Build with addTask()/addDep(), then run execute(). The graph itself is
 * immutable during execution and may be executed repeatedly (resources and
 * runtime state are reset per run).
 */
class TaskGraph
{
  public:
    /** Append a task; @return its id. */
    TaskId addTask(Task task);

    /** Declare that @p task cannot start until @p dep has finished. */
    void addDep(TaskId task, TaskId dep);

    /** Number of tasks in the graph. */
    std::size_t size() const { return tasks_.size(); }

    /** Read-only access for inspection in tests. */
    const Task &task(TaskId id) const { return tasks_[id]; }

    /**
     * Execute the whole DAG to completion.
     *
     * When @p tracer is given, the executor also records counter tracks
     * sampling the event-queue depth and the ready/in-flight task sets
     * over sim time. When @p metrics is given, the same samples feed
     * sim.* histograms and counters in the registry; only integer
     * instruments are touched, so concurrent executes from a worker
     * pool produce worker-count-independent totals.
     *
     * @param pool    resource pool the task resource ids index into.
     * @param tracer  optional recorder of per-task execution intervals.
     * @param metrics optional registry for sim.* metrics.
     * @return makespan, accumulated energy statistics and task end times.
     */
    ExecResult execute(ResourcePool &pool, Tracer *tracer = nullptr,
                       MetricsRegistry *metrics = nullptr) const;

  private:
    std::vector<Task> tasks_;
    std::vector<std::vector<TaskId>> successors_;
    std::vector<std::uint32_t> depCount_;
};

} // namespace lergan

#endif // LERGAN_SIM_TASK_GRAPH_HH
