/**
 * @file
 * Resource-utilization reporting over a finished simulation run.
 *
 * Reads the FIFO resources' busy times and turns them into the
 * utilization tables the examples and ablation benches print (which
 * wires saturate under H-tree, how evenly tiles are loaded, ...).
 */

#ifndef LERGAN_SIM_UTILIZATION_HH
#define LERGAN_SIM_UTILIZATION_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/resource.hh"
#include "telemetry/metrics.hh"

namespace lergan {

/** Utilization of one resource over a run. */
struct ResourceUsage {
    std::string name;
    PicoSeconds busy = 0;
    /** busy / makespan. */
    double utilization = 0.0;
    std::uint64_t reservations = 0;
};

/**
 * The @p top_k busiest resources of @p pool, given the run's makespan.
 * Results are sorted by busy time descending, ties broken by name, so
 * the table is stable across runs and platforms.
 */
std::vector<ResourceUsage> topBusyResources(const ResourcePool &pool,
                                            PicoSeconds makespan,
                                            std::size_t top_k);

/**
 * Aggregate utilization of all resources whose name contains
 * @p name_fragment (e.g. ".compute", "wire", "buslink").
 *
 * @return average utilization across matching resources (0 if none).
 */
double utilizationOf(const ResourcePool &pool, PicoSeconds makespan,
                     const std::string &name_fragment);

/** Print a "name busy util" table for the top @p top_k resources. */
void printUtilization(std::ostream &os, const ResourcePool &pool,
                      PicoSeconds makespan, std::size_t top_k);

/**
 * Coarse category of a resource, derived from its diagnostic name:
 * "compute", "wire", "switch", "bus", "cpu" or "other". The same
 * buckets recordPoolMetrics rolls contention up under; the
 * critical-path engine reuses them for its per-resource rollups and
 * what-if category transforms.
 */
const char *resourceCategoryOf(const std::string &name);

/**
 * Fold every resource's busy/wait/reservation totals into @p registry
 * as sim.resource.{busy_ps,wait_ps,reservations}.<category> counters,
 * where the category is derived from the resource name (compute, wire,
 * switch, bus, cpu, other). Counters only, so concurrent runs from a
 * worker pool accumulate worker-count-independent totals.
 */
void recordPoolMetrics(const ResourcePool &pool,
                       MetricsRegistry &registry);

} // namespace lergan

#endif // LERGAN_SIM_UTILIZATION_HH
