#include "sim/trace_tracks.hh"

#include <algorithm>
#include <map>

namespace lergan {

namespace {

/**
 * Turn a set of [start, end) intervals into a step curve of how many
 * are active at once, recorded as counter samples on @p track.
 */
std::size_t
recordOccupancy(Tracer &tracer,
                const std::vector<std::pair<PicoSeconds, PicoSeconds>>
                    &intervals,
                const std::string &track)
{
    // +1 at each start, -1 at each end; a map keeps instants sorted and
    // merges edges that coincide.
    std::map<PicoSeconds, long> edges;
    for (const auto &[start, end] : intervals) {
        edges[start] += 1;
        edges[end] -= 1;
    }
    long active = 0;
    std::size_t samples = 0;
    for (const auto &[time, delta] : edges) {
        if (delta == 0)
            continue;
        active += delta;
        tracer.recordCounter(track, time, static_cast<double>(active));
        ++samples;
    }
    return samples;
}

} // namespace

std::size_t
addSpanOccupancyTrack(Tracer &tracer, const std::string &label_prefix,
                      const std::string &track)
{
    std::vector<std::pair<PicoSeconds, PicoSeconds>> intervals;
    for (const TraceEvent &event : tracer.events())
        if (event.label.rfind(label_prefix, 0) == 0)
            intervals.emplace_back(event.start, event.end);
    return recordOccupancy(tracer, intervals, track);
}

std::size_t
addLaneOccupancyTrack(Tracer &tracer, std::size_t lane,
                      const std::string &track)
{
    std::vector<std::pair<PicoSeconds, PicoSeconds>> intervals;
    for (const TraceEvent &event : tracer.events())
        if (event.lane == lane)
            intervals.emplace_back(event.start, event.end);
    return recordOccupancy(tracer, intervals, track);
}

std::size_t
busiestLane(const Tracer &tracer,
            const std::vector<std::string> &lane_names,
            const std::string &name_fragment)
{
    std::vector<PicoSeconds> busy(lane_names.size(), 0);
    for (const TraceEvent &event : tracer.events())
        if (event.lane < busy.size())
            busy[event.lane] += event.end - event.start;
    std::size_t best = SIZE_MAX;
    for (std::size_t lane = 0; lane < lane_names.size(); ++lane) {
        if (lane_names[lane].find(name_fragment) == std::string::npos)
            continue;
        if (busy[lane] == 0)
            continue;
        if (best == SIZE_MAX || busy[lane] > busy[best])
            best = lane;
    }
    return best;
}

} // namespace lergan
