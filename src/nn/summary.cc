#include "nn/summary.hh"

#include <sstream>

#include "common/logging.hh"

namespace lergan {

namespace {

/** "512t5k2s"-style token for a conv layer with input count @p count. */
std::string
convToken(const LayerSpec &layer)
{
    std::ostringstream oss;
    oss << layer.inChannels
        << (layer.kind == LayerKind::Conv ? 'c' : 't') << layer.kernel
        << 'k' << layer.stride << 's';
    return oss.str();
}

} // namespace

std::string
toDsl(const GanModel &model, NetRole role)
{
    const auto &net = model.net(role);
    LERGAN_ASSERT(!net.empty(), "cannot serialize an empty network");
    std::vector<std::string> tokens;

    for (std::size_t i = 0; i < net.size(); ++i) {
        const LayerSpec &layer = net[i];
        if (layer.kind != LayerKind::FullyConnected) {
            tokens.push_back(convToken(layer));
            // A conv chain handing off to an FC needs its closing
            // channel count as an extra token (the "1024c" before "f1"
            // in Table V's DCGAN discriminator).
            if (i + 1 < net.size() &&
                net[i + 1].kind == LayerKind::FullyConnected) {
                tokens.push_back(
                    std::to_string(layer.outChannels) +
                    (layer.kind == LayerKind::Conv ? "c" : "t"));
            }
            continue;
        }
        // FC layers: the bottleneck pattern FC(flat->N), FC(N->flat)
        // collapses back into a single "Nf" token; a leading FC emits
        // its input count; an FC chain emits per-layer input counts.
        const bool next_is_expansion =
            i + 1 < net.size() &&
            net[i + 1].kind == LayerKind::FullyConnected &&
            i > 0 && net[i - 1].kind != LayerKind::FullyConnected &&
            i + 2 < net.size() &&
            net[i + 2].kind != LayerKind::FullyConnected;
        if (next_is_expansion) {
            tokens.push_back(std::to_string(layer.outChannels) + "f");
            ++i; // the expansion FC is implied
            continue;
        }
        const bool after_conv =
            i > 0 && net[i - 1].kind != LayerKind::FullyConnected;
        if (after_conv && i + 1 == net.size()) {
            // Trailing flatten-FC becomes the terminal marker below.
            continue;
        }
        tokens.push_back(std::to_string(layer.inChannels) + "f");
    }

    // Terminal marker: the final layer's kind and output count.
    const LayerSpec &last = net.back();
    const char kind_letter =
        last.kind == LayerKind::FullyConnected
            ? 'f'
            : (last.kind == LayerKind::Conv ? 'c' : 't');
    std::ostringstream out;
    for (const std::string &token : tokens)
        out << token << '-';
    out << kind_letter << last.outChannels;
    return out.str();
}

std::string
describeLayer(const LayerSpec &layer)
{
    std::ostringstream oss;
    oss << layer.inChannels << "x" << layer.inSize << "^"
        << layer.spatialDims << " -> " << layer.outChannels << "x"
        << layer.outSize << "^" << layer.spatialDims << " "
        << layerKindName(layer.kind);
    if (layer.kind != LayerKind::FullyConnected) {
        oss << " k" << layer.kernel << " s" << layer.stride << " p"
            << layer.pad;
        if (layer.padHi != layer.pad)
            oss << "/" << layer.padHi;
        oss << " r" << layer.rem;
    }
    return oss.str();
}

void
printModel(std::ostream &os, const GanModel &model)
{
    os << model.name << " (item " << model.itemSize << "^"
       << model.spatialDims << ", " << model.totalWeights()
       << " weights)\n";
    for (const NetRole role : {NetRole::Generator,
                               NetRole::Discriminator}) {
        os << "  " << netRoleName(role) << ": " << toDsl(model, role)
           << "\n";
        for (const LayerSpec &layer : model.net(role))
            os << "    " << layer.name << ": " << describeLayer(layer)
               << "\n";
    }
}

} // namespace lergan
