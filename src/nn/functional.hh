/**
 * @file
 * Reference (direct, zero-carrying) implementations of every GAN
 * training convolution.
 *
 * These are the ground truth the ZFDR execution paths
 * (zfdr/functional.hh) are verified against: T-CONV forward explicitly
 * builds the zero-inserted grid of the paper's Fig. 4/5; the backward
 * ops are the exact adjoints of the forward definitions, so the
 * equivalence tests certify both the reshaping and our op lowering.
 *
 * Activation tensors are shaped {channels, side, side[, side]}; kernel
 * tensors {out_ch, in_ch, k, k[, k]}. Cross-correlation convention
 * throughout (no kernel flipping in the forward ops).
 */

#ifndef LERGAN_NN_FUNCTIONAL_HH
#define LERGAN_NN_FUNCTIONAL_HH

#include "nn/layer.hh"
#include "nn/tensor.hh"

namespace lergan {

/** Activation shape for @p layer's input side. */
std::vector<int> inputShape(const LayerSpec &layer);

/** Activation shape for @p layer's output side. */
std::vector<int> outputShape(const LayerSpec &layer);

/** Kernel shape of @p layer. */
std::vector<int> kernelShape(const LayerSpec &layer);

/**
 * T-CONV forward (generator layers): zero-insert the input per the
 * layer's converse stride/padding/remainder, then convolve densely.
 *
 * @pre layer.kind == TConv.
 */
Tensor tconvForwardRef(const Tensor &input, const Tensor &kernel,
                       const LayerSpec &layer);

/** S-CONV forward (discriminator layers). @pre layer.kind == Conv. */
Tensor convForwardRef(const Tensor &input, const Tensor &kernel,
                      const LayerSpec &layer);

/**
 * Error backprop through an S-CONV: the adjoint of convForwardRef,
 * mapping the output-side gradient to the input-side gradient.
 */
Tensor convBackwardDataRef(const Tensor &grad_out, const Tensor &kernel,
                           const LayerSpec &layer);

/** Error backprop through a T-CONV: the adjoint of tconvForwardRef. */
Tensor tconvBackwardDataRef(const Tensor &grad_out, const Tensor &kernel,
                            const LayerSpec &layer);

/**
 * Weight gradient of an S-CONV (the paper's W-CONV-S): correlate the
 * padded input with the output gradient.
 */
Tensor convWeightGradRef(const Tensor &input, const Tensor &grad_out,
                         const LayerSpec &layer);

/**
 * Weight gradient of a T-CONV (W-CONV of the generator): correlate the
 * zero-inserted input with the output gradient.
 */
Tensor tconvWeightGradRef(const Tensor &input, const Tensor &grad_out,
                          const LayerSpec &layer);

/** FC forward: out = W^T x (kernel tensor shaped {out, in}). */
Tensor fcForwardRef(const Tensor &input, const Tensor &kernel,
                    const LayerSpec &layer);

/** FC error backprop: grad_in = W grad_out. */
Tensor fcBackwardDataRef(const Tensor &grad_out, const Tensor &kernel,
                         const LayerSpec &layer);

/** FC weight gradient: outer product grad_out x input. */
Tensor fcWeightGradRef(const Tensor &input, const Tensor &grad_out,
                       const LayerSpec &layer);

/** Flat inner product of two same-shaped tensors (adjoint testing). */
std::int64_t innerProduct(const Tensor &a, const Tensor &b);

} // namespace lergan

#endif // LERGAN_NN_FUNCTIONAL_HH
