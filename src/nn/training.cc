#include "nn/training.hh"

#include "common/logging.hh"

namespace lergan {

const Phase kAllPhases[6] = {
    Phase::GFwd,       Phase::DFwd,       Phase::DBwdErr,
    Phase::DBwdWeight, Phase::GBwdErr,    Phase::GBwdWeight,
};

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::GFwd:       return "G.fwd";
      case Phase::DFwd:       return "D.fwd";
      case Phase::DBwdErr:    return "D.bwd_err";
      case Phase::DBwdWeight: return "D.bwd_w";
      case Phase::GBwdErr:    return "G.bwd_err";
      case Phase::GBwdWeight: return "G.bwd_w";
    }
    return "?";
}

const char *
opPatternName(OpPattern pattern)
{
    switch (pattern) {
      case OpPattern::DenseFc:          return "fc";
      case OpPattern::OuterProductFc:   return "fc_wgrad";
      case OpPattern::DenseConv:        return "dense_conv";
      case OpPattern::SparseGridConv:   return "sparse_grid";
      case OpPattern::SparseKernelConv: return "sparse_kernel";
    }
    return "?";
}

Pattern1D
LayerOp::pattern1d() const
{
    switch (pattern) {
      case OpPattern::SparseGridConv:
        return sparseGridPattern(data, stride, padLo, padHi, rem, window);
      case OpPattern::SparseKernelConv:
        return sparseKernelPattern(data, padLo, padHi, window, stride, rem);
      default:
        LERGAN_PANIC("pattern1d() called on dense op ", label);
    }
}

namespace {

/** Shared fields for every op of layer @p layer in phase @p phase. */
LayerOp
baseOp(const GanModel &model, NetRole role, std::size_t idx, Phase phase)
{
    const LayerSpec &layer = model.net(role)[idx];
    LayerOp op;
    op.role = role;
    op.layerIdx = idx;
    op.phase = phase;
    op.spatialDims = layer.spatialDims;
    op.label = layer.name + std::string("@") + phaseName(phase);
    return op;
}

/** Forward op for one layer (G.fwd and D.fwd share this lowering). */
LayerOp
forwardOp(const GanModel &model, NetRole role, std::size_t idx, Phase phase)
{
    const LayerSpec &l = model.net(role)[idx];
    LayerOp op = baseOp(model, role, idx, phase);
    op.inputData = l.inVolume();
    op.outputData = l.outVolume();
    switch (l.kind) {
      case LayerKind::FullyConnected:
        op.pattern = OpPattern::DenseFc;
        op.denseRows = l.inChannels;
        op.outWidth = l.outChannels;
        op.inputWithZeros = op.inputData;
        break;
      case LayerKind::Conv:
        // Dense S-CONV: slide the kernel over the (dense) input.
        op.pattern = OpPattern::DenseConv;
        op.positions = l.outSize;
        op.window = l.kernel;
        op.vecChannels = l.inChannels;
        op.outWidth = l.outChannels;
        op.denseRows = ipow(l.kernel, l.spatialDims) * l.inChannels;
        op.inputWithZeros = op.inputData;
        break;
      case LayerKind::TConv: {
        // T-CONV: zero-inserted input scanned by the dense kernel.
        op.pattern = OpPattern::SparseGridConv;
        op.data = l.inSize;
        op.stride = l.stride;                   // S'
        op.padLo = l.kernel - l.pad - 1;        // P = W - P' - 1
        op.padHi = l.kernel - l.padHi - 1;
        op.rem = l.rem;
        op.window = l.kernel;
        op.positions = l.outSize;
        op.vecChannels = l.inChannels;
        op.outWidth = l.outChannels;
        const Pattern1D p = op.pattern1d();
        LERGAN_ASSERT(p.positions == l.outSize, op.label,
                      ": T-CONV positions ", p.positions, " != O ",
                      l.outSize);
        op.inputWithZeros = ipow(p.gridLength, l.spatialDims) *
                            static_cast<std::uint64_t>(l.inChannels);
        break;
      }
    }
    return op;
}

/** Error-backprop op through one layer (grad of output -> grad of input). */
LayerOp
errorOp(const GanModel &model, NetRole role, std::size_t idx, Phase phase)
{
    const LayerSpec &l = model.net(role)[idx];
    LayerOp op = baseOp(model, role, idx, phase);
    op.inputData = l.outVolume();  // consumes the output-side gradient
    op.outputData = l.inVolume();  // produces the input-side gradient
    switch (l.kind) {
      case LayerKind::FullyConnected:
        // Transposed dense matrix-vector.
        op.pattern = OpPattern::DenseFc;
        op.denseRows = l.outChannels;
        op.outWidth = l.inChannels;
        op.inputWithZeros = op.inputData;
        break;
      case LayerKind::Conv: {
        // Backprop through S-CONV = T-CONV on the zero-inserted grad map.
        op.pattern = OpPattern::SparseGridConv;
        op.data = l.outSize;
        op.stride = l.stride;              // S
        op.padLo = l.kernel - l.pad - 1;
        op.padHi = l.kernel - l.padHi - 1;
        op.rem = l.rem;
        op.window = l.kernel;
        op.positions = l.inSize;
        op.vecChannels = l.outChannels;
        op.outWidth = l.inChannels;
        const Pattern1D p = op.pattern1d();
        LERGAN_ASSERT(p.positions == l.inSize, op.label,
                      ": backprop positions ", p.positions, " != I ",
                      l.inSize);
        op.inputWithZeros = ipow(p.gridLength, l.spatialDims) *
                            static_cast<std::uint64_t>(l.outChannels);
        break;
      }
      case LayerKind::TConv:
        // Backprop through T-CONV = dense S-CONV over the grad map.
        op.pattern = OpPattern::DenseConv;
        op.positions = l.inSize;
        op.window = l.kernel;
        op.vecChannels = l.outChannels;
        op.outWidth = l.inChannels;
        op.denseRows = ipow(l.kernel, l.spatialDims) * l.outChannels;
        op.inputWithZeros = op.inputData;
        break;
    }
    return op;
}

/** Weight-gradient op for one layer. */
LayerOp
weightGradOp(const GanModel &model, NetRole role, std::size_t idx,
             Phase phase)
{
    const LayerSpec &l = model.net(role)[idx];
    LayerOp op = baseOp(model, role, idx, phase);
    // Consumes the cached input activations plus the output-side gradient.
    op.inputData = l.inVolume() + l.outVolume();
    op.outputData = l.numWeights();
    switch (l.kind) {
      case LayerKind::FullyConnected:
        op.pattern = OpPattern::OuterProductFc;
        op.denseRows = l.inChannels;
        op.outWidth = l.outChannels;
        op.inputWithZeros = op.inputData;
        break;
      case LayerKind::Conv: {
        // W-CONV-S: the zero-inserted grad acts as the kernel scanning the
        // padded dense input (paper Fig. 6, Eq. 8-10).
        op.pattern = OpPattern::SparseKernelConv;
        op.data = l.inSize;
        op.padLo = l.pad;
        op.padHi = l.padHi;
        op.window = l.outSize; // taps = O
        op.stride = l.stride;
        op.rem = l.rem;
        op.positions = l.kernel;
        op.vecChannels = 1;
        op.outWidth = l.outChannels;
        op.vectorsPerPosition = l.inChannels;
        const Pattern1D p = op.pattern1d();
        LERGAN_ASSERT(p.positions == l.kernel, op.label,
                      ": W-CONV-S positions ", p.positions, " != W ",
                      l.kernel);
        // Zeros counted per Eq. 10: input padding plus grad insertion.
        const std::uint64_t padded_in =
            ipow(l.inSize + l.pad + l.padHi, l.spatialDims) *
            static_cast<std::uint64_t>(l.inChannels);
        const std::uint64_t inserted_grad =
            ipow((l.outSize - 1) * l.stride + 1 + l.rem, l.spatialDims) *
            static_cast<std::uint64_t>(l.outChannels);
        op.inputWithZeros = padded_in + inserted_grad;
        break;
      }
      case LayerKind::TConv: {
        // W-CONV-T: the zero-inserted input is scanned by the dense grad
        // map (extent O per dim), producing the W^d weight gradient.
        op.pattern = OpPattern::SparseGridConv;
        op.data = l.inSize;
        op.stride = l.stride;
        op.padLo = l.kernel - l.pad - 1;
        op.padHi = l.kernel - l.padHi - 1;
        op.rem = l.rem;
        op.window = l.outSize; // the grad map is the window
        op.positions = l.kernel;
        op.vecChannels = 1;
        op.outWidth = l.outChannels;
        op.vectorsPerPosition = l.inChannels;
        const Pattern1D p = op.pattern1d();
        LERGAN_ASSERT(p.positions == l.kernel, op.label,
                      ": W-CONV-T positions ", p.positions, " != W ",
                      l.kernel);
        op.inputWithZeros =
            ipow(p.gridLength, l.spatialDims) *
                static_cast<std::uint64_t>(l.inChannels) +
            l.outVolume();
        break;
      }
    }
    return op;
}

} // namespace

std::vector<LayerOp>
opsForPhase(const GanModel &model, Phase phase)
{
    std::vector<LayerOp> ops;
    auto forward = [&](NetRole role) {
        const auto &net = model.net(role);
        for (std::size_t i = 0; i < net.size(); ++i)
            ops.push_back(forwardOp(model, role, i, phase));
    };
    auto backward_err = [&](NetRole role) {
        const auto &net = model.net(role);
        for (std::size_t i = net.size(); i-- > 0;)
            ops.push_back(errorOp(model, role, i, phase));
    };
    auto backward_w = [&](NetRole role) {
        const auto &net = model.net(role);
        for (std::size_t i = net.size(); i-- > 0;)
            ops.push_back(weightGradOp(model, role, i, phase));
    };

    switch (phase) {
      case Phase::GFwd:       forward(NetRole::Generator); break;
      case Phase::DFwd:       forward(NetRole::Discriminator); break;
      case Phase::DBwdErr:    backward_err(NetRole::Discriminator); break;
      case Phase::DBwdWeight: backward_w(NetRole::Discriminator); break;
      case Phase::GBwdErr:    backward_err(NetRole::Generator); break;
      case Phase::GBwdWeight: backward_w(NetRole::Generator); break;
    }
    return ops;
}

std::vector<PhaseInstance>
phasesForStep(bool training_discriminator)
{
    if (training_discriminator) {
        // G produces m fakes; D sees m real + m fake items; the backward
        // pass runs over the same 2m items. The generator is not updated.
        return {
            {Phase::GFwd, 1},       {Phase::DFwd, 2},
            {Phase::DBwdErr, 2},    {Phase::DBwdWeight, 2},
        };
    }
    // Training G: errors flow through D (weights frozen) into G.
    return {
        {Phase::GFwd, 1},       {Phase::DFwd, 1},
        {Phase::DBwdErr, 1},    {Phase::GBwdErr, 1},
        {Phase::GBwdWeight, 1},
    };
}

} // namespace lergan
