#include "nn/model.hh"

#include "common/logging.hh"

namespace lergan {

const char *
netRoleName(NetRole role)
{
    return role == NetRole::Generator ? "G" : "D";
}

const std::vector<LayerSpec> &
GanModel::net(NetRole role) const
{
    return role == NetRole::Generator ? generator : discriminator;
}

std::uint64_t
GanModel::totalWeights() const
{
    std::uint64_t total = 0;
    for (const auto &l : generator)
        total += l.numWeights();
    for (const auto &l : discriminator)
        total += l.numWeights();
    return total;
}

bool
GanModel::generatorHasConv() const
{
    for (const auto &l : generator)
        if (l.kind == LayerKind::Conv)
            return true;
    return false;
}

bool
GanModel::hasTConv(NetRole role) const
{
    for (const auto &l : net(role))
        if (l.kind == LayerKind::TConv)
            return true;
    return false;
}

void
GanModel::check() const
{
    LERGAN_ASSERT(!generator.empty() && !discriminator.empty(),
                  name, ": both networks must be non-empty");
    for (const auto *net : {&generator, &discriminator}) {
        for (std::size_t i = 0; i < net->size(); ++i) {
            const LayerSpec &layer = (*net)[i];
            layer.check();
            if (i + 1 < net->size()) {
                const LayerSpec &next = (*net)[i + 1];
                LERGAN_ASSERT(layer.outVolume() == next.inVolume(),
                              name, ": activation volume mismatch between ",
                              layer.name, " (", layer.outVolume(), ") and ",
                              next.name, " (", next.inVolume(), ")");
            }
        }
    }
    // The generator must emit an itemSize^d item.
    const LayerSpec &last = generator.back();
    const int out_spatial =
        last.kind == LayerKind::FullyConnected ? 1 : last.outSize;
    LERGAN_ASSERT(out_spatial == itemSize || itemSize == 0 ||
                      last.kind == LayerKind::FullyConnected,
                  name, ": generator output spatial ", out_spatial,
                  " != item size ", itemSize);
}

} // namespace lergan
