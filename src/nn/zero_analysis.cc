#include "nn/zero_analysis.hh"

#include "common/logging.hh"

namespace lergan {

OpZeroStats &
OpZeroStats::operator+=(const OpZeroStats &other)
{
    usefulMults += other.usefulMults;
    totalMults += other.totalMults;
    usefulInputs += other.usefulInputs;
    totalInputs += other.totalInputs;
    return *this;
}

OpZeroStats
analyzeOp(const LayerOp &op)
{
    OpZeroStats stats;
    stats.usefulInputs = op.inputData;
    stats.totalInputs = op.inputWithZeros;

    const std::uint64_t per_vector =
        static_cast<std::uint64_t>(op.vecChannels) * op.outWidth *
        op.vectorsPerPosition;

    if (!op.zfdrApplicable()) {
        // Dense op: every multiply is useful by the paper's convention
        // (it does not charge dense S-CONVs for their padding zeros).
        std::uint64_t mults = 0;
        switch (op.pattern) {
          case OpPattern::DenseFc:
          case OpPattern::OuterProductFc:
            mults = op.denseRows * op.outWidth;
            break;
          case OpPattern::DenseConv:
            mults = ipow(op.positions, op.spatialDims) * op.denseRows *
                    op.outWidth;
            break;
          default:
            LERGAN_PANIC("unexpected dense pattern for ", op.label);
        }
        stats.usefulMults = stats.totalMults = mults;
        return stats;
    }

    // Sparse op: the d-dimensional pattern is the tensor product of the
    // 1-D pattern, so useful/total taps exponentiate.
    const Pattern1D p = op.pattern1d();
    stats.usefulMults = ipow(p.usefulTaps(), op.spatialDims) * per_vector;
    stats.totalMults = ipow(p.totalTaps(), op.spatialDims) * per_vector;
    return stats;
}

OpZeroStats
analyzePhase(const GanModel &model, Phase phase)
{
    OpZeroStats stats;
    for (const LayerOp &op : opsForPhase(model, phase))
        stats += analyzeOp(op);
    return stats;
}

OpZeroStats
analyzeModel(const GanModel &model)
{
    OpZeroStats stats;
    for (Phase phase : kAllPhases)
        stats += analyzePhase(model, phase);
    return stats;
}

std::uint64_t
zeroCount(const LayerOp &op)
{
    LERGAN_ASSERT(op.zfdrApplicable(), "zeroCount needs a sparse op");
    return op.inputWithZeros - op.inputData;
}

} // namespace lergan
