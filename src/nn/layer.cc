#include "nn/layer.hh"

#include "common/logging.hh"

namespace lergan {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::FullyConnected: return "fc";
      case LayerKind::Conv:           return "conv";
      case LayerKind::TConv:          return "tconv";
    }
    return "?";
}

std::uint64_t
ipow(std::uint64_t base, int exp)
{
    std::uint64_t result = 1;
    for (int i = 0; i < exp; ++i)
        result *= base;
    return result;
}

std::uint64_t
LayerSpec::numWeights() const
{
    if (kind == LayerKind::FullyConnected) {
        return static_cast<std::uint64_t>(inChannels) * outChannels;
    }
    return ipow(static_cast<std::uint64_t>(kernel), spatialDims) *
           inChannels * outChannels;
}

std::uint64_t
LayerSpec::inVolume() const
{
    return static_cast<std::uint64_t>(inChannels) *
           ipow(static_cast<std::uint64_t>(inSize), spatialDims);
}

std::uint64_t
LayerSpec::outVolume() const
{
    return static_cast<std::uint64_t>(outChannels) *
           ipow(static_cast<std::uint64_t>(outSize), spatialDims);
}

std::uint64_t
LayerSpec::outPositions() const
{
    return ipow(static_cast<std::uint64_t>(outSize), spatialDims);
}

void
LayerSpec::check() const
{
    LERGAN_ASSERT(inChannels > 0 && outChannels > 0,
                  "layer ", name, ": channel counts must be positive");
    LERGAN_ASSERT(spatialDims == 2 || spatialDims == 3,
                  "layer ", name, ": unsupported spatial dimensionality ",
                  spatialDims);
    if (kind == LayerKind::FullyConnected) {
        LERGAN_ASSERT(inSize == 1 && outSize == 1 && kernel == 1,
                      "layer ", name, ": FC layers are spatially trivial");
        return;
    }
    LERGAN_ASSERT(inSize > 0 && outSize > 0 && kernel > 0 && stride > 0,
                  "layer ", name, ": sizes must be positive");
    LERGAN_ASSERT(pad >= 0 && padHi >= 0 && rem >= 0 && rem < stride,
                  "layer ", name, ": invalid pad/remainder");
    if (kind == LayerKind::Conv) {
        // Eq. 8: (I + P_lo + P_hi - W) = (O - 1) S + R
        LERGAN_ASSERT(inSize + pad + padHi - kernel ==
                          (outSize - 1) * stride + rem,
                      "layer ", name, ": Eq. 8 violated");
    } else {
        // Eq. 5: (O + P'_lo + P'_hi - W) = (I - 1) S' + R
        LERGAN_ASSERT(outSize + pad + padHi - kernel ==
                          (inSize - 1) * stride + rem,
                      "layer ", name, ": Eq. 5 violated");
    }
}

} // namespace lergan
