#include "nn/functional.hh"

#include "common/logging.hh"

namespace lergan {

namespace {

/** {channels, side x d}. */
std::vector<int>
activationShape(int channels, int side, int dims)
{
    std::vector<int> shape{channels};
    shape.insert(shape.end(), dims, side);
    return shape;
}

/** Prepend @p head to @p tail. */
std::vector<int>
cat(int head, const std::vector<int> &tail)
{
    std::vector<int> index{head};
    index.insert(index.end(), tail.begin(), tail.end());
    return index;
}

/** Prepend two heads to @p tail (kernel indices {oc, ic, w...}). */
std::vector<int>
cat2(int a, int b, const std::vector<int> &tail)
{
    std::vector<int> index{a, b};
    index.insert(index.end(), tail.begin(), tail.end());
    return index;
}

/**
 * Map a zero-inserted-grid cell of a T-CONV to its input element.
 *
 * Per dimension, cell y holds input element t when
 * y = (W - 1 - P') + t * S'; everything else is an inserted, trailing
 * or padding zero.
 *
 * @return true and fill @p input_index when the cell holds data.
 */
bool
gridCellToInput(const LayerSpec &layer, const std::vector<int> &cell,
                std::vector<int> &input_index)
{
    const int pad_lo = layer.kernel - 1 - layer.pad;
    input_index.resize(cell.size());
    for (std::size_t d = 0; d < cell.size(); ++d) {
        const int rel = cell[d] - pad_lo;
        if (rel < 0 || rel % layer.stride != 0 ||
            rel / layer.stride >= layer.inSize) {
            return false;
        }
        input_index[d] = rel / layer.stride;
    }
    return true;
}

/** Per-dimension extents vector {side x d}. */
std::vector<int>
spatial(int side, int dims)
{
    return std::vector<int>(dims, side);
}

void
checkShapes(const Tensor &activation, const std::vector<int> &expected,
            const char *what)
{
    LERGAN_ASSERT(activation.shape() == expected, what,
                  ": unexpected tensor shape");
}

} // namespace

std::vector<int>
inputShape(const LayerSpec &layer)
{
    return activationShape(layer.inChannels, layer.inSize,
                           layer.spatialDims);
}

std::vector<int>
outputShape(const LayerSpec &layer)
{
    return activationShape(layer.outChannels, layer.outSize,
                           layer.spatialDims);
}

std::vector<int>
kernelShape(const LayerSpec &layer)
{
    std::vector<int> shape{layer.outChannels, layer.inChannels};
    shape.insert(shape.end(), layer.spatialDims, layer.kernel);
    return shape;
}

Tensor
tconvForwardRef(const Tensor &input, const Tensor &kernel,
                const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::TConv, "tconvForwardRef: ",
                  layer.name, " is not a T-CONV");
    checkShapes(input, inputShape(layer), "tconvForwardRef input");
    checkShapes(kernel, kernelShape(layer), "tconvForwardRef kernel");

    Tensor out(outputShape(layer));
    std::vector<int> cell(layer.spatialDims);
    std::vector<int> t;
    forEachIndex(spatial(layer.outSize, layer.spatialDims),
                 [&](const std::vector<int> &p) {
        forEachIndex(spatial(layer.kernel, layer.spatialDims),
                     [&](const std::vector<int> &w) {
            for (std::size_t d = 0; d < p.size(); ++d)
                cell[d] = p[d] + w[d];
            if (!gridCellToInput(layer, cell, t))
                return;
            for (int oc = 0; oc < layer.outChannels; ++oc) {
                std::int64_t acc = 0;
                for (int ic = 0; ic < layer.inChannels; ++ic)
                    acc += input.at(cat(ic, t)) *
                           kernel.at(cat2(oc, ic, w));
                out.at(cat(oc, p)) += acc;
            }
        });
    });
    return out;
}

Tensor
convForwardRef(const Tensor &input, const Tensor &kernel,
               const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::Conv, "convForwardRef: ",
                  layer.name, " is not an S-CONV");
    checkShapes(input, inputShape(layer), "convForwardRef input");
    checkShapes(kernel, kernelShape(layer), "convForwardRef kernel");

    Tensor out(outputShape(layer));
    std::vector<int> x(layer.spatialDims);
    forEachIndex(spatial(layer.outSize, layer.spatialDims),
                 [&](const std::vector<int> &q) {
        forEachIndex(spatial(layer.kernel, layer.spatialDims),
                     [&](const std::vector<int> &w) {
            for (std::size_t d = 0; d < q.size(); ++d) {
                x[d] = q[d] * layer.stride + w[d] - layer.pad;
                if (x[d] < 0 || x[d] >= layer.inSize)
                    return; // padding zero
            }
            for (int oc = 0; oc < layer.outChannels; ++oc) {
                std::int64_t acc = 0;
                for (int ic = 0; ic < layer.inChannels; ++ic)
                    acc += input.at(cat(ic, x)) *
                           kernel.at(cat2(oc, ic, w));
                out.at(cat(oc, q)) += acc;
            }
        });
    });
    return out;
}

Tensor
convBackwardDataRef(const Tensor &grad_out, const Tensor &kernel,
                    const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::Conv, "convBackwardDataRef: ",
                  layer.name, " is not an S-CONV");
    checkShapes(grad_out, outputShape(layer), "convBackwardDataRef grad");
    checkShapes(kernel, kernelShape(layer), "convBackwardDataRef kernel");

    Tensor grad_in(inputShape(layer));
    std::vector<int> x(layer.spatialDims);
    forEachIndex(spatial(layer.outSize, layer.spatialDims),
                 [&](const std::vector<int> &q) {
        forEachIndex(spatial(layer.kernel, layer.spatialDims),
                     [&](const std::vector<int> &w) {
            for (std::size_t d = 0; d < q.size(); ++d) {
                x[d] = q[d] * layer.stride + w[d] - layer.pad;
                if (x[d] < 0 || x[d] >= layer.inSize)
                    return;
            }
            for (int ic = 0; ic < layer.inChannels; ++ic) {
                std::int64_t acc = 0;
                for (int oc = 0; oc < layer.outChannels; ++oc)
                    acc += grad_out.at(cat(oc, q)) *
                           kernel.at(cat2(oc, ic, w));
                grad_in.at(cat(ic, x)) += acc;
            }
        });
    });
    return grad_in;
}

Tensor
tconvBackwardDataRef(const Tensor &grad_out, const Tensor &kernel,
                     const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::TConv,
                  "tconvBackwardDataRef: ", layer.name,
                  " is not a T-CONV");
    checkShapes(grad_out, outputShape(layer), "tconvBackwardDataRef grad");
    checkShapes(kernel, kernelShape(layer), "tconvBackwardDataRef kernel");

    Tensor grad_in(inputShape(layer));
    std::vector<int> cell(layer.spatialDims);
    std::vector<int> t;
    forEachIndex(spatial(layer.outSize, layer.spatialDims),
                 [&](const std::vector<int> &p) {
        forEachIndex(spatial(layer.kernel, layer.spatialDims),
                     [&](const std::vector<int> &w) {
            for (std::size_t d = 0; d < p.size(); ++d)
                cell[d] = p[d] + w[d];
            if (!gridCellToInput(layer, cell, t))
                return;
            for (int ic = 0; ic < layer.inChannels; ++ic) {
                std::int64_t acc = 0;
                for (int oc = 0; oc < layer.outChannels; ++oc)
                    acc += grad_out.at(cat(oc, p)) *
                           kernel.at(cat2(oc, ic, w));
                grad_in.at(cat(ic, t)) += acc;
            }
        });
    });
    return grad_in;
}

Tensor
convWeightGradRef(const Tensor &input, const Tensor &grad_out,
                  const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::Conv, "convWeightGradRef: ",
                  layer.name, " is not an S-CONV");
    checkShapes(input, inputShape(layer), "convWeightGradRef input");
    checkShapes(grad_out, outputShape(layer), "convWeightGradRef grad");

    Tensor grad_kernel(kernelShape(layer));
    std::vector<int> x(layer.spatialDims);
    forEachIndex(spatial(layer.kernel, layer.spatialDims),
                 [&](const std::vector<int> &w) {
        forEachIndex(spatial(layer.outSize, layer.spatialDims),
                     [&](const std::vector<int> &q) {
            for (std::size_t d = 0; d < w.size(); ++d) {
                x[d] = q[d] * layer.stride + w[d] - layer.pad;
                if (x[d] < 0 || x[d] >= layer.inSize)
                    return;
            }
            for (int oc = 0; oc < layer.outChannels; ++oc)
                for (int ic = 0; ic < layer.inChannels; ++ic)
                    grad_kernel.at(cat2(oc, ic, w)) +=
                        input.at(cat(ic, x)) * grad_out.at(cat(oc, q));
        });
    });
    return grad_kernel;
}

Tensor
tconvWeightGradRef(const Tensor &input, const Tensor &grad_out,
                   const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::TConv,
                  "tconvWeightGradRef: ", layer.name, " is not a T-CONV");
    checkShapes(input, inputShape(layer), "tconvWeightGradRef input");
    checkShapes(grad_out, outputShape(layer), "tconvWeightGradRef grad");

    Tensor grad_kernel(kernelShape(layer));
    std::vector<int> cell(layer.spatialDims);
    std::vector<int> t;
    forEachIndex(spatial(layer.kernel, layer.spatialDims),
                 [&](const std::vector<int> &w) {
        forEachIndex(spatial(layer.outSize, layer.spatialDims),
                     [&](const std::vector<int> &p) {
            for (std::size_t d = 0; d < w.size(); ++d)
                cell[d] = p[d] + w[d];
            if (!gridCellToInput(layer, cell, t))
                return;
            for (int oc = 0; oc < layer.outChannels; ++oc)
                for (int ic = 0; ic < layer.inChannels; ++ic)
                    grad_kernel.at(cat2(oc, ic, w)) +=
                        input.at(cat(ic, t)) * grad_out.at(cat(oc, p));
        });
    });
    return grad_kernel;
}


Tensor
fcForwardRef(const Tensor &input, const Tensor &kernel,
             const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::FullyConnected,
                  "fcForwardRef: ", layer.name, " is not FC");
    Tensor out({layer.outChannels});
    for (int o = 0; o < layer.outChannels; ++o) {
        std::int64_t acc = 0;
        for (int i = 0; i < layer.inChannels; ++i)
            acc += input.flat(i) * kernel.at({o, i});
        out.at({o}) = acc;
    }
    return out;
}

Tensor
fcBackwardDataRef(const Tensor &grad_out, const Tensor &kernel,
                  const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::FullyConnected,
                  "fcBackwardDataRef: ", layer.name, " is not FC");
    Tensor grad_in({layer.inChannels});
    for (int i = 0; i < layer.inChannels; ++i) {
        std::int64_t acc = 0;
        for (int o = 0; o < layer.outChannels; ++o)
            acc += grad_out.flat(o) * kernel.at({o, i});
        grad_in.at({i}) = acc;
    }
    return grad_in;
}

Tensor
fcWeightGradRef(const Tensor &input, const Tensor &grad_out,
                const LayerSpec &layer)
{
    LERGAN_ASSERT(layer.kind == LayerKind::FullyConnected,
                  "fcWeightGradRef: ", layer.name, " is not FC");
    Tensor grad_kernel({layer.outChannels, layer.inChannels});
    for (int o = 0; o < layer.outChannels; ++o)
        for (int i = 0; i < layer.inChannels; ++i)
            grad_kernel.at({o, i}) = grad_out.flat(o) * input.flat(i);
    return grad_kernel;
}

std::int64_t
innerProduct(const Tensor &a, const Tensor &b)
{
    LERGAN_ASSERT(a.size() == b.size(),
                  "innerProduct: size mismatch ", a.size(), " vs ",
                  b.size());
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a.flat(i) * b.flat(i);
    return sum;
}

} // namespace lergan
