#include "nn/conv_pattern.hh"

#include <map>

#include "common/logging.hh"

namespace lergan {

std::uint64_t
Pattern1D::usefulTaps() const
{
    std::uint64_t total = 0;
    for (const auto &g : groups)
        total += static_cast<std::uint64_t>(g.mask.size()) * g.reuse;
    return total;
}

std::uint64_t
Pattern1D::totalTaps() const
{
    return static_cast<std::uint64_t>(positions) * windowTaps;
}

int
Pattern1D::maxInteriorReuse() const
{
    int best = 0;
    for (const auto &g : groups)
        if (g.interior && g.reuse > best)
            best = g.reuse;
    return best;
}

namespace {

/** Collect identical masks into groups and record each position's
 *  group index in @p pattern. */
void
groupMasks(const std::vector<std::vector<int>> &masks, Pattern1D &pattern)
{
    std::map<std::vector<int>, int> group_index;
    for (const auto &m : masks)
        group_index.emplace(m, 0);
    int next = 0;
    for (auto &[mask, index] : group_index) {
        (void)mask;
        index = next++;
    }

    pattern.groups.assign(group_index.size(), MaskGroup{});
    pattern.groupOfPosition.reserve(masks.size());
    for (const auto &[mask, index] : group_index)
        pattern.groups[index].mask = mask;
    for (const auto &m : masks) {
        const int index = group_index[m];
        pattern.groups[index].reuse++;
        pattern.groupOfPosition.push_back(index);
    }
}

} // namespace

Pattern1D
sparseGridPattern(int data, int insert_stride, int pad_lo, int pad_hi,
                  int rem, int kernel_width)
{
    LERGAN_ASSERT(data > 0 && insert_stride > 0 && kernel_width > 0,
                  "sparseGridPattern: bad arguments");
    LERGAN_ASSERT(pad_lo >= 0 && pad_hi >= 0 && rem >= 0 &&
                      rem < insert_stride,
                  "sparseGridPattern: invalid pad/rem (pad=", pad_lo, "/",
                  pad_hi, " rem=", rem, " S'=", insert_stride, ")");

    Pattern1D pattern;
    pattern.dataCells = data;
    pattern.windowTaps = kernel_width;
    pattern.gridLength =
        pad_lo + pad_hi + (data - 1) * insert_stride + 1 + rem;
    pattern.positions = pattern.gridLength - kernel_width + 1;
    LERGAN_ASSERT(pattern.positions > 0,
                  "sparseGridPattern: window wider than grid");

    // Cell x holds data element (x - pad_lo) / S' when (x - pad_lo) is a
    // non-negative multiple of S' below data * S'.
    auto is_data = [&](int x) {
        int rel = x - pad_lo;
        return rel >= 0 && rel % insert_stride == 0 &&
               rel / insert_stride < data;
    };

    std::vector<std::vector<int>> masks(pattern.positions);
    for (int j = 0; j < pattern.positions; ++j)
        for (int w = 0; w < kernel_width; ++w)
            if (is_data(j + w))
                masks[j].push_back(w);

    groupMasks(masks, pattern);

    // Interior = the mask is a *full* congruence class of the infinite
    // periodic pattern: all offsets in [0, W) congruent to its first
    // element mod S'. Windows deep inside the map produce exactly these.
    for (auto &g : pattern.groups) {
        if (g.mask.empty())
            continue;
        const int residue = g.mask.front() % insert_stride;
        std::vector<int> full;
        for (int w = residue; w < kernel_width; w += insert_stride)
            full.push_back(w);
        g.interior = (g.mask == full);
    }
    return pattern;
}

Pattern1D
sparseKernelPattern(int data, int pad_lo, int pad_hi, int taps,
                    int tap_stride, int rem)
{
    LERGAN_ASSERT(data > 0 && taps > 0 && tap_stride > 0,
                  "sparseKernelPattern: bad arguments");
    LERGAN_ASSERT(pad_lo >= 0 && pad_hi >= 0 && rem >= 0 &&
                      rem < tap_stride,
                  "sparseKernelPattern: invalid pad/rem");

    Pattern1D pattern;
    pattern.dataCells = data;
    pattern.windowTaps = taps;
    pattern.gridLength = data + pad_lo + pad_hi;
    const int kernel_extent = (taps - 1) * tap_stride + 1 + rem;
    pattern.positions = pattern.gridLength - kernel_extent + 1;
    LERGAN_ASSERT(pattern.positions > 0,
                  "sparseKernelPattern: kernel extent ", kernel_extent,
                  " exceeds padded data length ", pattern.gridLength);

    std::vector<std::vector<int>> masks(pattern.positions);
    for (int j = 0; j < pattern.positions; ++j) {
        for (int k = 0; k < taps; ++k) {
            const int x = j + k * tap_stride;
            if (x >= pad_lo && x < pad_lo + data)
                masks[j].push_back(k);
        }
    }

    groupMasks(masks, pattern);

    // Interior = every tap lands on real data.
    for (auto &g : pattern.groups)
        g.interior = (static_cast<int>(g.mask.size()) == taps);
    return pattern;
}

} // namespace lergan
