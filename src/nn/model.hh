/**
 * @file
 * Whole-GAN shape description.
 */

#ifndef LERGAN_NN_MODEL_HH
#define LERGAN_NN_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace lergan {

/** The two networks of a GAN. */
enum class NetRole { Generator, Discriminator };

/** @return "G" or "D". */
const char *netRoleName(NetRole role);

/**
 * A fully shape-resolved GAN benchmark.
 *
 * Produced by parseGan() (nn/parser.hh); every layer satisfies
 * LayerSpec::check() and consecutive layers agree on activation volumes.
 */
struct GanModel {
    /** Benchmark name ("DCGAN"). */
    std::string name;
    /** Generator layers, input to output. */
    std::vector<LayerSpec> generator;
    /** Discriminator layers, input to output. */
    std::vector<LayerSpec> discriminator;
    /** Side length of the generated item (64 for 64x64 images). */
    int itemSize = 0;
    /** 2 for image GANs, 3 for volumetric (3D-GAN). */
    int spatialDims = 2;

    /** Layers of @p role. */
    const std::vector<LayerSpec> &net(NetRole role) const;

    /** Total weight count across both networks. */
    std::uint64_t totalWeights() const;

    /** True if any generator layer is a strided conv (DiscoGAN case). */
    bool generatorHasConv() const;

    /** True if any layer of @p role is a transposed conv. */
    bool hasTConv(NetRole role) const;

    /** Validate the whole model: per-layer checks plus chain consistency. */
    void check() const;
};

} // namespace lergan

#endif // LERGAN_NN_MODEL_HH
