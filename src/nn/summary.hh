/**
 * @file
 * Model introspection: pretty-printing and Table V DSL re-serialization.
 *
 * toDsl() reconstructs the paper's topology string from a resolved
 * GanModel; parseGan(toDsl(m)) == m is a round-trip property the tests
 * enforce, which pins both the parser and the shape resolver.
 */

#ifndef LERGAN_NN_SUMMARY_HH
#define LERGAN_NN_SUMMARY_HH

#include <ostream>
#include <string>

#include "nn/model.hh"

namespace lergan {

/** Rebuild the Table V DSL string for one network of @p model. */
std::string toDsl(const GanModel &model, NetRole role);

/** One-line layer description ("1024x4^2 -> 512x8^2 tconv k5 s2"). */
std::string describeLayer(const LayerSpec &layer);

/** Print the whole model, layer by layer. */
void printModel(std::ostream &os, const GanModel &model);

} // namespace lergan

#endif // LERGAN_NN_SUMMARY_HH
