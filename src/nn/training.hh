/**
 * @file
 * Enumeration of GAN training phases and their per-layer operations.
 *
 * Training a GAN (paper Sec. II-B, Fig. 3/7/8) involves six phases:
 *   G->  generator forward            (T-CONV on zero-inserted inputs)
 *   D->  discriminator forward        (dense S-CONV)
 *   D<-  discriminator error backprop (T-CONV pattern: zero-inserted grads)
 *   Dw<- discriminator weight grads   (W-CONV-S: zero-inserted grad kernel)
 *   G<-  generator error backprop     (dense S-CONV through T-CONV layers)
 *   Gw<- generator weight grads       (W-CONV-T: zero-inserted inputs)
 *
 * Each phase lowers to a list of LayerOp records that capture exactly the
 * 1-D zero-pattern parameters (nn/conv_pattern.hh) plus the channel
 * dimensions needed to size MMVs, count useful work, and compute traffic.
 */

#ifndef LERGAN_NN_TRAINING_HH
#define LERGAN_NN_TRAINING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv_pattern.hh"
#include "nn/model.hh"

namespace lergan {

/** The six training phases. */
enum class Phase {
    GFwd,       ///< generator forward propagation
    DFwd,       ///< discriminator forward propagation
    DBwdErr,    ///< discriminator error transfer
    DBwdWeight, ///< discriminator nabla-weight calculation
    GBwdErr,    ///< generator error transfer
    GBwdWeight, ///< generator nabla-weight calculation
};

/** All phases, in dataflow order. */
extern const Phase kAllPhases[6];

/** @return printable phase name ("G.fwd", "D.bwd_w", ...). */
const char *phaseName(Phase phase);

/** Computation pattern of one layer in one phase. */
enum class OpPattern {
    DenseFc,          ///< dense matrix-vector (FC fwd / err)
    OuterProductFc,   ///< FC weight gradient
    DenseConv,        ///< dense convolution (S-CONV, no exploitable zeros)
    SparseGridConv,   ///< zero-inserted map scanned by dense window (ZFDR_T)
    SparseKernelConv, ///< dense map scanned by zero-inserted kernel (ZFDR_WS)
};

/** @return printable pattern name. */
const char *opPatternName(OpPattern pattern);

/**
 * One layer's work within one phase.
 *
 * For the sparse patterns, (data, stride, pad, rem, window) parameterize
 * the 1-D pattern; the full d-dimensional structure is the tensor product.
 * Element counts are per input item (one image / one error map); the
 * accelerator scales by batch.
 */
struct LayerOp {
    NetRole role = NetRole::Generator;
    std::size_t layerIdx = 0;
    Phase phase = Phase::GFwd;
    OpPattern pattern = OpPattern::DenseFc;
    /** Spatial dimensionality of the op (2 or 3). */
    int spatialDims = 2;

    /** @name Sparse-pattern parameters (see nn/conv_pattern.hh) */
    ///@{
    int data = 0;   ///< real elements per dim (I for grids, I for kernels)
    int stride = 1; ///< insertion / tap stride
    int padLo = 0;  ///< leading zero padding of the scanned object
    int padHi = 0;  ///< trailing zero padding of the scanned object
    int rem = 0;    ///< trailing-zero remainder R
    int window = 1; ///< dense window width, or tap count for sparse kernels
    ///@}

    /** Sliding positions per dimension (output side length of the scan). */
    int positions = 1;
    /** Channels contributing rows to each MMV vector. */
    int vecChannels = 1;
    /** MMV output columns (independent results per position). */
    int outWidth = 1;
    /** Sequential input vectors per window position (C_in for W-CONVs). */
    int vectorsPerPosition = 1;
    /** Dense matrix rows for DenseFc/DenseConv/OuterProductFc. */
    std::uint64_t denseRows = 0;

    /** Useful (non-zero) input elements per item. */
    std::uint64_t inputData = 0;
    /** Input elements including all inserted/padding zeros. */
    std::uint64_t inputWithZeros = 0;
    /** Output elements per item. */
    std::uint64_t outputData = 0;

    /** Diagnostic label ("D.l2.conv@D.bwd_w"). */
    std::string label;

    /** True when ZFDR removes zeros from this op. */
    bool
    zfdrApplicable() const
    {
        return pattern == OpPattern::SparseGridConv ||
               pattern == OpPattern::SparseKernelConv;
    }

    /** Build the 1-D pattern for a sparse op (panics on dense ops). */
    Pattern1D pattern1d() const;
};

/**
 * Lower one phase of @p model into per-layer operations.
 *
 * Forward phases list layers input-to-output; backward phases list them
 * output-to-input (matching error-flow order). The final classification
 * layer of the discriminator participates in DBwdErr like any other.
 */
std::vector<LayerOp> opsForPhase(const GanModel &model, Phase phase);

/** One phase occurrence inside a training step, with its batch factor. */
struct PhaseInstance {
    Phase phase;
    /**
     * Items processed relative to the minibatch size m: training the
     * discriminator feeds m fakes through G but 2m items (real + fake)
     * through D (paper Sec. II-B).
     */
    int batchFactor;
};

/** Phase sequence for one discriminator- or generator-training step. */
std::vector<PhaseInstance> phasesForStep(bool training_discriminator);

} // namespace lergan

#endif // LERGAN_NN_TRAINING_HH
