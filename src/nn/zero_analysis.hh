/**
 * @file
 * Exact zero-related work and storage accounting (paper Sec. III-A).
 *
 * Reproduces the paper's counting of how many stored/transferred input
 * values and how many multiplications are useful versus zero-related, per
 * layer-op and aggregated per phase. The CONV1 worked example of the paper
 * (147,456 inputs of which 16,384 useful; 18.06% multiply efficiency) is a
 * unit-test anchor for this module.
 */

#ifndef LERGAN_NN_ZERO_ANALYSIS_HH
#define LERGAN_NN_ZERO_ANALYSIS_HH

#include <cstdint>

#include "nn/training.hh"

namespace lergan {

/** Useful-vs-total work for one layer op (per input item). */
struct OpZeroStats {
    /** Multiplications involving only real data. */
    std::uint64_t usefulMults = 0;
    /** Multiplications performed without zero removal. */
    std::uint64_t totalMults = 0;
    /** Input elements that carry data. */
    std::uint64_t usefulInputs = 0;
    /** Input elements stored/transferred without zero removal. */
    std::uint64_t totalInputs = 0;

    /** Fraction of multiplications that are useful. */
    double
    multEfficiency() const
    {
        return totalMults == 0
                   ? 1.0
                   : static_cast<double>(usefulMults) / totalMults;
    }

    /** Storage expansion caused by zeros (totalInputs / usefulInputs). */
    double
    storageBlowup() const
    {
        return usefulInputs == 0
                   ? 1.0
                   : static_cast<double>(totalInputs) / usefulInputs;
    }

    /** Element-wise sum, for aggregation. */
    OpZeroStats &operator+=(const OpZeroStats &other);
};

/** Exact zero accounting for one op. Dense ops are fully useful. */
OpZeroStats analyzeOp(const LayerOp &op);

/** Aggregate over all ops of one phase. */
OpZeroStats analyzePhase(const GanModel &model, Phase phase);

/** Aggregate over all six phases (weighted equally, per item). */
OpZeroStats analyzeModel(const GanModel &model);

/**
 * Number of inserted/padding zeros for a T-CONV-style op per Eq. 6/7, or
 * a W-CONV-S op per Eq. 9/10 — exposed for direct formula validation.
 */
std::uint64_t zeroCount(const LayerOp &op);

} // namespace lergan

#endif // LERGAN_NN_ZERO_ANALYSIS_HH
