/**
 * @file
 * Parser for the paper's Table V topology DSL.
 *
 * Examples (all from Table V):
 *   "100f-(1024t-512t-256t-128t)(5k2s)-t3"
 *   "3c4k2s-128c3k1s-(128c-256c-512c-1024c)(4k2s)-f11"
 *   "784f-256f-256f-784f-f11"
 *
 * Grammar, per the paper's own description:
 *  - "<N>c<K>k<S>s" / "<N>t<K>k<S>s" : conv / transposed-conv token with N
 *    *input* feature maps, K x K kernel, stride S (1/S for t-conv).
 *  - "<N>f" : fully-connected token with N input units.
 *  - "(tok-tok-...)(KkSs)" : group sharing a kernel/stride spec.
 *  - trailing "t<N>" / "f<N>" : terminal marker giving the final layer's
 *    output feature maps / units.
 *
 * A *layer* is defined by each consecutive token pair: the leading token
 * supplies the kind, input channel count and kernel/stride; the trailing
 * token (or terminal marker) supplies the output channel count. A token
 * pair that crosses into an FC token becomes a flatten + fully-connected
 * layer, which also covers the mid-network FC bottleneck of
 * DiscoGAN-5pairs.
 *
 * Spatial sizes and paddings are not part of the DSL; they are inferred
 * with the standard "same"-style conventions the benchmark networks use:
 * conv O = ceil(I / S), t-conv O = I * S', with padding and remainder
 * solved from Eq. 8 / Eq. 5.
 */

#ifndef LERGAN_NN_PARSER_HH
#define LERGAN_NN_PARSER_HH

#include <string>

#include "nn/model.hh"

namespace lergan {

/**
 * Parse one GAN benchmark into a shape-resolved model.
 *
 * @param name          benchmark name (used for layer names/messages).
 * @param generator     generator topology string.
 * @param discriminator discriminator topology string.
 * @param item_size     side length of generated items (Table V "Item Size").
 * @param spatial_dims  2 for images, 3 for volumetric GANs.
 * @return a validated GanModel (GanModel::check() has passed).
 */
GanModel parseGan(const std::string &name, const std::string &generator,
                  const std::string &discriminator, int item_size,
                  int spatial_dims = 2);

} // namespace lergan

#endif // LERGAN_NN_PARSER_HH
