#include "nn/tensor.hh"

#include "common/logging.hh"

namespace lergan {

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape))
{
    LERGAN_ASSERT(!shape_.empty(), "tensors need at least one dimension");
    std::size_t total = 1;
    strides_.assign(shape_.size(), 1);
    for (std::size_t d = shape_.size(); d-- > 0;) {
        LERGAN_ASSERT(shape_[d] > 0, "tensor extents must be positive");
        strides_[d] = total;
        total *= static_cast<std::size_t>(shape_[d]);
    }
    data_.assign(total, 0);
}

Tensor
Tensor::random(std::vector<int> shape, Rng &rng, int lo, int hi)
{
    LERGAN_ASSERT(hi >= lo, "empty random range");
    Tensor tensor(std::move(shape));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    for (auto &value : tensor.data_)
        value = lo + static_cast<std::int64_t>(rng.nextBounded(span));
    return tensor;
}

std::size_t
Tensor::offset(const std::vector<int> &index) const
{
    LERGAN_ASSERT(index.size() == shape_.size(),
                  "index rank ", index.size(), " != tensor rank ",
                  shape_.size());
    std::size_t flat = 0;
    for (std::size_t d = 0; d < index.size(); ++d) {
        LERGAN_ASSERT(index[d] >= 0 && index[d] < shape_[d],
                      "index out of range in dimension ", d);
        flat += strides_[d] * static_cast<std::size_t>(index[d]);
    }
    return flat;
}

std::int64_t &
Tensor::at(const std::vector<int> &index)
{
    return data_[offset(index)];
}

std::int64_t
Tensor::at(const std::vector<int> &index) const
{
    return data_[offset(index)];
}

Tensor
Tensor::reshaped(std::vector<int> shape) const
{
    Tensor result(std::move(shape));
    LERGAN_ASSERT(result.size() == size(),
                  "reshaped: element count changes from ", size(), " to ",
                  result.size());
    result.data_ = data_;
    return result;
}

void
forEachIndex(const std::vector<int> &extents,
             const std::function<void(const std::vector<int> &)> &fn)
{
    for (int extent : extents) {
        if (extent <= 0)
            return; // empty hyper-rectangle
    }
    if (extents.empty()) {
        fn({});
        return;
    }
    std::vector<int> index(extents.size(), 0);
    for (;;) {
        fn(index);
        // Odometer increment, last dimension fastest.
        std::size_t d = extents.size() - 1;
        for (;;) {
            if (++index[d] < extents[d])
                break;
            index[d] = 0;
            if (d == 0)
                return;
            --d;
        }
    }
}

} // namespace lergan
