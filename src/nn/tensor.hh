/**
 * @file
 * Dense integer tensor for the functional verification layer.
 *
 * Timing and energy never depend on values, but proving that ZFDR's
 * reshaped computation is *bit-exact* with direct convolution does.
 * Integer values make the equivalence checks exact (no FP tolerance),
 * which matches the fixed-point arithmetic of the ReRAM substrate.
 */

#ifndef LERGAN_NN_TENSOR_HH
#define LERGAN_NN_TENSOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.hh"

namespace lergan {

/** N-dimensional row-major integer tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** Uniform random integers in [lo, hi]. */
    static Tensor random(std::vector<int> shape, Rng &rng, int lo = -4,
                         int hi = 4);

    const std::vector<int> &shape() const { return shape_; }
    std::size_t size() const { return data_.size(); }

    /** Multi-index element access (size must match the rank). */
    std::int64_t &at(const std::vector<int> &index);
    std::int64_t at(const std::vector<int> &index) const;

    /** Flat element access. */
    std::int64_t &flat(std::size_t i) { return data_[i]; }
    std::int64_t flat(std::size_t i) const { return data_[i]; }

    /** Same data under a new shape (sizes must match). */
    Tensor reshaped(std::vector<int> shape) const;

    bool operator==(const Tensor &other) const = default;

  private:
    std::size_t offset(const std::vector<int> &index) const;

    std::vector<int> shape_;
    std::vector<std::size_t> strides_;
    std::vector<std::int64_t> data_;
};

/**
 * Invoke @p fn for every index tuple in the hyper-rectangle
 * [0, extents[0]) x ... x [0, extents[d-1]), lexicographically.
 */
void forEachIndex(const std::vector<int> &extents,
                  const std::function<void(const std::vector<int> &)> &fn);

} // namespace lergan

#endif // LERGAN_NN_TENSOR_HH
