#include "nn/parser.hh"

#include <cctype>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "telemetry/profiler.hh"

namespace lergan {

namespace {

/** One DSL token: "<N>c<K>k<S>s", "<N>t...", or "<N>f". */
struct Token {
    char kind = '?';   // 'c', 't' or 'f'
    int count = 0;     // input feature maps / units
    int kernel = 0;    // 0 = unspecified
    int stride = 0;    // 0 = unspecified
};

/** Trailing "t<N>" / "f<N>" terminal marker. */
struct Terminal {
    char kind = '?';
    int count = 0;
};

/** Split a topology string on '-' at paren depth zero. */
std::vector<std::string>
splitTopLevel(const std::string &text)
{
    std::vector<std::string> pieces;
    std::string current;
    int depth = 0;
    for (char c : text) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == '-' && depth == 0) {
            pieces.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    pieces.push_back(current);
    return pieces;
}

/** Parse "<K>k<S>s" into (kernel, stride). */
std::pair<int, int>
parseSpec(const std::string &text, const std::string &where)
{
    const auto k_pos = text.find('k');
    const auto s_pos = text.find('s');
    if (k_pos == std::string::npos || s_pos == std::string::npos ||
        s_pos + 1 != text.size() || k_pos >= s_pos) {
        LERGAN_FATAL("malformed kernel/stride spec '", text, "' in ", where);
    }
    const int kernel = parseInt(text.substr(0, k_pos), where + " kernel");
    const int stride =
        parseInt(text.substr(k_pos + 1, s_pos - k_pos - 1), where + " stride");
    return {kernel, stride};
}

/** Parse a single non-group token such as "512t5k2s" or "784f". */
Token
parseToken(const std::string &text, const std::string &where)
{
    std::size_t i = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
    }
    if (i == 0 || i == text.size())
        LERGAN_FATAL("malformed layer token '", text, "' in ", where);

    Token token;
    token.count = parseInt(text.substr(0, i), where + " channel count");
    token.kind = text[i];
    if (token.kind != 'c' && token.kind != 't' && token.kind != 'f')
        LERGAN_FATAL("unknown layer kind '", text[i], "' in '", text, "'");

    const std::string rest = text.substr(i + 1);
    if (!rest.empty()) {
        if (token.kind == 'f')
            LERGAN_FATAL("FC token '", text, "' cannot carry a k/s spec");
        auto [kernel, stride] = parseSpec(rest, where);
        token.kernel = kernel;
        token.stride = stride;
    }
    return token;
}

/** True when @p text is a terminal marker like "t3" or "f11". */
bool
isTerminal(const std::string &text)
{
    return !text.empty() &&
           (text[0] == 't' || text[0] == 'f' || text[0] == 'c') &&
           text.size() > 1 &&
           std::isdigit(static_cast<unsigned char>(text[1]));
}

/** Expand pieces into a flat token list plus the terminal marker. */
void
tokenize(const std::string &topology, const std::string &where,
         std::vector<Token> &tokens, Terminal &terminal)
{
    const auto pieces = splitTopLevel(topology);
    LERGAN_ASSERT(pieces.size() >= 2, where,
                  ": a topology needs at least one layer and a terminal");
    for (std::size_t p = 0; p < pieces.size(); ++p) {
        const std::string piece = trim(pieces[p]);
        const bool last = (p + 1 == pieces.size());
        if (last) {
            if (!isTerminal(piece)) {
                LERGAN_FATAL(where, ": topology must end in a terminal "
                             "marker like 't3' or 'f1', got '", piece, "'");
            }
            terminal.kind = piece[0];
            terminal.count = parseInt(piece.substr(1), where + " terminal");
            continue;
        }
        if (piece.empty())
            LERGAN_FATAL(where, ": empty layer token");
        if (piece[0] == '(') {
            // "(tok-tok-...)(KkSs)"
            const auto close = piece.find(')');
            LERGAN_ASSERT(close != std::string::npos, where,
                          ": unbalanced parentheses in '", piece, "'");
            const std::string inner = piece.substr(1, close - 1);
            std::string spec_text = piece.substr(close + 1);
            LERGAN_ASSERT(spec_text.size() > 2 && spec_text.front() == '(' &&
                              spec_text.back() == ')',
                          where, ": group '", piece,
                          "' must be followed by a (KkSs) spec");
            spec_text = spec_text.substr(1, spec_text.size() - 2);
            auto [kernel, stride] = parseSpec(spec_text, where);
            for (const auto &sub : split(inner, '-')) {
                Token token = parseToken(trim(sub), where);
                if (token.kernel == 0) {
                    token.kernel = kernel;
                    token.stride = stride;
                }
                tokens.push_back(token);
            }
        } else {
            tokens.push_back(parseToken(piece, where));
        }
    }
}

/**
 * A layer under construction. Channel counts of -1 are flatten
 * placeholders resolved once spatial sizes are known.
 */
struct Proto {
    LayerKind kind = LayerKind::FullyConnected;
    int inCount = -1;
    int outCount = -1;
    int kernel = 1;
    int stride = 1;
    bool flattenIn = false;  ///< FC input = previous layer's out volume
    bool flattenOut = false; ///< FC output = next layer's in volume
    int inSize = 0;          ///< spatial, 0 = unresolved
    int outSize = 0;
    int padLo = -1;
    int padHi = -1;
    int rem = -1;
};

/** Build the proto-layer chain from the token list (see parser.hh). */
std::vector<Proto>
buildProtos(const std::vector<Token> &tokens, const Terminal &terminal,
            const std::string &where)
{
    std::vector<Proto> protos;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &cur = tokens[i];
        const bool next_is_token = i + 1 < tokens.size();
        const char next_kind =
            next_is_token ? tokens[i + 1].kind : terminal.kind;
        const int next_count =
            next_is_token ? tokens[i + 1].count : terminal.count;

        Proto proto;
        if (cur.kind == 'f') {
            proto.kind = LayerKind::FullyConnected;
            proto.inCount = cur.count;
            if (next_kind == 'f') {
                proto.outCount = next_count;
            } else {
                proto.flattenOut = true; // out = next conv's input volume
            }
        } else if (next_kind == 'f') {
            // The conv chain terminates here; this pair is the flatten+FC.
            proto.kind = LayerKind::FullyConnected;
            proto.flattenIn = true;
            proto.outCount = next_count;
        } else {
            proto.kind =
                cur.kind == 'c' ? LayerKind::Conv : LayerKind::TConv;
            proto.inCount = cur.count;
            proto.outCount = next_count;
            LERGAN_ASSERT(cur.kernel > 0 && cur.stride > 0, where,
                          ": conv token ", cur.count, cur.kind,
                          " lacks a kernel/stride spec");
            proto.kernel = cur.kernel;
            proto.stride = cur.stride;
        }
        protos.push_back(proto);
    }
    return protos;
}

/** Solve pad/rem for a conv proto once both spatial sides are known. */
void
solvePadRem(Proto &proto, const std::string &where)
{
    // Conv:  (I + P_lo + P_hi - W) = (O-1) S + R.
    // TConv: (O + P'_lo + P'_hi - W) = (I-1) S' + R.
    // Prefer a remainder that allows symmetric padding; even kernels with
    // "same"-style shapes fall back to asymmetric (P_hi = P_lo + 1).
    const int big = proto.kind == LayerKind::Conv ? proto.inSize
                                                  : proto.outSize;
    const int small = proto.kind == LayerKind::Conv ? proto.outSize
                                                    : proto.inSize;
    int best_rem = -1;
    int best_total = -1;
    for (int rem = 0; rem < proto.stride; ++rem) {
        const int total =
            (small - 1) * proto.stride + rem + proto.kernel - big;
        if (total < 0)
            continue;
        if (total % 2 == 0) { // symmetric wins outright
            best_rem = rem;
            best_total = total;
            break;
        }
        if (best_rem < 0) {
            best_rem = rem;
            best_total = total;
        }
    }
    if (best_rem < 0) {
        LERGAN_FATAL(where, ": no valid padding for ",
                     layerKindName(proto.kind), " layer ", proto.inCount,
                     "->", proto.outCount, " k", proto.kernel, " s",
                     proto.stride, " I=", proto.inSize, " O=",
                     proto.outSize);
    }
    proto.padLo = best_total / 2;
    proto.padHi = best_total - proto.padLo;
    proto.rem = best_rem;
}

/** Resolve a contiguous conv block forward from a known input spatial. */
void
resolveBlockForward(std::vector<Proto> &protos, std::size_t begin,
                    std::size_t end, int in_spatial, const std::string &where)
{
    int spatial = in_spatial;
    for (std::size_t i = begin; i < end; ++i) {
        Proto &proto = protos[i];
        proto.inSize = spatial;
        if (proto.kind == LayerKind::Conv) {
            proto.outSize = (spatial + proto.stride - 1) / proto.stride;
        } else {
            proto.outSize = spatial * proto.stride;
        }
        solvePadRem(proto, where);
        spatial = proto.outSize;
    }
}

/** Resolve a trailing decoder block backward from the item size. */
void
resolveBlockBackward(std::vector<Proto> &protos, std::size_t begin,
                     std::size_t end, int out_spatial,
                     const std::string &where)
{
    int spatial = out_spatial;
    for (std::size_t i = end; i-- > begin;) {
        Proto &proto = protos[i];
        LERGAN_ASSERT(proto.kind == LayerKind::TConv, where,
                      ": decoder blocks resolved backward must be all "
                      "transposed convolutions");
        proto.outSize = spatial;
        proto.inSize = (spatial + proto.stride - 1) / proto.stride;
        solvePadRem(proto, where);
        spatial = proto.inSize;
    }
}

/** Resolve spatial sizes for every conv block of one network. */
void
resolveSpatial(std::vector<Proto> &protos, NetRole role, int item_size,
               const std::string &where)
{
    // Collect maximal conv/tconv runs.
    std::vector<std::pair<std::size_t, std::size_t>> blocks;
    for (std::size_t i = 0; i < protos.size();) {
        if (protos[i].kind == LayerKind::FullyConnected) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < protos.size() &&
               protos[j].kind != LayerKind::FullyConnected) {
            ++j;
        }
        blocks.emplace_back(i, j);
        i = j;
    }
    if (blocks.empty())
        return; // pure-FC network (MAGAN discriminator)

    if (role == NetRole::Discriminator) {
        // Discriminators see the item directly; everything flows forward.
        LERGAN_ASSERT(blocks.size() == 1 && blocks[0].first == 0, where,
                      ": discriminator conv layers must form one leading "
                      "block");
        resolveBlockForward(protos, blocks[0].first, blocks[0].second,
                            item_size, where);
        return;
    }

    // Generator: a leading conv block (image-to-image GANs) reads the item
    // size forward; the trailing decoder block is resolved backward from
    // the item size. Both cases may coincide (one block).
    std::size_t next_block = 0;
    if (blocks[0].first == 0) {
        resolveBlockForward(protos, blocks[0].first, blocks[0].second,
                            item_size, where);
        next_block = 1;
    }
    if (next_block < blocks.size()) {
        LERGAN_ASSERT(next_block + 1 == blocks.size() &&
                          blocks[next_block].second == protos.size(),
                      where, ": generator may have at most one decoder "
                      "block after the FC bottleneck");
        resolveBlockBackward(protos, blocks[next_block].first,
                             blocks[next_block].second, item_size, where);
    }
}

/** Turn resolved protos into validated LayerSpec objects. */
std::vector<LayerSpec>
finalize(const std::vector<Proto> &protos, NetRole role, int spatial_dims,
         const std::string &where)
{
    std::vector<LayerSpec> layers;
    layers.reserve(protos.size());
    for (std::size_t i = 0; i < protos.size(); ++i) {
        const Proto &proto = protos[i];
        LayerSpec layer;
        layer.kind = proto.kind;
        layer.spatialDims = spatial_dims;
        layer.name = std::string(netRoleName(role)) + ".l" +
                     std::to_string(i + 1) + "." + layerKindName(proto.kind);
        if (proto.kind == LayerKind::FullyConnected) {
            layer.inSize = layer.outSize = 1;
            layer.kernel = layer.stride = 1;
            layer.pad = layer.padHi = layer.rem = 0;
            if (proto.flattenIn) {
                LERGAN_ASSERT(i > 0, where, ": flatten FC needs a "
                              "predecessor");
                layer.inChannels =
                    static_cast<int>(layers[i - 1].outVolume());
            } else {
                layer.inChannels = proto.inCount;
            }
            if (proto.flattenOut) {
                LERGAN_ASSERT(i + 1 < protos.size(), where,
                              ": flatten-out FC needs a successor");
                const Proto &next = protos[i + 1];
                layer.outChannels = next.inCount *
                    static_cast<int>(ipow(next.inSize, spatial_dims));
            } else {
                layer.outChannels = proto.outCount;
            }
        } else {
            layer.inChannels = proto.inCount;
            layer.outChannels = proto.outCount;
            layer.inSize = proto.inSize;
            layer.outSize = proto.outSize;
            layer.kernel = proto.kernel;
            layer.stride = proto.stride;
            layer.pad = proto.padLo;
            layer.padHi = proto.padHi;
            layer.rem = proto.rem;
        }
        layer.check();
        layers.push_back(layer);
    }
    return layers;
}

/** Full pipeline for one network string. */
std::vector<LayerSpec>
parseNet(const std::string &topology, NetRole role, int item_size,
         int spatial_dims, const std::string &where)
{
    std::vector<Token> tokens;
    Terminal terminal;
    tokenize(topology, where, tokens, terminal);
    auto protos = buildProtos(tokens, terminal, where);
    resolveSpatial(protos, role, item_size, where);
    return finalize(protos, role, spatial_dims, where);
}

} // namespace

GanModel
parseGan(const std::string &name, const std::string &generator,
         const std::string &discriminator, int item_size, int spatial_dims)
{
    const auto scope = HostProfiler::global().scope("parse");
    GanModel model;
    model.name = name;
    model.itemSize = item_size;
    model.spatialDims = spatial_dims;
    model.generator = parseNet(generator, NetRole::Generator, item_size,
                               spatial_dims, name + ".G");
    model.discriminator = parseNet(discriminator, NetRole::Discriminator,
                                   item_size, spatial_dims, name + ".D");
    model.check();
    return model;
}

} // namespace lergan
