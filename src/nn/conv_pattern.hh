/**
 * @file
 * One-dimensional zero-pattern enumeration.
 *
 * Every zero-related structure in GAN training (paper Sec. III-A / IV-A)
 * is separable: the zero pattern of a zero-inserted map is a tensor product
 * of identical per-dimension patterns, so the set of distinct d-dimensional
 * window masks is the d-fold product of the distinct 1-D masks, and reuse
 * counts multiply. This file enumerates the 1-D patterns exactly; zfdr and
 * the zero analysis compose them per dimension.
 *
 * Two pattern families cover all of GAN training:
 *  - sparse grid  : a zero-inserted data vector (S'-1 zeros between
 *    elements, R trailing zeros, P pad zeros each side) scanned by a dense
 *    window. Models T-CONV forward, error backprop through S-CONV, and
 *    W-CONV of T-CONV layers.
 *  - sparse kernel: a dense data vector (P pad zeros each side) scanned by
 *    a zero-inserted kernel (taps spaced S apart, R trailing zeros).
 *    Models W-CONV of S-CONV layers (the paper's W-CONV-S).
 */

#ifndef LERGAN_NN_CONV_PATTERN_HH
#define LERGAN_NN_CONV_PATTERN_HH

#include <cstdint>
#include <vector>

namespace lergan {

/** A set of window positions that share one useful-tap mask. */
struct MaskGroup {
    /** Offsets (within the window / tap index space) that hit real data. */
    std::vector<int> mask;
    /** Number of window positions with exactly this mask. */
    int reuse = 0;
    /**
     * True when this mask equals the pure periodic interior mask. Interior
     * groups generalize the paper's InsideReshape along this dimension;
     * non-interior groups are edge material.
     */
    bool interior = false;
};

/** Result of enumerating one dimension of a convolution zero pattern. */
struct Pattern1D {
    /** Distinct masks with reuse counts; reuses sum to positions. */
    std::vector<MaskGroup> groups;
    /** For each window position, the index of its group in @ref groups
     *  (i.e. which reshaped matrix serves that position). */
    std::vector<int> groupOfPosition;
    /** Total sliding-window positions along this dimension. */
    int positions = 0;
    /** Full 1-D extent of the scanned object, including all zeros. */
    int gridLength = 0;
    /** Count of real (non-zero) cells along this dimension. */
    int dataCells = 0;
    /** Window width (dense family) or tap count (sparse-kernel family). */
    int windowTaps = 0;

    /** Number of distinct masks. */
    std::size_t distinct() const { return groups.size(); }

    /** Sum over positions of |mask| = useful multiplies per 1-D scan. */
    std::uint64_t usefulTaps() const;

    /** positions * windowTaps = total multiplies per 1-D scan. */
    std::uint64_t totalTaps() const;

    /** Largest reuse among interior groups (0 if none). */
    int maxInteriorReuse() const;

    /** The mask serving window position @p j. */
    const std::vector<int> &
    maskOf(int j) const
    {
        return groups[groupOfPosition[j]].mask;
    }
};

/**
 * Enumerate a sparse-grid pattern.
 *
 * The grid is: pad_lo zeros | data[0] (S'-1 zeros) data[1] ... data[I-1] |
 * R zeros | pad_hi zeros, scanned by a dense window of @p kernel_width
 * cells sliding with stride 1. Asymmetric padding (pad_lo != pad_hi)
 * arises from even kernels with "same"-style shapes.
 *
 * @param data          I, number of real data elements.
 * @param insert_stride S', so S'-1 zeros are inserted between elements.
 * @param pad_lo        leading zero padding (already the *forward* pad,
 *                      i.e. W - P' - 1 for a T-CONV).
 * @param pad_hi        trailing zero padding.
 * @param rem           R, trailing zeros appended after the data.
 * @param kernel_width  dense window width in cells.
 */
Pattern1D sparseGridPattern(int data, int insert_stride, int pad_lo,
                            int pad_hi, int rem, int kernel_width);

/** Symmetric-padding convenience overload. */
inline Pattern1D
sparseGridPattern(int data, int insert_stride, int pad, int rem,
                  int kernel_width)
{
    return sparseGridPattern(data, insert_stride, pad, pad, rem,
                             kernel_width);
}

/**
 * Enumerate a sparse-kernel pattern.
 *
 * The grid is: pad_lo zeros | data[0..I-1] | pad_hi zeros (dense data),
 * scanned by a kernel whose taps sit at offsets {0, S, 2S, ..., (O-1)S}
 * with R trailing zeros (total extent (O-1)S + 1 + R), sliding with
 * stride 1.
 *
 * @param data       I, dense data length.
 * @param pad_lo     leading zero padding.
 * @param pad_hi     trailing zero padding.
 * @param taps       O, number of kernel taps (the nabla-output side).
 * @param tap_stride S, spacing between taps.
 * @param rem        R, trailing zeros extending the kernel.
 */
Pattern1D sparseKernelPattern(int data, int pad_lo, int pad_hi, int taps,
                              int tap_stride, int rem);

/** Symmetric-padding convenience overload. */
inline Pattern1D
sparseKernelPattern(int data, int pad, int taps, int tap_stride, int rem)
{
    return sparseKernelPattern(data, pad, pad, taps, tap_stride, rem);
}

} // namespace lergan

#endif // LERGAN_NN_CONV_PATTERN_HH
