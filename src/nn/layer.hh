/**
 * @file
 * Layer and network shape descriptions.
 *
 * A GAN benchmark (Table V of the paper) is a generator and a
 * discriminator, each a sequence of LayerSpec. Layers carry only shapes —
 * simulated timing and energy never depend on numerical weight values.
 *
 * Convolution conventions (paper Sec. III-A, generalized to asymmetric
 * padding):
 *  - Conv (S-CONV), forward I -> O:
 *        (I + P_lo + P_hi - W) = (O - 1) * S + R            (Eq. 8)
 *  - TConv (T-CONV), forward I -> O:
 *        (O + P'_lo + P'_hi - W) = (I - 1) * S' + R         (Eq. 5)
 * R in [0, S) is the remainder; spatial maps are square (or cubic for
 * 3D-GAN) with side given by inSize/outSize.
 */

#ifndef LERGAN_NN_LAYER_HH
#define LERGAN_NN_LAYER_HH

#include <cstdint>
#include <string>

namespace lergan {

/** Kind of a network layer. */
enum class LayerKind {
    FullyConnected, ///< dense matrix-vector layer
    Conv,           ///< strided convolution (S-CONV)
    TConv,          ///< transposed convolution (T-CONV)
};

/** @return short printable name ("fc", "conv", "tconv"). */
const char *layerKindName(LayerKind kind);

/**
 * Shape of one layer.
 *
 * For FullyConnected layers the spatial fields are 1 and inChannels /
 * outChannels hold the unit counts. For (T)Conv layers, stride/pad/rem are
 * the parameters of the *defining* convolution: the forward conv for Conv
 * layers (S, P, R of Eq. 8) and the converse conv for TConv layers
 * (S', P', R of Eq. 5).
 */
struct LayerSpec {
    LayerKind kind = LayerKind::FullyConnected;
    /** Input feature maps (or FC input units). */
    int inChannels = 0;
    /** Output feature maps (or FC output units). */
    int outChannels = 0;
    /** Input spatial side length (1 for FC). */
    int inSize = 1;
    /** Output spatial side length (1 for FC). */
    int outSize = 1;
    /** Number of spatial dimensions: 2, or 3 for volumetric GANs. */
    int spatialDims = 2;
    /** Square kernel side (1 for FC). */
    int kernel = 1;
    /** Stride S (Conv) or converse stride S' (TConv). */
    int stride = 1;
    /**
     * Leading-side padding P (Conv) or converse padding P' (TConv).
     * Even kernels with "same"-style shapes need asymmetric padding, so
     * the trailing side is tracked separately in padHi.
     */
    int pad = 0;
    /** Trailing-side padding (== pad for the common symmetric case). */
    int padHi = 0;
    /** Division remainder R of Eq. 5 / Eq. 8. */
    int rem = 0;
    /** Human-readable name ("G.conv1"). */
    std::string name;

    /** Number of weight values in the layer. */
    std::uint64_t numWeights() const;

    /** Flattened input activation count (channels * inSize^d). */
    std::uint64_t inVolume() const;

    /** Flattened output activation count (channels * outSize^d). */
    std::uint64_t outVolume() const;

    /** spatial positions in the output map (outSize^d). */
    std::uint64_t outPositions() const;

    /** Validate internal consistency; panics on violation. */
    void check() const;
};

/** Integer power helper for d-dimensional shape math. */
std::uint64_t ipow(std::uint64_t base, int exp);

} // namespace lergan

#endif // LERGAN_NN_LAYER_HH
