/**
 * @file
 * Per-phase timing analysis over a traced simulation run.
 *
 * Compute-task labels carry their phase ("D.l2.conv@D.fwd"); grouping
 * trace events by that suffix shows where iteration time goes and how
 * much the phases overlap (the pipelined dataflows of the paper's
 * Fig. 7/8/13: error transfer runs while forward propagation of later
 * items is still in flight).
 */

#ifndef LERGAN_CORE_PHASE_REPORT_HH
#define LERGAN_CORE_PHASE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace lergan {

/** Aggregated timing of one phase (or task family). */
struct PhaseTime {
    /** Phase name ("G.fwd"), or "transfers" / "updates" / "other". */
    std::string name;
    /** Summed task durations (work volume). */
    PicoSeconds busy = 0;
    /** First task start. */
    PicoSeconds firstStart = 0;
    /** Last task end. */
    PicoSeconds lastEnd = 0;
    /** Number of tasks. */
    std::uint64_t tasks = 0;

    /** Wall-clock window the phase was active in. */
    PicoSeconds span() const { return lastEnd - firstStart; }
};

/**
 * Group a run's trace events into phases. Compute tasks group by their
 * "@phase" label suffix; transfer ("xfer:"), load ("load:") and update
 * ("update:", "*.grad.readout", "*.update.cpu") tasks get their own
 * families; the rest lands in "other".
 */
std::vector<PhaseTime> phaseTimes(const Tracer &tracer);

/** Print the phase table with overlap ratios (busy / span). */
void printPhaseTimes(std::ostream &os, const Tracer &tracer,
                     PicoSeconds makespan);

} // namespace lergan

#endif // LERGAN_CORE_PHASE_REPORT_HH
